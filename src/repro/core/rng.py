"""Gaussian random number generation for RRS synthesis.

Section 2.3 of the paper builds its random surfaces from standard normal
deviates produced by the Box-Muller transform over C ``rand()`` uniforms
(eqn 18):

.. math::

    u_1 = \\mathrm{rand}(2\\pi),\\quad u_2 = \\mathrm{rand}(1),\\quad
    X = \\sqrt{-2 \\log u_2}\\, \\cos u_1 .

This module provides:

* :func:`box_muller` — the exact transform of eqn (18) over caller-chosen
  uniforms (property-tested for normality);
* :class:`Lcg` — a classic linear congruential ``rand()`` in the style of
  the C standard library the paper cites [Johnsonbaugh & Kalin], for
  recipe-faithful reproduction;
* :func:`standard_normal_field` — the production path: `numpy` PCG64
  Generator normals (statistically identical, orders of magnitude
  faster);
* :class:`BlockNoise` — deterministic, location-addressable noise: the
  value of the noise field at any global index is a pure function of
  ``(seed, block coordinates)``.  This is what makes streaming strips and
  parallel tiles *exactly* reproduce the one-shot surface (paper
  advantage (a), DESIGN.md S3/S9/S10): any worker can materialise any
  window of the infinite noise plane without communication.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

__all__ = [
    "box_muller",
    "Lcg",
    "standard_normal_field",
    "normal_pair_from_uniform",
    "BlockNoise",
    "as_generator",
]

SeedLike = Union[None, int, np.random.SeedSequence, np.random.Generator]


def as_generator(seed: SeedLike) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer, a ``SeedSequence``, or
    an existing ``Generator`` (returned as-is).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def normal_pair_from_uniform(u1: np.ndarray, u2: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Full Box-Muller: two independent normals from two uniforms.

    ``u1`` is uniform on ``[0, 2*pi)`` (the angle) and ``u2`` uniform on
    ``(0, 1]`` (the radius driver), exactly as in paper eqn (18); the
    second output uses the sine branch.
    """
    u1 = np.asarray(u1, dtype=float)
    u2 = np.asarray(u2, dtype=float)
    if np.any(u2 <= 0.0) or np.any(u2 > 1.0):
        raise ValueError("u2 must lie in (0, 1]")
    r = np.sqrt(-2.0 * np.log(u2))
    return r * np.cos(u1), r * np.sin(u1)


def box_muller(u1: np.ndarray, u2: np.ndarray) -> np.ndarray:
    """The cosine-branch Box-Muller transform of paper eqn (18)."""
    return normal_pair_from_uniform(u1, u2)[0]


@dataclass
class Lcg:
    """Minimal linear congruential uniform generator (C-``rand()`` style).

    Implements the ubiquitous ANSI-C parameters
    ``state = (1103515245*state + 12345) mod 2**31`` as printed in the
    reference the paper cites for ``rand(a)``.  Provided for
    recipe-faithful reproduction and for demonstrating *why* the library
    defaults to PCG64: the LCG's low-order bits fail even casual
    independence tests (see tests/test_rng.py).

    Not suitable for production surface generation; use
    :func:`standard_normal_field`.
    """

    state: int = 1

    _A = 1103515245
    _C = 12345
    _M = 2**31

    def rand(self, a: float = 1.0, size: Optional[int] = None) -> Union[float, np.ndarray]:
        """Uniform deviate(s) on ``[0, a]`` — the paper's ``rand(a)``."""
        if size is None:
            self.state = (self._A * self.state + self._C) % self._M
            return a * self.state / (self._M - 1)
        out = np.empty(size, dtype=float)
        s = self.state
        for i in range(size):
            s = (self._A * s + self._C) % self._M
            out[i] = s
        self.state = s
        out *= a / (self._M - 1)
        return out

    def normal(self, size: Optional[int] = None) -> Union[float, np.ndarray]:
        """Standard normal deviate(s) via paper eqn (18).

        ``u2 = 0`` (a possible LCG output) is nudged to the smallest
        positive uniform to keep the log finite.
        """
        n = 1 if size is None else size
        u1 = np.atleast_1d(np.asarray(self.rand(2.0 * np.pi, n)))
        u2 = np.atleast_1d(np.asarray(self.rand(1.0, n)))
        np.clip(u2, 1.0 / self._M, 1.0, out=u2)
        x = box_muller(u1, u2)
        return float(x[0]) if size is None else x


def standard_normal_field(shape: Tuple[int, ...], seed: SeedLike = None) -> np.ndarray:
    """I.i.d. ``N(0,1)`` field of the requested shape (production path).

    Statistically equivalent to looping paper eqn (18); uses numpy's
    ziggurat sampler on PCG64 for speed (guides: vectorise, avoid Python
    loops on grids).
    """
    return as_generator(seed).standard_normal(shape)


class BlockNoise:
    """Deterministic, location-addressable white-noise plane.

    The infinite integer plane is partitioned into ``block x block``
    squares; the noise in the square with block coordinates ``(bx, by)``
    is drawn from a Philox generator keyed by ``(seed, bx, by)``.  Thus:

    * any window of the plane can be materialised independently by any
      process (no noise needs to be shipped between workers);
    * overlapping windows agree exactly on their overlap — the property
      that makes tiled/streamed convolution *bit-identical* to the
      one-shot computation.

    Negative block coordinates are supported (the plane is genuinely
    unbounded), enabling convolution halos that extend left/below the
    origin.

    Parameters
    ----------
    seed:
        Non-negative integer root key.
    block:
        Block edge length in samples (default 256).  Must be positive.
        The choice trades per-block generator setup cost against wasted
        samples at window edges; it does not affect values *within* a
        fixed (seed, block) configuration.

    Notes
    -----
    Philox is counter-based, so keying it per block is sound (streams for
    distinct keys are independent by construction); this mirrors how
    GPU/MPI codes key counter-based RNGs by lattice coordinates.
    """

    def __init__(self, seed: int, block: int = 256):
        if block <= 0:
            raise ValueError(f"block must be positive, got {block}")
        if not isinstance(seed, (int, np.integer)) or seed < 0:
            raise ValueError(f"seed must be a non-negative integer, got {seed!r}")
        self.seed = int(seed)
        self.block = int(block)

    # -- internal ------------------------------------------------------
    def _block_values(self, bx: int, by: int) -> np.ndarray:
        # Zigzag-encode signed block coords into the non-negative key words
        # Philox expects; distinct (bx, by) always map to distinct keys.
        kx = 2 * bx if bx >= 0 else -2 * bx - 1
        ky = 2 * by if by >= 0 else -2 * by - 1
        ss = np.random.SeedSequence(entropy=[self.seed, kx, ky])
        gen = np.random.Generator(np.random.Philox(seed=ss))
        return gen.standard_normal((self.block, self.block))

    # -- public --------------------------------------------------------
    def window(self, x0: int, y0: int, nx: int, ny: int) -> np.ndarray:
        """Materialise the noise window ``[x0, x0+nx) x [y0, y0+ny)``.

        Coordinates are global sample indices and may be negative.
        Returns a C-contiguous ``(nx, ny)`` float array.
        """
        if nx < 0 or ny < 0:
            raise ValueError("window dimensions must be >= 0")
        out = np.empty((nx, ny), dtype=float)
        if nx == 0 or ny == 0:
            return out
        b = self.block
        bx0 = x0 // b
        bx1 = (x0 + nx - 1) // b
        by0 = y0 // b
        by1 = (y0 + ny - 1) // b
        for bx in range(bx0, bx1 + 1):
            gx0 = max(x0, bx * b)
            gx1 = min(x0 + nx, (bx + 1) * b)
            for by in range(by0, by1 + 1):
                gy0 = max(y0, by * b)
                gy1 = min(y0 + ny, (by + 1) * b)
                vals = self._block_values(bx, by)
                out[gx0 - x0 : gx1 - x0, gy0 - y0 : gy1 - y0] = vals[
                    gx0 - bx * b : gx1 - bx * b, gy0 - by * b : gy1 - by * b
                ]
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockNoise(seed={self.seed}, block={self.block})"
