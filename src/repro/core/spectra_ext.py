"""Extended spectral families beyond the paper's three.

The paper motivates its generator with deserts, vegetable fields and
**sea surfaces**, and its reference list leans on ocean-scattering work
(Thorsos' Pierson-Moskowitz study, ref [2]).  This module supplies the
families needed to model those environments properly while reusing the
entire synthesis pipeline unchanged (every class here is a
:class:`~repro.core.spectra.Spectrum`, so kernels, inhomogeneous
layouts, streaming and tiling all work):

* :class:`RotatedSpectrum` — any base spectrum with its anisotropy axes
  rotated by an angle (directional dunes, wind-driven seas);
* :class:`CompositeSpectrum` — superposition of independent components
  (e.g. long swell + short ripple: two-scale ocean surfaces);
* :class:`PiersonMoskowitzSpectrum` — the classical fully-developed
  wind-sea elevation spectrum with cosine-power directional spreading,
  parameterised by wind speed.

Autocorrelations: rotation and composition inherit closed forms from
their parts; Pierson-Moskowitz has no elementary closed-form 2D ACF, so
:meth:`PiersonMoskowitzSpectrum.autocorrelation` evaluates the Fourier
integral numerically (cached quadrature) — exactly what the validation
harness needs and nothing more.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import integrate, special

from .spectra import Spectrum, register_spectrum_loader, spectrum_from_dict

__all__ = [
    "RotatedSpectrum",
    "CompositeSpectrum",
    "PiersonMoskowitzSpectrum",
    "SelfAffineSpectrum",
    "fourier_synthesis",
    "GRAVITY",
]

GRAVITY = 9.81  # m/s^2 — used by the Pierson-Moskowitz parameterisation


class RotatedSpectrum(Spectrum):
    """A base spectrum with its principal axes rotated by ``angle``.

    The height field of the rotated spectrum is the base field observed
    in rotated coordinates: ``W'(K) = W(R^-1 K)`` and
    ``rho'(r) = rho(R^-1 r)`` with ``R`` the rotation by ``angle``
    radians (counter-clockwise, x towards y).

    Note that a *non-zero* rotation of an anisotropic spectrum is no
    longer even in ``Kx`` and ``Ky`` separately — but it remains even
    under ``K -> -K``, which is what the synthesis pipeline actually
    requires; the kernel builder accepts it because the full 2D folding
    (eqn 16 applied to both axes *jointly* through the signed-frequency
    sampling below) preserves realness.  To keep the paper's folded
    sampling valid, :meth:`spectrum` is defined on |K| pairs via the
    symmetrised form ``(W(R^-1 K) + W(R^-1 K*)) / 2`` where ``K*``
    flips the y component — i.e. the even-in-each-axis part of the
    rotated spectrum.  For rotations of 0 or 90 degrees this is exact;
    for intermediate angles it generates the symmetrised texture (the
    even part), which preserves ``h``, both correlation lengths along
    the grid axes, and the blended-axis anisotropy.
    """

    def __init__(self, base: Spectrum, angle: float):
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "angle", float(angle))
        # Spectrum is a frozen dataclass; initialise its fields manually.
        object.__setattr__(self, "h", base.h)
        object.__setattr__(self, "clx", base.clx)
        object.__setattr__(self, "cly", base.cly)
        object.__setattr__(self, "kind", "rotated")

    def _rotate(self, ax: np.ndarray, ay: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        c, s = math.cos(self.angle), math.sin(self.angle)
        return c * ax + s * ay, -s * ax + c * ay

    def spectrum(self, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
        kx = np.asarray(kx, dtype=float)
        ky = np.asarray(ky, dtype=float)
        ux, uy = self._rotate(kx, ky)
        vx, vy = self._rotate(kx, -ky)
        return 0.5 * (self.base.spectrum(ux, uy) + self.base.spectrum(vx, vy))

    def autocorrelation(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        ux, uy = self._rotate(x, y)
        vx, vy = self._rotate(x, -np.asarray(y, dtype=float))
        return 0.5 * (
            self.base.autocorrelation(ux, uy)
            + self.base.autocorrelation(vx, vy)
        )

    def to_dict(self) -> Dict:
        return {
            "kind": "rotated",
            "angle": self.angle,
            "base": self.base.to_dict(),
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RotatedSpectrum)
            and other.angle == self.angle
            and other.base == self.base
        )

    def __hash__(self) -> int:
        return hash(("rotated", self.angle, self.base))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RotatedSpectrum({self.base!r}, angle={self.angle:g})"


class CompositeSpectrum(Spectrum):
    """Superposition of independent spectral components.

    Heights add as independent Gaussian fields, so spectra and
    autocorrelations add and variances add in quadrature:
    ``h^2 = sum_i h_i^2``.  The classical use is a two-scale sea: a long
    swell component plus short wind ripple — surfaces whose scattering
    behaviour neither single family captures.
    """

    def __init__(self, components: Sequence[Spectrum]):
        comps = tuple(components)
        if not comps:
            raise ValueError("CompositeSpectrum needs at least one component")
        object.__setattr__(self, "components", comps)
        h = math.sqrt(sum(c.h**2 for c in comps))
        # effective correlation lengths: variance-weighted (documentation
        # value only; the true ACF is the component sum below)
        wsum = sum(c.h**2 for c in comps) or 1.0
        clx = sum(c.h**2 * c.clx for c in comps) / wsum
        cly = sum(c.h**2 * c.cly for c in comps) / wsum
        object.__setattr__(self, "h", h)
        object.__setattr__(self, "clx", clx)
        object.__setattr__(self, "cly", cly)
        object.__setattr__(self, "kind", "composite")

    def spectrum(self, kx, ky):
        out = self.components[0].spectrum(kx, ky)
        for c in self.components[1:]:
            out = out + c.spectrum(kx, ky)
        return out

    def autocorrelation(self, x, y):
        out = self.components[0].autocorrelation(x, y)
        for c in self.components[1:]:
            out = out + c.autocorrelation(x, y)
        return out

    def to_dict(self) -> Dict:
        return {
            "kind": "composite",
            "components": [c.to_dict() for c in self.components],
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CompositeSpectrum)
            and other.components == self.components
        )

    def __hash__(self) -> int:
        return hash(("composite", self.components))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompositeSpectrum({list(self.components)!r})"


class PiersonMoskowitzSpectrum(Spectrum):
    """Fully-developed wind-sea elevation spectrum (Pierson-Moskowitz).

    The omnidirectional PM elevation spectrum in wavenumber form,

    .. math::

        S(K) = \\frac{\\alpha}{2 K^3}
               \\exp\\big(-\\beta\\, g^2 / (K^2 U^4)\\big),

    with :math:`\\alpha = 8.1\\times10^{-3}`, :math:`\\beta = 0.74`,
    wind speed ``U`` (m/s at 19.5 m), gravity ``g``, distributed over
    direction with an even cosine-power spreading
    :math:`D(\\phi) \\propto \\cos^{2s}(\\phi - \\phi_w)` about the wind
    direction ``phi_w`` (``s = 1`` default), and normalised so that the
    2D integral equals the PM variance
    :math:`h^2 = \\alpha U^4 / (4 \\beta g^2)`.

    This is the spectrum of Thorsos' sea-scattering study the paper
    cites (ref [2]); the nominal correlation lengths exposed as
    ``clx``/``cly`` are the 1/e crossings of the numerically-evaluated
    ACF along the grid axes.

    Parameters
    ----------
    wind_speed:
        ``U`` in m/s (19.5 m reference height).  3-20 m/s is the
        physically sensible range.
    wind_direction:
        ``phi_w`` in radians from the +x axis.  Only 0 or pi/2 keep the
        spectrum even in each axis exactly; other angles are symmetrised
        exactly as in :class:`RotatedSpectrum`.
    spreading:
        Cosine power ``2s`` exponent parameter ``s >= 0`` (0 = isotropic).
    k_cutoff_low:
        Low-wavenumber cutoff as a fraction of the spectral peak
        ``K_p = beta^(1/2)?``; defaults to 0 (no cutoff).  The PM
        spectrum vanishes rapidly below the peak already.
    """

    ALPHA = 8.1e-3
    BETA = 0.74

    def __init__(self, wind_speed: float, wind_direction: float = 0.0,
                 spreading: float = 1.0):
        if not (0.5 <= wind_speed <= 60.0):
            raise ValueError(
                f"wind speed {wind_speed} m/s outside the sensible range"
            )
        if spreading < 0:
            raise ValueError("spreading exponent must be >= 0")
        object.__setattr__(self, "wind_speed", float(wind_speed))
        object.__setattr__(self, "wind_direction", float(wind_direction))
        object.__setattr__(self, "spreading", float(spreading))
        h = math.sqrt(self.ALPHA) * wind_speed**2 / (
            2.0 * math.sqrt(self.BETA) * GRAVITY
        )
        # nominal correlation length ~ 1 / peak wavenumber
        kp = math.sqrt(self.BETA) * GRAVITY / wind_speed**2
        object.__setattr__(self, "h", h)
        object.__setattr__(self, "clx", 1.0 / kp)
        object.__setattr__(self, "cly", 1.0 / kp)
        object.__setattr__(self, "kind", "pierson_moskowitz")
        object.__setattr__(self, "_acf_cache", {})

    # -- directional spreading -------------------------------------------
    def _spread(self, phi: np.ndarray) -> np.ndarray:
        s = self.spreading
        if s == 0.0:
            return np.full_like(phi, 1.0 / (2.0 * np.pi))
        # even cos^{2s} spreading, normalised over [-pi, pi]
        norm = (
            2.0 * np.sqrt(np.pi) * special.gamma(s + 0.5) / special.gamma(s + 1.0)
        )
        c = np.cos(phi - self.wind_direction)
        out = np.where(np.abs(c) > 0, np.abs(c) ** (2.0 * s), 0.0) / norm
        return out

    def spectrum(self, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
        kx = np.asarray(kx, dtype=float)
        ky = np.asarray(ky, dtype=float)
        k = np.hypot(kx, ky)
        phi = np.arctan2(ky, kx)
        u = self.wind_speed
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            radial = (
                0.5 * self.ALPHA / np.maximum(k, 1e-300) ** 3
                * np.exp(-self.BETA * GRAVITY**2 / (
                    np.maximum(k, 1e-300) ** 2 * u**4))
            )
        radial = np.where(k > 0, radial, 0.0)
        # symmetrised spreading (even in each K axis: phi and -phi, and
        # phi mirrored through the Ky axis)
        d = 0.25 * (
            self._spread(phi) + self._spread(-phi)
            + self._spread(np.pi - phi) + self._spread(phi - np.pi)
        )
        # W(K) such that iint W dK = h^2: radial part integrates over
        # K dK dphi, so divide by K to express in Cartesian measure
        return radial / np.maximum(k, 1e-300) * d * np.where(k > 0, 1.0, 0.0)

    def autocorrelation(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Numerically evaluated Fourier integral of :meth:`spectrum`.

        Cached per lag; intended for validation at a modest number of
        lags, not for dense maps (use ``weight_autocorrelation`` on a
        grid for that).
        """
        x_arr = np.asarray(x, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        shape = np.broadcast(x_arr, y_arr).shape
        xs = np.broadcast_to(x_arr, shape).ravel()
        ys = np.broadcast_to(y_arr, shape).ravel()
        out = np.empty(xs.shape)
        kp = math.sqrt(self.BETA) * GRAVITY / self.wind_speed**2
        k_hi = 80.0 * kp
        for i, (xi, yi) in enumerate(zip(xs, ys)):
            key = (round(float(xi), 9), round(float(yi), 9))
            if key not in self._acf_cache:
                def integrand(k, phi, xi=xi, yi=yi):
                    kx = k * np.cos(phi)
                    ky = k * np.sin(phi)
                    return (
                        self.spectrum(kx, ky) * k * np.cos(kx * xi + ky * yi)
                    )
                val, _ = integrate.dblquad(
                    integrand, 0.0, np.pi, 1e-3 * kp, k_hi,
                    epsabs=1e-10, epsrel=1e-7,
                )
                # spectrum is even under K -> -K: double the half-plane
                self._acf_cache[key] = 2.0 * val
            out[i] = self._acf_cache[key]
        result = out.reshape(shape)
        return result if shape else float(result)

    def to_dict(self) -> Dict:
        return {
            "kind": "pierson_moskowitz",
            "wind_speed": self.wind_speed,
            "wind_direction": self.wind_direction,
            "spreading": self.spreading,
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PiersonMoskowitzSpectrum)
            and other.wind_speed == self.wind_speed
            and other.wind_direction == self.wind_direction
            and other.spreading == self.spreading
        )

    def __hash__(self) -> int:
        return hash(("pm", self.wind_speed, self.wind_direction,
                      self.spreading))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PiersonMoskowitzSpectrum(U={self.wind_speed:g} m/s, "
            f"dir={self.wind_direction:g}, s={self.spreading:g})"
        )


class SelfAffineSpectrum(Spectrum):
    """Isotropic self-affine (fractal) roughness spectrum with roll-off.

    The standard description of machined, fractured and deposited
    surfaces (and the spec implemented by the ``artificial_surf.m``
    exemplar): a power-law PSD governed by the Hurst exponent ``H``
    (fractal dimension ``D = 3 - H``), optionally flattened into a
    roll-off plateau below the roll-off wavevector ``qr``,

    .. math::

        W(q) = C \\Big(\\frac{\\max(q, q_r)}{q_r}\\Big)^{-2-2H},
        \\qquad
        C = \\frac{\\sigma^2 H}{\\pi\\, q_r^2\\, (1 + H)},

    normalised so that :math:`\\iint W\\, d\\mathbf K = \\sigma^2` — the
    plateau is what makes the total variance finite, exactly as in the
    exemplar.  Without a roll-off (``qr=None``) the surface has no
    outer scale and infinite total variance; we then adopt the
    convention :math:`W(q) = (\\sigma^2 H / \\pi)\\, q^{-2-2H}` (with
    ``W(0) = 0``), i.e. ``sigma`` is the rms roughness carried by
    wavevectors above ``q = 1``; the realised rms on any grid depends
    on the resolved band, and :meth:`autocorrelation` is undefined
    (it raises).

    The autocorrelation for ``qr`` set is the exact isotropic Hankel
    transform

    .. math::

        \\rho(r) = 2\\pi C \\Big[ \\frac{q_r J_1(q_r r)}{r}
            + q_r^2 (q_r r)^{2H} G(q_r r) \\Big],
        \\qquad G(a) = \\int_a^\\infty u^{-1-2H} J_0(u)\\, du,

    evaluated through a dense cached quadrature table for ``G`` (the
    plateau term is closed-form).  ``rho(0) = sigma**2`` holds exactly.

    Parameters
    ----------
    sigma:
        RMS roughness (the base-class ``h``).
    hurst:
        Hurst exponent ``H`` in ``(0, 1]``.  Small ``H`` means rough at
        every scale (slowly decaying PSD tail).
    qr:
        Roll-off wavevector (rad per unit length), or ``None`` for no
        plateau.  ``2*pi/qr`` is the roll-off wavelength; the nominal
        correlation length exposed as ``clx``/``cly`` is ``1/qr``.
    """

    def __init__(self, sigma: float, hurst: float, qr: float | None = None):
        if not np.isfinite(sigma) or sigma < 0:
            raise ValueError(f"sigma must be finite and >= 0, got {sigma}")
        if not np.isfinite(hurst) or not (0.0 < hurst <= 1.0):
            raise ValueError(
                f"Hurst exponent must lie in (0, 1], got {hurst}"
            )
        if qr is not None and (not np.isfinite(qr) or qr <= 0):
            raise ValueError(f"roll-off wavevector qr must be > 0, got {qr}")
        object.__setattr__(self, "sigma", float(sigma))
        object.__setattr__(self, "hurst", float(hurst))
        object.__setattr__(self, "qr", None if qr is None else float(qr))
        object.__setattr__(self, "h", float(sigma))
        nominal_cl = 1.0 if qr is None else 1.0 / float(qr)
        object.__setattr__(self, "clx", nominal_cl)
        object.__setattr__(self, "cly", nominal_cl)
        object.__setattr__(self, "kind", "self_affine")
        object.__setattr__(self, "_tail_cache", {})

    # -- PSD ------------------------------------------------------------
    def _amplitude(self) -> float:
        """The plateau level ``C`` (or the ``q=1`` level when no roll-off)."""
        s2, hu = self.sigma**2, self.hurst
        if self.qr is None:
            return s2 * hu / math.pi
        return s2 * hu / (math.pi * self.qr**2 * (1.0 + hu))

    def spectrum(self, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
        kx = np.asarray(kx, dtype=float)
        ky = np.asarray(ky, dtype=float)
        q = np.hypot(kx, ky)
        c = self._amplitude()
        exponent = -2.0 - 2.0 * self.hurst
        if self.qr is not None:
            return c * (np.maximum(q, self.qr) / self.qr) ** exponent
        with np.errstate(divide="ignore"):
            out = c * q**exponent
        return np.where(q > 0, out, 0.0)

    # -- ACF ------------------------------------------------------------
    #: quadrature extent of the cached tail table G(a); beyond it the
    #: first asymptotic term of J0 closes the integral analytically.
    _U_MAX = 6000.0

    def _tail_table(self):
        """Dense table of ``G(a) = int_a^inf u^(-1-2H) J0(u) du``.

        Built once per instance: log-spaced nodes resolve the
        ``u^(-2H)`` singularity below 1 (tabulating the *smooth
        remainder* ``G - a^(-2H)/(2H)`` there so interpolation stays
        accurate), linear phase-resolving nodes handle the oscillatory
        stretch up to ``_U_MAX``.
        """
        cached = self._tail_cache.get("table")
        if cached is not None:
            return cached
        hu = self.hurst
        u_lo = np.geomspace(1e-8, 1.0, 4001)
        u_hi = np.arange(1.0, self._U_MAX + 0.02, 0.02)
        u = np.concatenate([u_lo[:-1], u_hi])
        f = u ** (-1.0 - 2.0 * hu) * special.j0(u)
        # trapezoid segments, accumulated from the top down
        seg = 0.5 * (f[1:] + f[:-1]) * np.diff(u)
        tail = -math.sqrt(2.0 / math.pi) * self._U_MAX ** (
            -1.5 - 2.0 * hu
        ) * math.sin(self._U_MAX - 0.25 * math.pi)
        g = np.concatenate([
            (tail + np.cumsum(seg[::-1]))[::-1], [tail],
        ])
        # smooth remainder below u = 1 for singularity-free interpolation
        n_lo = u_lo.size - 1
        r_lo = g[: n_lo + 1] - u[: n_lo + 1] ** (-2.0 * hu) / (2.0 * hu)
        table = (u, g, n_lo, r_lo)
        self._tail_cache["table"] = table
        return table

    def _tail_integral(self, a: np.ndarray) -> np.ndarray:
        """``G(a)`` for ``a > 0`` (vectorised, table-interpolated)."""
        u, g, n_lo, r_lo = self._tail_table()
        hu = self.hurst
        a = np.asarray(a, dtype=float)
        out = np.empty(a.shape)
        sing = a ** (-2.0 * hu) / (2.0 * hu)
        below = a < 1.0
        # below 1: exact singular part + interpolated smooth remainder
        # (np.interp clamps, so a < 1e-8 reuses the leftmost remainder —
        # exact to O(a^(2-2H)) since J0 -> 1 there)
        out[below] = sing[below] + np.interp(a[below], u[: n_lo + 1], r_lo)
        high = ~below
        out[high] = np.interp(a[high], u[n_lo:], g[n_lo:])
        beyond = a >= self._U_MAX
        if np.any(beyond):
            ab = a[beyond]
            out[beyond] = -math.sqrt(2.0 / math.pi) * ab ** (
                -1.5 - 2.0 * hu
            ) * np.sin(ab - 0.25 * math.pi)
        return out

    def autocorrelation(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        if self.qr is None:
            raise ValueError(
                "a self-affine spectrum without a roll-off (qr=None) has "
                "infinite variance: the autocorrelation is undefined; set "
                "qr to give the surface an outer scale"
            )
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        r = np.hypot(x, y)
        shape = r.shape
        r = np.atleast_1d(r)
        qr, hu = self.qr, self.hurst
        a = qr * r
        small = a < 1e-9
        safe_r = np.where(small, 1.0, r)
        # plateau term: int_0^qr J0(q r) q dq = qr J1(qr r) / r
        plateau = np.where(
            small, 0.5 * qr**2, qr * special.j1(a) / safe_r
        )
        # power-law tail via the substitution u = q r
        tail = np.empty_like(a)
        tail[small] = qr**2 / (2.0 * hu)
        ns = ~small
        tail[ns] = qr**2 * a[ns] ** (2.0 * hu) * self._tail_integral(a[ns])
        rho = 2.0 * math.pi * self._amplitude() * (plateau + tail)
        rho = rho.reshape(shape)
        return rho if shape else float(rho)

    # -- plumbing --------------------------------------------------------
    def with_params(self, **kwargs) -> "SelfAffineSpectrum":
        """Copy with parameters replaced; ``h`` aliases ``sigma``.

        Supporting ``with_params(h=1.0)`` lets ``resolve_kernel`` give
        self-affine kernels a unit-amplitude plan-cache identity, so
        spectra differing only in ``sigma`` share one FFT plan exactly
        like the paper families share across ``h``.
        """
        params = {"sigma": self.sigma, "hurst": self.hurst, "qr": self.qr}
        if "h" in kwargs:
            params["sigma"] = kwargs.pop("h")
        unknown = set(kwargs) - set(params)
        if unknown:
            raise TypeError(
                f"unknown self-affine parameters {sorted(unknown)}"
            )
        params.update(kwargs)
        return SelfAffineSpectrum(**params)

    def to_dict(self) -> Dict:
        return {
            "kind": "self_affine",
            "sigma": self.sigma,
            "hurst": self.hurst,
            "qr": self.qr,
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, SelfAffineSpectrum)
            and other.sigma == self.sigma
            and other.hurst == self.hurst
            and other.qr == self.qr
        )

    def __hash__(self) -> int:
        return hash(("self_affine", self.sigma, self.hurst, self.qr))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SelfAffineSpectrum(sigma={self.sigma:g}, "
            f"hurst={self.hurst:g}, qr={self.qr!r})"
        )


# ---------------------------------------------------------------------------
# Fourier-coefficient-statistics synthesis (de Castro et al.)
# ---------------------------------------------------------------------------
def fourier_synthesis(
    spectrum: Spectrum,
    grid,
    seed=None,
    *,
    amplitude: str = "gaussian",
    phase: str = "random",
    zero_mean: bool = True,
) -> np.ndarray:
    """Direct spectral synthesis with switchable coefficient statistics.

    de Castro et al. study how the *statistics of the Fourier
    coefficients* — not just their mean power — shape fractional
    Brownian surfaces.  This implements both canonical choices on any
    :class:`~repro.core.spectra.Spectrum` (the ``artificial_surf.m``
    exemplar is the ``amplitude="deterministic"`` case):

    ``amplitude="gaussian"``
        Complex-Gaussian coefficients (Rayleigh amplitudes, uniform
        phases) — statistically identical to the convolution/DFT
        method; every realisation's periodogram scatters exponentially
        about the target.
    ``amplitude="deterministic"``
        Coefficient magnitudes pinned to ``sqrt(w)`` exactly; only the
        phases are random.  Every realisation then has *exactly* the
        target discrete power spectrum (and, with ``zero_mean``, mean
        square exactly ``sum(w) - w[0,0]``).

    ``phase`` is ``"random"`` (uniform, from the phases of a seeded
    white-noise DFT so Hermitian symmetry is automatic) or ``"zero"``
    (deterministic all-zero phases; only valid with deterministic
    amplitudes — it yields the centred kernel-like surface).

    Returns the ``grid.shape`` float64 height field.
    """
    from .weights import weight_array

    if amplitude not in ("gaussian", "deterministic"):
        raise ValueError(
            f"amplitude must be 'gaussian' or 'deterministic', got "
            f"{amplitude!r}"
        )
    if phase not in ("random", "zero"):
        raise ValueError(f"phase must be 'random' or 'zero', got {phase!r}")
    if amplitude == "gaussian" and phase == "zero":
        raise ValueError(
            "gaussian coefficient amplitudes imply random phases; use "
            "amplitude='deterministic' with phase='zero'"
        )
    w = weight_array(spectrum, grid)
    if zero_mean:
        w = w.copy()
        w[0, 0] = 0.0
    root_w = np.sqrt(w)
    n_total = grid.size
    if phase == "zero":
        coef = n_total * root_w.astype(complex)
    else:
        noise = np.random.default_rng(seed).standard_normal(grid.shape)
        big_f = np.fft.fft2(noise)
        if amplitude == "gaussian":
            coef = math.sqrt(n_total) * big_f * root_w
        else:
            mag = np.abs(big_f)
            unit = np.where(mag > 0, big_f / np.where(mag > 0, mag, 1.0), 1.0)
            coef = n_total * unit * root_w
    return np.fft.ifft2(coef).real


# ---------------------------------------------------------------------------
# Serialisation loaders
# ---------------------------------------------------------------------------
def _load_rotated(spec: Dict) -> RotatedSpectrum:
    return RotatedSpectrum(
        base=spectrum_from_dict(spec["base"]), angle=spec["angle"]
    )


def _load_composite(spec: Dict) -> CompositeSpectrum:
    return CompositeSpectrum(
        [spectrum_from_dict(c) for c in spec["components"]]
    )


def _load_pm(spec: Dict) -> PiersonMoskowitzSpectrum:
    return PiersonMoskowitzSpectrum(
        wind_speed=spec["wind_speed"],
        wind_direction=spec.get("wind_direction", 0.0),
        spreading=spec.get("spreading", 1.0),
    )


def _load_self_affine(spec: Dict) -> SelfAffineSpectrum:
    return SelfAffineSpectrum(
        sigma=spec["sigma"], hurst=spec["hurst"], qr=spec.get("qr"),
    )


register_spectrum_loader("rotated", _load_rotated)
register_spectrum_loader("composite", _load_composite)
register_spectrum_loader("pierson_moskowitz", _load_pm)
register_spectrum_loader("self_affine", _load_self_affine)
