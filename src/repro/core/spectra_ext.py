"""Extended spectral families beyond the paper's three.

The paper motivates its generator with deserts, vegetable fields and
**sea surfaces**, and its reference list leans on ocean-scattering work
(Thorsos' Pierson-Moskowitz study, ref [2]).  This module supplies the
families needed to model those environments properly while reusing the
entire synthesis pipeline unchanged (every class here is a
:class:`~repro.core.spectra.Spectrum`, so kernels, inhomogeneous
layouts, streaming and tiling all work):

* :class:`RotatedSpectrum` — any base spectrum with its anisotropy axes
  rotated by an angle (directional dunes, wind-driven seas);
* :class:`CompositeSpectrum` — superposition of independent components
  (e.g. long swell + short ripple: two-scale ocean surfaces);
* :class:`PiersonMoskowitzSpectrum` — the classical fully-developed
  wind-sea elevation spectrum with cosine-power directional spreading,
  parameterised by wind speed.

Autocorrelations: rotation and composition inherit closed forms from
their parts; Pierson-Moskowitz has no elementary closed-form 2D ACF, so
:meth:`PiersonMoskowitzSpectrum.autocorrelation` evaluates the Fourier
integral numerically (cached quadrature) — exactly what the validation
harness needs and nothing more.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import integrate, special

from .spectra import Spectrum, register_spectrum_loader, spectrum_from_dict

__all__ = [
    "RotatedSpectrum",
    "CompositeSpectrum",
    "PiersonMoskowitzSpectrum",
    "GRAVITY",
]

GRAVITY = 9.81  # m/s^2 — used by the Pierson-Moskowitz parameterisation


class RotatedSpectrum(Spectrum):
    """A base spectrum with its principal axes rotated by ``angle``.

    The height field of the rotated spectrum is the base field observed
    in rotated coordinates: ``W'(K) = W(R^-1 K)`` and
    ``rho'(r) = rho(R^-1 r)`` with ``R`` the rotation by ``angle``
    radians (counter-clockwise, x towards y).

    Note that a *non-zero* rotation of an anisotropic spectrum is no
    longer even in ``Kx`` and ``Ky`` separately — but it remains even
    under ``K -> -K``, which is what the synthesis pipeline actually
    requires; the kernel builder accepts it because the full 2D folding
    (eqn 16 applied to both axes *jointly* through the signed-frequency
    sampling below) preserves realness.  To keep the paper's folded
    sampling valid, :meth:`spectrum` is defined on |K| pairs via the
    symmetrised form ``(W(R^-1 K) + W(R^-1 K*)) / 2`` where ``K*``
    flips the y component — i.e. the even-in-each-axis part of the
    rotated spectrum.  For rotations of 0 or 90 degrees this is exact;
    for intermediate angles it generates the symmetrised texture (the
    even part), which preserves ``h``, both correlation lengths along
    the grid axes, and the blended-axis anisotropy.
    """

    def __init__(self, base: Spectrum, angle: float):
        object.__setattr__(self, "base", base)
        object.__setattr__(self, "angle", float(angle))
        # Spectrum is a frozen dataclass; initialise its fields manually.
        object.__setattr__(self, "h", base.h)
        object.__setattr__(self, "clx", base.clx)
        object.__setattr__(self, "cly", base.cly)
        object.__setattr__(self, "kind", "rotated")

    def _rotate(self, ax: np.ndarray, ay: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        c, s = math.cos(self.angle), math.sin(self.angle)
        return c * ax + s * ay, -s * ax + c * ay

    def spectrum(self, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
        kx = np.asarray(kx, dtype=float)
        ky = np.asarray(ky, dtype=float)
        ux, uy = self._rotate(kx, ky)
        vx, vy = self._rotate(kx, -ky)
        return 0.5 * (self.base.spectrum(ux, uy) + self.base.spectrum(vx, vy))

    def autocorrelation(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        ux, uy = self._rotate(x, y)
        vx, vy = self._rotate(x, -np.asarray(y, dtype=float))
        return 0.5 * (
            self.base.autocorrelation(ux, uy)
            + self.base.autocorrelation(vx, vy)
        )

    def to_dict(self) -> Dict:
        return {
            "kind": "rotated",
            "angle": self.angle,
            "base": self.base.to_dict(),
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RotatedSpectrum)
            and other.angle == self.angle
            and other.base == self.base
        )

    def __hash__(self) -> int:
        return hash(("rotated", self.angle, self.base))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RotatedSpectrum({self.base!r}, angle={self.angle:g})"


class CompositeSpectrum(Spectrum):
    """Superposition of independent spectral components.

    Heights add as independent Gaussian fields, so spectra and
    autocorrelations add and variances add in quadrature:
    ``h^2 = sum_i h_i^2``.  The classical use is a two-scale sea: a long
    swell component plus short wind ripple — surfaces whose scattering
    behaviour neither single family captures.
    """

    def __init__(self, components: Sequence[Spectrum]):
        comps = tuple(components)
        if not comps:
            raise ValueError("CompositeSpectrum needs at least one component")
        object.__setattr__(self, "components", comps)
        h = math.sqrt(sum(c.h**2 for c in comps))
        # effective correlation lengths: variance-weighted (documentation
        # value only; the true ACF is the component sum below)
        wsum = sum(c.h**2 for c in comps) or 1.0
        clx = sum(c.h**2 * c.clx for c in comps) / wsum
        cly = sum(c.h**2 * c.cly for c in comps) / wsum
        object.__setattr__(self, "h", h)
        object.__setattr__(self, "clx", clx)
        object.__setattr__(self, "cly", cly)
        object.__setattr__(self, "kind", "composite")

    def spectrum(self, kx, ky):
        out = self.components[0].spectrum(kx, ky)
        for c in self.components[1:]:
            out = out + c.spectrum(kx, ky)
        return out

    def autocorrelation(self, x, y):
        out = self.components[0].autocorrelation(x, y)
        for c in self.components[1:]:
            out = out + c.autocorrelation(x, y)
        return out

    def to_dict(self) -> Dict:
        return {
            "kind": "composite",
            "components": [c.to_dict() for c in self.components],
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, CompositeSpectrum)
            and other.components == self.components
        )

    def __hash__(self) -> int:
        return hash(("composite", self.components))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompositeSpectrum({list(self.components)!r})"


class PiersonMoskowitzSpectrum(Spectrum):
    """Fully-developed wind-sea elevation spectrum (Pierson-Moskowitz).

    The omnidirectional PM elevation spectrum in wavenumber form,

    .. math::

        S(K) = \\frac{\\alpha}{2 K^3}
               \\exp\\big(-\\beta\\, g^2 / (K^2 U^4)\\big),

    with :math:`\\alpha = 8.1\\times10^{-3}`, :math:`\\beta = 0.74`,
    wind speed ``U`` (m/s at 19.5 m), gravity ``g``, distributed over
    direction with an even cosine-power spreading
    :math:`D(\\phi) \\propto \\cos^{2s}(\\phi - \\phi_w)` about the wind
    direction ``phi_w`` (``s = 1`` default), and normalised so that the
    2D integral equals the PM variance
    :math:`h^2 = \\alpha U^4 / (4 \\beta g^2)`.

    This is the spectrum of Thorsos' sea-scattering study the paper
    cites (ref [2]); the nominal correlation lengths exposed as
    ``clx``/``cly`` are the 1/e crossings of the numerically-evaluated
    ACF along the grid axes.

    Parameters
    ----------
    wind_speed:
        ``U`` in m/s (19.5 m reference height).  3-20 m/s is the
        physically sensible range.
    wind_direction:
        ``phi_w`` in radians from the +x axis.  Only 0 or pi/2 keep the
        spectrum even in each axis exactly; other angles are symmetrised
        exactly as in :class:`RotatedSpectrum`.
    spreading:
        Cosine power ``2s`` exponent parameter ``s >= 0`` (0 = isotropic).
    k_cutoff_low:
        Low-wavenumber cutoff as a fraction of the spectral peak
        ``K_p = beta^(1/2)?``; defaults to 0 (no cutoff).  The PM
        spectrum vanishes rapidly below the peak already.
    """

    ALPHA = 8.1e-3
    BETA = 0.74

    def __init__(self, wind_speed: float, wind_direction: float = 0.0,
                 spreading: float = 1.0):
        if not (0.5 <= wind_speed <= 60.0):
            raise ValueError(
                f"wind speed {wind_speed} m/s outside the sensible range"
            )
        if spreading < 0:
            raise ValueError("spreading exponent must be >= 0")
        object.__setattr__(self, "wind_speed", float(wind_speed))
        object.__setattr__(self, "wind_direction", float(wind_direction))
        object.__setattr__(self, "spreading", float(spreading))
        h = math.sqrt(self.ALPHA) * wind_speed**2 / (
            2.0 * math.sqrt(self.BETA) * GRAVITY
        )
        # nominal correlation length ~ 1 / peak wavenumber
        kp = math.sqrt(self.BETA) * GRAVITY / wind_speed**2
        object.__setattr__(self, "h", h)
        object.__setattr__(self, "clx", 1.0 / kp)
        object.__setattr__(self, "cly", 1.0 / kp)
        object.__setattr__(self, "kind", "pierson_moskowitz")
        object.__setattr__(self, "_acf_cache", {})

    # -- directional spreading -------------------------------------------
    def _spread(self, phi: np.ndarray) -> np.ndarray:
        s = self.spreading
        if s == 0.0:
            return np.full_like(phi, 1.0 / (2.0 * np.pi))
        # even cos^{2s} spreading, normalised over [-pi, pi]
        norm = (
            2.0 * np.sqrt(np.pi) * special.gamma(s + 0.5) / special.gamma(s + 1.0)
        )
        c = np.cos(phi - self.wind_direction)
        out = np.where(np.abs(c) > 0, np.abs(c) ** (2.0 * s), 0.0) / norm
        return out

    def spectrum(self, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
        kx = np.asarray(kx, dtype=float)
        ky = np.asarray(ky, dtype=float)
        k = np.hypot(kx, ky)
        phi = np.arctan2(ky, kx)
        u = self.wind_speed
        with np.errstate(divide="ignore", over="ignore", invalid="ignore"):
            radial = (
                0.5 * self.ALPHA / np.maximum(k, 1e-300) ** 3
                * np.exp(-self.BETA * GRAVITY**2 / (
                    np.maximum(k, 1e-300) ** 2 * u**4))
            )
        radial = np.where(k > 0, radial, 0.0)
        # symmetrised spreading (even in each K axis: phi and -phi, and
        # phi mirrored through the Ky axis)
        d = 0.25 * (
            self._spread(phi) + self._spread(-phi)
            + self._spread(np.pi - phi) + self._spread(phi - np.pi)
        )
        # W(K) such that iint W dK = h^2: radial part integrates over
        # K dK dphi, so divide by K to express in Cartesian measure
        return radial / np.maximum(k, 1e-300) * d * np.where(k > 0, 1.0, 0.0)

    def autocorrelation(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Numerically evaluated Fourier integral of :meth:`spectrum`.

        Cached per lag; intended for validation at a modest number of
        lags, not for dense maps (use ``weight_autocorrelation`` on a
        grid for that).
        """
        x_arr = np.asarray(x, dtype=float)
        y_arr = np.asarray(y, dtype=float)
        shape = np.broadcast(x_arr, y_arr).shape
        xs = np.broadcast_to(x_arr, shape).ravel()
        ys = np.broadcast_to(y_arr, shape).ravel()
        out = np.empty(xs.shape)
        kp = math.sqrt(self.BETA) * GRAVITY / self.wind_speed**2
        k_hi = 80.0 * kp
        for i, (xi, yi) in enumerate(zip(xs, ys)):
            key = (round(float(xi), 9), round(float(yi), 9))
            if key not in self._acf_cache:
                def integrand(k, phi, xi=xi, yi=yi):
                    kx = k * np.cos(phi)
                    ky = k * np.sin(phi)
                    return (
                        self.spectrum(kx, ky) * k * np.cos(kx * xi + ky * yi)
                    )
                val, _ = integrate.dblquad(
                    integrand, 0.0, np.pi, 1e-3 * kp, k_hi,
                    epsabs=1e-10, epsrel=1e-7,
                )
                # spectrum is even under K -> -K: double the half-plane
                self._acf_cache[key] = 2.0 * val
            out[i] = self._acf_cache[key]
        result = out.reshape(shape)
        return result if shape else float(result)

    def to_dict(self) -> Dict:
        return {
            "kind": "pierson_moskowitz",
            "wind_speed": self.wind_speed,
            "wind_direction": self.wind_direction,
            "spreading": self.spreading,
        }

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, PiersonMoskowitzSpectrum)
            and other.wind_speed == self.wind_speed
            and other.wind_direction == self.wind_direction
            and other.spreading == self.spreading
        )

    def __hash__(self) -> int:
        return hash(("pm", self.wind_speed, self.wind_direction,
                      self.spreading))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PiersonMoskowitzSpectrum(U={self.wind_speed:g} m/s, "
            f"dir={self.wind_direction:g}, s={self.spreading:g})"
        )


# ---------------------------------------------------------------------------
# Serialisation loaders
# ---------------------------------------------------------------------------
def _load_rotated(spec: Dict) -> RotatedSpectrum:
    return RotatedSpectrum(
        base=spectrum_from_dict(spec["base"]), angle=spec["angle"]
    )


def _load_composite(spec: Dict) -> CompositeSpectrum:
    return CompositeSpectrum(
        [spectrum_from_dict(c) for c in spec["components"]]
    )


def _load_pm(spec: Dict) -> PiersonMoskowitzSpectrum:
    return PiersonMoskowitzSpectrum(
        wind_speed=spec["wind_speed"],
        wind_direction=spec.get("wind_direction", 0.0),
        spreading=spec.get("spreading", 1.0),
    )


register_spectrum_loader("rotated", _load_rotated)
register_spectrum_loader("composite", _load_composite)
register_spectrum_loader("pierson_moskowitz", _load_pm)
