"""Surface container: heights + grid + provenance.

Everything user-facing in the library produces or consumes a
:class:`Surface`: a real 2D height field bound to the :class:`Grid2D`
it was sampled on, together with a provenance dictionary recording how it
was generated (spectrum family and parameters, method, seed, truncation)
so that results are auditable and serialisable
(:mod:`repro.io.npzio`).

Convenience accessors expose the global statistics the paper
parameterises surfaces by (``h`` via :meth:`Surface.height_std`) plus the
standard roughness descriptors (RMS slope, skewness, kurtosis) used in
the scattering literature the paper builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .grid import Grid2D

__all__ = ["Surface"]


@dataclass
class Surface:
    """A sampled rough surface.

    Parameters
    ----------
    heights:
        Real ``(nx, ny)`` array of surface heights; axis 0 is x.
    grid:
        The sampling grid (physical lengths and spacings).
    origin:
        Physical coordinates of sample ``(0, 0)``; nonzero for windows cut
        from a larger/streamed surface.
    provenance:
        Free-form generation metadata (JSON-serialisable).
    """

    heights: np.ndarray
    grid: Grid2D
    origin: Tuple[float, float] = (0.0, 0.0)
    provenance: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        h = self.heights
        if isinstance(h, np.memmap) and h.dtype == np.float64:
            # Out-of-core heights (repro.io.store / mmap_mode loads):
            # keep the memmap and skip the eager finite scan — paging a
            # larger-than-RAM file through RAM here would defeat the
            # point of the disk-backed sink.  Statistics accessors
            # still work; they fault pages in as touched.
            if h.ndim != 2:
                raise ValueError(f"heights must be 2D, got ndim={h.ndim}")
            if h.shape != self.grid.shape:
                raise ValueError(
                    f"heights shape {h.shape} does not match grid shape "
                    f"{self.grid.shape}"
                )
            return
        h = np.asarray(h)
        if h.dtype != np.float32:
            # float32 is the engine's opt-in precision and is preserved;
            # every other input (lists, ints, float16...) normalises to
            # the historical float64.
            h = np.asarray(h, dtype=float)
        if h.ndim != 2:
            raise ValueError(f"heights must be 2D, got ndim={h.ndim}")
        if h.shape != self.grid.shape:
            raise ValueError(
                f"heights shape {h.shape} does not match grid shape {self.grid.shape}"
            )
        if not np.all(np.isfinite(h)):
            raise ValueError("heights contain non-finite values")
        self.heights = h

    # ------------------------------------------------------------------
    # Basic geometry
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return self.heights.shape

    @property
    def x(self) -> np.ndarray:
        """Physical x coordinates of the samples (includes origin)."""
        return self.grid.x + self.origin[0]

    @property
    def y(self) -> np.ndarray:
        """Physical y coordinates of the samples (includes origin)."""
        return self.grid.y + self.origin[1]

    # ------------------------------------------------------------------
    # Statistics (global; for spatially-resolved maps see repro.stats.local)
    # ------------------------------------------------------------------
    def height_mean(self) -> float:
        """Sample mean of the heights (zero in expectation)."""
        return float(self.heights.mean())

    def height_std(self, ddof: int = 0) -> float:
        """Sample standard deviation — the estimator of the parameter ``h``."""
        return float(self.heights.std(ddof=ddof))

    def height_range(self) -> Tuple[float, float]:
        """(min, max) heights."""
        return (float(self.heights.min()), float(self.heights.max()))

    def rms_slope(self) -> Tuple[float, float]:
        """RMS of the centred finite-difference slopes ``(s_x, s_y)``."""
        gx, gy = np.gradient(self.heights, self.grid.dx, self.grid.dy)
        return (float(np.sqrt(np.mean(gx * gx))), float(np.sqrt(np.mean(gy * gy))))

    def skewness(self) -> float:
        """Sample skewness of the height distribution (0 for Gaussian)."""
        h = self.heights - self.heights.mean()
        s = h.std()
        if s == 0:
            return 0.0
        return float(np.mean(h**3) / s**3)

    def kurtosis_excess(self) -> float:
        """Excess kurtosis of the height distribution (0 for Gaussian)."""
        h = self.heights - self.heights.mean()
        s = h.std()
        if s == 0:
            return 0.0
        return float(np.mean(h**4) / s**4 - 3.0)

    def summary(self) -> Dict[str, float]:
        """Scalar statistics bundle (used by the CLI and benches)."""
        sx, sy = self.rms_slope()
        lo, hi = self.height_range()
        return {
            "mean": self.height_mean(),
            "std": self.height_std(),
            "min": lo,
            "max": hi,
            "rms_slope_x": sx,
            "rms_slope_y": sy,
            "skewness": self.skewness(),
            "kurtosis_excess": self.kurtosis_excess(),
        }

    # ------------------------------------------------------------------
    # Slicing / assembly
    # ------------------------------------------------------------------
    def window(self, x_slice: slice, y_slice: slice) -> "Surface":
        """Cut a sub-surface (view copied; origin adjusted)."""
        sub = self.heights[x_slice, y_slice]
        if sub.size == 0:
            raise ValueError("empty window")
        xs = range(self.shape[0])[x_slice]
        ys = range(self.shape[1])[y_slice]
        if (x_slice.step or 1) != 1 or (y_slice.step or 1) != 1:
            raise ValueError("window slices must have unit step")
        new_grid = self.grid.with_shape(len(xs), len(ys))
        new_origin = (
            self.origin[0] + xs[0] * self.grid.dx,
            self.origin[1] + ys[0] * self.grid.dy,
        )
        return Surface(
            heights=sub.copy(),
            grid=new_grid,
            origin=new_origin,
            provenance={**self.provenance, "window_of": self.provenance.get("id")},
        )

    def profile_x(self, iy: int) -> np.ndarray:
        """1D profile along x at row index ``iy`` (for propagation studies)."""
        return self.heights[:, iy].copy()

    def profile_y(self, ix: int) -> np.ndarray:
        """1D profile along y at column index ``ix``."""
        return self.heights[ix, :].copy()

    def demean(self) -> "Surface":
        """A copy with the sample mean removed."""
        return Surface(
            heights=self.heights - self.heights.mean(),
            grid=self.grid,
            origin=self.origin,
            provenance=dict(self.provenance),
        )

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Surface(shape={self.shape}, dx={self.grid.dx:g}, dy={self.grid.dy:g}, "
            f"std={self.height_std():.4g})"
        )
