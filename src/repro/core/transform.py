"""Non-Gaussian marginal transforms (Gaussian anamorphosis).

The paper's surfaces are Gaussian by construction (eqn 18 onward), but
real terrains are often skewed: dunes have flat troughs and sharp
crests, eroded terrain is positively skewed, sea surfaces weakly so.
The standard geostatistical remedy keeps the spectral machinery intact
and *transforms the marginal afterwards*: if ``f`` is a unit-variance
Gaussian field, then ``t(f)`` has marginal distribution ``Q(Phi(f))``
for a target quantile function ``Q`` (``Phi`` = standard normal CDF).

Caveat (stated prominently because it is the classical trap): a
monotone marginal transform *changes the autocorrelation*.  For target
correlation ``rho_f`` of the Gaussian input, the output correlation is
the Hermite-expansion image of ``rho_f`` — always closer to zero, with
equality only for affine transforms.  :func:`correlation_distortion`
quantifies the effect empirically so users can see what they traded.

Provided targets: lognormal, Weibull, uniform, and a generic
user-supplied quantile function.
"""

from __future__ import annotations

import math
from typing import Callable, Optional

import numpy as np
from scipy import special, stats as sstats

from .surface import Surface

__all__ = [
    "gaussian_to_marginal",
    "lognormal_transform",
    "weibull_transform",
    "uniform_transform",
    "transform_surface",
    "correlation_distortion",
]

QuantileFn = Callable[[np.ndarray], np.ndarray]


def gaussian_to_marginal(
    field: np.ndarray, quantile: QuantileFn, std: Optional[float] = None
) -> np.ndarray:
    """Map a Gaussian field through a target marginal quantile function.

    Parameters
    ----------
    field:
        A (near-)Gaussian field; standardised internally using ``std``
        (or its sample std) so the uniformisation ``Phi(f/std)`` is
        calibrated.
    quantile:
        Target quantile (inverse-CDF) function, vectorised over [0, 1].
    std:
        The Gaussian field's standard deviation; defaults to the sample
        value (pass the nominal ``h`` for small fields).
    """
    f = np.asarray(field, dtype=float)
    s = float(f.std()) if std is None else float(std)
    if s <= 0:
        raise ValueError("field std must be positive to standardise")
    u = 0.5 * (1.0 + special.erf((f - f.mean()) / (s * math.sqrt(2.0))))
    # keep strictly inside (0,1) for unbounded quantile functions
    eps = 1e-12
    return np.asarray(quantile(np.clip(u, eps, 1.0 - eps)), dtype=float)


def lognormal_transform(
    field: np.ndarray, sigma: float = 0.5, scale: float = 1.0,
    std: Optional[float] = None,
) -> np.ndarray:
    """Lognormal marginal (positively skewed, e.g. eroded terrain)."""
    if sigma <= 0 or scale <= 0:
        raise ValueError("sigma and scale must be positive")
    return gaussian_to_marginal(
        field, lambda u: sstats.lognorm.ppf(u, s=sigma, scale=scale), std=std
    )


def weibull_transform(
    field: np.ndarray, shape: float = 2.0, scale: float = 1.0,
    std: Optional[float] = None,
) -> np.ndarray:
    """Weibull marginal (shape < 3.6 => positive skew; ~3.6 => symmetric)."""
    if shape <= 0 or scale <= 0:
        raise ValueError("shape and scale must be positive")
    return gaussian_to_marginal(
        field, lambda u: sstats.weibull_min.ppf(u, c=shape, scale=scale),
        std=std,
    )


def uniform_transform(
    field: np.ndarray, low: float = 0.0, high: float = 1.0,
    std: Optional[float] = None,
) -> np.ndarray:
    """Uniform marginal on [low, high] (bounded heights)."""
    if high <= low:
        raise ValueError("high must exceed low")
    return gaussian_to_marginal(
        field, lambda u: low + (high - low) * u, std=std
    )


def transform_surface(
    surface: Surface, quantile: QuantileFn, std: Optional[float] = None,
    label: str = "custom",
) -> Surface:
    """Surface-level wrapper: transformed heights, provenance annotated."""
    heights = gaussian_to_marginal(surface.heights, quantile, std=std)
    return Surface(
        heights=heights,
        grid=surface.grid,
        origin=surface.origin,
        provenance={
            **surface.provenance,
            "marginal_transform": label,
        },
    )


def correlation_distortion(
    field: np.ndarray, transformed: np.ndarray, lag: int = 1, axis: int = 0
) -> float:
    """Ratio of output to input correlation coefficient at a sample lag.

    Values < 1 quantify the decorrelation the monotone transform caused
    (1.0 for affine transforms; the stronger the non-linearity and the
    weaker the input correlation, the smaller the ratio).
    """
    def corr(a: np.ndarray) -> float:
        a = np.moveaxis(np.asarray(a, dtype=float), axis, 0)
        x = a[:-lag].ravel()
        y = a[lag:].ravel()
        x = x - x.mean()
        y = y - y.mean()
        denom = math.sqrt(float(np.sum(x * x)) * float(np.sum(y * y)))
        if denom == 0:
            raise ValueError("zero-variance field in correlation estimate")
        return float(np.sum(x * y)) / denom

    c_in = corr(field)
    if abs(c_in) < 1e-12:
        raise ValueError("input field uncorrelated at this lag")
    return corr(transformed) / c_in
