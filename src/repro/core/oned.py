"""One-dimensional rough profile generation.

The paper's propagation programme (refs [8]-[12]) analyses EM waves
along 1D rough *profiles* (FVTD and discrete ray tracing operate on a
height profile f(x)).  Two ways to obtain one:

1. cut a 1D profile out of a generated 2D surface
   (:meth:`repro.core.surface.Surface.profile_x`), whose spectrum is the
   ``Ky``-marginal of the 2D spectrum; or
2. generate the profile *directly* with the 1D convolution method — this
   module — which is orders of magnitude cheaper for long transects.

The 1D machinery mirrors the 2D pipeline exactly: a spectral density
``W1(K)`` with ``int W1 dK = h^2``, a weighting vector
``w_m = (2*pi/L) * W1(K_m)`` on folded bins, the kernel
``c = fftshift(DFT(sqrt(w))) / sqrt(N)``, and correlation with unit
white noise; streaming windows over a 1D :class:`BlockNoise` line.

Provided families (all exact transform pairs):

* :class:`Gaussian1D`:      ``rho = h^2 exp(-(x/cl)^2)``
* :class:`Exponential1D`:   ``rho = h^2 exp(-|x|/cl)``
* :class:`Matern1D` (order ``N > 1/2``): the 1D analogue of the paper's
  Power-Law family.
* :func:`marginal_of_2d`: the exact 1D spectrum of a straight cut
  through a 2D surface, ``W1(Kx) = int W2(Kx, Ky) dKy`` (numeric
  quadrature over the closed-form 2D spectrum).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np
from scipy import integrate, signal, special

from .api import HeightField, absorb_legacy_positionals, merge_provenance, traced
from .rng import SeedLike, as_generator, standard_normal_field
from .spectra import Spectrum

__all__ = [
    "Spectrum1D",
    "Gaussian1D",
    "Exponential1D",
    "Matern1D",
    "TabulatedSpectrum1D",
    "marginal_of_2d",
    "weight_vector",
    "build_kernel_1d",
    "Kernel1D",
    "ProfileGenerator",
    "BlockNoise1D",
]


# ---------------------------------------------------------------------------
# 1D spectra
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Spectrum1D(abc.ABC):
    """Spectral density of a 1D rough profile: ``int W1(K) dK = h^2``."""

    h: float
    cl: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.h) or self.h < 0:
            raise ValueError(f"h must be finite and >= 0, got {self.h}")
        if not np.isfinite(self.cl) or self.cl <= 0:
            raise ValueError(f"cl must be finite and > 0, got {self.cl}")

    @property
    def variance(self) -> float:
        return self.h * self.h

    @abc.abstractmethod
    def spectrum(self, k: np.ndarray) -> np.ndarray:
        """``W1(K)`` — even, non-negative."""

    @abc.abstractmethod
    def autocorrelation(self, x: np.ndarray) -> np.ndarray:
        """``rho(x)`` with ``rho(0) = h^2``."""


@dataclass(frozen=True)
class Gaussian1D(Spectrum1D):
    """1D Gaussian pair: ``W1 = (cl h^2 / 2 sqrt(pi)) exp(-(K cl / 2)^2)``."""

    def spectrum(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=float)
        amp = self.cl * self.variance / (2.0 * math.sqrt(math.pi))
        return amp * np.exp(-0.25 * (k * self.cl) ** 2)

    def autocorrelation(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return self.variance * np.exp(-((x / self.cl) ** 2))


@dataclass(frozen=True)
class Exponential1D(Spectrum1D):
    """1D exponential pair: ``W1 = (cl h^2 / pi) / (1 + (K cl)^2)``."""

    def spectrum(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=float)
        return self.cl * self.variance / (np.pi * (1.0 + (k * self.cl) ** 2))

    def autocorrelation(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return self.variance * np.exp(-np.abs(x) / self.cl)


@dataclass(frozen=True)
class Matern1D(Spectrum1D):
    """1D power-law (Matérn) pair of order ``N > 1/2``.

    ``W1(K) = A [1 + (K cl / 2)^2]^(-N)`` with ``A`` chosen so the
    integral is ``h^2``; the exact ACF is the 1D Matérn Bessel form
    ``rho = h^2 2^(3/2-N)/Gamma(N-1/2) s^(N-1/2) K_{N-1/2}(s)``,
    ``s = 2|x|/cl``.
    """

    order: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.order <= 0.5:
            raise ValueError(f"Matern1D requires N > 1/2, got {self.order}")

    def spectrum(self, k: np.ndarray) -> np.ndarray:
        k = np.asarray(k, dtype=float)
        n = self.order
        # int (1 + (K a)^2)^-N dK over R = (sqrt(pi)/a) G(N-1/2)/G(N)
        a = self.cl / 2.0
        norm = math.sqrt(math.pi) / a * special.gamma(n - 0.5) / special.gamma(n)
        return self.variance / norm * (1.0 + (k * a) ** 2) ** (-n)

    def autocorrelation(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        n = self.order
        s = 2.0 * np.abs(x) / self.cl
        out = np.empty(s.shape if s.shape else (1,))
        s_flat = np.atleast_1d(s)
        small = s_flat < 1e-12
        with np.errstate(invalid="ignore", over="ignore"):
            coef = (
                self.variance * 2.0 ** (1.5 - n) / special.gamma(n - 0.5)
            )
            body = coef * s_flat ** (n - 0.5) * special.kv(n - 0.5, s_flat)
        out = np.where(small, self.variance, body)
        np.nan_to_num(out, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
        return out.reshape(s.shape) if s.shape else float(out[0])


class TabulatedSpectrum1D(Spectrum1D):
    """A 1D spectrum defined by a callable ``W1(K)`` (e.g. a marginal).

    ``h`` is computed by quadrature; the ACF by cosine-transform
    quadrature per lag (cached).  Used by :func:`marginal_of_2d`.
    """

    def __init__(self, w1: Callable[[np.ndarray], np.ndarray],
                 cl_nominal: float, k_max: float):
        var, _ = integrate.quad(lambda k: float(w1(np.asarray(k))),
                                -k_max, k_max, limit=400)
        object.__setattr__(self, "h", math.sqrt(max(var, 0.0)))
        object.__setattr__(self, "cl", float(cl_nominal))
        object.__setattr__(self, "_w1", w1)
        object.__setattr__(self, "_k_max", float(k_max))
        object.__setattr__(self, "_cache", {})

    def spectrum(self, k: np.ndarray) -> np.ndarray:
        return np.asarray(self._w1(np.asarray(k, dtype=float)), dtype=float)

    def autocorrelation(self, x: np.ndarray) -> np.ndarray:
        x_arr = np.atleast_1d(np.asarray(x, dtype=float))
        out = np.empty(x_arr.shape)
        for i, xi in enumerate(x_arr):
            key = round(float(abs(xi)), 9)
            if key not in self._cache:
                val, _ = integrate.quad(
                    lambda k: float(self._w1(np.asarray(k))) * math.cos(k * key),
                    -self._k_max, self._k_max, limit=400,
                )
                self._cache[key] = val
            out[i] = self._cache[key]
        return out.reshape(np.shape(x)) if np.shape(x) else float(out[0])


def marginal_of_2d(spectrum2d: Spectrum, k_max_factor: float = 40.0
                   ) -> TabulatedSpectrum1D:
    """The exact 1D spectrum of a straight x-cut through a 2D surface.

    ``W1(Kx) = int W2(Kx, Ky) dKy`` — the profile keeps the full height
    variance (``int W1 = h^2``) but redistributes it: a cut through a 2D
    surface is *rougher* at small scales than a 1D profile generated
    from the same-family 1D spectrum.
    """
    k_hi = k_max_factor / min(spectrum2d.clx, spectrum2d.cly)

    def w1(kx: np.ndarray) -> np.ndarray:
        kx_arr = np.atleast_1d(np.asarray(kx, dtype=float))
        out = np.empty(kx_arr.shape)
        for i, k in enumerate(kx_arr):
            val, _ = integrate.quad(
                lambda ky: float(spectrum2d.spectrum(k, ky)),
                0.0, k_hi, limit=200,
            )
            out[i] = 2.0 * val  # even in Ky
        return out.reshape(np.shape(kx)) if np.shape(kx) else out[0]

    return TabulatedSpectrum1D(w1, cl_nominal=spectrum2d.clx, k_max=k_hi)


# ---------------------------------------------------------------------------
# 1D weighting / kernel / generation
# ---------------------------------------------------------------------------
def weight_vector(spectrum: Spectrum1D, n: int, length: float) -> np.ndarray:
    """1D weighting vector ``w_m = (2 pi / L) W1(|K_m|)`` on folded bins."""
    if n <= 0:
        raise ValueError("n must be positive")
    if length <= 0:
        raise ValueError("length must be positive")
    m = np.arange(n)
    folded = np.minimum(m, n - m)
    k = 2.0 * np.pi * folded / length
    w = (2.0 * np.pi / length) * spectrum.spectrum(k)
    if np.any(w < 0):
        raise ValueError("1D spectral density must be >= 0")
    return w


@dataclass(frozen=True)
class Kernel1D:
    """Centred 1D convolution kernel."""

    values: np.ndarray
    centre: int
    dx: float

    @property
    def size(self) -> int:
        return self.values.size

    @property
    def energy(self) -> float:
        return float(np.sum(self.values**2))


def build_kernel_1d(spectrum: Spectrum1D, n: int, length: float,
                    truncation: Optional[float] = None) -> Kernel1D:
    """1D analogue of :func:`repro.core.weights.build_kernel`."""
    w = weight_vector(spectrum, n, length)
    v = np.sqrt(w)
    big_v = np.fft.fft(v)
    if np.max(np.abs(big_v.imag)) > 1e-8 * (np.max(np.abs(big_v.real)) or 1.0):
        raise ValueError("1D kernel transform is not real")
    kern = np.fft.fftshift(big_v.real) / math.sqrt(n)
    centre = n // 2
    if truncation is not None:
        if not 0.0 < truncation <= 1.0:
            raise ValueError("truncation must be an energy fraction in (0, 1]")
        total = float(np.sum(kern**2))
        half = 0
        while half <= centre:
            lo, hi = centre - half, min(n, centre + half + 1)
            if float(np.sum(kern[lo:hi] ** 2)) >= truncation * total:
                break
            half += 1
        lo, hi = max(0, centre - half), min(n, centre + half + 1)
        sub = kern[lo:hi]
        e = float(np.sum(sub**2))
        if e > 0:
            sub = sub * math.sqrt(total / e)
        return Kernel1D(values=np.ascontiguousarray(sub),
                        centre=centre - lo, dx=length / n)
    return Kernel1D(values=np.ascontiguousarray(kern), centre=centre,
                    dx=length / n)


class BlockNoise1D:
    """Deterministic location-addressable 1D noise line (cf. BlockNoise)."""

    def __init__(self, seed: int, block: int = 4096):
        if block <= 0:
            raise ValueError("block must be positive")
        if not isinstance(seed, (int, np.integer)) or seed < 0:
            raise ValueError("seed must be a non-negative integer")
        self.seed = int(seed)
        self.block = int(block)

    def _block_values(self, b: int) -> np.ndarray:
        kb = 2 * b if b >= 0 else -2 * b - 1
        ss = np.random.SeedSequence(entropy=[self.seed, kb, 0xD1])
        gen = np.random.Generator(np.random.Philox(seed=ss))
        return gen.standard_normal(self.block)

    def window(self, x0: int, n: int) -> np.ndarray:
        if n < 0:
            raise ValueError("window length must be >= 0")
        out = np.empty(n)
        if n == 0:
            return out
        b0 = x0 // self.block
        b1 = (x0 + n - 1) // self.block
        for b in range(b0, b1 + 1):
            g0 = max(x0, b * self.block)
            g1 = min(x0 + n, (b + 1) * self.block)
            vals = self._block_values(b)
            out[g0 - x0 : g1 - x0] = vals[g0 - b * self.block : g1 - b * self.block]
        return out


class ProfileGenerator:
    """1D convolution-method generator with windowed/streamed output.

    Parameters
    ----------
    spectrum:
        A 1D spectral density.
    n, length:
        Kernel-construction transform size and physical length; as in
        2D, the *spacing* ``length/n`` is what windows inherit.
    truncation:
        Optional kernel energy fraction (variance-preserving).
    engine:
        Correlation engine, mirroring the 2D generators' keyword:
        ``"fft"`` (and ``"auto"``, the historical behaviour) use
        ``scipy.signal.fftconvolve``; ``"spatial"`` uses the direct
        ``np.convolve`` — equal to rounding, and cheaper for very small
        kernels.
    """

    def __init__(self, spectrum: Spectrum1D, n: int, length: float,
                 truncation: Optional[float] = 0.9999,
                 engine: str = "auto"):
        from .convolution import _check_engine  # shared ENGINE vocabulary

        self.spectrum = spectrum
        self.n = n
        self.length = length
        self.engine = _check_engine(engine)
        self.kernel = build_kernel_1d(spectrum, n, length, truncation)

    @property
    def dx(self) -> float:
        return self.length / self.n

    def _correlate(self, padded: np.ndarray) -> np.ndarray:
        if self.engine == "spatial":
            return np.convolve(padded, self.kernel.values[::-1],
                               mode="valid")
        return signal.fftconvolve(padded, self.kernel.values[::-1],
                                  mode="valid")

    def generate(self, seed: SeedLike = None, *args,
                 noise: Optional[np.ndarray] = None,
                 trace: bool = False,
                 provenance: Optional[dict] = None) -> HeightField:
        """One periodic realisation of length ``n``.

        Unified signature (:mod:`repro.core.api`): parameters after
        ``seed`` are keyword-only (positional ``noise`` still works with
        a :class:`DeprecationWarning`); returns a
        :class:`~repro.core.api.HeightField` (an ``ndarray`` carrying
        provenance).
        """
        if args:
            legacy = absorb_legacy_positionals(
                "ProfileGenerator.generate", args, ("noise",)
            )
            noise = legacy.get("noise", noise)
        with traced(self, trace):
            if noise is None:
                noise = standard_normal_field((self.n,), seed)
            noise = np.asarray(noise, dtype=float)
            if noise.shape != (self.n,):
                raise ValueError(f"noise must have shape ({self.n},)")
            k = self.kernel
            pad_lo, pad_hi = k.centre, k.size - 1 - k.centre
            padded = np.pad(noise, (pad_lo, pad_hi), mode="wrap")
            heights = self._correlate(padded)
        record = {
            "method": "convolution-1d",
            "engine": self.engine,
            "n": self.n,
            "dx": self.dx,
        }
        return HeightField.wrap(heights, merge_provenance(record, provenance))

    def generate_window(self, noise: BlockNoise1D, x0: int, n: int,
                        *, trace: bool = False,
                        provenance: Optional[dict] = None) -> HeightField:
        """Window ``[x0, x0+n)`` of the unbounded profile."""
        with traced(self, trace, "generate_window"):
            k = self.kernel
            w = noise.window(x0 - k.centre, n + k.size - 1)
            heights = self._correlate(w)
        record = {
            "method": "convolution-1d-window",
            "window": [x0, n],
            "noise_seed": noise.seed,
            "engine": self.engine,
        }
        return HeightField.wrap(heights, merge_provenance(record, provenance))
