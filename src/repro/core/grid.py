"""Discrete Fourier grids for 2D rough-surface synthesis.

This module implements the discretisation conventions of Section 2.2 of
Uchida, Honda & Yoon: a rectangular surface patch of physical lengths
``Lx x Ly`` sampled on ``Nx x Ny`` points, together with the discrete
spatial angular frequencies

.. math::

    K_{x,m} = \\frac{2\\pi m}{L_x}, \\qquad
    K_{y,m} = \\frac{2\\pi m}{L_y}
    \\qquad (m = 0, 1, \\ldots, M_p),

where ``Mx = Nx/2`` and ``My = Ny/2`` (paper eqn 13), and the index
*folding* rule of eqn (16) that maps DFT bin indices ``m >= M`` onto
negative frequencies ``m - 2M``.

The grid object is immutable and cheap; all arrays it hands out are
computed once and cached.  Every generator in :mod:`repro.core` consumes a
:class:`Grid2D` so that the spatial/spectral bookkeeping lives in exactly
one place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Tuple

import numpy as np

__all__ = ["Grid2D", "fold_index", "folded_frequency_index"]


def fold_index(m: np.ndarray | int, big_m: int) -> np.ndarray | int:
    """Fold DFT bin indices onto signed frequency indices (paper eqn 16).

    For a transform of length ``N = 2*big_m``, bins ``0 <= m < big_m`` keep
    their index while bins ``big_m <= m < 2*big_m`` map to ``2*big_m - m``
    (i.e. the magnitude of the corresponding negative frequency).  The
    returned value is always a *non-negative* frequency magnitude index, as
    used to sample the (even) spectral density function.

    Parameters
    ----------
    m:
        Bin index or array of bin indices in ``[0, 2*big_m)``.
    big_m:
        Half transform length ``M = N/2``.

    Returns
    -------
    Folded index (same shape as ``m``) in ``[0, big_m]``.
    """
    m_arr = np.asarray(m)
    if np.any(m_arr < 0) or np.any(m_arr >= 2 * big_m):
        raise ValueError(
            f"bin index out of range [0, {2 * big_m}): got {m!r}"
        )
    folded = np.where(m_arr < big_m, m_arr, 2 * big_m - m_arr)
    if np.isscalar(m):
        return int(folded)
    return folded


def folded_frequency_index(n: int) -> np.ndarray:
    """Vector of folded indices for a full transform of length ``n``.

    Equivalent to ``abs(numpy.fft.fftfreq(n) * n)`` rounded to integers:
    ``min(m, n - m)``.  For even ``n`` this matches the paper's eqn (16)
    with ``M = n // 2``; odd lengths (which the paper does not use but
    windows cut from larger surfaces may have) fold symmetrically with no
    Nyquist bin.
    """
    if n <= 0:
        raise ValueError(f"transform length must be positive, got {n}")
    m = np.arange(n)
    return np.minimum(m, n - m)


@dataclass(frozen=True)
class Grid2D:
    """Immutable 2D sampling grid for rough-surface synthesis.

    Parameters
    ----------
    nx, ny:
        Truncation numbers (sample counts) in x and y.  The paper's
        spectral constructions assume the even ``N_p = 2 M_p`` convention
        and the library builds kernels on even grids; odd sizes are
        accepted so that windows cut from larger surfaces remain valid
        grids.
    lx, ly:
        Physical lengths of the surface patch in x and y.  Any consistent
        length unit may be used; correlation lengths and heights passed to
        the spectra must use the same unit.

    Notes
    -----
    The sample spacing is ``dx = lx / nx`` (periodic grid: the point at
    ``x = lx`` is identified with ``x = 0``).  The fundamental angular
    frequencies are ``dkx = 2*pi/lx`` and ``dky = 2*pi/ly``.
    """

    nx: int
    ny: int
    lx: float
    ly: float

    def __post_init__(self) -> None:
        for name, n in (("nx", self.nx), ("ny", self.ny)):
            if not isinstance(n, (int, np.integer)):
                raise TypeError(f"{name} must be an integer, got {type(n).__name__}")
            if n <= 0:
                raise ValueError(f"{name} must be positive, got {n}")
        for name, length in (("lx", self.lx), ("ly", self.ly)):
            if not np.isfinite(length) or length <= 0:
                raise ValueError(f"{name} must be positive and finite, got {length}")

    # ------------------------------------------------------------------
    # Scalar derived quantities
    # ------------------------------------------------------------------
    @property
    def mx(self) -> int:
        """Half transform length ``Mx = Nx/2`` (paper eqn 13)."""
        return self.nx // 2

    @property
    def my(self) -> int:
        """Half transform length ``My = Ny/2`` (paper eqn 13)."""
        return self.ny // 2

    @property
    def dx(self) -> float:
        """Sample spacing in x."""
        return self.lx / self.nx

    @property
    def dy(self) -> float:
        """Sample spacing in y."""
        return self.ly / self.ny

    @property
    def dkx(self) -> float:
        """Fundamental angular frequency ``2*pi/Lx``."""
        return 2.0 * np.pi / self.lx

    @property
    def dky(self) -> float:
        """Fundamental angular frequency ``2*pi/Ly``."""
        return 2.0 * np.pi / self.ly

    @property
    def shape(self) -> Tuple[int, int]:
        """Array shape ``(nx, ny)`` of surfaces sampled on this grid."""
        return (self.nx, self.ny)

    @property
    def size(self) -> int:
        """Total number of samples ``nx * ny``."""
        return self.nx * self.ny

    @property
    def cell_area(self) -> float:
        """Area of one sample cell, ``dx * dy``."""
        return self.dx * self.dy

    @property
    def spectral_cell(self) -> float:
        """Spectral cell area ``dkx * dky = 4*pi^2/(Lx*Ly)`` (eqn 15 factor)."""
        return self.dkx * self.dky

    # ------------------------------------------------------------------
    # Coordinate arrays
    # ------------------------------------------------------------------
    @cached_property
    def x(self) -> np.ndarray:
        """Sample abscissae ``x_n = n * dx`` for ``n = 0..nx-1``."""
        return np.arange(self.nx) * self.dx

    @cached_property
    def y(self) -> np.ndarray:
        """Sample ordinates ``y_n = n * dy`` for ``n = 0..ny-1``."""
        return np.arange(self.ny) * self.dy

    def meshgrid(self) -> Tuple[np.ndarray, np.ndarray]:
        """Full coordinate mesh ``(X, Y)`` with indexing='ij' (x first)."""
        return np.meshgrid(self.x, self.y, indexing="ij")

    @cached_property
    def x_centered(self) -> np.ndarray:
        """Signed lags ``x`` in ``[-Lx/2, Lx/2)`` in FFT (wrap) order.

        Useful for evaluating autocorrelation functions that must be
        compared against inverse DFTs of spectral weights.
        """
        n = np.arange(self.nx)
        return np.where(n < (self.nx + 1) // 2, n, n - self.nx) * self.dx

    @cached_property
    def y_centered(self) -> np.ndarray:
        """Signed lags ``y`` in ``[-Ly/2, Ly/2)`` in FFT (wrap) order."""
        n = np.arange(self.ny)
        return np.where(n < (self.ny + 1) // 2, n, n - self.ny) * self.dy

    # ------------------------------------------------------------------
    # Spectral arrays
    # ------------------------------------------------------------------
    @cached_property
    def kx_folded(self) -> np.ndarray:
        """Folded |Kx| magnitudes per bin, paper eqns (13) + (16)."""
        return folded_frequency_index(self.nx) * self.dkx

    @cached_property
    def ky_folded(self) -> np.ndarray:
        """Folded |Ky| magnitudes per bin, paper eqns (13) + (16)."""
        return folded_frequency_index(self.ny) * self.dky

    @cached_property
    def kx_signed(self) -> np.ndarray:
        """Signed Kx per bin (standard FFT order)."""
        return 2.0 * np.pi * np.fft.fftfreq(self.nx, d=self.dx)

    @cached_property
    def ky_signed(self) -> np.ndarray:
        """Signed Ky per bin (standard FFT order)."""
        return 2.0 * np.pi * np.fft.fftfreq(self.ny, d=self.dy)

    def k_meshgrid(self, signed: bool = False) -> Tuple[np.ndarray, np.ndarray]:
        """Spectral mesh ``(KX, KY)``, folded magnitudes by default."""
        if signed:
            return np.meshgrid(self.kx_signed, self.ky_signed, indexing="ij")
        return np.meshgrid(self.kx_folded, self.ky_folded, indexing="ij")

    @property
    def nyquist_kx(self) -> float:
        """Highest representable |Kx| = pi/dx."""
        return np.pi / self.dx

    @property
    def nyquist_ky(self) -> float:
        """Highest representable |Ky| = pi/dy."""
        return np.pi / self.dy

    # ------------------------------------------------------------------
    # Derived grids
    # ------------------------------------------------------------------
    def with_shape(self, nx: int, ny: int) -> "Grid2D":
        """A grid with the same *sample spacing* but a different extent.

        This is the operation used when streaming strips or tiling a large
        surface: the spectrum is always sampled consistently because the
        spacing (and therefore the Nyquist band) is preserved.
        """
        return Grid2D(nx=nx, ny=ny, lx=nx * self.dx, ly=ny * self.dy)

    def subgrid(self, x_slice: slice, y_slice: slice) -> "Grid2D":
        """Grid covering a contiguous index window of this grid."""
        xs = range(self.nx)[x_slice]
        ys = range(self.ny)[y_slice]
        if len(xs) == 0 or len(ys) == 0:
            raise ValueError("empty subgrid selection")
        return self.with_shape(len(xs), len(ys))

    def iter_tiles(
        self, tile_nx: int, tile_ny: int
    ) -> Iterator[Tuple[slice, slice]]:
        """Iterate index windows covering the grid in row-major tile order.

        Edge tiles may be smaller than ``tile_nx x tile_ny``.
        """
        if tile_nx <= 0 or tile_ny <= 0:
            raise ValueError("tile dimensions must be positive")
        for ix in range(0, self.nx, tile_nx):
            for iy in range(0, self.ny, tile_ny):
                yield (
                    slice(ix, min(ix + tile_nx, self.nx)),
                    slice(iy, min(iy + tile_ny, self.ny)),
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Grid2D(nx={self.nx}, ny={self.ny}, lx={self.lx:g}, ly={self.ly:g}, "
            f"dx={self.dx:g}, dy={self.dy:g})"
        )
