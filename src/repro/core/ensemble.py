"""Batch (ensemble) generation utilities.

Monte-Carlo studies over rough surfaces — the paper's own downstream use
(FVTD/ray-tracing statistics over many terrain realisations) — need many
independent realisations with controlled seeding.  This module provides
a small, deliberately boring API for that:

* :func:`ensemble_seeds` — spawn ``n`` independent child seeds from a
  root seed (``numpy.random.SeedSequence`` spawning: reproducible,
  collision-free, extensible);
* :func:`generate_ensemble` — realise any seed-accepting generator over
  those seeds, serially or with a thread/process pool;
* :class:`RunningFieldStats` — streaming per-sample mean/variance
  (Welford) so ensemble moments never require holding the whole stack.
"""

from __future__ import annotations

import concurrent.futures as cf
from typing import Callable, List, Optional, Sequence

import numpy as np

__all__ = ["ensemble_seeds", "generate_ensemble", "RunningFieldStats"]


def ensemble_seeds(root_seed: int, n: int) -> List[int]:
    """``n`` independent 63-bit child seeds derived from ``root_seed``."""
    if n < 0:
        raise ValueError("n must be >= 0")
    ss = np.random.SeedSequence(root_seed)
    return [int(child.generate_state(1)[0] >> 1) for child in ss.spawn(n)]


def generate_ensemble(
    generate: Callable[[int], np.ndarray],
    n: int,
    root_seed: int = 0,
    backend: str = "serial",
    workers: Optional[int] = None,
) -> np.ndarray:
    """Stack of ``n`` independent realisations, shape ``(n, ...)``.

    Parameters
    ----------
    generate:
        ``seed -> array`` realisation factory (e.g.
        ``lambda s: gen.generate(seed=s)``).
    backend:
        ``"serial"`` or ``"thread"`` (process pools cannot ship local
        lambdas; pass a module-level callable and use ``"thread"`` for
        NumPy-heavy generators — the FFTs release the GIL).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    seeds = ensemble_seeds(root_seed, n)
    if backend == "serial":
        reals = [np.asarray(generate(s)) for s in seeds]
    elif backend == "thread":
        with cf.ThreadPoolExecutor(max_workers=workers) as pool:
            reals = [np.asarray(r) for r in pool.map(generate, seeds)]
    else:
        raise ValueError(f"unknown backend {backend!r}; serial|thread")
    shapes = {r.shape for r in reals}
    if len(shapes) != 1:
        raise ValueError(f"realisations disagree on shape: {shapes}")
    return np.stack(reals)


class RunningFieldStats:
    """Streaming per-sample mean and variance over realisations (Welford).

    Feed realisations one at a time; memory stays at two fields no
    matter how many realisations are accumulated.

    Examples
    --------
    >>> stats = RunningFieldStats()
    >>> for seed in range(100):                        # doctest: +SKIP
    ...     stats.update(gen.generate(seed=seed))
    >>> stats.variance().mean()                        # doctest: +SKIP
    """

    def __init__(self) -> None:
        self.n = 0
        self._mean: Optional[np.ndarray] = None
        self._m2: Optional[np.ndarray] = None

    def update(self, field: np.ndarray) -> None:
        """Accumulate one realisation."""
        f = np.asarray(field, dtype=float)
        if self._mean is None:
            self._mean = np.zeros_like(f)
            self._m2 = np.zeros_like(f)
        elif f.shape != self._mean.shape:
            raise ValueError(
                f"field shape {f.shape} != accumulated {self._mean.shape}"
            )
        self.n += 1
        delta = f - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (f - self._mean)

    def mean(self) -> np.ndarray:
        """Per-sample ensemble mean."""
        if self._mean is None:
            raise ValueError("no realisations accumulated")
        return self._mean.copy()

    def variance(self, ddof: int = 0) -> np.ndarray:
        """Per-sample ensemble variance."""
        if self._m2 is None:
            raise ValueError("no realisations accumulated")
        denom = max(self.n - ddof, 1)
        return self._m2 / denom
