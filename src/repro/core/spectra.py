"""Spectral density functions for 2D random rough surfaces.

Implements Section 2.1 of Uchida, Honda & Yoon: the spectral density
function :math:`W(\\mathbf{K})` of a two-dimensional random rough surface
(RRS) with height standard deviation ``h`` and per-axis correlation
lengths ``clx``, ``cly``, for the three families used throughout the
paper:

* :class:`GaussianSpectrum` — paper eqns (5)-(6);
* :class:`PowerLawSpectrum` (N-th order, ``N > 1``) — paper eqns (7)-(8);
* :class:`ExponentialSpectrum` — paper eqns (9)-(10).

Every spectrum satisfies the normalisation of eqn (1),

.. math:: \\iint W(\\mathbf{K})\\, d\\mathbf{K} = h^2 ,

equivalently :math:`\\rho(\\mathbf{0}) = h^2` for the autocorrelation
function :math:`\\rho` of eqn (4).  Both ``spectrum`` and
``autocorrelation`` are exposed and are *exact Fourier pairs*; this is
what makes the paper's accuracy check ``DFT(w) ~ rho(r)`` (below eqn 16)
implementable, see :mod:`repro.validation.checks`.

A note on the Power-Law pair
----------------------------
The printed eqn (8) of the paper gives an algebraic autocorrelation for
the N-th order Power-Law spectrum.  The exact 2D inverse Fourier
transform of eqn (7) is in fact a Matérn (modified-Bessel) form,

.. math::

    \\rho(\\mathbf r) = h^2\\,\\frac{2^{2-N}}{\\Gamma(N-1)}\\,
        s^{N-1} K_{N-1}(s), \\qquad
    s = 2\\sqrt{(x/cl_x)^2 + (y/cl_y)^2},

which reduces to :math:`h^2` at the origin for every ``N > 1``.  We
implement this exact form (derived via the Hankel-transform identity for
:math:`(1+a^2K^2)^{-N}`) so that spectrum and autocorrelation are a true
transform pair; see DESIGN.md section 2 (S1).
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Any, Dict, Type

import numpy as np
from scipy import special

__all__ = [
    "Spectrum",
    "GaussianSpectrum",
    "PowerLawSpectrum",
    "ExponentialSpectrum",
    "spectrum_from_dict",
    "register_spectrum",
    "register_spectrum_loader",
]


def _validate_params(h: float, clx: float, cly: float) -> None:
    if not np.isfinite(h) or h < 0:
        raise ValueError(f"height std h must be finite and >= 0, got {h}")
    for name, cl in (("clx", clx), ("cly", cly)):
        if not np.isfinite(cl) or cl <= 0:
            raise ValueError(f"{name} must be finite and > 0, got {cl}")


@dataclass(frozen=True)
class Spectrum(abc.ABC):
    """Abstract spectral density of a homogeneous 2D RRS.

    Parameters
    ----------
    h:
        Standard deviation of the surface height (eqn 1).
    clx, cly:
        Correlation lengths in the x and y directions (anisotropy is
        supported throughout, per eqns 5, 7, 9).

    Subclasses implement :meth:`spectrum` (``W(Kx, Ky)``) and
    :meth:`autocorrelation` (``rho(x, y)``), which must form an exact 2D
    Fourier pair under the convention of eqn (4):

    .. math:: \\rho(\\mathbf r) = \\iint W(\\mathbf K)
              e^{j \\mathbf K\\cdot\\mathbf r}\\, d\\mathbf K .
    """

    h: float
    clx: float
    cly: float

    #: short name used for serialisation / CLI specs; set by subclasses.
    kind: str = "abstract"

    def __post_init__(self) -> None:
        _validate_params(self.h, self.clx, self.cly)

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def spectrum(self, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
        """Spectral density ``W(Kx, Ky)``; broadcasts over inputs."""

    @abc.abstractmethod
    def autocorrelation(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Autocorrelation ``rho(x, y)``; broadcasts over inputs.

        Normalised such that ``rho(0, 0) == h**2`` (eqns 1, 4).
        """

    # ------------------------------------------------------------------
    @property
    def variance(self) -> float:
        """Surface height variance ``h**2``."""
        return self.h * self.h

    def correlation_coefficient(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Autocorrelation normalised to 1 at zero lag."""
        if self.h == 0:
            return np.ones(np.broadcast(np.asarray(x), np.asarray(y)).shape)
        return self.autocorrelation(x, y) / self.variance

    def with_params(self, **kwargs: Any) -> "Spectrum":
        """Return a copy with some of ``h``, ``clx``, ``cly`` replaced."""
        params = {"h": self.h, "clx": self.clx, "cly": self.cly}
        extra = {
            k: v for k, v in self.__dict__.items() if k not in params and k != "kind"
        }
        params.update(extra)
        params.update(kwargs)
        return type(self)(**params)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable description (round-trips via
        :func:`spectrum_from_dict`)."""
        out: Dict[str, Any] = {"kind": self.kind, "h": self.h, "clx": self.clx,
                               "cly": self.cly}
        if isinstance(self, PowerLawSpectrum):
            out["order"] = self.order
        return out

    # convenience for isotropic construction ---------------------------------
    @classmethod
    def isotropic(cls, h: float, cl: float, **kwargs: Any) -> "Spectrum":
        """Construct with ``clx == cly == cl``."""
        return cls(h=h, clx=cl, cly=cl, **kwargs)


# ---------------------------------------------------------------------------
# Gaussian spectrum (paper eqns 5-6)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class GaussianSpectrum(Spectrum):
    """Gaussian roughness spectrum, paper eqn (5).

    .. math::

        W(\\mathbf K) = \\frac{cl_x\\, cl_y\\, h^2}{4\\pi}
            \\exp\\!\\Big(-\\frac{(K_x cl_x)^2}{4}
                         -\\frac{(K_y cl_y)^2}{4}\\Big)

    with autocorrelation (eqn 6)

    .. math::

        \\rho(\\mathbf r) = h^2 \\exp\\!\\Big(-\\big(\\tfrac{x}{cl_x}\\big)^2
                                      -\\big(\\tfrac{y}{cl_y}\\big)^2\\Big).
    """

    kind: str = "gaussian"

    def spectrum(self, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
        kx = np.asarray(kx, dtype=float)
        ky = np.asarray(ky, dtype=float)
        amp = self.clx * self.cly * self.h * self.h / (4.0 * np.pi)
        arg = -0.25 * ((kx * self.clx) ** 2 + (ky * self.cly) ** 2)
        return amp * np.exp(arg)

    def autocorrelation(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        return self.variance * np.exp(-((x / self.clx) ** 2) - (y / self.cly) ** 2)


# ---------------------------------------------------------------------------
# N-th order Power-Law spectrum (paper eqns 7-8)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PowerLawSpectrum(Spectrum):
    """N-th order Power-Law roughness spectrum, paper eqn (7).

    .. math::

        W(\\mathbf K) = \\frac{cl_x\\, cl_y\\, h^2}{4\\pi}
            \\frac{\\Gamma(N)}{\\Gamma(N-1)}
            \\Big[1 + \\big(\\tfrac{K_x cl_x}{2}\\big)^2
                   + \\big(\\tfrac{K_y cl_y}{2}\\big)^2\\Big]^{-N}

    with ``N > 1`` (paper's assumption).  The exact autocorrelation is the
    Matérn form documented in the module docstring; at ``N = 3/2`` this
    family touches the exponential-correlation class, and as
    ``N -> infinity`` it approaches the Gaussian family.

    Parameters
    ----------
    order:
        The exponent ``N``.  Must satisfy ``N > 1`` for the spectrum to be
        integrable (finite ``h``).
    """

    order: float = 2.0
    kind: str = "power_law"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not np.isfinite(self.order) or self.order <= 1.0:
            raise ValueError(
                f"Power-Law order N must be > 1 (paper Section 2.1), got {self.order}"
            )

    def spectrum(self, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
        kx = np.asarray(kx, dtype=float)
        ky = np.asarray(ky, dtype=float)
        n = self.order
        # Gamma(N)/Gamma(N-1) == N - 1 for N > 1; use the closed form to
        # avoid overflow for large N.
        amp = self.clx * self.cly * self.h * self.h / (4.0 * np.pi) * (n - 1.0)
        base = 1.0 + (0.5 * kx * self.clx) ** 2 + (0.5 * ky * self.cly) ** 2
        return amp * base ** (-n)

    def autocorrelation(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        n = self.order
        s = 2.0 * np.sqrt((x / self.clx) ** 2 + (y / self.cly) ** 2)
        out = np.empty(np.broadcast(x, y).shape, dtype=float)
        s = np.broadcast_to(s, out.shape)
        small = s < 1e-12
        # Matérn: rho = h^2 * 2^(2-N)/Gamma(N-1) * s^(N-1) * K_{N-1}(s)
        with np.errstate(invalid="ignore", over="ignore"):
            coef = self.variance * 2.0 ** (2.0 - n) / special.gamma(n - 1.0)
            body = coef * s ** (n - 1.0) * special.kv(n - 1.0, s)
        out[...] = body
        out[small] = self.variance
        # kv underflows to 0 for very large s; that is the correct limit.
        np.nan_to_num(out, copy=False, nan=0.0, posinf=0.0, neginf=0.0)
        return out if out.shape else float(out)


# ---------------------------------------------------------------------------
# Exponential spectrum (paper eqns 9-10)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ExponentialSpectrum(Spectrum):
    """Exponential-correlation roughness spectrum, paper eqn (9).

    .. math::

        W(\\mathbf K) = \\frac{cl_x\\, cl_y\\, h^2}{2\\pi}
            \\big[1 + (K_x cl_x)^2 + (K_y cl_y)^2\\big]^{-3/2}

    with autocorrelation (eqn 10)

    .. math::

        \\rho(\\mathbf r) = h^2 \\exp\\!\\Big(
            -\\sqrt{(x/cl_x)^2 + (y/cl_y)^2}\\Big).

    The exponential class models surfaces with much richer small-scale
    detail than the Gaussian class (its spectrum decays algebraically);
    the paper uses it for the pond/water regions in Figures 2-4.
    """

    kind: str = "exponential"

    def spectrum(self, kx: np.ndarray, ky: np.ndarray) -> np.ndarray:
        kx = np.asarray(kx, dtype=float)
        ky = np.asarray(ky, dtype=float)
        amp = self.clx * self.cly * self.h * self.h / (2.0 * np.pi)
        base = 1.0 + (kx * self.clx) ** 2 + (ky * self.cly) ** 2
        return amp * base ** (-1.5)

    def autocorrelation(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        r = np.sqrt((x / self.clx) ** 2 + (y / self.cly) ** 2)
        return self.variance * np.exp(-r)


# ---------------------------------------------------------------------------
# Registry / serialisation
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, Type[Spectrum]] = {}
_LOADERS: Dict[str, Any] = {}


def register_spectrum_loader(kind: str, loader) -> None:
    """Register a custom ``dict -> Spectrum`` factory for a kind.

    Used by spectra whose constructor signature is not the plain
    ``(h, clx, cly, ...)`` dataclass form (rotated/composite/ocean
    spectra in :mod:`repro.core.spectra_ext`).
    """
    if not kind or not callable(loader):
        raise ValueError("need a non-empty kind and a callable loader")
    _LOADERS[kind] = loader


def register_spectrum(cls: Type[Spectrum]) -> Type[Spectrum]:
    """Register a Spectrum subclass for :func:`spectrum_from_dict`.

    May be used as a decorator by downstream packages adding custom
    spectral families (e.g. Pierson-Moskowitz sea spectra).
    """
    kind = cls.kind if isinstance(cls.kind, str) else None
    if not kind or kind == "abstract":
        raise ValueError("Spectrum subclass must define a non-abstract 'kind'")
    _REGISTRY[kind] = cls
    return cls


for _cls in (GaussianSpectrum, PowerLawSpectrum, ExponentialSpectrum):
    register_spectrum(_cls)


def spectrum_from_dict(spec: Dict[str, Any]) -> Spectrum:
    """Reconstruct a :class:`Spectrum` from :meth:`Spectrum.to_dict` output.

    Raises
    ------
    KeyError
        If ``spec['kind']`` names an unregistered family.
    """
    spec = dict(spec)
    kind = spec.pop("kind")
    if kind in _LOADERS:
        return _LOADERS[kind](spec)
    try:
        cls = _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown spectrum kind {kind!r}; registered: "
            f"{sorted(set(_REGISTRY) | set(_LOADERS))}"
        ) from None
    return cls(**spec)
