"""Inhomogeneous rough-surface generation (paper Section 3).

The paper's contribution: because the convolution method (eqn 36) applies
a kernel *pointwise*, the kernel may vary from place to place.  At output
sample ``n`` the effective kernel is a convex combination of ``M``
homogeneous kernels,

.. math:: \\bar w^{(n)}_{k} = \\sum_{m=1}^{M} g_n(m)\\, \\bar w_k(m),
          \\qquad \\sum_m g_n(m) = 1,

with the blend fields ``g`` supplied either by the **plate-oriented
method** (eqns 37-39; :class:`repro.fields.parameter_map.PlateLattice` /
:class:`~repro.fields.parameter_map.LayeredLayout`) or by the
**point-oriented method** (eqns 40-46; :class:`PointOrientedLayout`
here).

Implementation insight (DESIGN.md S6): the synthesis is *linear in the
kernel*, so

.. math:: f_n = \\sum_k \\bar w^{(n)}_k X_{n+k-M}
            = \\sum_m g_n(m) \\underbrace{\\big(\\bar w(m) \\ast X\\big)_n}_{f^{(m)}_n},

i.e. generate each homogeneous surface ``f^(m)`` from the *same* noise
field and blend the results.  That turns an O(N^2 K^2 M) per-point
computation into M fast convolutions plus a weighted sum — and it is
*exactly* equal, not an approximation (verified against
:func:`blend_reference` in the tests and ablated in bench A1).

Sharing the noise field across regions is not merely an optimisation: it
is what makes the surface *continuous* across transitions (the paper's
"mixed type of RRS in their transition region") instead of a crossfade
of two independent terrains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

import numpy as np

from .. import obs
from ..fields.parameter_map import WeightMap
from ..fields.transition import get_profile
from .api import absorb_legacy_positionals, merge_provenance, traced
from .convolution import (
    TruncationSpec,
    _check_engine,
    _pad_mode,
    apply_kernels_valid,
    batched_noise_window_for,
    resolve_kernel,
)
from .engine import BatchStats, check_dtype, common_margins
from .grid import Grid2D
from .rng import BlockNoise, SeedLike, standard_normal_field
from .spectra import Spectrum
from .surface import Surface
from .weights import Kernel, build_kernel, truncate_kernel

__all__ = [
    "Layout",
    "PointSpec",
    "PointOrientedLayout",
    "point_oriented_weights",
    "InhomogeneousGenerator",
    "blend_fields",
    "blend_reference",
    "kernel_stack",
]


class Layout(Protocol):
    """Anything that can produce blend fields on a grid.

    Implemented by :class:`~repro.fields.parameter_map.PlateLattice`,
    :class:`~repro.fields.parameter_map.LayeredLayout`, and
    :class:`PointOrientedLayout`.
    """

    def weight_map(self, grid: Grid2D, origin: Tuple[float, float] = (0.0, 0.0)
                   ) -> WeightMap: ...


# ---------------------------------------------------------------------------
# Point-oriented method (paper Section 3.2)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class PointSpec:
    """A representative point carrying a homogeneous spectrum (eqn 40)."""

    x: float
    y: float
    spectrum: Spectrum


def point_oriented_weights(
    px: np.ndarray,
    py: np.ndarray,
    qx: np.ndarray,
    qy: np.ndarray,
    half_width: float,
    profile: str = "linear",
) -> np.ndarray:
    """Blend weights of the point-oriented method (paper eqns 40-46).

    Parameters
    ----------
    px, py:
        Coordinates of the ``M`` representative points, shape ``(M,)``.
    qx, qy:
        Coordinates of the query (observation) points, shape ``(P,)``.
    half_width:
        ``T`` — half of the transition width (eqn 41).
    profile:
        Fade profile applied to ``tau / T`` (linear reproduces eqn 44).

    Returns
    -------
    ``(M, P)`` array of weights; every column sums to 1, entries in
    ``[0, 1]``.

    Notes
    -----
    For observation point ``n`` with nearest representative ``m*``:

    * ``tau(n, m, m*)`` is the distance from ``n`` to the perpendicular
      bisector of the segment ``[p_m, p_m*]`` (eqn 42), computed as
      ``(|n - p_m|^2 - |n - p_m*|^2) / (2 |p_m - p_m*|)`` — non-negative
      because ``m*`` is nearest;
    * competitors with ``tau <= T`` participate (eqn 41); their count is
      ``M~`` and each gets ``g(m) = (1 - tau/T) / (2 M~)`` (eqns 43-44);
    * the nearest point receives the remainder (eqn 45), which is
      ``>= 1/2``: the local spectrum always dominates its own cell.

    With ``T -> 0`` this degenerates to a hard Voronoi partition of the
    plane among the representative points.
    """
    px = np.asarray(px, dtype=float).ravel()
    py = np.asarray(py, dtype=float).ravel()
    qx = np.asarray(qx, dtype=float).ravel()
    qy = np.asarray(qy, dtype=float).ravel()
    m = px.size
    p = qx.size
    if m == 0:
        raise ValueError("need at least one representative point")
    if half_width < 0:
        raise ValueError(f"half_width must be >= 0, got {half_width}")
    phi = get_profile(profile)

    # Squared distances point -> query: (M, P)
    d2 = (px[:, None] - qx[None, :]) ** 2 + (py[:, None] - qy[None, :]) ** 2
    nearest = np.argmin(d2, axis=0)  # (P,)
    if m == 1:
        return np.ones((1, p))

    # Pairwise distances between representative points: (M, M)
    pd = np.hypot(px[:, None] - px[None, :], py[:, None] - py[None, :])
    if np.any(pd[~np.eye(m, dtype=bool)] == 0.0):
        raise ValueError("representative points must be pairwise distinct")

    d2_min = d2[nearest, np.arange(p)]  # (P,)
    denom = pd[:, nearest]  # (M, P): |p_m - p_{m*}| per column
    is_star = np.arange(m)[:, None] == nearest[None, :]
    with np.errstate(divide="ignore", invalid="ignore"):
        tau = (d2 - d2_min[None, :]) / (2.0 * denom)
    tau[is_star] = np.inf  # the nearest point is handled by the remainder rule

    weights = np.zeros((m, p))
    if half_width > 0.0:
        active = tau <= half_width
        fade = np.zeros_like(tau)
        fade[active] = 1.0 - phi(tau[active] / half_width)
        m_tilde = active.sum(axis=0)  # (P,) competitor count
        cols = m_tilde > 0
        if np.any(cols):
            weights[:, cols] = fade[:, cols] / (2.0 * m_tilde[None, cols])
    # eqn (45): nearest point absorbs the remainder (=1 when no competitor)
    remainder = 1.0 - weights.sum(axis=0)
    weights[nearest, np.arange(p)] = remainder
    return weights


class PointOrientedLayout:
    """Point-oriented parameter layout (paper Section 3.2, Figure 4).

    Parameters
    ----------
    points:
        Representative points with spectra.  Points sharing a
        :class:`Spectrum` instance (or equal spectra) are blended into a
        single field, so the number of convolutions is the number of
        *distinct* spectra, not the number of points.
    half_width:
        Transition half-width ``T`` (eqn 41); "its value should be
        appropriately chosen" — Figure 4 works well with ``T`` of order
        the point spacing / 5.
    profile:
        Fade profile (default linear = paper eqn 44).
    """

    def __init__(
        self,
        points: Sequence[PointSpec],
        half_width: float,
        profile: str = "linear",
    ) -> None:
        self.points = list(points)
        if not self.points:
            raise ValueError("need at least one representative point")
        self.half_width = float(half_width)
        self.profile = profile

    def weight_map(self, grid: Grid2D, origin: Tuple[float, float] = (0.0, 0.0)
                   ) -> WeightMap:
        gx, gy = grid.meshgrid()
        qx = (gx + origin[0]).ravel()
        qy = (gy + origin[1]).ravel()
        px = np.array([p.x for p in self.points])
        py = np.array([p.y for p in self.points])
        w_pts = point_oriented_weights(
            px, py, qx, qy, self.half_width, self.profile
        )  # (n_points, P)

        # Merge points that share a spectrum.
        spectra: List[Spectrum] = []
        index: dict = {}
        merged = []
        for i, p in enumerate(self.points):
            key = p.spectrum
            if key not in index:
                index[key] = len(spectra)
                spectra.append(key)
                merged.append(np.zeros(qx.size))
            merged[index[key]] += w_pts[i]
        weights = np.stack(merged).reshape(len(spectra), *grid.shape)
        wm = WeightMap(spectra=spectra, weights=weights)
        wm.validate()
        return wm


# ---------------------------------------------------------------------------
# Blending engine
# ---------------------------------------------------------------------------
def blend_fields(weights: np.ndarray,
                 fields: Sequence[Optional[np.ndarray]]) -> np.ndarray:
    """``f = sum_m g_m * f^(m)`` — the linear-blend fast path.

    ``fields[m]`` may be ``None`` for a pruned region, which is only
    legal when its blend weight is identically zero (the active-set
    contract); a zero-weight term is skipped either way, so pruned and
    unpruned blends are bit-identical.
    """
    weights = np.asarray(weights, dtype=float)
    if weights.shape[0] != len(fields):
        raise ValueError("one weight field per homogeneous field required")
    out = np.zeros(weights.shape[1:], dtype=float)
    for g, f in zip(weights, fields):
        if f is None:
            if np.any(g != 0.0):
                raise ValueError(
                    "missing homogeneous field for a region with non-zero "
                    "blend weight"
                )
            continue
        if not np.any(g != 0.0):
            continue
        out += g * f
    return out


def kernel_stack(
    spectra: Sequence[Spectrum], grid: Grid2D, half_x: int, half_y: int
) -> List[Kernel]:
    """Kernels for several spectra truncated to a *common* support.

    Needed by :func:`blend_reference`, whose per-point kernel mixing
    (eqn 37 taken literally) requires aligned kernel arrays.
    """
    return [
        truncate_kernel(build_kernel(s, grid), half_x, half_y) for s in spectra
    ]


def blend_reference(
    weight_map: WeightMap,
    kernels: Sequence[Kernel],
    noise: np.ndarray,
) -> np.ndarray:
    """Literal per-point evaluation of eqns (36)-(37): O(N^2 K^2 M).

    For every output sample, mixes the kernel stack with that sample's
    blend weights and correlates it with the (circularly indexed) noise.
    Exists to validate the fast path; tests-only sizes.
    """
    shapes = {k.shape for k in kernels}
    centres = {(k.cx, k.cy) for k in kernels}
    if len(shapes) != 1 or len(centres) != 1:
        raise ValueError("reference blending requires a common kernel support")
    (kx, ky) = shapes.pop()
    (cx, cy) = centres.pop()
    noise = np.asarray(noise, dtype=float)
    nx, ny = noise.shape
    stack = np.stack([k.values for k in kernels])  # (M, kx, ky)
    g = weight_map.weights  # (M, nx, ny)
    out = np.empty((nx, ny))
    for i in range(nx):
        xi = (i - cx + np.arange(kx)) % nx
        for j in range(ny):
            yj = (j - cy + np.arange(ky)) % ny
            local = np.tensordot(g[:, i, j], stack, axes=(0, 0))
            out[i, j] = np.sum(local * noise[np.ix_(xi, yj)])
    return out


class InhomogeneousGenerator:
    """Generate inhomogeneous RRSs from any parameter layout (Section 3).

    Builds one convolution kernel per *distinct* spectrum in the layout,
    generates the homogeneous fields from a shared noise source, and
    blends them with the layout's weight fields.

    Parameters
    ----------
    layout:
        A :class:`Layout`: plate lattice, layered regions, or
        point-oriented.
    grid:
        Output grid (also the kernel-construction grid).
    truncation:
        Kernel truncation spec passed to each homogeneous kernel (see
        :func:`repro.core.convolution.resolve_kernel`).
    engine:
        Valid-correlation engine for every homogeneous convolution
        (``"auto"`` | ``"spatial"`` | ``"fft"``, see
        :func:`repro.core.convolution.apply_kernel_valid`).  Because the
        kernels come from :func:`~repro.core.convolution.resolve_kernel`
        they carry plan-cache identities: under the FFT engine each
        region's kernel transform is computed once and reused across
        every tile/strip of a run — the M-region blend then costs M
        block FFTs per tile, not M kernel transforms.

    Examples
    --------
    Figure 3 of the paper (pond in a field)::

        layout = LayeredLayout(
            background=GaussianSpectrum(h=1.0, clx=50.0, cly=50.0),
            patches=[RegionSpec(
                region=Circle(cx=512.0, cy=512.0, radius=500.0),
                spectrum=ExponentialSpectrum(h=0.2, clx=50.0, cly=50.0),
                half_width=100.0,
            )],
        )
        surface = InhomogeneousGenerator(layout, grid).generate(seed=1)
    """

    def __init__(
        self,
        layout: Layout,
        grid: Grid2D,
        truncation: TruncationSpec = 0.9999,
        engine: str = "auto",
        prune: bool = True,
        dtype="float64",
    ) -> None:
        self.layout = layout
        self.grid = grid
        self.truncation = truncation
        self.engine = _check_engine(engine)
        self.prune = bool(prune)
        self.dtype = check_dtype(dtype)
        self._weight_map: Optional[WeightMap] = None
        self._kernels: Optional[List[Kernel]] = None
        self._kernel_cache: dict = {}
        self._kernel_cache_fallback: List[Tuple[Spectrum, Kernel]] = []

    # -- cached pieces ---------------------------------------------------
    @property
    def weight_map(self) -> WeightMap:
        """Blend fields on the construction grid (computed once)."""
        if self._weight_map is None:
            with obs.trace("fields.weight_map"):
                self._weight_map = self.layout.weight_map(self.grid)
        return self._weight_map

    @property
    def kernels(self) -> List[Kernel]:
        """One truncated kernel per distinct spectrum (computed once)."""
        if self._kernels is None:
            self._kernels = [
                self._kernel_for(s) for s in self.weight_map.spectra
            ]
        return self._kernels

    def _kernel_for(self, spectrum: Spectrum) -> Kernel:
        """Kernel for one spectrum, cached by spectrum value.

        The cache is keyed directly by the (hashable, frozen) spectrum,
        so windowed/tiled/streamed runs resolve kernels without ever
        materialising the full-construction-grid weight map.  Unhashable
        custom spectra fall back to an identity-keyed list.
        """
        try:
            kern = self._kernel_cache.get(spectrum)
        except TypeError:
            for seen, kern in self._kernel_cache_fallback:
                if seen is spectrum:
                    return kern
            kern = resolve_kernel(spectrum, self.grid, self.truncation)
            self._kernel_cache_fallback.append((spectrum, kern))
            return kern
        if kern is None:
            kern = resolve_kernel(spectrum, self.grid, self.truncation)
            self._kernel_cache[spectrum] = kern
        return kern

    # -- generation --------------------------------------------------------
    def generate(
        self,
        seed: SeedLike = None,
        *args,
        noise: Optional[np.ndarray] = None,
        boundary: str = "wrap",
        trace: bool = False,
        provenance: Optional[dict] = None,
    ) -> Surface:
        """One realisation on the construction grid.

        All regions share the single noise field ``X`` (continuity across
        transitions); ``boundary`` is handed to each homogeneous
        convolution (see :func:`repro.core.convolution.convolve_spatial`).
        Unified signature (:mod:`repro.core.api`): parameters after
        ``seed`` are keyword-only, with a deprecation shim for legacy
        positional calls; ``trace`` opens a ``generator.generate`` span;
        ``provenance`` adds entries to the surface's record.
        """
        if args:
            legacy = absorb_legacy_positionals(
                "InhomogeneousGenerator.generate", args,
                ("noise", "boundary"),
            )
            noise = legacy.get("noise", noise)
            boundary = legacy.get("boundary", boundary)
        with traced(self, trace):
            return self._generate(seed, noise, boundary, provenance)

    def _generate(self, seed, noise, boundary, provenance):
        if noise is None:
            noise = standard_normal_field(self.grid.shape, seed)
        noise = np.asarray(noise, dtype=float)
        if noise.shape != self.grid.shape:
            raise ValueError(
                f"noise shape {noise.shape} != grid shape {self.grid.shape}"
            )
        wm = self.weight_map
        kernels = self.kernels
        # One padded noise field sized for the union of all kernel
        # footprints: the batched engine then shares each block's
        # forward FFT across every region.  Padding once by the common
        # margins is value-identical to per-kernel padding for all
        # three boundary modes.
        lx, rx, ly, ry = common_margins(kernels)
        padded = np.pad(noise, ((lx, rx), (ly, ry)), mode=_pad_mode(boundary))
        active = wm.support() if self.prune else None
        stats = BatchStats()
        fields = apply_kernels_valid(
            kernels, padded, active=active, engine=self.engine, stats=stats,
            dtype=self.dtype,
        )
        # The float64 blend weights promote float32 fields during the
        # weighted sum; cast back so the surface carries the requested
        # engine precision.
        heights = blend_fields(wm.weights, fields).astype(
            self.dtype, copy=False
        )
        return Surface(
            heights=heights,
            grid=self.grid,
            provenance=merge_provenance({
                "method": "inhomogeneous-convolution",
                "layout": type(self.layout).__name__,
                "spectra": [s.to_dict() for s in wm.spectra],
                "truncation": repr(self.truncation),
                "boundary": boundary,
                "engine": self.engine,
                "dtype": self.dtype.name,
                "regions_active": stats.kernels_active,
                "regions_skipped": stats.kernels_skipped,
                "batch_fft": stats.as_dict(),
            }, provenance),
        )

    def generate_window(
        self, noise: BlockNoise, x0: int, y0: int, nx: int, ny: int,
        *, trace: bool = False, provenance: Optional[dict] = None,
    ) -> Surface:
        """Window ``[x0, x0+nx) x [y0, y0+ny)`` of the unbounded surface.

        Combines the windowed homogeneous convolution (paper advantage
        (a)) with location-aware blend weights: windows generated
        separately agree on overlaps (to FFT rounding), enabling streamed
        and tiled inhomogeneous surfaces.
        """
        with traced(self, trace, "generate_window"):
            return self._generate_window(noise, x0, y0, nx, ny, provenance)

    def _generate_window(self, noise, x0, y0, nx, ny, provenance):
        win_grid = self.grid.with_shape(nx, ny)
        origin = (x0 * self.grid.dx, y0 * self.grid.dy)
        with obs.trace("fields.weight_map"):
            wm = self.layout.weight_map(win_grid, origin=origin)
        # Kernels match the distinct spectra of this window's weight map;
        # every layout lists all regions in every window (with possibly
        # all-zero weights), so the kernel batch — and hence the common
        # margins and block geometry — is the same for every tile.
        kernels = [self._kernel_for(s) for s in wm.spectra]
        margins = common_margins(kernels)
        wx0, wy0, wnx, wny = batched_noise_window_for(
            kernels, x0, y0, nx, ny, margins=margins
        )
        window = noise.window(wx0, wy0, wnx, wny)
        # Active set: regions with zero blend weight everywhere in this
        # window are not convolved at all.  Margins stay those of the
        # full batch, so pruning is bit-transparent.
        active = wm.support() if self.prune else None
        stats = BatchStats()
        fields = apply_kernels_valid(
            kernels, window, active=active, engine=self.engine,
            margins=margins, stats=stats, dtype=self.dtype,
        )
        heights = blend_fields(wm.weights, fields).astype(
            self.dtype, copy=False
        )
        return Surface(
            heights=heights,
            grid=win_grid,
            origin=origin,
            provenance=merge_provenance({
                "method": "inhomogeneous-convolution-window",
                "layout": type(self.layout).__name__,
                "window": [x0, y0, nx, ny],
                "noise_seed": noise.seed,
                "engine": self.engine,
                "dtype": self.dtype.name,
                "regions": wm.n_regions,
                "regions_active": stats.kernels_active,
                "regions_skipped": stats.kernels_skipped,
                "batch_fft": stats.as_dict(),
            }, provenance),
        )
