"""``GenerationSpec``: the one canonical "what to generate" encoding.

Before this module the repo had three divergent descriptions of a
generation run — CLI argparse namespaces, the ``rebuild`` recipes
:mod:`repro.jobs` checkpoints, and the dist wire's
``repro.dist.spec.RunSpec`` — that all said the same thing with
different spellings.  :class:`GenerationSpec` collapses them: a
versioned (``repro.spec/v1``), JSON-round-trippable, *declarative*
value that the CLI, the jobs layer, the dist protocol and the
:mod:`repro.serve` front door all construct and consume.

Design rules:

* **Descriptive, never live.**  A spec holds only JSON-able data (the
  generator recipe, the noise seed, the tile-plan geometry, delivery
  switches) so it can cross process, host and version boundaries.  The
  heights it describes are a pure function of the spec: any two
  faithful executors produce bit-identical surfaces.
* **Versioned.**  ``to_dict`` stamps ``schema: repro.spec/v1``;
  ``from_dict`` rejects documents from a different schema instead of
  silently misreading them.
* **Errors name the field.**  All validation failures raise
  :class:`SpecError` (a ``ValueError``) whose ``.field`` attribute is
  the dotted path of the offending entry (``"generator.kind"``,
  ``"plan.tile_nx"``), so callers — the CLI, an HTTP 400 body — can
  point at exactly what to fix.

The dist wire document (``repro.dist/v1`` ``welcome`` frames) predates
this module and uses the old field names; :meth:`GenerationSpec.to_wire`
/ :meth:`from_wire` translate losslessly, keeping every deployed worker
compatible.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["ACCESS_MODES", "SPEC_SCHEMA", "GenerationSpec", "SpecError"]

#: Schema tag stamped into (and required of) every spec document.
SPEC_SCHEMA = "repro.spec/v1"

#: Height-delivery modes for distributed execution (see repro.dist.spec).
ACCESS_MODES = ("shared", "ship")

#: Generator recipe kinds understood by repro.jobs.generator_from_rebuild.
GENERATOR_KINDS = ("convolution", "figure")

_PLAN_KEYS = ("total_nx", "total_ny", "tile_nx", "tile_ny")
_PLAN_ORIGIN_KEYS = ("origin_x", "origin_y")


class SpecError(ValueError):
    """A spec document failed validation.

    ``field`` is the dotted path of the offending entry (for example
    ``"generator.grid.nx"``) so error surfaces — CLI usage lines, HTTP
    400 bodies — can name exactly what to fix.
    """

    def __init__(self, field_path: str, message: str) -> None:
        self.field = field_path
        super().__init__(f"{field_path}: {message}")


def _require(cond: bool, field_path: str, message: str) -> None:
    if not cond:
        raise SpecError(field_path, message)


def _as_int(value: Any, field_path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(field_path, f"expected an integer, got {value!r}")
    if isinstance(value, float):
        if not value.is_integer():
            raise SpecError(field_path, f"expected an integer, got {value!r}")
        value = int(value)
    return int(value)


def _validate_generator(recipe: Any) -> None:
    _require(isinstance(recipe, dict), "generator",
             f"expected a recipe dict, got {type(recipe).__name__}")
    kind = recipe.get("kind")
    _require(kind in GENERATOR_KINDS, "generator.kind",
             f"expected one of {GENERATOR_KINDS}, got {kind!r}")
    if kind == "convolution":
        spectrum = recipe.get("spectrum")
        _require(isinstance(spectrum, dict) and "kind" in spectrum,
                 "generator.spectrum",
                 "expected a spectrum dict with a 'kind'")
        grid = recipe.get("grid")
        _require(isinstance(grid, dict), "generator.grid",
                 "expected a grid dict (nx/ny/lx/ly)")
        for key in ("nx", "ny", "lx", "ly"):
            _require(key in grid, f"generator.grid.{key}", "missing")
        for key in ("nx", "ny"):
            n = _as_int(grid[key], f"generator.grid.{key}")
            _require(n >= 1, f"generator.grid.{key}",
                     f"must be >= 1, got {n}")
    else:  # figure
        _require(isinstance(recipe.get("name"), str) and recipe.get("name"),
                 "generator.name", "expected a figure name")
        n = _as_int(recipe.get("n"), "generator.n")
        _require(n >= 1, "generator.n", f"must be >= 1, got {n}")
        _require("domain" in recipe, "generator.domain", "missing")


def _validate_plan(plan: Any) -> None:
    _require(isinstance(plan, dict), "plan",
             f"expected a tile-plan dict, got {type(plan).__name__}")
    for key in _PLAN_KEYS:
        _require(key in plan, f"plan.{key}", "missing")
        value = _as_int(plan[key], f"plan.{key}")
        _require(value >= 1, f"plan.{key}", f"must be >= 1, got {value}")
    for key in _PLAN_ORIGIN_KEYS:
        if key in plan:
            _as_int(plan[key], f"plan.{key}")
    extra = set(plan) - set(_PLAN_KEYS) - set(_PLAN_ORIGIN_KEYS)
    _require(not extra, f"plan.{sorted(extra)[0]}" if extra else "plan",
             "unknown plan key")


@dataclass(frozen=True)
class GenerationSpec:
    """Versioned, declarative description of one generation run.

    Attributes
    ----------
    generator:
        The generator recipe — the same JSON ``rebuild`` recipes
        :mod:`repro.jobs` checkpoints and the dist protocol ships
        (``kind: convolution`` with spectrum/grid/truncation, or
        ``kind: figure`` with name/n/domain).
    seed:
        The :class:`~repro.core.rng.BlockNoise` seed.  Together with
        ``generator`` and ``plan`` it pins the output bytes.
    plan:
        Tile-plan geometry (``total_nx/total_ny/tile_nx/tile_ny`` and
        optional origins) for windowed generation over the unbounded
        noise plane, or ``None`` for the one-shot periodic path.
    noise_block:
        Noise-plane block edge override (``None`` = library default).
    store_path / access / obs / faults:
        Execution/delivery switches used by the dist wire and the jobs
        layer; local in-memory runs leave them at their defaults.
    """

    generator: Dict[str, Any]
    seed: int = 0
    plan: Optional[Dict[str, int]] = None
    noise_block: Optional[int] = None
    store_path: Optional[str] = None
    access: str = "shared"
    obs: bool = False
    faults: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.validate()

    # -- validation ----------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`SpecError` naming the first invalid field."""
        _validate_generator(self.generator)
        _require(isinstance(self.seed, int)
                 and not isinstance(self.seed, bool),
                 "seed", f"expected an integer, got {self.seed!r}")
        if self.plan is not None:
            _validate_plan(self.plan)
        if self.noise_block is not None:
            block = _as_int(self.noise_block, "noise_block")
            _require(block >= 1, "noise_block",
                     f"must be >= 1, got {block}")
        _require(self.access in ACCESS_MODES, "access",
                 f"expected one of {ACCESS_MODES}, got {self.access!r}")
        _require(isinstance(self.obs, bool), "obs",
                 f"expected a bool, got {self.obs!r}")
        _require(isinstance(self.faults, list)
                 and all(isinstance(f, dict) for f in self.faults),
                 "faults", "expected a list of fault dicts")

    # -- derived views -------------------------------------------------

    @property
    def grid_shape(self) -> Tuple[int, int]:
        """The output grid ``(nx, ny)`` the recipe describes."""
        if self.generator["kind"] == "figure":
            n = int(self.generator["n"])
            return (n, n)
        grid = self.generator["grid"]
        return (int(grid["nx"]), int(grid["ny"]))

    def tile_plan(self):
        """The spec's :class:`~repro.parallel.tiles.TilePlan` (or None)."""
        if self.plan is None:
            return None
        from ..parallel.tiles import TilePlan

        return TilePlan(**{k: int(v) for k, v in self.plan.items()})

    def noise(self):
        """A fresh :class:`~repro.core.rng.BlockNoise` for this spec."""
        from .rng import BlockNoise

        kwargs: Dict[str, Any] = {"seed": self.seed}
        if self.noise_block is not None:
            kwargs["block"] = self.noise_block
        return BlockNoise(**kwargs)

    def build_generator(self):
        """Reconstruct the generator the recipe describes.

        Delegates to :func:`repro.jobs.runner.generator_from_rebuild`
        — the single rebuild implementation shared by checkpoints, the
        dist workers and the serve front door.
        """
        from ..jobs.runner import generator_from_rebuild

        return generator_from_rebuild(self.generator)

    def with_plan(self, tile: int) -> "GenerationSpec":
        """This spec with a square tiling of edge ``tile`` samples."""
        nx, ny = self.grid_shape
        tile = _as_int(tile, "plan.tile_nx")
        _require(tile >= 1, "plan.tile_nx", f"must be >= 1, got {tile}")
        return replace(self, plan={
            "total_nx": nx, "total_ny": ny,
            "tile_nx": tile, "tile_ny": tile,
            "origin_x": 0, "origin_y": 0,
        })

    # -- canonical (repro.spec/v1) serialisation -----------------------

    def to_dict(self) -> Dict[str, Any]:
        """The canonical ``repro.spec/v1`` document (JSON-able)."""
        return {
            "schema": SPEC_SCHEMA,
            "generator": dict(self.generator),
            "seed": self.seed,
            "plan": dict(self.plan) if self.plan is not None else None,
            "noise_block": self.noise_block,
            "store_path": self.store_path,
            "access": self.access,
            "obs": self.obs,
            "faults": list(self.faults),
        }

    @classmethod
    def from_dict(cls, data: Any) -> "GenerationSpec":
        """Parse a spec document; raises :class:`SpecError` on problems.

        Accepts one convenience shorthand on top of the canonical
        shape: ``"tile": <edge>`` instead of a full ``plan`` block
        expands to a square tiling of the generator's grid.
        """
        _require(isinstance(data, dict), "spec",
                 f"expected a JSON object, got {type(data).__name__}")
        schema = data.get("schema", SPEC_SCHEMA)
        _require(schema == SPEC_SCHEMA, "schema",
                 f"expected {SPEC_SCHEMA!r}, got {schema!r}")
        known = {"schema", "generator", "seed", "plan", "tile",
                 "noise_block", "store_path", "access", "obs", "faults"}
        for key in data:
            _require(key in known, str(key), "unknown spec field")
        _require("generator" in data, "generator", "missing")
        plan = data.get("plan")
        if plan is not None:
            plan = {str(k): _as_int(v, f"plan.{k}")
                    for k, v in dict(plan).items()}
        seed = data.get("seed", 0)
        spec = cls(
            generator=data["generator"],
            seed=_as_int(seed, "seed"),
            plan=plan,
            noise_block=(None if data.get("noise_block") is None
                         else _as_int(data["noise_block"], "noise_block")),
            store_path=data.get("store_path"),
            access=data.get("access", "shared"),
            obs=bool(data.get("obs", False)),
            faults=list(data.get("faults") or []),
        )
        if data.get("tile") is not None:
            _require(spec.plan is None, "tile",
                     "give either 'tile' or a full 'plan', not both")
            spec = spec.with_plan(_as_int(data["tile"], "tile"))
        return spec

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "GenerationSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError("spec", f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    # -- dist wire (repro.dist/v1) translation -------------------------

    def to_wire(self) -> Dict[str, Any]:
        """The ``repro.dist/v1`` welcome-frame document.

        Field names predate this module (``rebuild``/``noise_seed``);
        they are kept verbatim so coordinators and workers from
        different versions interoperate.
        """
        _require(not (self.access == "shared" and not self.store_path),
                 "store_path", "shared access requires a store path")
        return {
            "rebuild": self.generator,
            "noise_seed": self.seed,
            "noise_block": self.noise_block,
            "plan": self.plan,
            "store_path": self.store_path,
            "access": self.access,
            "obs": self.obs,
            "faults": list(self.faults),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "GenerationSpec":
        try:
            spec = cls(
                generator=data["rebuild"],
                seed=int(data["noise_seed"]),
                noise_block=(int(data["noise_block"])
                             if data.get("noise_block") is not None
                             else None),
                plan={k: int(v) for k, v in data["plan"].items()},
                store_path=data.get("store_path"),
                access=data.get("access", "shared"),
                obs=bool(data.get("obs", False)),
                faults=list(data.get("faults") or []),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, SpecError):
                raise
            raise SpecError("spec", f"malformed run spec: {exc!r}") from exc
        _require(not (spec.access == "shared" and not spec.store_path),
                 "store_path", "shared access requires a store path")
        return spec
