"""The convolution method for rough-surface generation (Section 2.4).

The paper rewrites the direct-DFT product (eqn 30) via the convolution
theorem into the real-space form (eqn 36)

.. math::

    f_{n_x n_y} = \\sum_{k_x}\\sum_{k_y} \\bar w_{k_x k_y}\\,
        X_{n_x + k_x - M_x,\\ n_y + k_y - M_y},

i.e. a (cross-)correlation of a compact centred kernel ``w-bar`` (built
by :func:`repro.core.weights.build_kernel`) with an i.i.d. ``N(0,1)``
noise field ``X``.  Two practical consequences — the paper's two stated
advantages — follow:

1. **Unbounded surfaces.**  Because any output sample depends only on the
   noise inside the kernel footprint, surfaces of arbitrary extent can be
   produced by *successive computations* over windows of a conceptually
   infinite noise plane (:class:`repro.core.rng.BlockNoise`), with exact
   agreement in overlaps.  See :func:`generate_window` and
   :mod:`repro.parallel.streaming`.
2. **Kernel truncation.**  When the correlation length is small the
   kernel support is compact; truncating it (``truncate_kernel*``) cuts
   cost proportionally at a controlled variance/shape error.

Two execution paths are provided and tested against each other:

* :func:`convolve_full` — FFT circular path, *identical* (to rounding)
  to the direct DFT method with matched noise (experiment C1);
* :func:`convolve_spatial` / :func:`apply_kernel_valid` — explicit
  correlation with a (possibly truncated) kernel, used for windowed,
  streamed and tiled generation.

For literal-minded verification, :func:`convolve_reference` evaluates
eqn (36) by direct summation (O(N^2 K^2); tests only).
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np
from scipy import signal

from .grid import Grid2D
from .rng import BlockNoise, SeedLike, as_generator, standard_normal_field
from .spectra import Spectrum
from .weights import (
    Kernel,
    amplitude_array,
    build_kernel,
    truncate_kernel,
    truncate_kernel_energy,
)

__all__ = [
    "convolve_full",
    "convolve_spatial",
    "convolve_reference",
    "apply_kernel_valid",
    "noise_window_for",
    "generate_window",
    "resolve_kernel",
    "ConvolutionGenerator",
]

TruncationSpec = Union[None, float, Tuple[int, int]]


def convolve_full(
    spectrum: Spectrum,
    grid: Grid2D,
    noise: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Full-kernel convolution method via FFT (circular boundary).

    Computes eqn (36) with the untruncated kernel using the spectral
    identity ``f = sqrt(Nx*Ny) * IDFT(v * DFT(X))`` (derived from the
    correlation theorem; see module docstring of
    :mod:`repro.core.direct_dft`).  The result is exactly the direct DFT
    method's surface for the Hermitian array matched to ``X``.

    Parameters
    ----------
    noise:
        Optional ``(nx, ny)`` i.i.d. ``N(0,1)`` field; drawn from ``seed``
        when omitted.
    """
    if noise is None:
        noise = standard_normal_field(grid.shape, seed)
    noise = np.asarray(noise, dtype=float)
    if noise.shape != grid.shape:
        raise ValueError(f"noise shape {noise.shape} != grid shape {grid.shape}")
    v = amplitude_array(spectrum, grid)
    out = np.fft.ifft2(v * np.fft.fft2(noise)) * np.sqrt(grid.size)
    return np.ascontiguousarray(out.real)


def convolve_spatial(
    kernel: Kernel,
    noise: np.ndarray,
    boundary: str = "wrap",
) -> np.ndarray:
    """Apply a centred kernel to a noise field of the output's shape.

    Evaluates eqn (36) as a correlation.  ``boundary`` selects how noise
    outside the field is treated:

    ``"wrap"``
        Circular indexing, matching the DFT methods on the same noise.
    ``"reflect"`` / ``"zero"``
        Non-periodic edge handling (useful when the physical surface is a
        patch, not a torus).  ``"zero"`` tapers variance near edges.
    """
    noise = np.asarray(noise, dtype=float)
    if noise.ndim != 2:
        raise ValueError("noise must be 2D")
    kx, ky = kernel.shape
    px_lo, px_hi = kernel.cx, kx - 1 - kernel.cx
    py_lo, py_hi = kernel.cy, ky - 1 - kernel.cy
    if boundary == "wrap":
        mode = "wrap"
    elif boundary == "reflect":
        mode = "symmetric"
    elif boundary == "zero":
        mode = "constant"
    else:
        raise ValueError(f"unknown boundary {boundary!r}")
    padded = np.pad(noise, ((px_lo, px_hi), (py_lo, py_hi)), mode=mode)
    return apply_kernel_valid(kernel, padded)


def apply_kernel_valid(kernel: Kernel, noise: np.ndarray) -> np.ndarray:
    """Valid-mode correlation: the core windowed-generation primitive.

    ``out[i, j] = sum_k kernel[k] * noise[i + k_x, j + k_y]`` for every
    position where the kernel fits entirely inside ``noise``; output shape
    is ``noise.shape - kernel.shape + 1``.  Output sample ``(i, j)``
    corresponds to the noise-plane location ``(i + cx, j + cy)``.

    Uses FFT-based correlation (``scipy.signal.fftconvolve`` on the
    flipped kernel) — O((N+K) log(N+K)) per axis rather than O(N K).
    """
    noise = np.asarray(noise, dtype=float)
    kx, ky = kernel.shape
    if noise.shape[0] < kx or noise.shape[1] < ky:
        raise ValueError(
            f"noise window {noise.shape} smaller than kernel {kernel.shape}"
        )
    flipped = kernel.values[::-1, ::-1]
    out = signal.fftconvolve(noise, flipped, mode="valid")
    return np.ascontiguousarray(out)


def convolve_reference(kernel: Kernel, noise: np.ndarray) -> np.ndarray:
    """Literal evaluation of paper eqn (36) by direct summation.

    Circular ('wrap') boundary; O(N^2 K^2).  Exists so the optimised
    paths can be validated against the printed formula; do not use for
    production sizes.
    """
    noise = np.asarray(noise, dtype=float)
    nx, ny = noise.shape
    kx, ky = kernel.shape
    out = np.zeros_like(noise)
    for dx in range(kx):
        for dy in range(ky):
            c = kernel.values[dx, dy]
            if c == 0.0:
                continue
            out += c * np.roll(noise, shift=(-(dx - kernel.cx), -(dy - kernel.cy)),
                               axis=(0, 1))
    return out


def noise_window_for(
    kernel: Kernel, x0: int, y0: int, nx: int, ny: int
) -> Tuple[int, int, int, int]:
    """Noise-plane window needed to generate surface window ``[x0,x0+nx) x [y0,y0+ny)``.

    Returns ``(wx0, wy0, wnx, wny)`` in global noise coordinates such that
    valid correlation of the kernel over that window yields exactly the
    requested surface samples.
    """
    kx, ky = kernel.shape
    return (x0 - kernel.cx, y0 - kernel.cy, nx + kx - 1, ny + ky - 1)


def generate_window(
    kernel: Kernel,
    noise: BlockNoise,
    x0: int,
    y0: int,
    nx: int,
    ny: int,
) -> np.ndarray:
    """Generate an arbitrary window of the infinite surface (advantage (a)).

    The surface value at global index ``(i, j)`` is a deterministic
    function of ``(kernel, noise.seed)``; windows generated separately
    agree on overlaps (exactly in the underlying noise, to FFT rounding
    ~1e-15 in the heights), which is what enables streaming strips,
    parallel tiles, and surfaces of unbounded extent.
    """
    wx0, wy0, wnx, wny = noise_window_for(kernel, x0, y0, nx, ny)
    window = noise.window(wx0, wy0, wnx, wny)
    return apply_kernel_valid(kernel, window)


def resolve_kernel(
    spectrum: Spectrum, grid: Grid2D, truncation: TruncationSpec
) -> Kernel:
    """Build (and optionally truncate) the kernel for a generator.

    ``truncation`` may be ``None`` (full kernel), a float in (0, 1]
    (energy fraction, see :func:`truncate_kernel_energy`), or an explicit
    ``(half_x, half_y)`` tuple of one-sided supports in samples.
    """
    kernel = build_kernel(spectrum, grid)
    if truncation is None:
        return kernel
    if isinstance(truncation, tuple):
        return truncate_kernel(kernel, *truncation)
    return truncate_kernel_energy(kernel, float(truncation))


class ConvolutionGenerator:
    """High-level homogeneous-surface generator (the paper's Section 2.4).

    Precomputes the convolution kernel once ("once the weighting array is
    computed, we can generate any size of continuous RRSs") and exposes
    both periodic one-shot generation and windowed generation over the
    infinite noise plane.

    Parameters
    ----------
    spectrum:
        Target spectral density.
    grid:
        Kernel-construction grid.  Its *spacing* fixes the sampling of
        the surface; windows of any extent can then be generated at that
        spacing.  The grid extent bounds the kernel support, so choose
        ``lx, ly`` comfortably larger than a few correlation lengths.
    truncation:
        Kernel truncation spec, see :func:`resolve_kernel`.  Default
        retains 99.99% of the kernel energy, which keeps windowed
        generation cheap while changing the surface variance by < 0.01%.

    Examples
    --------
    >>> from repro.core.grid import Grid2D
    >>> from repro.core.spectra import GaussianSpectrum
    >>> gen = ConvolutionGenerator(
    ...     GaussianSpectrum(h=1.0, clx=40.0, cly=40.0),
    ...     Grid2D(nx=256, ny=256, lx=1024.0, ly=1024.0),
    ... )
    >>> heights = gen.generate(seed=7)
    >>> heights.shape
    (256, 256)
    """

    def __init__(
        self,
        spectrum: Spectrum,
        grid: Grid2D,
        truncation: TruncationSpec = 0.9999,
    ) -> None:
        self.spectrum = spectrum
        self.grid = grid
        self.truncation = truncation
        self.kernel = resolve_kernel(spectrum, grid, truncation)

    # ------------------------------------------------------------------
    def generate(
        self,
        seed: SeedLike = None,
        noise: Optional[np.ndarray] = None,
        boundary: str = "wrap",
        exact: bool = False,
    ) -> np.ndarray:
        """One realisation on the construction grid.

        Parameters
        ----------
        exact:
            If true, use the untruncated FFT path (:func:`convolve_full`)
            — exactly the direct-DFT surface for matched noise.  The
            default uses the (possibly truncated) spatial kernel, which
            is what the windowed/streamed paths use.
        """
        if noise is None:
            noise = standard_normal_field(self.grid.shape, seed)
        if exact:
            return convolve_full(self.spectrum, self.grid, noise=noise)
        return convolve_spatial(self.kernel, noise, boundary=boundary)

    def generate_window(
        self, noise: BlockNoise, x0: int, y0: int, nx: int, ny: int
    ) -> np.ndarray:
        """Window ``[x0, x0+nx) x [y0, y0+ny)`` of the infinite surface."""
        return generate_window(self.kernel, noise, x0, y0, nx, ny)

    @property
    def footprint(self) -> Tuple[int, int]:
        """Kernel support ``(kx, ky)`` in samples (cost driver, claim C2)."""
        return self.kernel.shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConvolutionGenerator(spectrum={self.spectrum!r}, "
            f"footprint={self.footprint}, truncation={self.truncation!r})"
        )
