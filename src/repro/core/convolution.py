"""The convolution method for rough-surface generation (Section 2.4).

The paper rewrites the direct-DFT product (eqn 30) via the convolution
theorem into the real-space form (eqn 36)

.. math::

    f_{n_x n_y} = \\sum_{k_x}\\sum_{k_y} \\bar w_{k_x k_y}\\,
        X_{n_x + k_x - M_x,\\ n_y + k_y - M_y},

i.e. a (cross-)correlation of a compact centred kernel ``w-bar`` (built
by :func:`repro.core.weights.build_kernel`) with an i.i.d. ``N(0,1)``
noise field ``X``.  Two practical consequences — the paper's two stated
advantages — follow:

1. **Unbounded surfaces.**  Because any output sample depends only on the
   noise inside the kernel footprint, surfaces of arbitrary extent can be
   produced by *successive computations* over windows of a conceptually
   infinite noise plane (:class:`repro.core.rng.BlockNoise`), with exact
   agreement in overlaps.  See :func:`generate_window` and
   :mod:`repro.parallel.streaming`.
2. **Kernel truncation.**  When the correlation length is small the
   kernel support is compact; truncating it (``truncate_kernel*``) cuts
   cost proportionally at a controlled variance/shape error.

Execution paths, tested against each other:

* :func:`convolve_full` — FFT circular path, *identical* (to rounding)
  to the direct DFT method with matched noise (experiment C1);
* :func:`convolve_spatial` / :func:`apply_kernel_valid` — valid-mode
  correlation with a (possibly truncated) kernel, used for windowed,
  streamed and tiled generation.  Three interchangeable engines compute
  it (``--engine {auto,spatial,fft}`` on the CLI):

  ``"spatial"``
      Explicit sliding correlation, O(out * K^2).  The reference oracle
      for the equivalence tests, and the fastest choice for very small
      kernels where FFT setup dominates.
  ``"fft"``
      Overlap-save FFT (:func:`apply_kernel_valid_fft`) with the
      process-wide :data:`repro.core.engine.plan_cache`: the padded
      kernel spectrum is computed once per ``(kernel, block shape)`` and
      reused across tiles, strips, and inhomogeneous regions.
  ``"auto"``
      Dispatch by kernel support (:func:`select_engine`): spatial below
      ``SPATIAL_KERNEL_AREA_MAX`` kernel samples, FFT above.

For literal-minded verification, :func:`convolve_reference` evaluates
eqn (36) by direct summation (O(N^2 K^2); tests only).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Tuple, Union

import numpy as np
from scipy import signal

from .. import obs
from .api import HeightField, absorb_legacy_positionals, merge_provenance, traced
from .backend import ArrayBackend, get_backend
from .engine import (
    BatchStats,
    KernelPlanCache,
    check_dtype,
    choose_block_shape,
    common_margins,
    plan_cache,
)
from .grid import Grid2D
from .rng import BlockNoise, SeedLike, as_generator, standard_normal_field
from .spectra import Spectrum
from .weights import (
    Kernel,
    amplitude_array,
    build_kernel,
    truncate_kernel,
    truncate_kernel_energy,
)

__all__ = [
    "convolve_full",
    "convolve_spatial",
    "convolve_reference",
    "apply_kernel_valid",
    "apply_kernel_valid_spatial",
    "apply_kernel_valid_fft",
    "apply_kernels_valid",
    "select_engine",
    "ENGINES",
    "SPATIAL_KERNEL_AREA_MAX",
    "noise_window_for",
    "batched_noise_window_for",
    "generate_window",
    "resolve_kernel",
    "ConvolutionGenerator",
]

TruncationSpec = Union[None, float, Tuple[int, int]]

#: Valid values for the ``engine`` argument of the windowed paths.
ENGINES = ("auto", "spatial", "fft")

#: ``auto`` dispatch threshold: kernels with at most this many samples
#: run through the explicit spatial correlation (cheaper than an FFT
#: round-trip at ~1-2 ns per kernel-sample per output on current CPUs);
#: larger kernels take the plan-cached overlap-save FFT engine.
SPATIAL_KERNEL_AREA_MAX = 49


def _check_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ValueError(
            f"unknown engine {engine!r}; expected one of {'|'.join(ENGINES)}"
        )
    return engine


def select_engine(kernel_shape: Tuple[int, int]) -> str:
    """The ``auto``-dispatch decision: ``"spatial"`` or ``"fft"``.

    Purely a function of the kernel support so that every tile of a run
    (and every worker process) makes the same choice — a prerequisite
    for bit-identical serial/thread/process execution.
    """
    kx, ky = kernel_shape
    return "spatial" if kx * ky <= SPATIAL_KERNEL_AREA_MAX else "fft"


def convolve_full(
    spectrum: Spectrum,
    grid: Grid2D,
    noise: Optional[np.ndarray] = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Full-kernel convolution method via FFT (circular boundary).

    Computes eqn (36) with the untruncated kernel using the spectral
    identity ``f = sqrt(Nx*Ny) * IDFT(v * DFT(X))`` (derived from the
    correlation theorem; see module docstring of
    :mod:`repro.core.direct_dft`).  The result is exactly the direct DFT
    method's surface for the Hermitian array matched to ``X``.

    Parameters
    ----------
    noise:
        Optional ``(nx, ny)`` i.i.d. ``N(0,1)`` field; drawn from ``seed``
        when omitted.
    """
    if noise is None:
        noise = standard_normal_field(grid.shape, seed)
    noise = np.asarray(noise, dtype=float)
    if noise.shape != grid.shape:
        raise ValueError(f"noise shape {noise.shape} != grid shape {grid.shape}")
    v = amplitude_array(spectrum, grid)
    out = np.fft.ifft2(v * np.fft.fft2(noise)) * np.sqrt(grid.size)
    return np.ascontiguousarray(out.real)


def convolve_spatial(
    kernel: Kernel,
    noise: np.ndarray,
    boundary: str = "wrap",
    engine: str = "auto",
    cache: Optional[KernelPlanCache] = None,
    dtype=np.float64,
) -> np.ndarray:
    """Apply a centred kernel to a noise field of the output's shape.

    Evaluates eqn (36) as a correlation.  ``boundary`` selects how noise
    outside the field is treated:

    ``"wrap"``
        Circular indexing, matching the DFT methods on the same noise.
    ``"reflect"`` / ``"zero"``
        Non-periodic edge handling (useful when the physical surface is a
        patch, not a torus).  ``"zero"`` tapers variance near edges.

    ``engine``/``cache``/``dtype`` select the valid-correlation engine
    and its precision, see :func:`apply_kernel_valid`.
    """
    noise = np.asarray(noise, dtype=check_dtype(dtype))
    if noise.ndim != 2:
        raise ValueError("noise must be 2D")
    kx, ky = kernel.shape
    px_lo, px_hi = kernel.cx, kx - 1 - kernel.cx
    py_lo, py_hi = kernel.cy, ky - 1 - kernel.cy
    mode = _pad_mode(boundary)
    padded = np.pad(noise, ((px_lo, px_hi), (py_lo, py_hi)), mode=mode)
    return apply_kernel_valid(kernel, padded, engine=engine, cache=cache,
                              dtype=dtype)


def _pad_mode(boundary: str) -> str:
    """Map a boundary name to the matching :func:`numpy.pad` mode.

    The extension value at any virtual index outside the field depends
    only on that index (not on the pad width) for all three modes, so
    padding once by the batch's common margins is value-identical to
    padding per kernel by its own margins.
    """
    if boundary == "wrap":
        return "wrap"
    if boundary == "reflect":
        return "symmetric"
    if boundary == "zero":
        return "constant"
    raise ValueError(f"unknown boundary {boundary!r}")


def _check_valid_shapes(kernel: Kernel, noise: np.ndarray,
                        dtype=np.float64) -> np.ndarray:
    noise = np.asarray(noise, dtype=check_dtype(dtype))
    kx, ky = kernel.shape
    if noise.shape[0] < kx or noise.shape[1] < ky:
        raise ValueError(
            f"noise window {noise.shape} smaller than kernel {kernel.shape}"
        )
    return noise


def apply_kernel_valid(
    kernel: Kernel,
    noise: np.ndarray,
    engine: str = "auto",
    cache: Optional[KernelPlanCache] = None,
    dtype=np.float64,
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Valid-mode correlation: the core windowed-generation primitive.

    ``out[i, j] = sum_k kernel[k] * noise[i + k_x, j + k_y]`` for every
    position where the kernel fits entirely inside ``noise``; output shape
    is ``noise.shape - kernel.shape + 1``.  Output sample ``(i, j)``
    corresponds to the noise-plane location ``(i + cx, j + cy)``.

    Parameters
    ----------
    engine:
        ``"spatial"`` (explicit correlation, the reference oracle),
        ``"fft"`` (plan-cached overlap-save FFT), or ``"auto"``
        (dispatch by kernel support, :func:`select_engine`).  All
        engines agree to < 1e-12 absolute for unit-variance surfaces
        (property-tested) and each is individually deterministic.
    cache:
        Plan cache for the FFT engine (default: the process-wide
        :data:`repro.core.engine.plan_cache`).
    dtype:
        Engine precision (``float64`` default, ``float32`` opt-in):
        noise is coerced once, kernels/plans are rounded once, and the
        output carries the requested dtype with no silent up-casts.
    backend:
        Array backend for the FFT engine (default
        :func:`repro.core.backend.get_backend`\\ ``("numpy")``).
    """
    engine = _check_engine(engine)
    if engine == "auto":
        engine = select_engine(kernel.shape)
    obs.add("conv.dispatch." + engine)
    if engine == "spatial":
        with obs.trace("conv.spatial"):
            return apply_kernel_valid_spatial(kernel, noise, dtype=dtype)
    return apply_kernel_valid_fft(kernel, noise, cache=cache, dtype=dtype,
                                  backend=backend)


def apply_kernel_valid_spatial(kernel: Kernel, noise: np.ndarray,
                               dtype=np.float64) -> np.ndarray:
    """Explicit spatial evaluation of the valid correlation.

    Accumulates one shifted noise slab per kernel sample — O(out * K^2)
    but allocation-light and exactly the printed sum of eqn (36), which
    makes it both the reference oracle for the FFT engine and the
    fastest path for very small (truncated) kernels.
    """
    noise = _check_valid_shapes(kernel, noise, dtype)
    kx, ky = kernel.shape
    onx = noise.shape[0] - kx + 1
    ony = noise.shape[1] - ky + 1
    out = np.zeros((onx, ony), dtype=noise.dtype)
    # Round the kernel to the working precision up front so every
    # slab product stays in that precision (a float64 coefficient
    # would silently promote float32 slabs).
    values = kernel.values.astype(noise.dtype, copy=False)
    for dx in range(kx):
        row = values[dx]
        for dy in range(ky):
            c = row[dy]
            if c == 0.0:
                continue
            out += c * noise[dx : dx + onx, dy : dy + ony]
    return out


def apply_kernel_valid_fft(
    kernel: Kernel,
    noise: np.ndarray,
    cache: Optional[KernelPlanCache] = None,
    block_shape: Optional[Tuple[int, int]] = None,
    dtype=np.float64,
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Overlap-save FFT evaluation of the valid correlation.

    The noise window is processed in FFT blocks (one block when the
    window is small, fixed-size blocks stepped by ``block - kernel + 1``
    when it is large, see :func:`repro.core.engine.choose_block_shape`);
    each block is transformed with ``rfft2``, multiplied by the cached
    padded-kernel spectrum, and inverse-transformed, keeping only the
    wrap-free samples.  The kernel transform itself comes from ``cache``
    — across a tiled or streamed run it is computed once per kernel and
    block shape, which is what makes this the production hot path.

    Parameters
    ----------
    cache:
        Plan cache (default: process-wide :data:`~repro.core.engine.
        plan_cache`).
    block_shape:
        Explicit per-axis FFT lengths (testing/tuning); must be at least
        the kernel support per axis.  Default: automatic policy.
    dtype:
        Engine precision; ``float32`` plans/spectra halve the memory
        traffic (the 4096^2 homogeneous hot path gains >= 1.3x, gated
        in ``benchmarks/check_engine_gate.py``).
    backend:
        Array backend supplying ``rfft2``/``irfft2``/``empty``/
        ``asarray`` (default numpy; see :mod:`repro.core.backend`).

    Notes
    -----
    Results are a pure function of ``(kernel, noise, block shape,
    dtype)`` — cache hits, misses, and rebuilds in other processes
    produce bit-identical output, so all executor backends agree
    exactly.
    """
    xp = backend if backend is not None else get_backend("numpy")
    dt = check_dtype(dtype)
    noise = _check_valid_shapes(kernel, noise, dt)
    kx, ky = kernel.shape
    onx = noise.shape[0] - kx + 1
    ony = noise.shape[1] - ky + 1
    # h = 0 (or an all-zero truncation) synthesises the flat surface; do
    # not route it through the cache, whose normalised plans assume a
    # non-degenerate amplitude.
    if kernel.scale == 0.0 or not np.any(kernel.values):
        return np.zeros((onx, ony), dtype=dt)
    if block_shape is None:
        block_shape = choose_block_shape(noise.shape, kernel.shape)
    bx, by = int(block_shape[0]), int(block_shape[1])
    if bx < kx or by < ky:
        raise ValueError(
            f"block_shape {block_shape} smaller than kernel {kernel.shape}"
        )
    plan = (cache if cache is not None else plan_cache).get_plan(
        kernel, (bx, by), dt, xp
    )
    factor = kernel.plan_scale  # undoes the plan's normalisation
    out = xp.empty((onx, ony), dt)
    step_x = bx - kx + 1
    step_y = by - ky + 1
    for x0 in range(0, onx, step_x):
        nx_blk = min(step_x, onx - x0)
        for y0 in range(0, ony, step_y):
            ny_blk = min(step_y, ony - y0)
            seg = noise[x0 : x0 + bx, y0 : y0 + by]
            with obs.trace("engine.fft.forward"):
                spec = xp.rfft2(seg, s=(bx, by))
            spec *= plan.kfft
            with obs.trace("engine.fft.inverse"):
                conv = xp.irfft2(spec, s=(bx, by))
            obs.add("engine.fft.forward_ffts")
            obs.add("engine.fft.inverse_ffts")
            obs.add("engine.fft.blocks")
            # circular wrap contaminates only the first kernel-1 rows /
            # columns of each block; the rest equals the linear result
            out[x0 : x0 + nx_blk, y0 : y0 + ny_blk] = conv[
                kx - 1 : kx - 1 + nx_blk, ky - 1 : ky - 1 + ny_blk
            ]
    if factor != 1.0:
        out *= factor
    return out


def _apply_kernel_valid_fftconvolve(kernel: Kernel, noise: np.ndarray
                                    ) -> np.ndarray:
    """The pre-engine implementation (``scipy.signal.fftconvolve``).

    Re-transforms the kernel on every call; retained as the seed-state
    baseline for the perf-regression gate
    (``benchmarks/check_engine_gate.py``) and as an extra cross-check in
    the equivalence tests.  Not part of the public engine choices.
    """
    noise = _check_valid_shapes(kernel, noise)
    flipped = kernel.values[::-1, ::-1]
    out = signal.fftconvolve(noise, flipped, mode="valid")
    return np.ascontiguousarray(out)


def convolve_reference(kernel: Kernel, noise: np.ndarray) -> np.ndarray:
    """Literal evaluation of paper eqn (36) by direct summation.

    Circular ('wrap') boundary; O(N^2 K^2).  Exists so the optimised
    paths can be validated against the printed formula; do not use for
    production sizes.
    """
    noise = np.asarray(noise, dtype=float)
    nx, ny = noise.shape
    kx, ky = kernel.shape
    out = np.zeros_like(noise)
    for dx in range(kx):
        for dy in range(ky):
            c = kernel.values[dx, dy]
            if c == 0.0:
                continue
            out += c * np.roll(noise, shift=(-(dx - kernel.cx), -(dy - kernel.cy)),
                               axis=(0, 1))
    return out


def noise_window_for(
    kernel: Kernel, x0: int, y0: int, nx: int, ny: int
) -> Tuple[int, int, int, int]:
    """Noise-plane window needed to generate surface window ``[x0,x0+nx) x [y0,y0+ny)``.

    Returns ``(wx0, wy0, wnx, wny)`` in global noise coordinates such that
    valid correlation of the kernel over that window yields exactly the
    requested surface samples.
    """
    kx, ky = kernel.shape
    return (x0 - kernel.cx, y0 - kernel.cy, nx + kx - 1, ny + ky - 1)


def batched_noise_window_for(
    kernels: "list[Kernel] | tuple[Kernel, ...]",
    x0: int,
    y0: int,
    nx: int,
    ny: int,
    margins: Optional[Tuple[int, int, int, int]] = None,
) -> Tuple[int, int, int, int]:
    """Single noise-plane window serving a whole kernel batch.

    Like :func:`noise_window_for`, but for the batched engine: the
    returned ``(wx0, wy0, wnx, wny)`` covers the union of every kernel's
    footprint around the output window ``[x0, x0+nx) x [y0, y0+ny)``, so
    one window read (and one forward FFT per block) feeds all of them.

    ``margins`` overrides the computed :func:`~repro.core.engine.
    common_margins` — pass the full-region margins when pruning, so the
    window geometry does not depend on which regions happen to be
    active.
    """
    lx, rx, ly, ry = common_margins(kernels) if margins is None else margins
    return (x0 - lx, y0 - ly, nx + lx + rx, ny + ly + ry)


def _normalize_active(active, n: int) -> Optional[np.ndarray]:
    """Coerce an active-set spec (bool mask or index sequence) to a mask."""
    if active is None:
        return None
    arr = np.asarray(active)
    if arr.dtype == bool:
        if arr.shape != (n,):
            raise ValueError(
                f"active mask shape {arr.shape} != (n_kernels,) = ({n},)"
            )
        return arr
    mask = np.zeros(n, dtype=bool)
    mask[arr.astype(int)] = True
    return mask


def apply_kernels_valid(
    kernels: "list[Kernel] | tuple[Kernel, ...]",
    noise: np.ndarray,
    active=None,
    engine: str = "auto",
    cache: Optional[KernelPlanCache] = None,
    block_shape: Optional[Tuple[int, int]] = None,
    margins: Optional[Tuple[int, int, int, int]] = None,
    stats: Optional[BatchStats] = None,
    dtype=np.float64,
    backend: Optional[ArrayBackend] = None,
) -> "list[Optional[np.ndarray]]":
    """Batched valid correlation: M kernels against one noise window.

    All kernels share the common output window implied by the batch's
    :func:`~repro.core.engine.common_margins` ``(lx, rx, ly, ry)``:
    output shape is ``noise.shape - (lx+rx, ly+ry)`` and output sample
    ``(i, j)`` corresponds to noise-plane location ``(i+lx, j+ly)``.
    On the FFT engine each overlap-save block is forward-transformed
    **once** and multiplied against every active kernel's cached plan —
    1 forward + M inverses instead of the M forward+inverse pairs of
    per-kernel calls — which is the multi-region hot-path optimisation.

    Parameters
    ----------
    active:
        Optional active set: boolean mask of length ``len(kernels)`` or
        a sequence of indices (e.g. from :meth:`repro.fields.
        parameter_map.WeightMap.support`).  Inactive kernels are not
        convolved and yield ``None`` in the result list.  Pruning is
        bit-transparent: block geometry derives from ``margins`` (or the
        *full* batch), so active outputs are identical with and without
        pruning.
    margins:
        Explicit ``(lx, rx, ly, ry)`` common margins; must dominate
        every kernel's one-sided supports.  Defaults to
        :func:`~repro.core.engine.common_margins` of the full batch.
    stats:
        Optional :class:`~repro.core.engine.BatchStats` accumulating
        forward/inverse FFT and active/skipped kernel counts.
    dtype, backend:
        Engine precision and array backend, as in
        :func:`apply_kernel_valid`; every kernel of the batch runs at
        the same precision.

    Returns
    -------
    List of output arrays aligned with ``kernels`` (``None`` for pruned
    entries).  For a single-kernel batch the FFT result is bit-identical
    to :func:`apply_kernel_valid_fft` on the same window.
    """
    engine = _check_engine(engine)
    n = len(kernels)
    if n == 0:
        return []
    noise = np.asarray(noise, dtype=check_dtype(dtype))
    if noise.ndim != 2:
        raise ValueError("noise must be 2D")
    lx, rx, ly, ry = common_margins(kernels) if margins is None else margins
    for k in kernels:
        if (k.cx > lx or k.shape[0] - 1 - k.cx > rx
                or k.cy > ly or k.shape[1] - 1 - k.cy > ry):
            raise ValueError(
                f"margins {(lx, rx, ly, ry)} do not cover kernel "
                f"support {k.shape} centred at ({k.cx}, {k.cy})"
            )
    kx_eff = lx + rx + 1
    ky_eff = ly + ry + 1
    if noise.shape[0] < kx_eff or noise.shape[1] < ky_eff:
        raise ValueError(
            f"noise window {noise.shape} smaller than batch footprint "
            f"({kx_eff}, {ky_eff})"
        )
    mask = _normalize_active(active, n)
    if engine == "auto":
        # Dispatch on the common footprint so every tile of a run makes
        # the same choice regardless of which regions are active there.
        engine = select_engine((kx_eff, ky_eff))
    n_active = n if mask is None else int(mask.sum())
    if stats is not None:
        stats.kernels_active += n_active
        stats.kernels_skipped += n - n_active
    obs.add("conv.dispatch." + engine)
    obs.add("batch.kernels_active", n_active)
    obs.add("batch.kernels_skipped", n - n_active)
    if engine == "spatial":
        with obs.trace("conv.spatial"):
            return _apply_kernels_valid_spatial(kernels, noise, mask,
                                                (lx, rx, ly, ry))
    return _apply_kernels_valid_fft(kernels, noise, mask, (lx, rx, ly, ry),
                                    cache=cache, block_shape=block_shape,
                                    stats=stats, backend=backend)


def _apply_kernels_valid_spatial(
    kernels, noise, mask, margins
) -> "list[Optional[np.ndarray]]":
    """Spatial engine for the batch: per-kernel sub-window correlations.

    Each kernel reads its own footprint-sized view of the shared window
    (no copies), so results equal per-kernel
    :func:`apply_kernel_valid_spatial` calls exactly.
    """
    lx, rx, ly, ry = margins
    onx = noise.shape[0] - (lx + rx)
    ony = noise.shape[1] - (ly + ry)
    outs: "list[Optional[np.ndarray]]" = []
    for m, k in enumerate(kernels):
        if mask is not None and not mask[m]:
            outs.append(None)
            continue
        ox = lx - k.cx
        oy = ly - k.cy
        sub = noise[ox : ox + onx + k.shape[0] - 1,
                    oy : oy + ony + k.shape[1] - 1]
        outs.append(apply_kernel_valid_spatial(k, sub, dtype=noise.dtype))
    return outs


def _apply_kernels_valid_fft(
    kernels,
    noise,
    mask,
    margins,
    cache: Optional[KernelPlanCache] = None,
    block_shape: Optional[Tuple[int, int]] = None,
    stats: Optional[BatchStats] = None,
    backend: Optional[ArrayBackend] = None,
) -> "list[Optional[np.ndarray]]":
    """Shared-forward overlap-save engine for the batch.

    Block geometry (and hence FFT rounding) is a pure function of
    ``(noise.shape, margins, block_shape)`` — independent of the active
    set — and each kernel's wrap-free slice starts at row
    ``lx + (kx_m - 1 - cx_m)`` of its inverse transform, which reduces
    to the single-kernel engine's ``kx - 1`` when the margins are that
    kernel's own.
    """
    xp = backend if backend is not None else get_backend("numpy")
    dt = noise.dtype  # caller coerced; one precision for the whole batch
    lx, rx, ly, ry = margins
    kx_eff = lx + rx + 1
    ky_eff = ly + ry + 1
    onx = noise.shape[0] - kx_eff + 1
    ony = noise.shape[1] - ky_eff + 1
    if block_shape is None:
        block_shape = choose_block_shape(noise.shape, (kx_eff, ky_eff))
    bx, by = int(block_shape[0]), int(block_shape[1])
    if bx < kx_eff or by < ky_eff:
        raise ValueError(
            f"block_shape {block_shape} smaller than batch footprint "
            f"({kx_eff}, {ky_eff})"
        )
    cache = cache if cache is not None else plan_cache
    outs: "list[Optional[np.ndarray]]" = [None] * len(kernels)
    plans = []  # (index, plan, row offset, col offset) of live kernels
    for m, k in enumerate(kernels):
        if mask is not None and not mask[m]:
            continue
        if k.scale == 0.0 or not np.any(k.values):
            outs[m] = np.zeros((onx, ony), dtype=dt)  # flat surface, no plan
            continue
        outs[m] = xp.empty((onx, ony), dt)
        plans.append((
            m,
            cache.get_plan(k, (bx, by), dt, xp),
            lx + (k.shape[0] - 1 - k.cx),
            ly + (k.shape[1] - 1 - k.cy),
        ))
    if plans:
        step_x = bx - kx_eff + 1
        step_y = by - ky_eff + 1
        for x0 in range(0, onx, step_x):
            nx_blk = min(step_x, onx - x0)
            for y0 in range(0, ony, step_y):
                ny_blk = min(step_y, ony - y0)
                seg = noise[x0 : x0 + bx, y0 : y0 + by]
                with obs.trace("engine.fft.forward"):
                    spec = xp.rfft2(seg, s=(bx, by))
                obs.add("engine.fft.forward_ffts")
                obs.add("engine.fft.blocks")
                if stats is not None:
                    stats.forward_ffts += 1
                    stats.blocks += 1
                for m, plan, px, py in plans:
                    with obs.trace("engine.fft.inverse"):
                        conv = xp.irfft2(spec * plan.kfft, s=(bx, by))
                    obs.add("engine.fft.inverse_ffts")
                    if stats is not None:
                        stats.inverse_ffts += 1
                    outs[m][x0 : x0 + nx_blk, y0 : y0 + ny_blk] = conv[
                        px : px + nx_blk, py : py + ny_blk
                    ]
    for m, _plan, _px, _py in plans:
        factor = kernels[m].plan_scale
        if factor != 1.0:
            outs[m] *= factor
    return outs


def generate_window(
    kernel: Kernel,
    noise: BlockNoise,
    x0: int,
    y0: int,
    nx: int,
    ny: int,
    engine: str = "auto",
    cache: Optional[KernelPlanCache] = None,
    dtype=np.float64,
    backend: Optional[ArrayBackend] = None,
) -> np.ndarray:
    """Generate an arbitrary window of the infinite surface (advantage (a)).

    The surface value at global index ``(i, j)`` is a deterministic
    function of ``(kernel, noise.seed, engine, dtype)``; windows
    generated separately agree on overlaps (exactly in the underlying
    noise, to FFT rounding ~1e-15 in the heights), which is what enables
    streaming strips, parallel tiles, and surfaces of unbounded extent.
    """
    wx0, wy0, wnx, wny = noise_window_for(kernel, x0, y0, nx, ny)
    window = noise.window(wx0, wy0, wnx, wny)
    return apply_kernel_valid(kernel, window, engine=engine, cache=cache,
                              dtype=dtype, backend=backend)


def resolve_kernel(
    spectrum: Spectrum, grid: Grid2D, truncation: TruncationSpec
) -> Kernel:
    """Build (and optionally truncate) the kernel for a generator.

    ``truncation`` may be ``None`` (full kernel), a float in (0, 1]
    (energy fraction, see :func:`truncate_kernel_energy`), or an explicit
    ``(half_x, half_y)`` tuple of one-sided supports in samples.

    The returned kernel carries a plan-cache ``identity`` — spectrum
    parameters normalised to unit ``h``, grid geometry, and the
    truncation spec — and ``scale = h``: spectra differing only in
    height std then share one cached FFT plan (the synthesis is linear
    in ``h``), see :mod:`repro.core.engine`.
    """
    kernel = build_kernel(spectrum, grid)
    if truncation is None:
        pass
    elif isinstance(truncation, tuple):
        kernel = truncate_kernel(kernel, *truncation)
    else:
        kernel = truncate_kernel_energy(kernel, float(truncation))
    trunc_token = (
        tuple(int(t) for t in truncation)
        if isinstance(truncation, tuple)
        else truncation
    )
    try:
        unit = spectrum.with_params(h=1.0) if spectrum.h != 1.0 else spectrum
        identity = (
            unit,
            grid.nx, grid.ny, float(grid.dx), float(grid.dy),
            trunc_token,
        )
        hash(identity)  # custom spectra may be unhashable -> fingerprint
    except (TypeError, ValueError):
        return kernel
    return replace(kernel, identity=identity, scale=float(spectrum.h))


class ConvolutionGenerator:
    """High-level homogeneous-surface generator (the paper's Section 2.4).

    Precomputes the convolution kernel once ("once the weighting array is
    computed, we can generate any size of continuous RRSs") and exposes
    both periodic one-shot generation and windowed generation over the
    infinite noise plane.

    Parameters
    ----------
    spectrum:
        Target spectral density.
    grid:
        Kernel-construction grid.  Its *spacing* fixes the sampling of
        the surface; windows of any extent can then be generated at that
        spacing.  The grid extent bounds the kernel support, so choose
        ``lx, ly`` comfortably larger than a few correlation lengths.
    truncation:
        Kernel truncation spec, see :func:`resolve_kernel`.  Default
        retains 99.99% of the kernel energy, which keeps windowed
        generation cheap while changing the surface variance by < 0.01%.
    engine:
        Valid-correlation engine for the windowed paths
        (``"auto"`` | ``"spatial"`` | ``"fft"``), see
        :func:`apply_kernel_valid`.
    dtype:
        Working precision of the engine (``"float64"`` default,
        ``"float32"`` opt-in).  Stored on the generator as
        ``self.dtype`` so the tiled/streaming executors allocate
        matching output buffers; recorded in provenance.

    Examples
    --------
    >>> from repro.core.grid import Grid2D
    >>> from repro.core.spectra import GaussianSpectrum
    >>> gen = ConvolutionGenerator(
    ...     GaussianSpectrum(h=1.0, clx=40.0, cly=40.0),
    ...     Grid2D(nx=256, ny=256, lx=1024.0, ly=1024.0),
    ... )
    >>> heights = gen.generate(seed=7)
    >>> heights.shape
    (256, 256)
    """

    def __init__(
        self,
        spectrum: Spectrum,
        grid: Grid2D,
        truncation: TruncationSpec = 0.9999,
        engine: str = "auto",
        dtype="float64",
    ) -> None:
        self.spectrum = spectrum
        self.grid = grid
        self.truncation = truncation
        self.engine = _check_engine(engine)
        self.dtype = check_dtype(dtype)
        self.kernel = resolve_kernel(spectrum, grid, truncation)

    # ------------------------------------------------------------------
    def generate(
        self,
        seed: SeedLike = None,
        *args,
        noise: Optional[np.ndarray] = None,
        boundary: str = "wrap",
        exact: bool = False,
        trace: bool = False,
        provenance: Optional[dict] = None,
    ) -> HeightField:
        """One realisation on the construction grid.

        Unified signature (:mod:`repro.core.api`): everything after
        ``seed`` is keyword-only; legacy positional calls still work
        but emit a :class:`DeprecationWarning`.  Returns a
        :class:`~repro.core.api.HeightField` — a drop-in ``ndarray``
        carrying the run's provenance.

        Parameters
        ----------
        exact:
            If true, use the untruncated FFT path (:func:`convolve_full`)
            — exactly the direct-DFT surface for matched noise.  The
            default uses the (possibly truncated) spatial kernel, which
            is what the windowed/streamed paths use.
        trace:
            Wrap the call in a ``generator.generate`` span of
            :mod:`repro.obs` (no-op unless a recorder is installed).
        provenance:
            Extra entries merged into the result's provenance.
        """
        if args:
            legacy = absorb_legacy_positionals(
                "ConvolutionGenerator.generate", args,
                ("noise", "boundary", "exact"),
            )
            noise = legacy.get("noise", noise)
            boundary = legacy.get("boundary", boundary)
            exact = legacy.get("exact", exact)
        with traced(self, trace):
            if noise is None:
                noise = standard_normal_field(self.grid.shape, seed)
            if exact:
                heights = convolve_full(self.spectrum, self.grid, noise=noise)
                if self.dtype != heights.dtype:
                    # the exact path computes in float64; the cast is the
                    # only lossy step, matching the engine's output dtype
                    heights = heights.astype(self.dtype)
            else:
                heights = convolve_spatial(
                    self.kernel, noise, boundary=boundary, engine=self.engine,
                    dtype=self.dtype,
                )
        record = {
            "method": "convolution",
            "engine": self.engine,
            "boundary": boundary,
            "exact": exact,
            "dtype": self.dtype.name,
        }
        if hasattr(self.spectrum, "to_dict"):
            record["spectrum"] = self.spectrum.to_dict()
        return HeightField.wrap(
            heights, merge_provenance(record, provenance)
        )

    def generate_window(
        self, noise: BlockNoise, x0: int, y0: int, nx: int, ny: int,
        *, trace: bool = False, provenance: Optional[dict] = None,
    ) -> HeightField:
        """Window ``[x0, x0+nx) x [y0, y0+ny)`` of the infinite surface."""
        with traced(self, trace, "generate_window"):
            heights = generate_window(
                self.kernel, noise, x0, y0, nx, ny, engine=self.engine,
                dtype=self.dtype,
            )
        record = {
            "method": "convolution-window",
            "window": [x0, y0, nx, ny],
            "noise_seed": noise.seed,
            "engine": self.engine,
            "dtype": self.dtype.name,
        }
        return HeightField.wrap(
            heights, merge_provenance(record, provenance)
        )

    @property
    def footprint(self) -> Tuple[int, int]:
        """Kernel support ``(kx, ky)`` in samples (cost driver, claim C2)."""
        return self.kernel.shape

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ConvolutionGenerator(spectrum={self.spectrum!r}, "
            f"footprint={self.footprint}, truncation={self.truncation!r}, "
            f"engine={self.engine!r})"
        )
