"""Unified generator API: the :class:`SurfaceGenerator` protocol.

Every generator in the library — :class:`~repro.core.convolution.
ConvolutionGenerator`, :class:`~repro.core.inhomogeneous.
InhomogeneousGenerator`, :class:`~repro.fields.continuous.
ContinuousGenerator` and the 1D :class:`~repro.core.oned.
ProfileGenerator` — implements one call shape:

``generate(seed=None, *, noise=None, trace=False, provenance=None, ...)``
    One realisation on the construction grid.  ``seed`` is the only
    positional parameter; everything else is keyword-only.  ``trace``
    wraps the call in a ``generate`` span of :mod:`repro.obs` (a no-op
    unless a recorder is installed); ``provenance`` is an extra mapping
    merged into the result's provenance record.

``generate_window(noise, x0, [y0,] nx, [ny,] *, trace=False,
provenance=None)``
    A window of the unbounded surface over a deterministic noise plane.
    2D generators take ``(noise, x0, y0, nx, ny)``; the 1D profile
    generator takes ``(noise, x0, nx)``.

Legacy positional call shapes (``gen.generate(seed, noise, boundary)``)
keep working through :func:`absorb_legacy_positionals`, which maps them
onto the keyword names and emits a :class:`DeprecationWarning`.

Return types are part of the compatibility contract and unchanged:
generators that historically returned bare height arrays now return
:class:`HeightField` — an ``ndarray`` subclass that behaves exactly like
the old array (every NumPy operation, pickling, saving) but additionally
carries a ``.provenance`` dict and a ``.heights`` view, so tiled,
streamed and job layers can treat every generator uniformly via
:func:`split_result`.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Optional, Protocol, Tuple, runtime_checkable

import numpy as np

from .. import obs

__all__ = [
    "SurfaceGenerator",
    "HeightField",
    "split_result",
    "absorb_legacy_positionals",
    "traced",
    "merge_provenance",
    "protocol_violations",
]


@runtime_checkable
class SurfaceGenerator(Protocol):
    """Anything that generates rough surfaces the unified way.

    The runtime check (``isinstance(gen, SurfaceGenerator)``) verifies
    the member *presence*; the keyword discipline of the two methods is
    asserted by :func:`protocol_violations` (used by the conformance
    tests).  ``generate_tiled``, ``stream_strips`` and ``repro.jobs``
    accept any object satisfying this protocol (2D generators must also
    expose ``grid``).
    """

    engine: str

    def generate(self, seed: Any = None, **kwargs: Any) -> Any: ...

    def generate_window(self, noise: Any, *window: Any,
                        **kwargs: Any) -> Any: ...


class HeightField(np.ndarray):
    """Height array with provenance: an ``ndarray`` that knows its origin.

    Behaves exactly like the plain array the generators used to return
    (arithmetic, slicing, reductions, pickling, ``np.save``), so legacy
    callers are untouched; unified consumers read ``.provenance`` — the
    same record a :class:`~repro.core.surface.Surface` would carry.
    ``np.asarray(field)`` drops back to the base class without copying.
    """

    provenance: Dict[str, Any]

    @classmethod
    def wrap(cls, values: np.ndarray,
             provenance: Optional[dict] = None) -> "HeightField":
        field = np.asarray(values).view(cls)
        field.provenance = dict(provenance) if provenance else {}
        return field

    def __array_finalize__(self, obj: Any) -> None:
        if obj is None:
            return
        self.provenance = getattr(obj, "provenance", None) or {}

    @property
    def heights(self) -> np.ndarray:
        """The underlying plain array (mirror of ``Surface.heights``)."""
        return self.view(np.ndarray)

    def __reduce__(self):
        reconstruct, args, state = super().__reduce__()
        return (reconstruct, args, (state, self.provenance))

    def __setstate__(self, state):
        nd_state, provenance = state
        super().__setstate__(nd_state)
        self.provenance = provenance


def split_result(result: Any) -> Tuple[np.ndarray, Optional[dict]]:
    """``(heights, provenance)`` of any generator output.

    Accepts a :class:`~repro.core.surface.Surface`, a
    :class:`HeightField`, or a bare array (provenance ``None``) — the
    one normalisation point for the tiled/streamed/job layers.
    """
    heights = getattr(result, "heights", None)
    if heights is None:
        return np.asarray(result), None
    prov = getattr(result, "provenance", None) or None
    return np.asarray(heights), prov


def absorb_legacy_positionals(method: str, values: tuple,
                              names: Tuple[str, ...]) -> Dict[str, Any]:
    """Map deprecated positional arguments onto their keyword names.

    The unified signatures make everything after ``seed`` keyword-only;
    this shim keeps old call shapes like ``gen.generate(7, noise)``
    working, with a :class:`DeprecationWarning` naming the parameters to
    migrate.  Returns the ``{name: value}`` mapping (empty when the call
    already used keywords).
    """
    if not values:
        return {}
    if len(values) > len(names):
        raise TypeError(
            f"{method}() takes at most {len(names)} positional "
            f"argument(s) after 'seed' ({', '.join(names)}); "
            f"got {len(values)}"
        )
    taken = names[: len(values)]
    warnings.warn(
        f"passing {', '.join(taken)} positionally to {method}() is "
        f"deprecated; pass by keyword "
        f"({', '.join(f'{n}=...' for n in taken)})",
        DeprecationWarning,
        stacklevel=3,
    )
    return dict(zip(taken, values))


class _NullSpanCtx:
    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpanCtx()


def traced(generator: Any, trace: bool, kind: str = "generate"):
    """Context manager for the unified ``trace=True`` keyword.

    When ``trace`` is false this is a shared null context (no
    allocation); when true it opens a ``generator.<kind>`` span via
    :mod:`repro.obs` — still a no-op unless a recorder is installed.
    """
    if not trace:
        return _NULL_SPAN
    return obs.trace(
        f"generator.{kind}",
        {"generator": type(generator).__name__} if obs.enabled() else None,
    )


def merge_provenance(record: Optional[dict],
                     extra: Optional[dict]) -> Dict[str, Any]:
    """Base provenance plus the caller's ``provenance=`` keyword."""
    merged = dict(record) if record else {}
    if extra:
        merged.update(extra)
    return merged


def protocol_violations(generator: Any) -> list:
    """Why ``generator`` fails the unified API contract (empty = none).

    Checks member presence (the :class:`SurfaceGenerator` runtime
    protocol) plus the keyword discipline the protocol cannot express:
    ``generate`` takes ``seed`` as its only positional parameter, and
    both methods accept the ``trace`` and ``provenance`` keywords.
    """
    import inspect

    problems = []
    if not isinstance(generator, SurfaceGenerator):
        for member in ("engine", "generate", "generate_window"):
            if not hasattr(generator, member):
                problems.append(f"missing member {member!r}")
        return problems
    for method_name in ("generate", "generate_window"):
        sig = inspect.signature(getattr(generator, method_name))
        params = sig.parameters
        for kw in ("trace", "provenance"):
            p = params.get(kw)
            if p is None or p.kind is not inspect.Parameter.KEYWORD_ONLY:
                problems.append(
                    f"{method_name}() lacks keyword-only {kw!r}"
                )
    gen_params = list(
        inspect.signature(generator.generate).parameters.values()
    )
    positional = [
        p for p in gen_params
        if p.kind is inspect.Parameter.POSITIONAL_OR_KEYWORD
    ]
    if not positional or positional[0].name != "seed":
        problems.append("generate() must take 'seed' first")
    elif len(positional) > 1:
        problems.append(
            "generate() parameters after 'seed' must be keyword-only; "
            f"found positional {[p.name for p in positional[1:]]}"
        )
    return problems
