"""Discrete spectral weighting arrays and convolution kernels.

Implements Section 2.2 and the kernel construction of Section 2.4 of
Uchida, Honda & Yoon.

Given a grid (``Nx x Ny`` samples over ``Lx x Ly``) and a spectral
density ``W(K)``, the *weighting array* is (paper eqn 15)

.. math::

    w_{m_x m_y} = \\frac{4\\pi^2}{L_x L_y}\\,
        W(K_{\\bar m_x}, K_{\\bar m_y}),

where the bar denotes the frequency folding of eqn (16).  Its square root
``v = sqrt(w)`` (eqn 17) is the amplitude weighting used by both the
direct DFT method and the convolution method.

Two DFT identities make this array useful:

* ``DFT(w)[n] ~ rho(r_n)`` — the inverse-transform consistency check the
  paper states below eqn (16); exposed as :func:`weight_autocorrelation`
  and exercised by :mod:`repro.validation.checks`.
* ``kernel = fftshift(DFT(v)) / sqrt(Nx*Ny)`` is the real-space
  convolution kernel of eqns (34)-(35) normalised so that convolving an
  i.i.d. ``N(0,1)`` noise field with it yields a surface of variance
  ``sum(w) ~ h^2`` (Parseval; see DESIGN.md "Key numerical conventions").

The kernel returned here is centred (index ``(Mx, My)`` is the peak) so
that eqn (36) becomes an ordinary centred convolution.  Kernel truncation
— the paper's second advantage of the convolution method — is provided by
:func:`truncate_kernel` (explicit half-width) and
:func:`truncate_kernel_energy` (retain a target energy fraction).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from functools import cached_property
from typing import Hashable, Optional, Tuple

import numpy as np

from .grid import Grid2D
from .spectra import Spectrum

__all__ = [
    "weight_array",
    "amplitude_array",
    "weight_autocorrelation",
    "build_kernel",
    "truncate_kernel",
    "truncate_kernel_energy",
    "kernel_half_width",
    "Kernel",
]


def weight_array(spectrum: Spectrum, grid: Grid2D) -> np.ndarray:
    """Weighting array ``w`` of paper eqns (14)-(16).

    Returns a ``(nx, ny)`` float array in FFT bin order (bin 0 = DC),
    with ``w[m] = (4*pi^2/(Lx*Ly)) * W(|K_mx|, |K_my|)``.

    The sum of the array approximates the height variance:
    ``w.sum() ~ integral of W = h**2`` (eqn 1); the approximation error is
    the spectral truncation+discretisation error and shrinks as the grid
    is refined/enlarged.
    """
    kx = grid.kx_folded[:, None]
    ky = grid.ky_folded[None, :]
    w = grid.spectral_cell * spectrum.spectrum(kx, ky)
    if np.any(w < 0):
        raise ValueError(
            "spectral density produced negative values; W(K) must be >= 0"
        )
    return w


def amplitude_array(spectrum: Spectrum, grid: Grid2D) -> np.ndarray:
    """Amplitude weighting ``v = sqrt(w)`` of paper eqn (17)."""
    return np.sqrt(weight_array(spectrum, grid))


def weight_autocorrelation(spectrum: Spectrum, grid: Grid2D) -> np.ndarray:
    """Discrete autocorrelation implied by the weights: ``DFT(w)``.

    The paper notes (below eqn 16) that the DFT of the weighting array
    corresponds to the autocorrelation function, ``DFT(w) ~ rho(r)``, and
    recommends it as an accuracy check.  The returned array is real, in
    wrap (FFT) lag order matching ``grid.x_centered`` / ``grid.y_centered``.

    Notes
    -----
    With the paper's unnormalised forward DFT (eqn 11) applied to ``w``,
    the DC lag equals ``sum(w) ~ h^2 = rho(0)``: the forward transform of
    the *sampled spectrum times the spectral cell* is a Riemann sum for
    the Fourier integral of eqn (4).  Because ``w`` is even under the
    folding, the imaginary part vanishes identically (up to rounding).
    """
    w = weight_array(spectrum, grid)
    acf = np.fft.fft2(w)
    return np.ascontiguousarray(acf.real)


def _validate_energy_fraction(energy_fraction: float) -> None:
    """Reject energy fractions outside (0, 1] (incl. NaN) with a clear error."""
    ef = float(energy_fraction)
    if not (0.0 < ef <= 1.0):  # NaN fails every comparison -> rejected too
        raise ValueError(
            f"energy_fraction must be in (0, 1], got {energy_fraction!r}; "
            "1.0 keeps the full kernel, values near 1 truncate mildly"
        )


# ---------------------------------------------------------------------------
# Convolution kernel (paper eqns 34-35)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Kernel:
    """A centred real-space convolution kernel for RRS synthesis.

    Attributes
    ----------
    values:
        2D float array, centred: element ``(cx, cy)`` multiplies the noise
        sample aligned with the output point.
    cx, cy:
        Index of the kernel centre.
    dx, dy:
        Sample spacings the kernel was built for.  A kernel is only valid
        for noise/surfaces sampled at the same spacing.
    energy:
        ``sum(values**2)``; equals the variance of the surface the kernel
        generates from unit white noise.
    identity:
        Optional hashable provenance token for the FFT plan cache
        (:mod:`repro.core.engine`).  Kernels sharing an identity must be
        exact scalar multiples of each other with ratio ``scale``;
        :func:`repro.core.convolution.resolve_kernel` sets it to the
        unit-``h`` spectrum parameters + grid spacing + truncation spec.
        Anything that changes the values (truncation, arithmetic) must
        drop it — hence plain constructors leave it ``None`` and the
        cache falls back to a content :attr:`fingerprint`.
    scale:
        Linear amplitude relative to the ``identity``'s unit kernel
        (``h`` for spectrum-built kernels); only meaningful when
        ``identity`` is set.
    """

    values: np.ndarray
    cx: int
    cy: int
    dx: float
    dy: float
    identity: Optional[Hashable] = None
    scale: float = 1.0

    def __post_init__(self) -> None:
        v = self.values
        if v.ndim != 2:
            raise ValueError(f"kernel must be 2D, got ndim={v.ndim}")
        if not (0 <= self.cx < v.shape[0] and 0 <= self.cy < v.shape[1]):
            raise ValueError("kernel centre outside kernel array")

    @property
    def shape(self) -> Tuple[int, int]:
        return self.values.shape

    @property
    def energy(self) -> float:
        return float(np.sum(self.values * self.values))

    @property
    def half_width_x(self) -> int:
        """Max one-sided support in x (samples)."""
        return max(self.cx, self.shape[0] - 1 - self.cx)

    @property
    def half_width_y(self) -> int:
        """Max one-sided support in y (samples)."""
        return max(self.cy, self.shape[1] - 1 - self.cy)

    # -- plan-cache identity -------------------------------------------
    @cached_property
    def fingerprint(self) -> str:
        """Content hash of the kernel (geometry, spacing, and values).

        Exact (byte-level) and therefore safe as a cache key for any
        kernel, including hand-built ones; computed lazily and cached on
        the instance (the dataclass is frozen, so values never change).
        """
        meta = np.array(
            [self.shape[0], self.shape[1], self.cx, self.cy], dtype=np.int64
        )
        digest = hashlib.sha1()
        digest.update(meta.tobytes())
        digest.update(np.array([self.dx, self.dy], dtype=float).tobytes())
        digest.update(np.ascontiguousarray(self.values).tobytes())
        return digest.hexdigest()

    @property
    def plan_key(self) -> Hashable:
        """Key under which the FFT plan cache files this kernel.

        Identity-carrying kernels share plans across amplitude scalings
        (``h`` variants); zero-scale (``h = 0``) kernels must not poison
        the shared entry with an unnormalisable plan, so they fall back
        to the exact fingerprint, as do anonymous kernels.
        """
        if self.identity is not None and self.scale != 0.0:
            return ("id", self.identity)
        return ("fp", self.fingerprint)

    @property
    def plan_scale(self) -> float:
        """Normalisation the plan cache applies for this kernel's key."""
        if self.identity is not None and self.scale != 0.0:
            return float(self.scale)
        return 1.0


def build_kernel(spectrum: Spectrum, grid: Grid2D) -> Kernel:
    """Centred convolution kernel ``w-bar`` of paper eqns (34)-(35).

    Computes ``DFT(v)``, permutes it to centred order (the paper's index
    shift ``k -> k +/- M`` of eqn (35) is exactly ``fftshift``), and
    normalises by ``sqrt(Nx*Ny)`` so that

    .. math:: f = \\bar w \\ast X, \\qquad X_{ij} \\sim N(0, 1)

    (eqn 36) yields ``Var f = sum(w) ~ h^2``.

    The kernel is real and, for the even spectra of Section 2.1,
    symmetric about its centre; tiny imaginary residue from the FFT is
    discarded after a sanity check.
    """
    v = amplitude_array(spectrum, grid)
    big_v = np.fft.fft2(v)
    imag_max = float(np.max(np.abs(big_v.imag))) if big_v.size else 0.0
    scale = float(np.max(np.abs(big_v.real))) or 1.0
    if imag_max > 1e-8 * scale:
        raise ValueError(
            "kernel transform is not real; spectrum must be even in Kx and Ky "
            f"(max |imag| = {imag_max:g})"
        )
    kern = np.fft.fftshift(big_v.real) / np.sqrt(grid.size)
    return Kernel(
        values=np.ascontiguousarray(kern),
        cx=grid.mx,
        cy=grid.my,
        dx=grid.dx,
        dy=grid.dy,
    )


def truncate_kernel(kernel: Kernel, half_x: int, half_y: int) -> Kernel:
    """Truncate to an explicit one-sided support (paper Section 2.4).

    Keeps indices ``[cx-half_x, cx+half_x] x [cy-half_y, cy+half_y]``
    (clipped to the kernel extent).  This is the paper's advantage (b):
    when the correlation length is small the kernel support is compact
    and computation shrinks proportionally.
    """
    if half_x < 0 or half_y < 0:
        raise ValueError("half widths must be >= 0")
    x0 = max(0, kernel.cx - half_x)
    x1 = min(kernel.shape[0], kernel.cx + half_x + 1)
    y0 = max(0, kernel.cy - half_y)
    y1 = min(kernel.shape[1], kernel.cy + half_y + 1)
    vals = np.ascontiguousarray(kernel.values[x0:x1, y0:y1])
    return Kernel(
        values=vals, cx=kernel.cx - x0, cy=kernel.cy - y0,
        dx=kernel.dx, dy=kernel.dy,
    )


def kernel_half_width(kernel: Kernel, energy_fraction: float = 0.999) -> Tuple[int, int]:
    """Smallest symmetric half-widths retaining ``energy_fraction`` energy.

    Searches square-ish windows grown outwards from the centre; returns
    ``(half_x, half_y)`` scaled by the kernel aspect ratio.  Used by
    :func:`truncate_kernel_energy` and by the kernel-scaling bench (C2).
    """
    _validate_energy_fraction(energy_fraction)
    total = kernel.energy
    if total == 0.0:
        return (0, 0)
    max_hx = kernel.half_width_x
    max_hy = kernel.half_width_y
    aspect = (max_hy + 1) / (max_hx + 1)
    for hx in range(max_hx + 1):
        hy = min(max_hy, int(round(aspect * hx)))
        sub = truncate_kernel(kernel, hx, hy)
        if sub.energy >= energy_fraction * total:
            return (hx, hy)
    return (max_hx, max_hy)


def truncate_kernel_energy(kernel: Kernel, energy_fraction: float = 0.999,
                           renormalise: bool = True) -> Kernel:
    """Truncate to the smallest window holding ``energy_fraction`` energy.

    Parameters
    ----------
    energy_fraction:
        Fraction of ``sum(kernel**2)`` (i.e. of the surface variance) that
        the truncated kernel must retain.
    renormalise:
        If true (default), rescale the truncated kernel so its energy
        equals the original: truncation then changes the correlation
        *shape* slightly but preserves the height variance exactly.

    Raises
    ------
    ValueError
        If ``energy_fraction`` lies outside ``(0, 1]`` (or is NaN).
    """
    _validate_energy_fraction(energy_fraction)
    hx, hy = kernel_half_width(kernel, energy_fraction)
    sub = truncate_kernel(kernel, hx, hy)
    if renormalise and sub.energy > 0.0:
        factor = np.sqrt(kernel.energy / sub.energy)
        sub = Kernel(values=sub.values * factor, cx=sub.cx, cy=sub.cy,
                     dx=sub.dx, dy=sub.dy)
    return sub
