"""The direct DFT (spectral synthesis) method for homogeneous RRSs.

Implements Sections 2.3-2.4 (eqns 19-33) of Uchida, Honda & Yoon: a
complex random array ``u`` with *Hermitian* symmetry,

.. math:: u_{m_x m_y} = \\overline{u_{(-m_x)\\bmod N_x,\\ (-m_y)\\bmod N_y}},

and unit second moment ``E|u|^2 = 1``, is multiplied element-wise by the
amplitude weights ``v`` (eqn 17) and transformed:

.. math:: Z = \\mathrm{DFT}(v \\circ u) \\in \\mathbb{R}^{N_x\\times N_y}
          \\qquad\\text{(eqn 30)} ,

giving a realisation of the rough surface with the prescribed spectrum.
Hermitian symmetry of ``u`` (and evenness of ``v``) is exactly what makes
``Z`` real; the paper builds it entry-wise in eqns (20)-(28), we build it
by the equivalent (and vectorised) *mirror-averaging* construction, see
:func:`hermitian_random_array`.

Fidelity note: the paper's entry-wise recipe assigns the four
self-conjugate bins ``(0,0), (0,My), (Mx,0), (Mx,My)`` amplitude
``X/sqrt(2)`` like every other bin, giving them second moment 1/2 instead
of 1.  We use the exactly-white convention (those bins are real
``N(0,1)``, second moment 1) so that ``DFT(u)/sqrt(Nx*Ny)`` is an i.i.d.
standard normal field, which is what eqn (33) asserts.  The difference
affects 4 of ``Nx*Ny`` bins and is statistically negligible either way;
DESIGN.md S4 records the substitution.

The bridge function :func:`hermitian_array_from_noise` constructs the
``u`` whose direct-DFT surface is *identical* (to rounding) to the
convolution-method surface driven by a given real noise field — the
equivalence the paper derives in eqns (31)-(36) and that experiment C1
verifies numerically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .grid import Grid2D
from .rng import SeedLike, as_generator
from .spectra import Spectrum
from .weights import amplitude_array

__all__ = [
    "conjugate_mirror",
    "is_hermitian",
    "hermitian_random_array",
    "hermitian_array_from_noise",
    "spectral_white_noise",
    "direct_dft_surface",
    "direct_surface_from_array",
]


def conjugate_mirror(z: np.ndarray) -> np.ndarray:
    """Return ``conj(z[(-m) mod N])`` along both axes.

    A 2D array ``u`` is Hermitian iff ``u == conjugate_mirror(u)``.
    """
    if z.ndim != 2:
        raise ValueError(f"expected 2D array, got ndim={z.ndim}")
    return np.conj(np.roll(z[::-1, ::-1], shift=(1, 1), axis=(0, 1)))


def is_hermitian(z: np.ndarray, rtol: float = 1e-12, atol: float = 1e-12) -> bool:
    """Whether ``z`` has the Hermitian symmetry that makes DFT(z) real."""
    return bool(np.allclose(z, conjugate_mirror(z), rtol=rtol, atol=atol))


def hermitian_random_array(grid: Grid2D, seed: SeedLike = None) -> np.ndarray:
    """Random Hermitian array ``u`` with ``E|u|^2 = 1`` (eqns 19-28).

    Construction: draw ``z`` with i.i.d. complex-normal entries
    (``Re, Im ~ N(0, 1/2)``) and symmetrise,

    .. math:: u = \\frac{z + \\mathrm{mirror}(\\bar z)}{\\sqrt 2},

    which reproduces the paper's entry-wise statistics exactly on every
    conjugate pair (real and imaginary parts of variance 1/2, shared
    between the pair) and yields real ``N(0,1)`` values on the four
    self-conjugate bins.

    Returns
    -------
    Complex ``(nx, ny)`` array in DFT bin order.
    """
    rng = as_generator(seed)
    shape = grid.shape
    z = (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)) / np.sqrt(2.0)
    u = (z + conjugate_mirror(z)) / np.sqrt(2.0)
    return u


def hermitian_array_from_noise(noise: np.ndarray) -> np.ndarray:
    """The Hermitian ``u`` equivalent to a given real noise field.

    Given the i.i.d. ``N(0,1)`` field ``X`` that drives the convolution
    method (eqn 36), returns

    .. math:: u = \\overline{\\mathrm{DFT}(X)} / \\sqrt{N_x N_y}

    which is Hermitian with ``E|u|^2 = 1`` and satisfies
    ``direct_surface_from_array(spec, grid, u) ==``
    ``convolve_full(spec, grid, X)`` to machine precision.  This is the
    computational content of the paper's eqns (31)-(33).
    """
    noise = np.asarray(noise, dtype=float)
    if noise.ndim != 2:
        raise ValueError(f"noise must be 2D, got ndim={noise.ndim}")
    n_total = noise.size
    return np.conj(np.fft.fft2(noise)) / np.sqrt(n_total)


def spectral_white_noise(u: np.ndarray) -> np.ndarray:
    """Recover the real white field ``U/sqrt(Nx*Ny)`` of eqn (33).

    For Hermitian ``u``, ``DFT(u)`` is real; dividing by ``sqrt(Nx*Ny)``
    yields the i.i.d. ``N(0,1)`` field the convolution method consumes.
    """
    big_u = np.fft.fft2(u)
    return big_u.real / np.sqrt(u.size)


def direct_surface_from_array(
    spectrum: Spectrum, grid: Grid2D, u: np.ndarray
) -> np.ndarray:
    """Direct DFT synthesis ``Z = DFT(v * u)`` (eqn 30) for a given ``u``.

    Raises if the imaginary residue of the transform is not at rounding
    level, which catches non-Hermitian inputs early.
    """
    u = np.asarray(u)
    if u.shape != grid.shape:
        raise ValueError(f"u shape {u.shape} does not match grid {grid.shape}")
    v = amplitude_array(spectrum, grid)
    z = np.fft.fft2(v * u)
    imag_max = float(np.max(np.abs(z.imag))) if z.size else 0.0
    real_scale = float(np.max(np.abs(z.real))) or 1.0
    if imag_max > 1e-6 * real_scale:
        raise ValueError(
            "direct DFT produced a non-real surface "
            f"(max |imag|/|real| = {imag_max / real_scale:.2e}); "
            "the random array u must be Hermitian"
        )
    return np.ascontiguousarray(z.real)


def direct_dft_surface(
    spectrum: Spectrum, grid: Grid2D, seed: SeedLike = None,
    u: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Generate one homogeneous RRS realisation by the direct DFT method.

    Parameters
    ----------
    spectrum:
        Target spectral density (Section 2.1 family).
    grid:
        Sampling grid.
    seed:
        RNG seed for a fresh Hermitian array (ignored when ``u`` given).
    u:
        Optional pre-built Hermitian random array (e.g. from
        :func:`hermitian_array_from_noise` for matched-noise comparisons).

    Returns
    -------
    Real ``(nx, ny)`` height array with variance approximately
    ``spectrum.h ** 2`` and the prescribed autocorrelation.
    """
    if u is None:
        u = hermitian_random_array(grid, seed)
    return direct_surface_from_array(spectrum, grid, u)
