"""Overlap-save FFT execution engine with process-wide kernel-plan caching.

The windowed convolution primitive (:func:`repro.core.convolution.
apply_kernel_valid`) is the hot path of every tiled, streamed, and
inhomogeneous generation: one "valid" correlation of a compact kernel
against a tile-plus-halo noise block per tile, per region.  Computing it
through a generic FFT convolution re-transforms the *kernel* on every
call even though a run touches only a handful of distinct kernels (one
per region spectrum) and a handful of distinct block shapes (one per
tile shape in the plan).

This module removes that redundancy:

* :class:`KernelPlan` — the padded-kernel spectrum ``rfft2(pad(w-bar))``
  for one ``(kernel, FFT-block shape)`` pair, the only kernel-dependent
  quantity the overlap-save loop needs;
* :class:`KernelPlanCache` — a bounded, thread-safe, process-wide LRU of
  plans with hit/miss/eviction statistics, so M-region blends and
  many-tile runs pay each kernel transform once per block shape;
* :func:`choose_block_shape` — the overlap-save block policy: one FFT
  over the whole noise window while it is small, fixed-size blocks
  stepped across it (classic overlap-save) once the window would exceed
  :data:`DEFAULT_MAX_BLOCK_ELEMS` elements.

Plan identity
-------------
Two keying modes, chosen per kernel (see
:attr:`repro.core.weights.Kernel.plan_key`):

* kernels built by :func:`repro.core.convolution.resolve_kernel` carry a
  symbolic ``identity`` — spectrum parameters *normalised to unit height
  std*, grid spacing/shape, and truncation spec — plus ``scale = h``.
  The cached spectrum is stored normalised by the scale of the kernel
  that built it, so two spectra differing only in ``h`` share one plan
  and the engine rescales the output (the synthesis is linear in ``h``);
* anonymous kernels (hand-built or re-truncated) fall back to a content
  fingerprint of the kernel bytes, which is exact but never shared
  across ``h`` variants.

Determinism: the engine always applies the *normalised* spectrum (also
on the miss that builds it), so for a fixed kernel-request order, cache
hits, misses, and re-builds in worker processes all produce bit-identical
surfaces — executor backends replay the same order, which is what makes
serial/thread/process runs agree exactly.  Plans *built* from different
``h`` variants of one identity differ by rounding only (``sqrt(h^2 S)/h``
vs ``sqrt(S)``, ~1e-16 relative), far inside the engines' 1e-10
equivalence contract.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Hashable, Optional, Sequence, Tuple

import numpy as np
from scipy import fft as sfft

from .. import obs
from .backend import ArrayBackend, get_backend

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (weights -> engine)
    from .weights import Kernel

__all__ = [
    "BatchStats",
    "CacheStats",
    "KernelPlan",
    "KernelPlanCache",
    "choose_block_shape",
    "common_margins",
    "check_dtype",
    "plan_cache",
    "DEFAULT_MAX_BLOCK_ELEMS",
    "ENGINE_DTYPES",
]

#: One FFT over the whole noise window is used while its padded element
#: count stays below this; larger windows are processed in overlap-save
#: blocks (bounds peak memory at ~100 MB of scratch for float64).
DEFAULT_MAX_BLOCK_ELEMS = 1 << 22

#: Minimum overlap-save block edge once a window is split: small blocks
#: waste their ``kernel - 1`` overlap, so blocks never shrink below this
#: unless the kernel itself is smaller.
_MIN_BLOCK_EDGE = 512

#: Precisions the FFT engine supports.  ``float64`` is the default and
#: the accuracy contract; ``float32`` is the opt-in hot path (complex64
#: spectra, roughly half the memory traffic) gated by the calibrated
#: conformance suite.
ENGINE_DTYPES = (np.dtype(np.float64), np.dtype(np.float32))


def check_dtype(dtype) -> np.dtype:
    """Normalise and validate an engine precision request.

    Accepts anything :func:`numpy.dtype` does (``"float32"``,
    ``np.float32``, a dtype instance); rejects everything outside
    :data:`ENGINE_DTYPES` with an actionable error.
    """
    dt = np.dtype(dtype)
    if dt not in ENGINE_DTYPES:
        names = "|".join(d.name for d in ENGINE_DTYPES)
        raise ValueError(
            f"unsupported engine dtype {dt.name!r}; expected one of {names}"
        )
    return dt


def choose_block_shape(
    noise_shape: Tuple[int, int],
    kernel_shape: Tuple[int, int],
    max_block_elems: int = DEFAULT_MAX_BLOCK_ELEMS,
) -> Tuple[int, int]:
    """FFT block shape for a valid correlation of ``kernel`` over ``noise``.

    Returns per-axis FFT lengths ``(bx, by)`` with ``bx >= kx``,
    ``by >= ky``.  Whole-window transforms (padded to the next fast FFT
    length) are preferred; beyond ``max_block_elems`` the window is
    processed in overlap-save blocks of roughly twice the kernel support
    (never below :data:`_MIN_BLOCK_EDGE`), which keeps the redundant
    overlap fraction at ~50% while bounding scratch memory.
    """
    nx, ny = noise_shape
    kx, ky = kernel_shape
    fx = sfft.next_fast_len(nx, real=True)
    fy = sfft.next_fast_len(ny, real=True)
    if fx * fy <= max_block_elems:
        return (fx, fy)
    bx = sfft.next_fast_len(min(nx, max(2 * kx - 1, _MIN_BLOCK_EDGE)), real=True)
    by = sfft.next_fast_len(min(ny, max(2 * ky - 1, _MIN_BLOCK_EDGE)), real=True)
    return (bx, by)


def common_margins(kernels: Sequence["Kernel"]) -> Tuple[int, int, int, int]:
    """One-sided noise margins covering every kernel of a batch.

    A valid correlation with kernel ``m`` (centre ``cx_m, cy_m``) reads
    ``cx_m`` noise samples to the left of an output sample and
    ``kx_m - 1 - cx_m`` to its right (and likewise in ``y``).  The
    common margins

    ``(lx, rx, ly, ry) = (max cx, max (kx-1-cx), max cy, max (ky-1-cy))``

    therefore describe the smallest single noise window from which
    *all* kernels of the batch can be applied to the same output window
    (footprint ``(lx + rx + 1, ly + ry + 1)``).  The batched engine
    derives its block geometry from these margins, so callers that want
    pruning to be bit-transparent must compute them from the *full*
    kernel set and pass them explicitly.
    """
    if not kernels:
        raise ValueError("common_margins() needs at least one kernel")
    lx = max(k.cx for k in kernels)
    rx = max(k.shape[0] - 1 - k.cx for k in kernels)
    ly = max(k.cy for k in kernels)
    ry = max(k.shape[1] - 1 - k.cy for k in kernels)
    return (lx, rx, ly, ry)


@dataclass
class BatchStats:
    """Mutable FFT-work counters filled in by the batched engine.

    ``forward_ffts`` counts noise-block transforms (one per overlap-save
    block, shared by every kernel of the batch); ``inverse_ffts`` counts
    per-kernel inverse transforms; ``kernels_active``/``kernels_skipped``
    count batch entries convolved vs pruned.  The per-region PR 1 path
    would have paid ``blocks * kernels_active`` forward transforms.
    """

    forward_ffts: int = 0
    inverse_ffts: int = 0
    blocks: int = 0
    kernels_active: int = 0
    kernels_skipped: int = 0

    def merge(self, other: "BatchStats") -> None:
        self.forward_ffts += other.forward_ffts
        self.inverse_ffts += other.inverse_ffts
        self.blocks += other.blocks
        self.kernels_active += other.kernels_active
        self.kernels_skipped += other.kernels_skipped

    def as_dict(self) -> Dict[str, int]:
        return {
            "forward_ffts": self.forward_ffts,
            "inverse_ffts": self.inverse_ffts,
            "blocks": self.blocks,
            "kernels_active": self.kernels_active,
            "kernels_skipped": self.kernels_skipped,
        }


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time counters of a :class:`KernelPlanCache`.

    ``hits``/``misses``/``evictions`` are monotone since the last
    :meth:`KernelPlanCache.clear`; ``size`` is the current entry count.
    """

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "maxsize": self.maxsize,
        }


class KernelPlan:
    """Cached spectral image of one kernel at one FFT block shape.

    Attributes
    ----------
    kfft:
        ``rfft2`` of the index-flipped kernel zero-padded to
        ``block_shape``, divided by ``norm`` — multiplying a noise
        block's spectrum by this and inverse-transforming yields the
        valid *correlation* (paper eqn 36) of the unit-scale kernel.
        Complex precision follows ``dtype`` (``complex64`` for a
        ``float32`` plan).
    norm:
        Scale of the kernel the plan was built from (``h`` for
        identity-keyed kernels, 1.0 for fingerprint-keyed ones); the
        engine multiplies the output by the *requesting* kernel's scale.
    dtype:
        Real precision the plan was built at; part of the cache key, so
        a ``float32`` request can never be served a ``float64`` plan
        (or vice versa).
    """

    __slots__ = ("key", "block_shape", "kernel_shape", "kfft", "norm",
                 "dtype")

    def __init__(
        self,
        key: Hashable,
        block_shape: Tuple[int, int],
        kernel_shape: Tuple[int, int],
        kfft: np.ndarray,
        norm: float,
        dtype: np.dtype = np.dtype(np.float64),
    ) -> None:
        self.key = key
        self.block_shape = block_shape
        self.kernel_shape = kernel_shape
        self.kfft = kfft
        self.norm = norm
        self.dtype = np.dtype(dtype)

    @property
    def nbytes(self) -> int:
        """Memory held by the cached spectrum."""
        return int(self.kfft.nbytes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"KernelPlan(kernel={self.kernel_shape}, block={self.block_shape}, "
            f"norm={self.norm:g})"
        )


def _build_plan(kernel: "Kernel", block_shape: Tuple[int, int],
                key: Hashable, dtype: np.dtype = np.dtype(np.float64),
                backend: Optional[ArrayBackend] = None) -> KernelPlan:
    xp = backend if backend is not None else get_backend("numpy")
    dtype = check_dtype(dtype)
    kx, ky = kernel.shape
    bx, by = block_shape
    if bx < kx or by < ky:
        raise ValueError(
            f"FFT block {block_shape} smaller than kernel {kernel.shape}"
        )
    padded = xp.empty((bx, by), dtype)
    padded[:] = 0.0
    # Index flip turns the FFT's circular convolution into the
    # correlation of eqn (36).  A float32 plan rounds the kernel here,
    # once, instead of on every block.
    padded[:kx, :ky] = kernel.values[::-1, ::-1]
    norm = kernel.plan_scale
    kfft = xp.rfft2(padded)
    if norm != 1.0:
        kfft /= norm
    return KernelPlan(key=key, block_shape=block_shape,
                      kernel_shape=(kx, ky), kfft=kfft, norm=norm,
                      dtype=dtype)


class KernelPlanCache:
    """Bounded, thread-safe LRU cache of :class:`KernelPlan` objects.

    One process-wide instance (:data:`plan_cache`) backs the default FFT
    engine; independent instances may be passed to the engine entry
    points for isolation (tests, bounded services).

    Parameters
    ----------
    maxsize:
        Maximum number of plans retained (>= 1).  The least recently
        used plan is evicted on overflow; evictions are counted.
    """

    def __init__(self, maxsize: int = 32) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self._maxsize = int(maxsize)
        self._plans: "OrderedDict[Hashable, KernelPlan]" = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    def get_plan(self, kernel: "Kernel", block_shape: Tuple[int, int],
                 dtype=np.float64,
                 backend: Optional[ArrayBackend] = None) -> KernelPlan:
        """Fetch (or build and cache) the plan for ``(kernel, block, dtype)``.

        Identity-keyed kernels that differ only in overall scale map to
        the same entry; see the module docstring for the keying rules.
        ``dtype`` is part of the key: a ``float32`` request never
        receives a ``float64`` plan or vice versa (the spectra differ in
        both precision and rounding).
        """
        bx, by = int(block_shape[0]), int(block_shape[1])
        dt = check_dtype(dtype)
        # The kernel shape is part of the key so that an identity whose
        # energy truncation lands on different half-widths across ``h``
        # variants (borderline rounding) gets a fresh entry instead of a
        # silently mis-shaped plan.
        key = (kernel.plan_key, kernel.shape, bx, by, dt.str)
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None:
                self._hits += 1
                obs.add("engine.plan_cache.hits")
                self._plans.move_to_end(key)
                return plan
            self._misses += 1
            obs.add("engine.plan_cache.misses")
            with obs.trace("engine.plan.build"):
                plan = _build_plan(kernel, (bx, by), key, dt, backend)
            self._plans[key] = plan
            while len(self._plans) > self._maxsize:
                self._plans.popitem(last=False)
                self._evictions += 1
                obs.add("engine.plan_cache.evictions")
            return plan

    # ------------------------------------------------------------------
    def stats(self) -> CacheStats:
        """Current counters (thread-safe snapshot)."""
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._plans),
                maxsize=self._maxsize,
            )

    def clear(self) -> None:
        """Drop all plans and reset the counters."""
        with self._lock:
            self._plans.clear()
            self._hits = self._misses = self._evictions = 0

    def configure(self, maxsize: int) -> None:
        """Change the retention bound, evicting LRU entries if needed."""
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        with self._lock:
            self._maxsize = int(maxsize)
            while len(self._plans) > self._maxsize:
                self._plans.popitem(last=False)
                self._evictions += 1
                obs.add("engine.plan_cache.evictions")

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._plans

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"KernelPlanCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses}, evictions={s.evictions})"
        )


#: The process-wide plan cache used by the default FFT engine.  Shared
#: across threads (locked); worker processes each hold their own copy
#: and warm it deterministically, so backends stay bit-identical.
plan_cache = KernelPlanCache()
