"""Pluggable array backend for the FFT engine.

The overlap-save engine (:mod:`repro.core.engine`,
:mod:`repro.core.convolution`) needs exactly four array operations:
real-to-complex 2D FFTs in both directions, uninitialised allocation,
and dtype coercion.  This module puts those four behind a minimal seam
— :class:`ArrayBackend` — so an accelerator backend (CuPy, torch) can
be dropped in later by registering an object with the same four
methods, without touching the engine's block arithmetic.

Design constraints, in order:

1. **Bit-identical default.**  The ``"numpy"`` backend delegates to the
   exact ``scipy.fft`` calls the engine made before the seam existed,
   so every surface, cache key, and cross-engine equivalence bound is
   unchanged (property-tested in ``tests/test_backend.py``).
2. **Zero hot-path overhead.**  Backends are plain objects resolved
   once per engine call (a dict lookup); no wrappers around the arrays
   themselves.
3. **dtype awareness.**  ``empty``/``asarray`` take an explicit dtype
   so the engine's opt-in ``float32`` mode flows through the same seam
   (``float32`` in → ``complex64`` spectra → ``float32`` out, with no
   silent up-casts).

Future accelerator backends should subclass (or duck-type)
:class:`ArrayBackend` and call :func:`register_backend`; the registry is
deliberately name-keyed so configuration layers (CLI, job specs) can
select backends by string.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import fft as sfft

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "get_backend",
    "register_backend",
    "available_backends",
]


class ArrayBackend:
    """The four array operations the FFT engine is written against.

    Subclasses (or duck-typed equivalents) must preserve the numpy
    backend's semantics: ``rfft2(a, s)`` zero-pads/crops to ``s`` and
    transforms the last two axes, ``irfft2`` inverts it back to a real
    array of shape ``s``, ``empty`` returns an uninitialised array, and
    ``asarray`` coerces dtype without copying when possible.  Complex
    precision follows the real input (``float32 -> complex64``,
    ``float64 -> complex128``).
    """

    #: Registry key; also what appears in provenance records.
    name: str = "abstract"

    def rfft2(self, a: np.ndarray,
              s: Optional[Tuple[int, int]] = None) -> np.ndarray:
        raise NotImplementedError

    def irfft2(self, a: np.ndarray,
               s: Optional[Tuple[int, int]] = None) -> np.ndarray:
        raise NotImplementedError

    def empty(self, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        raise NotImplementedError

    def asarray(self, a, dtype=None) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


class NumpyBackend(ArrayBackend):
    """The default CPU backend: ``scipy.fft`` + ``numpy`` allocation.

    ``scipy.fft`` (pocketfft) is used rather than ``numpy.fft`` because
    it preserves single precision end to end — ``numpy.fft`` up-casts
    ``float32`` input to ``complex128`` — and because it is what the
    engine called before this seam existed, keeping results
    bit-identical.
    """

    name = "numpy"

    def rfft2(self, a: np.ndarray,
              s: Optional[Tuple[int, int]] = None) -> np.ndarray:
        return sfft.rfft2(a, s=s)

    def irfft2(self, a: np.ndarray,
               s: Optional[Tuple[int, int]] = None) -> np.ndarray:
        return sfft.irfft2(a, s=s)

    def empty(self, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        return np.empty(shape, dtype=dtype)

    def asarray(self, a, dtype=None) -> np.ndarray:
        return np.asarray(a, dtype=dtype)


_REGISTRY: Dict[str, ArrayBackend] = {}
_REGISTRY_LOCK = threading.Lock()


def register_backend(backend: ArrayBackend, *,
                     replace: bool = False) -> ArrayBackend:
    """Register ``backend`` under ``backend.name``.

    Registering a second backend under an existing name requires
    ``replace=True`` — accidental shadowing of ``"numpy"`` would
    silently change every engine result.
    """
    name = getattr(backend, "name", None)
    if not name or not isinstance(name, str):
        raise ValueError("backend must carry a non-empty string .name")
    with _REGISTRY_LOCK:
        if name in _REGISTRY and not replace:
            raise ValueError(
                f"backend {name!r} is already registered; pass "
                f"replace=True to override it"
            )
        _REGISTRY[name] = backend
    return backend


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, sorted (for error messages and tests)."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_REGISTRY))


def get_backend(name: str = "numpy") -> ArrayBackend:
    """Resolve a backend by name.

    Raises a :class:`ValueError` naming the registered backends when
    ``name`` is unknown, so a typo (or a not-yet-installed accelerator
    backend) fails loudly at configuration time, not inside a tile.
    """
    if isinstance(name, ArrayBackend):
        return name  # already resolved — idempotent for internal callers
    with _REGISTRY_LOCK:
        backend = _REGISTRY.get(name)
    if backend is None:
        known = ", ".join(repr(n) for n in available_backends())
        raise ValueError(
            f"unknown array backend {name!r}; registered backends: "
            f"{known}.  Register a custom backend with "
            f"repro.core.backend.register_backend()."
        )
    return backend


#: The default backend, registered eagerly so ``get_backend()`` with no
#: arguments always works.
numpy_backend = register_backend(NumpyBackend())
