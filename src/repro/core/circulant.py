"""Circulant-embedding exact sampler: the convolution method's oracle.

The paper's convolution method (:mod:`repro.core.convolution`) targets
the *discretised* spectrum — its surface variance is ``sum(w)`` and its
covariance the DFT of the weighting array.  Every statistical test of it
is therefore, ultimately, a self-check.  Circulant embedding (Dietrich &
Newsam 1997; Lang & Potthoff, "Fast simulation of Gaussian random
fields") samples a stationary Gaussian field *exactly* from its analytic
autocovariance, which makes it an independent correctness oracle (and a
fast sampler in its own right).

Construction, for a target covariance ``R(x, y)`` on an ``nx x ny``
window of an ``(dx, dy)``-spaced lattice:

1. **Even-extension embedding.**  Choose an embedding torus
   ``Mx x My`` with ``Mi >= embed_factor * ni`` (rounded up to an
   FFT-friendly size) and build the wrapped covariance

   .. math::

      c_{ij} = R(\\min(i, M_x - i)\\,dx,\\ \\min(j, M_y - j)\\,dy),

   i.e. the even periodic extension of the covariance's first row — a
   nested block-circulant (BCCB) matrix whose eigenvalues are just
   ``fft2(c)``.

2. **Non-negativity repair.**  The BCCB matrix is a valid covariance iff
   every eigenvalue is non-negative.  For smooth covariances and a large
   enough torus they are (Gaussian ACF decays super-exponentially);
   slowly decaying families can produce small negative eigenvalues,
   which are clipped to zero and *reported*: the generator records the
   minimum eigenvalue, the number clipped, and the clipped mass fraction
   in :attr:`CirculantGenerator.embedding_info` and in every surface's
   provenance, so tests can gate on the repair being negligible rather
   than trusting it silently.

3. **Exact draw.**  With ``lam = max(fft2(c), 0)`` and
   ``zeta = a + i b`` (``a, b`` i.i.d. standard normal on the torus),

   .. math::

      W = \\mathrm{fft2}\\bigl(\\sqrt{\\lambda / (M_x M_y)}\\; \\zeta\\bigr)

   has zero pseudo-covariance (``E[zeta^2] = 0``), so ``Re W`` and
   ``Im W`` are two *independent* Gaussian fields, each with covariance
   exactly ``c`` — in particular exactly ``R`` at every lag shorter than
   half the torus.  One FFT yields two surfaces; :meth:`generate`
   returns the real part of the window ``[:nx, :ny]``.

The sampler implements the unified :class:`~repro.core.api.
SurfaceGenerator` protocol.  Its ``generate_window`` semantics differ
from the convolution method's in one documented way: the underlying
field is the *exactly periodic* embedding torus (period ``Mx x My``)
keyed by ``noise.seed``, so windows agree exactly on overlaps but the
surface is periodic rather than unbounded.  That is the right trade for
an oracle — exactness over extent.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

import numpy as np
from scipy import fft as sfft

from .api import HeightField, merge_provenance, traced
from .engine import check_dtype
from .grid import Grid2D
from .rng import BlockNoise, SeedLike, as_generator
from .spectra import Spectrum

__all__ = ["CirculantGenerator", "embedded_covariance", "embedding_eigenvalues"]


def embedded_covariance(spectrum: Spectrum, grid: Grid2D,
                        shape: Tuple[int, int]) -> np.ndarray:
    """First row ``c`` of the BCCB embedding: even-extended covariance.

    ``c[i, j] = R(min(i, Mx-i)*dx, min(j, My-j)*dy)`` — the wrapped-lag
    evaluation of the spectrum's analytic autocovariance on the
    ``shape = (Mx, My)`` torus.  Symmetric under ``i -> Mx - i`` by
    construction, so ``fft2(c)`` is real.
    """
    mx, my = int(shape[0]), int(shape[1])
    ix = np.arange(mx)
    iy = np.arange(my)
    xlag = np.minimum(ix, mx - ix) * grid.dx
    ylag = np.minimum(iy, my - iy) * grid.dy
    return np.asarray(
        spectrum.autocorrelation(xlag[:, None], ylag[None, :]), dtype=float
    )


def embedding_eigenvalues(cov: np.ndarray) -> np.ndarray:
    """Eigenvalues of the BCCB matrix with first row ``cov``.

    The imaginary part of ``fft2`` of the even-symmetric row is pure
    rounding noise and is dropped.
    """
    return sfft.fft2(cov).real


class CirculantGenerator:
    """Exact stationary-Gaussian sampler by circulant embedding.

    Implements the unified :class:`~repro.core.api.SurfaceGenerator`
    protocol, so it drops into the same ensemble/statistics helpers as
    the convolution generator — which is precisely how the oracle tier
    (``tests/test_oracle_circulant.py``) uses it.

    Parameters
    ----------
    spectrum:
        Target spectral density; only its analytic ``autocorrelation``
        is used (no weighting array, no kernel — nothing shared with the
        convolution path, which is what makes the comparison an
        independent check).
    grid:
        Output window shape and lattice spacing.
    embed_factor:
        Torus oversize factor (default 2.0): each embedding axis is at
        least ``embed_factor * n`` samples, rounded up to an
        FFT-friendly length.  Larger tori push the wrap-around further
        out and make negative eigenvalues rarer, at FFT cost.
    on_negative:
        ``"clip"`` (default) zeroes negative eigenvalues and records the
        repair diagnostics; ``"raise"`` refuses to sample from an
        invalid embedding instead.
    dtype:
        Output precision (``"float64"`` default, ``"float32"`` opt-in).
        Sampling always runs in float64 — the oracle should not inherit
        the engine's single-precision rounding — and casts at the end.

    Attributes
    ----------
    embedding_info:
        Dict with ``embedding`` (``[Mx, My]``), ``eig_min``,
        ``eig_clipped`` (count) and ``eig_clipped_mass`` (clipped
        negative mass as a fraction of total absolute eigenvalue mass);
        merged into every generated surface's provenance.
    """

    def __init__(
        self,
        spectrum: Spectrum,
        grid: Grid2D,
        embed_factor: float = 2.0,
        on_negative: str = "clip",
        dtype="float64",
    ) -> None:
        if embed_factor < 1.0:
            raise ValueError("embed_factor must be >= 1")
        if on_negative not in ("clip", "raise"):
            raise ValueError(
                f"on_negative must be 'clip' or 'raise', got {on_negative!r}"
            )
        self.spectrum = spectrum
        self.grid = grid
        self.embed_factor = float(embed_factor)
        self.on_negative = on_negative
        self.dtype = check_dtype(dtype)
        self.engine = "circulant"  # SurfaceGenerator protocol attribute
        mx = sfft.next_fast_len(max(int(math.ceil(embed_factor * grid.nx)),
                                    grid.nx))
        my = sfft.next_fast_len(max(int(math.ceil(embed_factor * grid.ny)),
                                    grid.ny))
        self.embedding_shape: Tuple[int, int] = (mx, my)
        self._amplitude: Optional[np.ndarray] = None
        self.embedding_info: Dict[str, object] = {}
        # one cached torus realisation for the windowed path, keyed by
        # the BlockNoise seed (regenerating it per window would be
        # quadratic in tiles)
        self._torus_seed: Optional[int] = None
        self._torus_field: Optional[np.ndarray] = None

    # -- embedding ---------------------------------------------------------
    def _ensure_embedding(self) -> np.ndarray:
        """Build (once) ``sqrt(lam / (Mx*My))`` plus repair diagnostics."""
        if self._amplitude is not None:
            return self._amplitude
        mx, my = self.embedding_shape
        cov = embedded_covariance(self.spectrum, self.grid, (mx, my))
        lam = embedding_eigenvalues(cov)
        eig_min = float(lam.min())
        neg = lam < 0.0
        n_clipped = int(neg.sum())
        total = float(np.abs(lam).sum())
        clipped_mass = float(-lam[neg].sum() / total) if total > 0 else 0.0
        if n_clipped and self.on_negative == "raise":
            raise ValueError(
                f"circulant embedding of {self.spectrum!r} on torus "
                f"({mx}, {my}) is not non-negative definite: min eigenvalue "
                f"{eig_min:.3e}, {n_clipped} negative (mass fraction "
                f"{clipped_mass:.3e}); enlarge embed_factor or pass "
                f"on_negative='clip'"
            )
        if n_clipped:
            lam = np.maximum(lam, 0.0)
        self.embedding_info = {
            "embedding": [mx, my],
            "embed_factor": self.embed_factor,
            "eig_min": eig_min,
            "eig_clipped": n_clipped,
            "eig_clipped_mass": clipped_mass,
        }
        self._amplitude = np.sqrt(lam / (mx * my))
        return self._amplitude

    def _draw_torus(self, seed: SeedLike) -> np.ndarray:
        """One exact realisation on the full embedding torus (float64)."""
        amp = self._ensure_embedding()
        mx, my = self.embedding_shape
        rng = as_generator(seed)
        zeta = rng.standard_normal((mx, my)) + 1j * rng.standard_normal(
            (mx, my)
        )
        return sfft.fft2(amp * zeta).real

    # -- protocol ----------------------------------------------------------
    def generate(
        self,
        seed: SeedLike = None,
        *,
        trace: bool = False,
        provenance: Optional[dict] = None,
    ) -> HeightField:
        """One exact realisation on the construction grid.

        The embedded torus is drawn from ``seed`` and the ``(nx, ny)``
        corner window returned; its covariance equals the spectrum's
        analytic ``R`` at every in-window lag (no truncation, no
        discretised-spectrum bias).
        """
        with traced(self, trace):
            torus = self._draw_torus(seed)
            heights = np.ascontiguousarray(
                torus[: self.grid.nx, : self.grid.ny]
            )
            if heights.dtype != self.dtype:
                heights = heights.astype(self.dtype)
        record = {
            "method": "circulant",
            "dtype": self.dtype.name,
            **self.embedding_info,
        }
        if hasattr(self.spectrum, "to_dict"):
            record["spectrum"] = self.spectrum.to_dict()
        return HeightField.wrap(heights, merge_provenance(record, provenance))

    def generate_pair(
        self,
        seed: SeedLike = None,
        *,
        trace: bool = False,
        provenance: Optional[dict] = None,
    ) -> Tuple[HeightField, HeightField]:
        """Two *independent* exact realisations from one torus FFT.

        The real and imaginary parts of the complex draw are
        uncorrelated (zero pseudo-covariance), so the second surface is
        free — the oracle tier uses this to double its ensemble size at
        no extra FFT cost.
        """
        with traced(self, trace):
            amp = self._ensure_embedding()
            mx, my = self.embedding_shape
            rng = as_generator(seed)
            zeta = rng.standard_normal((mx, my)) + 1j * rng.standard_normal(
                (mx, my)
            )
            w = sfft.fft2(amp * zeta)
            parts = []
            for component, field in (("real", w.real), ("imag", w.imag)):
                heights = np.ascontiguousarray(
                    field[: self.grid.nx, : self.grid.ny]
                )
                if heights.dtype != self.dtype:
                    heights = heights.astype(self.dtype)
                record = {
                    "method": "circulant",
                    "component": component,
                    "dtype": self.dtype.name,
                    **self.embedding_info,
                }
                if hasattr(self.spectrum, "to_dict"):
                    record["spectrum"] = self.spectrum.to_dict()
                parts.append(HeightField.wrap(
                    heights, merge_provenance(record, provenance)
                ))
        return parts[0], parts[1]

    def generate_window(
        self, noise: BlockNoise, x0: int, y0: int, nx: int, ny: int,
        *, trace: bool = False, provenance: Optional[dict] = None,
    ) -> HeightField:
        """Window ``[x0, x0+nx) x [y0, y0+ny)`` of the periodic torus.

        Deterministic in ``noise.seed`` (the :class:`~repro.core.rng.
        BlockNoise` block structure is not used — the torus has its own
        exact sampling scheme); windows agree exactly on overlaps.  The
        surface repeats with period ``embedding_shape``, which is the
        documented difference from the convolution method's unbounded
        noise plane.
        """
        with traced(self, trace, "generate_window"):
            if self._torus_seed != noise.seed or self._torus_field is None:
                self._torus_field = self._draw_torus(noise.seed)
                self._torus_seed = noise.seed
            mx, my = self.embedding_shape
            ix = np.arange(x0, x0 + nx) % mx
            iy = np.arange(y0, y0 + ny) % my
            heights = np.ascontiguousarray(
                self._torus_field[np.ix_(ix, iy)]
            )
            if heights.dtype != self.dtype:
                heights = heights.astype(self.dtype)
        record = {
            "method": "circulant-window",
            "window": [x0, y0, nx, ny],
            "noise_seed": noise.seed,
            "dtype": self.dtype.name,
            **self.embedding_info,
        }
        return HeightField.wrap(heights, merge_provenance(record, provenance))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CirculantGenerator(spectrum={self.spectrum!r}, "
            f"embedding={self.embedding_shape}, "
            f"embed_factor={self.embed_factor}, dtype={self.dtype.name!r})"
        )
