"""Core algorithms: spectra, weighting arrays, DFT & convolution methods,
and inhomogeneous generation (the paper's primary contribution)."""

from .api import HeightField, SurfaceGenerator, split_result
from .backend import (
    ArrayBackend,
    NumpyBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .circulant import (
    CirculantGenerator,
    embedded_covariance,
    embedding_eigenvalues,
)
from .convolution import (
    ENGINES,
    ConvolutionGenerator,
    apply_kernel_valid,
    apply_kernel_valid_fft,
    apply_kernel_valid_spatial,
    convolve_full,
    convolve_reference,
    convolve_spatial,
    generate_window,
    noise_window_for,
    resolve_kernel,
    select_engine,
)
from .engine import (
    CacheStats,
    KernelPlan,
    KernelPlanCache,
    choose_block_shape,
    plan_cache,
)
from .ensemble import RunningFieldStats, ensemble_seeds, generate_ensemble
from .direct_dft import (
    conjugate_mirror,
    direct_dft_surface,
    direct_surface_from_array,
    hermitian_array_from_noise,
    hermitian_random_array,
    is_hermitian,
    spectral_white_noise,
)
from .grid import Grid2D, fold_index, folded_frequency_index
from .inhomogeneous import (
    InhomogeneousGenerator,
    PointOrientedLayout,
    PointSpec,
    blend_fields,
    blend_reference,
    kernel_stack,
    point_oriented_weights,
)
from .rng import BlockNoise, Lcg, as_generator, box_muller, standard_normal_field
from .spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
    Spectrum,
    register_spectrum,
    spectrum_from_dict,
)
from .oned import (
    BlockNoise1D,
    Exponential1D,
    Gaussian1D,
    Kernel1D,
    Matern1D,
    ProfileGenerator,
    Spectrum1D,
    TabulatedSpectrum1D,
    build_kernel_1d,
    marginal_of_2d,
    weight_vector,
)
from .spectra_ext import (
    CompositeSpectrum,
    PiersonMoskowitzSpectrum,
    RotatedSpectrum,
    SelfAffineSpectrum,
    fourier_synthesis,
)
from .surface import Surface
from .transform import (
    correlation_distortion,
    gaussian_to_marginal,
    lognormal_transform,
    transform_surface,
    uniform_transform,
    weibull_transform,
)
from .weights import (
    Kernel,
    amplitude_array,
    build_kernel,
    kernel_half_width,
    truncate_kernel,
    truncate_kernel_energy,
    weight_array,
    weight_autocorrelation,
)

__all__ = [
    # unified generator API
    "SurfaceGenerator", "HeightField", "split_result",
    # grid
    "Grid2D", "fold_index", "folded_frequency_index",
    # spectra
    "Spectrum", "GaussianSpectrum", "PowerLawSpectrum", "ExponentialSpectrum",
    "spectrum_from_dict", "register_spectrum",
    # weights / kernels
    "weight_array", "amplitude_array", "weight_autocorrelation",
    "Kernel", "build_kernel", "truncate_kernel", "truncate_kernel_energy",
    "kernel_half_width",
    # rng
    "BlockNoise", "Lcg", "box_muller", "standard_normal_field", "as_generator",
    # direct DFT
    "hermitian_random_array", "hermitian_array_from_noise", "conjugate_mirror",
    "is_hermitian", "spectral_white_noise", "direct_dft_surface",
    "direct_surface_from_array",
    # convolution
    "ConvolutionGenerator", "convolve_full", "convolve_spatial",
    "convolve_reference", "apply_kernel_valid", "apply_kernel_valid_spatial",
    "apply_kernel_valid_fft", "generate_window",
    "noise_window_for", "resolve_kernel", "select_engine", "ENGINES",
    # FFT engine / plan cache
    "KernelPlan", "KernelPlanCache", "CacheStats", "choose_block_shape",
    "plan_cache",
    # array backends
    "ArrayBackend", "NumpyBackend", "get_backend", "register_backend",
    "available_backends",
    # circulant-embedding oracle
    "CirculantGenerator", "embedded_covariance", "embedding_eigenvalues",
    # inhomogeneous
    "InhomogeneousGenerator", "PointOrientedLayout", "PointSpec",
    "point_oriented_weights", "blend_fields", "blend_reference", "kernel_stack",
    # surface
    "Surface",
    # extended spectra
    "RotatedSpectrum", "CompositeSpectrum", "PiersonMoskowitzSpectrum",
    "SelfAffineSpectrum", "fourier_synthesis",
    # 1D profiles
    "Spectrum1D", "Gaussian1D", "Exponential1D", "Matern1D",
    "TabulatedSpectrum1D", "marginal_of_2d", "weight_vector",
    "build_kernel_1d", "Kernel1D", "ProfileGenerator", "BlockNoise1D",
    # ensembles
    "ensemble_seeds", "generate_ensemble", "RunningFieldStats",
    # marginal transforms
    "gaussian_to_marginal", "lognormal_transform", "weibull_transform",
    "uniform_transform", "transform_surface", "correlation_distortion",
]
