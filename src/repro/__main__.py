"""Allow ``python -m repro`` as an alias of the ``repro-rrs`` CLI."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
