"""Out-of-core verification of generated surfaces against their spectra.

Closes the generate -> measure -> assert loop: a single streaming pass
over a memmapped :class:`~repro.io.store.SurfaceStore` (or an in-memory
array through the identical code path) measures RMS height/gradient, the
ACF at the correlation length, and the radially averaged Welch PSD, then
gates each against targets derived from the requested spectrum's
discrete weight array.  Results are versioned ``repro.verify/v1``
reports consumed by ``repro verify``, the jobs post-generation stage,
and ``GET /v1/jobs/{id}/verify``.
"""

from .report import VERIFY_SCHEMA, MetricResult, ReportError, VerifyReport
from .streaming import choose_segment, stream_statistics
from .verifier import (
    REPORT_NAME,
    VerifyConfig,
    VerifyError,
    load_report,
    verify_heights,
    verify_job,
    verify_store,
    write_report,
)

__all__ = [
    "VERIFY_SCHEMA",
    "MetricResult",
    "ReportError",
    "VerifyReport",
    "choose_segment",
    "stream_statistics",
    "REPORT_NAME",
    "VerifyConfig",
    "VerifyError",
    "load_report",
    "verify_heights",
    "verify_job",
    "verify_store",
    "write_report",
]
