"""Single-pass, out-of-core statistics over a windowed height reader.

Everything in :mod:`repro.verify` consumes surfaces through one seam: a
``read(x0, y0, nx, ny) -> ndarray`` callable.  A memmapped
:class:`~repro.io.store.SurfaceStore` supplies ``read_window``; an
in-memory array supplies a slicing closure.  Both paths then execute the
*identical* accumulation — same windows, same order, same float64 ops —
so the streamed and in-memory verification metrics agree bit-for-bit
(the differential suite asserts exactly that).

The pass tiles the surface into absolute ``segment x segment`` windows
(row-major, matching :func:`repro.stats.welch_spectrum`'s patch layout)
and reads each window once, extended by a small halo that serves the
forward-difference gradient and the ACF lag pairs.  Peak resident memory
is a few windows, independent of the surface size.
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from ..core.grid import Grid2D
from ..stats.spectral import periodogram

__all__ = ["choose_segment", "stream_statistics"]

Reader = Callable[[int, int, int, int], np.ndarray]

#: Auto-selected Welch segment edge (power of two); halved until at least
#: two segments fit per axis.  256 on the 4096^2 reference workload.
_DEFAULT_SEGMENT = 256

#: Smallest surface edge the streaming pass accepts.
_MIN_EDGE = 8


def choose_segment(shape: Tuple[int, int], requested: int | None = None) -> int:
    """Pick the Welch segment edge for a surface of ``shape``.

    The segment is the unit of streaming: windows of ``segment**2``
    samples are read one at a time.  Auto-selection halves
    ``_DEFAULT_SEGMENT`` until at least two segments fit along the
    shorter axis, which keeps the Welch average over >= 4 patches.
    """
    nx, ny = int(shape[0]), int(shape[1])
    edge = min(nx, ny)
    if edge < _MIN_EDGE:
        raise ValueError(
            f"surface {nx}x{ny} too small to verify (need >= {_MIN_EDGE} per axis)"
        )
    if requested is not None:
        seg = int(requested)
        if seg < 4 or seg % 2:
            raise ValueError(f"segment must be even and >= 4, got {seg}")
        if seg > edge:
            raise ValueError(f"segment {seg} exceeds surface edge {edge}")
        return seg
    seg = _DEFAULT_SEGMENT
    while seg * 2 > edge:
        seg //= 2
    return max(seg, 4)


def stream_statistics(
    read: Reader,
    shape: Tuple[int, int],
    dx: float,
    dy: float,
    *,
    segment: int,
    acf_lags: Sequence[Tuple[int, int]] = (),
    window: str = "hann",
    stride: int = 1,
) -> Dict[str, object]:
    """One streaming pass: moments, gradients, Welch PSD, ACF at lags.

    Parameters
    ----------
    read:
        Window reader ``read(x0, y0, nx, ny)`` returning the height
        window as an array (any float dtype; accumulated in float64).
    shape, dx, dy:
        Full-surface sample counts and spacings.
    segment:
        Welch segment edge (see :func:`choose_segment`).  The analysed
        region is the largest segment-aligned crop; the returned
        ``coverage`` records its fraction of the full surface.
    acf_lags:
        Axis-aligned sample lags ``(lag_x, lag_y)`` (one component zero)
        at which to accumulate autocovariance pair sums.  Lags must be
        smaller than ``segment`` so a one-window halo covers the pairs.
    stride:
        Sample every ``stride``-th window per axis (deterministically,
        starting at the origin window).  ``1`` visits every window; a
        larger stride keeps verification cost sublinear in surface area
        while every accumulated statistic remains an unbiased estimate
        over the sampled windows.  ``n_samples``/``psd_windows`` in the
        result reflect the sampled set; ``windows_total`` records the
        full count.

    Returns a dict of raw measurements; :mod:`repro.verify.verifier`
    turns them into gated metrics.
    """
    nx, ny = int(shape[0]), int(shape[1])
    seg = int(segment)
    stride = int(stride)
    if stride < 1:
        raise ValueError(f"stride must be >= 1, got {stride}")
    sx, sy = nx // seg, ny // seg
    if sx < 1 or sy < 1:
        raise ValueError(f"segment {seg} exceeds surface {nx}x{ny}")
    cx, cy = sx * seg, sy * seg  # segment-aligned crop

    lags = [(int(a), int(b)) for a, b in acf_lags]
    for a, b in lags:
        if (a and b) or a < 0 or b < 0:
            raise ValueError(f"ACF lags must be axis-aligned and >= 0, got {(a, b)}")
        if max(a, b) >= seg:
            raise ValueError(
                f"ACF lag {(a, b)} must be smaller than segment {seg}"
            )
    halo_x = max([1] + [a for a, _ in lags])
    halo_y = max([1] + [b for _, b in lags])

    # Welch machinery — identical to stats.welch_spectrum on the crop.
    sub = Grid2D(nx=seg, ny=seg, lx=seg * float(dx), ly=seg * float(dy))
    if window == "hann":
        wx = np.hanning(seg)
    elif window == "boxcar":
        wx = np.ones(seg)
    else:
        raise ValueError(f"unknown window {window!r}")
    taper = wx[:, None] * wx[None, :]
    norm = np.mean(taper**2)

    n_samples = 0
    h_sum = 0.0
    h_sumsq = 0.0
    gx_sumsq = 0.0
    gx_pairs = 0
    gy_sumsq = 0.0
    gy_pairs = 0
    acf_acc = {lag: {"lr": 0.0, "l": 0.0, "r": 0.0, "n": 0} for lag in lags}
    psd_acc = np.zeros((seg, seg))
    n_windows = 0

    for i in range(0, sx, stride):
        x0 = i * seg
        ax = min(halo_x, nx - (x0 + seg))
        for j in range(0, sy, stride):
            y0 = j * seg
            ay = min(halo_y, ny - (y0 + seg))
            ext = np.asarray(read(x0, y0, seg + ax, seg + ay), dtype=float)
            if ext.shape != (seg + ax, seg + ay):
                raise ValueError(
                    f"reader returned shape {ext.shape}, "
                    f"expected {(seg + ax, seg + ay)}"
                )
            win = ext[:seg, :seg]

            n_samples += win.size
            h_sum += float(win.sum())
            h_sumsq += float((win * win).sum())

            # Forward differences; the +1 halo pairs the window's last
            # row/column with its neighbour, so every interior pair is
            # counted exactly once across the crop.
            mx = min(seg, ext.shape[0] - 1)
            if mx > 0:
                d = ext[1 : mx + 1, :seg] - ext[:mx, :seg]
                gx_sumsq += float((d * d).sum())
                gx_pairs += d.size
            my = min(seg, ext.shape[1] - 1)
            if my > 0:
                d = ext[:seg, 1 : my + 1] - ext[:seg, :my]
                gy_sumsq += float((d * d).sum())
                gy_pairs += d.size

            for lag in lags:
                la, lb = lag
                if la:
                    m = min(seg, ext.shape[0] - la)
                    left = ext[:m, :seg]
                    right = ext[la : la + m, :seg]
                else:
                    m = min(seg, ext.shape[1] - lb)
                    left = ext[:seg, :m]
                    right = ext[:seg, lb : lb + m]
                if m > 0:
                    acc = acf_acc[lag]
                    acc["lr"] += float((left * right).sum())
                    acc["l"] += float(left.sum())
                    acc["r"] += float(right.sum())
                    acc["n"] += left.size

            # Same ops as welch_spectrum: per-patch demean, taper,
            # periodogram without re-demeaning.
            patch = (win - win.mean()) * taper
            psd_acc += periodogram(patch, sub, demean=False)
            n_windows += 1

    mean = h_sum / n_samples
    var = max(h_sumsq / n_samples - mean * mean, 0.0)

    acf = {}
    for lag, acc in acf_acc.items():
        n = acc["n"]
        if n == 0 or var == 0.0:
            acf[lag] = {"count": n, "cov": float("nan"), "coef": float("nan")}
            continue
        cov = acc["lr"] / n - (acc["l"] / n) * (acc["r"] / n)
        acf[lag] = {"count": n, "cov": cov, "coef": cov / var}

    return {
        "shape": (nx, ny),
        "crop": (cx, cy),
        "coverage": (cx * cy) / (nx * ny),
        "segment": seg,
        "stride": stride,
        "windows_total": sx * sy,
        "window": window,
        "n_samples": n_samples,
        "mean": mean,
        "var": var,
        "rms": float(np.sqrt(var)),
        "grad_msq_x": (gx_sumsq / gx_pairs) / (dx * dx) if gx_pairs else float("nan"),
        "grad_msq_y": (gy_sumsq / gy_pairs) / (dy * dy) if gy_pairs else float("nan"),
        "grad_pairs": (gx_pairs, gy_pairs),
        "acf": acf,
        "psd_grid": sub,
        "psd": psd_acc / (n_windows * norm),
        "psd_windows": n_windows,
    }
