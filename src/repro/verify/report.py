"""The versioned ``repro.verify/v1`` report document.

A verification run reduces a generated surface to a small set of
spectrum-derived metrics, each compared against a target with an
explicit tolerance.  The report is the durable artefact: jobs
checkpoint it next to the manifest, ``repro verify`` prints it, and
serve returns it from ``GET /v1/jobs/{id}/verify`` — so its shape is
versioned and round-trips exactly (``to_dict``/``from_dict``,
``to_json``/``from_json``), like ``repro.spec/v1`` and
``repro.store/v1`` before it.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["VERIFY_SCHEMA", "MetricResult", "VerifyReport", "ReportError"]

#: Schema tag of the verification report document.
VERIFY_SCHEMA = "repro.verify/v1"


class ReportError(ValueError):
    """A report document does not conform to ``repro.verify/v1``."""


@dataclass(frozen=True)
class MetricResult:
    """One verified statistic.

    ``passed`` is ``True``/``False`` for gated metrics and ``None`` for
    informational ones (e.g. a Hurst fit whose trusted band was too
    narrow to gate on) — ``None`` never fails a report.
    """

    name: str
    measured: Optional[float]
    target: Optional[float]
    tolerance: Optional[float]
    passed: Optional[bool]
    detail: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "measured": self.measured,
            "target": self.target,
            "tolerance": self.tolerance,
            "passed": self.passed,
            "detail": dict(self.detail),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "MetricResult":
        try:
            return cls(
                name=str(doc["name"]),
                measured=doc.get("measured"),
                target=doc.get("target"),
                tolerance=doc.get("tolerance"),
                passed=doc.get("passed"),
                detail=dict(doc.get("detail") or {}),
            )
        except (KeyError, TypeError) as exc:
            raise ReportError(f"malformed metric entry: {exc!r}") from None

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, MetricResult):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:  # detail dicts are unhashable; key on name
        return hash((self.name, self.measured, self.target))


@dataclass(frozen=True)
class VerifyReport:
    """A full ``repro.verify/v1`` verification document.

    Attributes
    ----------
    surface:
        Geometry and provenance of what was verified: ``shape``,
        ``dx``/``dy``, ``store`` (path or None), ``coverage`` (fraction
        of samples inside the streamed segment tiling).
    spectrum:
        The requested spectrum's ``to_dict()`` (None when verification
        ran without a target spectrum — then only measured values are
        reported and nothing is gated).
    metrics:
        Per-metric measured/target/tolerance/pass tuples.
    config:
        The streaming configuration used (segment size, ACF lags, PSD
        bins, n-sigma) — enough to reproduce the pass bit-for-bit.
    timings:
        Wall-clock accounting; excluded from :meth:`core_dict` so
        determinism checks can compare reports across runs.
    """

    surface: Dict[str, Any]
    spectrum: Optional[Dict[str, Any]]
    metrics: Tuple[MetricResult, ...]
    config: Dict[str, Any]
    passed: bool
    timings: Dict[str, float] = field(default_factory=dict)

    def metric(self, name: str) -> MetricResult:
        for m in self.metrics:
            if m.name == name:
                return m
        raise KeyError(f"report has no metric {name!r}")

    def failures(self) -> List[MetricResult]:
        return [m for m in self.metrics if m.passed is False]

    def core_dict(self) -> Dict[str, Any]:
        """The deterministic part of the document (no timings)."""
        return {
            "schema": VERIFY_SCHEMA,
            "surface": dict(self.surface),
            "spectrum": dict(self.spectrum) if self.spectrum else None,
            "config": dict(self.config),
            "metrics": [m.to_dict() for m in self.metrics],
            "passed": self.passed,
        }

    def to_dict(self) -> Dict[str, Any]:
        doc = self.core_dict()
        doc["timings"] = dict(self.timings)
        return doc

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "VerifyReport":
        if not isinstance(doc, dict):
            raise ReportError(f"report must be a dict, got {type(doc)}")
        schema = doc.get("schema")
        if schema != VERIFY_SCHEMA:
            raise ReportError(
                f"unsupported report schema {schema!r} "
                f"(this build reads {VERIFY_SCHEMA!r})"
            )
        metrics = doc.get("metrics")
        if not isinstance(metrics, list):
            raise ReportError("report 'metrics' must be a list")
        return cls(
            surface=dict(doc.get("surface") or {}),
            spectrum=(dict(doc["spectrum"])
                      if doc.get("spectrum") is not None else None),
            metrics=tuple(MetricResult.from_dict(m) for m in metrics),
            config=dict(doc.get("config") or {}),
            passed=bool(doc.get("passed")),
            timings=dict(doc.get("timings") or {}),
        )

    @classmethod
    def from_json(cls, text: str) -> "VerifyReport":
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ReportError(f"invalid JSON: {exc}") from None
        return cls.from_dict(doc)

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, VerifyReport):
            return NotImplemented
        return self.core_dict() == other.core_dict()

    def __hash__(self) -> int:
        return hash((self.passed, tuple(m.name for m in self.metrics)))
