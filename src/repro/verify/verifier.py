"""Gate a generated surface against its requested spectrum.

The verifier runs the single-pass streaming statistics of
:mod:`repro.verify.streaming` over a surface (memmapped store or
in-memory array), derives per-metric *targets* from the requested
:class:`~repro.core.spectra.Spectrum`, and emits a
``repro.verify/v1`` :class:`~repro.verify.report.VerifyReport` with
explicit tolerances.

Targets come from the same discrete weight array the generator sampled
from — computed in row blocks so verification of an ``N x N`` store
never materialises an ``N x N`` array:

- variance target: ``sum(w)`` (paper eqn 21: the weights carry the
  full mean-square height);
- RMS-gradient target: ``sum(w * t)`` with the discrete forward-difference
  factor ``t = (2 - 2 cos(K d)) / d**2`` (matching
  :func:`repro.stats.slope_variance_discrete`);
- ACF target at sample lag ``r``: ``sum(w * cos(K . r)) / sum(w)`` —
  the exact discrete Wiener–Khinchin pair of the weights;
- radial-PSD target: the requested ``W(K)`` binned over the *same*
  annuli as the measured Welch estimate, so the power-law-in-a-bin
  averaging bias cancels instead of needing a tolerance.

Tolerances scale with the effective number of independent correlation
areas in the surface (``repro.stats.effective_sample_count``) and the
number of Welch windows; the ``_TOL`` constants were calibrated against
seeded ensembles (see docs/VERIFY.md).
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import obs
from ..core.grid import Grid2D
from ..core.spectra import Spectrum, spectrum_from_dict
from ..io.store import SurfaceStore
from ..stats.extremes import effective_sample_count
from ..stats.spectral import radial_spectrum
from .report import VERIFY_SCHEMA, MetricResult, VerifyReport
from .streaming import choose_segment, stream_statistics

__all__ = [
    "VerifyConfig",
    "VerifyError",
    "verify_heights",
    "verify_store",
    "verify_job",
    "load_report",
    "write_report",
    "REPORT_NAME",
]

#: File name of the report checkpointed next to a job manifest.
REPORT_NAME = "verify.json"


class VerifyError(ValueError):
    """Verification could not run (incomplete store, missing spectrum...)."""


# -- calibrated tolerance model -------------------------------------------
#
# Each gated metric's tolerance is  max(scale * statistical_sigma, floor).
# The statistical sigma comes from the ensemble fluctuation model
# (sqrt(2/n_eff) for variance-like quantities, per-window counts for the
# Welch bins); scale and floor absorb the model's approximations and were
# calibrated on seeded ensembles so that n_sigma=4 gates pass clean seeds
# with wide margin while catching a wrong (H, qr, sigma, cl) request.
_TOL = {
    "rms_scale": 1.5,
    "rms_floor": 5e-3,
    "grad_scale": 1.5,
    "grad_floor": 2e-2,
    "acf_scale": 1.5,
    "acf_floor": 2e-2,
    "psd_base": 0.05,
    "psd_window_scale": 0.7,
    "hurst_base": 0.05,
    "hurst_window_scale": 0.45,
    "plateau_base": 0.20,
    "plateau_window_scale": 1.2,
}

#: Minimum radial bins required before a band metric gates (below this it
#: is reported as informational, ``passed=None``).
_MIN_BAND_BINS = 5
_MIN_PLATEAU_BINS = 3

#: Band metrics compare log profiles, so they only include bins whose
#: *target* power is within this factor of the strongest band bin.
#: Below it, a super-exponentially decaying spectrum (e.g. Gaussian far
#: tail) falls under the Welch/Hann spectral-leakage floor and the
#: measured profile reports the taper, not the surface — the log ratio
#: there is meaningless at any tolerance.  1e-5 keeps every bin of the
#: paper's power-law-tailed families on production geometries (a
#: ``K^(-2-2H)`` tail spans ~5 decades across the resolved band at
#: H = 1) while sitting two decades above the measured leakage floor.
_BAND_REL_FLOOR = 1e-5

#: Targets are discrete weight sums over the surface's spectral grid.
#: Beyond this many samples per axis the sums are evaluated on a
#: decimated k-grid (same Nyquist range, coarser spacing): the Riemann
#: sums of the paper's smooth spectra converge far below the metric
#: floors well before 1024 points per axis, and full-resolution sums on
#: a large store would dominate verification wall time for no accuracy.
_MAX_TARGET_GRID = 1024


@dataclass(frozen=True)
class VerifyConfig:
    """Streaming-verification knobs (all deterministic).

    ``segment=None`` auto-selects via
    :func:`repro.verify.streaming.choose_segment`.  ``acf_lag=None``
    derives the test lag from the spectrum's correlation lengths.
    ``max_windows`` caps the number of Welch windows actually visited:
    on surfaces with more segment windows than the cap, the pass
    samples a deterministic regular stride of them, keeping
    verification cost roughly constant in surface area (tolerances
    scale with the sampled counts).  ``None`` visits every window.
    """

    segment: Optional[int] = None
    psd_bins: int = 48
    window: str = "hann"
    n_sigma: float = 4.0
    acf_lag: Optional[float] = None
    max_windows: Optional[int] = 36

    def to_dict(self) -> Dict[str, Any]:
        return {
            "segment": self.segment,
            "psd_bins": self.psd_bins,
            "window": self.window,
            "n_sigma": self.n_sigma,
            "acf_lag": self.acf_lag,
            "max_windows": self.max_windows,
        }


# -- spectrum-derived targets ---------------------------------------------

def _weight_sums(
    spectrum: Spectrum,
    nx: int,
    ny: int,
    dx: float,
    dy: float,
    lags: Sequence[Tuple[float, float]],
    block: int = 128,
) -> Dict[str, Any]:
    """Row-blocked discrete weight sums on the surface's spectral grid.

    Returns ``sum(w)``, ``sum(w*t)`` (forward-difference factor), and the
    Wiener–Khinchin ACF sums at the requested physical lags, without ever
    holding more than ``block * ny`` weights.  Above
    ``_MAX_TARGET_GRID`` samples per axis the k-grid is decimated (same
    Nyquist range, coarser ``dK``) — see the constant's rationale.
    """
    nx = min(int(nx), _MAX_TARGET_GRID)
    ny = min(int(ny), _MAX_TARGET_GRID)
    grid = Grid2D(nx=nx, ny=ny, lx=nx * dx, ly=ny * dy)
    kx = grid.kx_folded
    ky = grid.ky_folded
    cell = grid.spectral_cell
    tx = (2.0 - 2.0 * np.cos(kx * dx)) / (dx * dx)
    ty = (2.0 - 2.0 * np.cos(ky * dy)) / (dy * dy)
    sum_w = 0.0
    sum_wt = 0.0
    acf = {tuple(lag): 0.0 for lag in lags}
    for i in range(0, nx, block):
        kxb = kx[i : i + block][:, None]
        w = cell * np.asarray(spectrum.spectrum(kxb, ky[None, :]), dtype=float)
        sum_w += float(w.sum())
        sum_wt += float((w * (tx[i : i + block][:, None] + ty[None, :])).sum())
        for (rx, ry) in acf:
            acf[(rx, ry)] += float((w * np.cos(kxb * rx + ky[None, :] * ry)).sum())
    return {"sum_w": sum_w, "sum_wt": sum_wt, "acf": acf}


def _radial_target(
    spectrum: Spectrum, sub: Grid2D, n_bins: int
) -> Tuple[np.ndarray, np.ndarray]:
    """The requested ``W(K)`` averaged over the measurement's own annuli."""
    kx, ky = sub.k_meshgrid(signed=True)
    w = np.asarray(spectrum.spectrum(kx, ky), dtype=float)
    return radial_spectrum(w, sub, n_bins=n_bins)


def _log_band(
    centres: np.ndarray,
    measured: np.ndarray,
    target: np.ndarray,
    k_lo: float,
    k_hi: float,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Select band bins where both profiles are positive and the target
    is within ``_BAND_REL_FLOOR`` of the band's strongest target bin
    (below that, leakage — not the surface — sets the measurement);
    return ``(k, log(measured), log(target))``."""
    sel = (centres >= k_lo) & (centres <= k_hi) & (measured > 0) & (target > 0)
    if sel.any():
        sel &= target >= _BAND_REL_FLOOR * target[sel].max()
    return centres[sel], np.log(measured[sel]), np.log(target[sel])


# -- metric assembly -------------------------------------------------------

def _metric(
    name: str,
    measured: Optional[float],
    target: Optional[float],
    tol: Optional[float],
    error: Optional[float],
    detail: Optional[Dict[str, Any]] = None,
    gate: bool = True,
) -> MetricResult:
    passed: Optional[bool]
    if not gate or tol is None or error is None or not math.isfinite(error):
        passed = None
    else:
        passed = bool(error <= tol)
    return MetricResult(
        name=name,
        measured=None if measured is None else float(measured),
        target=None if target is None else float(target),
        tolerance=None if tol is None else float(tol),
        passed=passed,
        detail=detail or {},
    )


def _assess(
    raw: Dict[str, Any],
    spectrum: Optional[Spectrum],
    config: VerifyConfig,
    dx: float,
    dy: float,
) -> List[MetricResult]:
    metrics: List[MetricResult] = []
    nx, ny = raw["shape"]
    cx, cy = raw["crop"]
    seg = raw["segment"]
    n_windows = raw["psd_windows"]
    sub: Grid2D = raw["psd_grid"]
    centres, profile = radial_spectrum(raw["psd"], sub, n_bins=config.psd_bins)

    if spectrum is None:
        # No target: report measurements, gate nothing.
        metrics.append(_metric("rms_height", raw["rms"], None, None, None,
                               gate=False))
        metrics.append(_metric(
            "rms_gradient",
            math.sqrt(max(raw["grad_msq_x"] + raw["grad_msq_y"], 0.0)),
            None, None, None, gate=False,
        ))
        return metrics

    n_sigma = config.n_sigma
    qr = getattr(spectrum, "qr", None)
    kind = getattr(spectrum, "kind", "")
    self_affine = kind == "self_affine"

    # Effective independent-sample count over the windows actually
    # sampled (window striding reduces it proportionally).
    clx = float(getattr(spectrum, "clx", 1.0))
    cly = float(getattr(spectrum, "cly", 1.0))
    sampled_frac = raw["n_samples"] / float(cx * cy) if cx * cy else 1.0
    n_eff = max(
        effective_sample_count(cx * dx, cy * dy, clx, cly) * sampled_frac,
        1.0,
    )

    # Lags for the ACF gate: the correlation length in samples, one per axis.
    lag_sx = int(np.clip(round(clx / dx), 1, seg - 1))
    lag_sy = int(np.clip(round(cly / dy), 1, seg - 1))
    lag_phys = [(lag_sx * dx, 0.0), (0.0, lag_sy * dy)]

    targets = _weight_sums(spectrum, nx, ny, dx, dy, lag_phys)
    sum_w = targets["sum_w"]

    # -- RMS height -------------------------------------------------------
    rms_target = math.sqrt(max(sum_w, 0.0))
    rms_rel = abs(raw["rms"] - rms_target) / rms_target if rms_target else None
    rms_tol = max(_TOL["rms_scale"] * n_sigma / math.sqrt(2.0 * n_eff),
                  _TOL["rms_floor"])
    # A roll-off-free self-affine PSD diverges as K -> 0: the realised
    # variance is dominated by a handful of lowest modes, so no
    # finite-surface gate on it is meaningful — report, don't gate.
    gate_rms = not (self_affine and qr is None)
    metrics.append(_metric(
        "rms_height", raw["rms"], rms_target, rms_tol, rms_rel,
        detail={"relative_error": rms_rel, "n_eff": n_eff,
                **({} if gate_rms else
                   {"reason": "no roll-off: lowest modes dominate variance"})},
        gate=gate_rms,
    ))

    # -- RMS gradient -----------------------------------------------------
    grad_msq = raw["grad_msq_x"] + raw["grad_msq_y"]
    grad_target = targets["sum_wt"]
    grad_rel = (abs(grad_msq - grad_target) / grad_target
                if grad_target else None)
    grad_tol = max(_TOL["grad_scale"] * n_sigma * math.sqrt(2.0 / n_eff),
                   _TOL["grad_floor"])
    metrics.append(_metric(
        "rms_gradient",
        math.sqrt(max(grad_msq, 0.0)),
        math.sqrt(max(grad_target, 0.0)),
        grad_tol, grad_rel,
        detail={"relative_error": grad_rel,
                "measured_msq": grad_msq, "target_msq": grad_target},
    ))

    # -- ACF at the correlation length ------------------------------------
    acf_tol = max(_TOL["acf_scale"] * n_sigma / math.sqrt(n_eff),
                  _TOL["acf_floor"])
    for axis, (lag_samples, phys) in (
        ("x", (lag_sx, lag_phys[0])),
        ("y", (lag_sy, lag_phys[1])),
    ):
        coef = raw["acf"].get((lag_samples, 0) if axis == "x"
                              else (0, lag_samples), {}).get("coef")
        target_coef = targets["acf"][phys] / sum_w if sum_w else None
        err = (abs(coef - target_coef)
               if coef is not None and target_coef is not None
               and math.isfinite(coef) else None)
        metrics.append(_metric(
            f"acf_lag_{axis}", coef, target_coef, acf_tol, err,
            detail={"lag_samples": lag_samples,
                    "lag": phys[0] if axis == "x" else phys[1]},
        ))

    # -- radially averaged PSD --------------------------------------------
    t_centres, t_profile = _radial_target(spectrum, sub, config.psd_bins)
    dk_sub = 2.0 * math.pi / (seg * min(dx, dy))
    k_nyq = 0.5 * min(sub.nyquist_kx, sub.nyquist_ky)
    k_lo = 3.0 * dk_sub
    k_hi = k_nyq
    band_k, log_m, log_t = _log_band(t_centres, profile, t_profile, k_lo, k_hi)
    psd_dev = float(np.mean(np.abs(log_m - log_t))) if band_k.size else None
    psd_tol = (_TOL["psd_base"]
               + _TOL["psd_window_scale"] / math.sqrt(max(n_windows, 1)))
    metrics.append(_metric(
        "psd_band", psd_dev, 0.0, psd_tol, psd_dev,
        detail={"k_lo": k_lo, "k_hi": k_hi, "bins": int(band_k.size),
                "windows": n_windows},
        gate=band_k.size >= _MIN_BAND_BINS,
    ))

    # -- self-affine extras: Hurst slope fit + roll-off plateau -----------
    if self_affine:
        hurst = float(getattr(spectrum, "hurst"))
        fit_lo = max(k_lo, 2.5 * qr) if qr is not None else k_lo
        fit_k, fit_log_m, _ = _log_band(t_centres, profile, t_profile,
                                        fit_lo, k_hi)
        if fit_k.size >= _MIN_BAND_BINS:
            slope = float(np.polyfit(np.log(fit_k), fit_log_m, 1)[0])
            h_fit = -(slope + 2.0) / 2.0
            h_err = abs(h_fit - hurst)
            h_tol = (_TOL["hurst_base"]
                     + _TOL["hurst_window_scale"] / math.sqrt(max(n_windows, 1)))
            metrics.append(_metric(
                "hurst_fit", h_fit, hurst, h_tol, h_err,
                detail={"slope": slope, "k_lo": fit_lo, "k_hi": k_hi,
                        "bins": int(fit_k.size)},
            ))
        else:
            metrics.append(_metric(
                "hurst_fit", None, hurst, None, None,
                detail={"reason": "insufficient fit band",
                        "bins": int(fit_k.size)},
                gate=False,
            ))
        if qr is not None:
            p_k, p_log_m, p_log_t = _log_band(
                t_centres, profile, t_profile, 1.5 * dk_sub, 0.6 * qr)
            p_dev = (float(np.mean(np.abs(p_log_m - p_log_t)))
                     if p_k.size else None)
            p_tol = (_TOL["plateau_base"]
                     + _TOL["plateau_window_scale"]
                     / math.sqrt(max(n_windows, 1)))
            metrics.append(_metric(
                "qr_plateau", p_dev, 0.0, p_tol, p_dev,
                detail={"qr": qr, "bins": int(p_k.size)},
                gate=p_k.size >= _MIN_PLATEAU_BINS,
            ))

    return metrics


# -- entry points ----------------------------------------------------------

def _run(
    read: Callable[[int, int, int, int], np.ndarray],
    shape: Tuple[int, int],
    dx: float,
    dy: float,
    spectrum: Optional[Spectrum],
    config: VerifyConfig,
    surface: Dict[str, Any],
) -> VerifyReport:
    t0 = time.perf_counter()
    seg = choose_segment(shape, config.segment)
    clx = float(getattr(spectrum, "clx", 1.0)) if spectrum is not None else 1.0
    cly = float(getattr(spectrum, "cly", 1.0)) if spectrum is not None else 1.0
    lag_sx = int(np.clip(round(clx / dx), 1, seg - 1))
    lag_sy = int(np.clip(round(cly / dy), 1, seg - 1))
    sx, sy = shape[0] // seg, shape[1] // seg
    stride = 1
    if config.max_windows is not None:
        while (-(-sx // stride)) * (-(-sy // stride)) > config.max_windows:
            stride += 1
    span = obs.trace("verify.run", {
        "shape": list(shape), "segment": seg, "stride": stride,
    } if obs.enabled() else None)
    with span:
        raw = stream_statistics(
            read, shape, dx, dy,
            segment=seg,
            acf_lags=((lag_sx, 0), (0, lag_sy)),
            window=config.window,
            stride=stride,
        )
        metrics = _assess(raw, spectrum, config, dx, dy)
    elapsed = time.perf_counter() - t0
    passed = all(m.passed is not False for m in metrics)

    surface = dict(surface)
    surface.update({
        "shape": [int(shape[0]), int(shape[1])],
        "dx": float(dx),
        "dy": float(dy),
        "coverage": raw["coverage"],
    })
    cfg = config.to_dict()
    cfg["segment"] = seg  # record the resolved values
    cfg["stride"] = stride
    report = VerifyReport(
        surface=surface,
        spectrum=spectrum.to_dict() if spectrum is not None else None,
        metrics=tuple(metrics),
        config=cfg,
        passed=passed,
        timings={"seconds": elapsed},
    )
    if obs.enabled():
        obs.add("verify.runs")
        obs.add("verify.windows", raw["psd_windows"])
        obs.observe("verify.seconds", elapsed)
        if not passed:
            obs.add("verify.failures")
    obs.event(
        "verify.report",
        passed=passed,
        failures=[m.name for m in report.failures()],
        shape=list(shape),
        seconds=round(elapsed, 6),
    )
    return report


def verify_heights(
    heights: np.ndarray,
    spectrum: Optional[Spectrum] = None,
    *,
    dx: float = 1.0,
    dy: float = 1.0,
    config: Optional[VerifyConfig] = None,
) -> VerifyReport:
    """Verify an in-memory surface.

    Runs exactly the same windowed accumulation as :func:`verify_store`
    (the reader slices the array), so the two paths produce
    bit-identical metrics on identical samples.
    """
    h = np.asarray(heights)
    if h.ndim != 2:
        raise VerifyError(f"heights must be 2D, got shape {h.shape}")

    def read(x0: int, y0: int, wx: int, wy: int) -> np.ndarray:
        return h[x0 : x0 + wx, y0 : y0 + wy]

    return _run(read, h.shape, dx, dy, spectrum, config or VerifyConfig(),
                {"store": None})


def verify_store(
    store: Union[SurfaceStore, str, os.PathLike],
    spectrum: Optional[Spectrum] = None,
    *,
    config: Optional[VerifyConfig] = None,
) -> VerifyReport:
    """Verify a (complete) on-disk store without materialising it.

    The requested spectrum is taken from the ``spectrum`` argument, or —
    when omitted — recovered from the recipe the generator recorded in
    the store manifest's ``meta["spectrum"]``.  With neither available
    the report carries measurements only and gates nothing.
    """
    opened = None
    try:
        if not isinstance(store, SurfaceStore):
            opened = store = SurfaceStore.open(store, "r", ledger=False)
        if store.fraction_done < 1.0:
            raise VerifyError(
                f"store at {store.path} is incomplete "
                f"({store.fraction_done:.1%} of chunks written); "
                "finish or resume the job before verifying"
            )
        meta = store.manifest.get("meta") or {}
        if spectrum is None and isinstance(meta.get("spectrum"), dict):
            spectrum = spectrum_from_dict(meta["spectrum"])
        dx = float(store.manifest["dx"])
        dy = float(store.manifest["dy"])
        surface = {"store": str(store.path)}
        if "seed" in meta:
            surface["seed"] = meta["seed"]
        return _run(store.read_window, store.shape, dx, dy, spectrum,
                    config or VerifyConfig(), surface)
    finally:
        if opened is not None:
            opened.close()


def verify_job(
    checkpoint: Union[str, os.PathLike],
    *,
    spectrum: Optional[Spectrum] = None,
    config: Optional[VerifyConfig] = None,
) -> VerifyReport:
    """Verify the store referenced by a job checkpoint directory.

    Reads the checkpoint manifest for the store path and the rebuild
    recipe's spectrum; only store-backed jobs can be verified out of
    core (in-memory jobs should call :func:`verify_heights` on their
    result).
    """
    ckpt = Path(checkpoint)
    manifest_path = ckpt / "manifest.json"
    if not manifest_path.is_file():
        raise VerifyError(f"no job manifest at {manifest_path}")
    manifest = json.loads(manifest_path.read_text())
    store_ref = manifest.get("store")
    if not store_ref or "path" not in store_ref:
        raise VerifyError(
            f"job at {ckpt} is not store-backed; re-run with --store or "
            "verify its in-memory result via verify_heights()"
        )
    if spectrum is None:
        recipe = (manifest.get("rebuild") or {}).get("spectrum")
        if isinstance(recipe, dict):
            spectrum = spectrum_from_dict(recipe)
    return verify_store(store_ref["path"], spectrum, config=config)


# -- report persistence ----------------------------------------------------

def write_report(report: VerifyReport, path: Union[str, os.PathLike]) -> Path:
    """Atomically write a report document next to a manifest."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(report.to_json() + "\n")
    os.replace(tmp, path)
    return path


def load_report(path: Union[str, os.PathLike]) -> VerifyReport:
    return VerifyReport.from_json(Path(path).read_text())
