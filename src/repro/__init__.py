"""repro — inhomogeneous random rough surface generation.

A production-quality reproduction of K. Uchida, J. Honda & K.-Y. Yoon,
*An Algorithm for Rough Surface Generation with Inhomogeneous
Parameters* (Journal of Algorithms & Computational Technology 5(2);
ICPP workshop lineage): spectral synthesis of 2D random rough surfaces
by the direct DFT method and the convolution method, with plate-oriented
and point-oriented inhomogeneous parameter layouts, streaming/tiled
generation of unbounded surfaces, statistical verification tooling, and
a radio-propagation demo substrate.

Quickstart
----------
>>> import repro
>>> grid = repro.Grid2D(nx=256, ny=256, lx=1024.0, ly=1024.0)
>>> spec = repro.GaussianSpectrum(h=1.0, clx=40.0, cly=40.0)
>>> gen = repro.ConvolutionGenerator(spec, grid)
>>> heights = gen.generate(seed=42)

See ``examples/`` for inhomogeneous terrains (the paper's Figures 1-4)
and ``DESIGN.md`` / ``EXPERIMENTS.md`` for the reproduction inventory.
"""

from . import obs
from ._version import __version__
from .core import (
    BlockNoise,
    CirculantGenerator,
    ConvolutionGenerator,
    HeightField,
    SurfaceGenerator,
    ExponentialSpectrum,
    GaussianSpectrum,
    Grid2D,
    InhomogeneousGenerator,
    Kernel,
    Lcg,
    PointOrientedLayout,
    PointSpec,
    PowerLawSpectrum,
    Spectrum,
    Surface,
    build_kernel,
    convolve_full,
    convolve_spatial,
    direct_dft_surface,
    hermitian_random_array,
    spectrum_from_dict,
    standard_normal_field,
    truncate_kernel,
    truncate_kernel_energy,
    weight_array,
    weight_autocorrelation,
)
from . import jobs
from .fields import (
    Circle,
    Ellipse,
    HalfPlane,
    LayeredLayout,
    PlateLattice,
    Polygon,
    Rectangle,
    Region,
    RegionSpec,
    WeightMap,
)

__all__ = [
    "__version__",
    # observability
    "obs",
    # fault-tolerant jobs
    "jobs",
    # unified generator API
    "SurfaceGenerator", "HeightField",
    # grids & spectra
    "Grid2D", "Spectrum", "GaussianSpectrum", "PowerLawSpectrum",
    "ExponentialSpectrum", "spectrum_from_dict",
    # generation
    "ConvolutionGenerator", "CirculantGenerator", "InhomogeneousGenerator",
    "direct_dft_surface",
    "hermitian_random_array", "convolve_full", "convolve_spatial",
    "standard_normal_field", "BlockNoise", "Lcg",
    # kernels & weights
    "Kernel", "build_kernel", "truncate_kernel", "truncate_kernel_energy",
    "weight_array", "weight_autocorrelation",
    # layouts
    "PlateLattice", "LayeredLayout", "RegionSpec", "WeightMap",
    "PointOrientedLayout", "PointSpec",
    # regions
    "Region", "Rectangle", "Circle", "Ellipse", "HalfPlane", "Polygon",
    # container
    "Surface",
]
