"""Parameter fields: regions, transition profiles and blend layouts for
inhomogeneous surface generation."""

from .continuous import ContinuousGenerator, level_weights
from .dem import enhance_dem, highpass_field, upsample_bilinear
from .parameter_map import LayeredLayout, PlateLattice, RegionSpec, WeightMap
from .regions import (
    Circle,
    Complement,
    Ellipse,
    Everywhere,
    HalfPlane,
    Intersection,
    Polygon,
    Rectangle,
    Region,
    Union,
)
from .transition import PROFILES, cosine, get_profile, linear, ramp_weight, smoothstep

__all__ = [
    "Region", "HalfPlane", "Rectangle", "Circle", "Ellipse", "Polygon",
    "Union", "Intersection", "Complement", "Everywhere",
    "linear", "smoothstep", "cosine", "get_profile", "ramp_weight", "PROFILES",
    "WeightMap", "RegionSpec", "LayeredLayout", "PlateLattice",
    "ContinuousGenerator", "level_weights",
    "enhance_dem", "highpass_field", "upsample_bilinear",
]
