"""Continuously varying parameters: h(x, y) and cl(x, y) fields.

Section 3 of the paper opens with: "we can generate inhomogeneous RRSs
of which parameters are *continuously varied* from place to place", and
then discretises the idea into plates and points.  This module carries
the idea to its limit for the two parameters:

* the height std ``h`` enters the synthesis *linearly* (the kernel is
  proportional to ``h``), so a continuous ``h(x, y)`` field is realised
  **exactly**: generate a unit-variance surface and multiply pointwise;
* the correlation length ``cl`` deforms the kernel nonlinearly, so it is
  quantised onto ``L`` levels and the kernels of the two bracketing
  levels are linearly cross-faded — the same mechanism as the paper's
  transition regions (eqn 37), applied densely.  Refining ``L`` tightens
  the approximation; the continuous-gradient bench (A3) quantifies it.

The result is a generator with the same contract as
:class:`~repro.core.inhomogeneous.InhomogeneousGenerator` (periodic
one-shot and windowed generation over a :class:`BlockNoise` plane), so
streaming and tiling work unchanged.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from .. import obs
from ..core.api import absorb_legacy_positionals, merge_provenance, traced
from ..core.convolution import (
    TruncationSpec,
    _check_engine,
    _pad_mode,
    apply_kernels_valid,
    batched_noise_window_for,
    resolve_kernel,
)
from ..core.engine import BatchStats, common_margins
from ..core.grid import Grid2D
from ..core.rng import BlockNoise, SeedLike, standard_normal_field
from ..core.spectra import Spectrum
from ..core.surface import Surface

__all__ = ["ContinuousGenerator", "level_weights"]

ParameterField = Callable[[np.ndarray, np.ndarray], np.ndarray]
FamilyBuilder = Callable[[float], Spectrum]


def level_weights(values: np.ndarray, levels: np.ndarray
                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Linear interpolation weights onto a sorted level ladder.

    Returns ``(lower_index, weight_lower, weight_upper)`` such that each
    value is represented as ``w_lo * levels[i] + w_hi * levels[i+1]``
    with ``w_lo + w_hi = 1``; values outside the ladder are clamped to
    the end levels (weight 1 on the nearest end).
    """
    levels = np.asarray(levels, dtype=float)
    if levels.ndim != 1 or levels.size < 1:
        raise ValueError("levels must be a non-empty 1D array")
    if np.any(np.diff(levels) <= 0):
        raise ValueError("levels must be strictly increasing")
    v = np.asarray(values, dtype=float)
    if levels.size == 1:
        idx = np.zeros(v.shape, dtype=int)
        return idx, np.ones(v.shape), np.zeros(v.shape)
    clamped = np.clip(v, levels[0], levels[-1])
    upper = np.searchsorted(levels, clamped, side="right")
    upper = np.clip(upper, 1, levels.size - 1)
    lower = upper - 1
    span = levels[upper] - levels[lower]
    w_hi = (clamped - levels[lower]) / span
    return lower, 1.0 - w_hi, w_hi


class ContinuousGenerator:
    """Surfaces with continuous ``h(x, y)`` and ``cl(x, y)`` fields.

    Parameters
    ----------
    family:
        ``cl -> Spectrum`` builder returning a **unit-h** spectrum of the
        desired family at that correlation length, e.g.
        ``lambda cl: GaussianSpectrum(h=1.0, clx=cl, cly=cl)``.
    h_field, cl_field:
        Vectorised callables ``(x, y) -> value`` in physical coordinates.
    grid:
        Kernel-construction grid (its spacing is inherited by windows).
    levels:
        Either an explicit increasing sequence of cl levels, or an
        integer count (levels spread geometrically over the cl range
        observed on the construction grid).  More levels = tighter cl
        interpolation = more convolutions per surface.
    truncation:
        Kernel truncation spec per level.
    engine:
        Convolution engine for every per-level correlation: ``"auto"``
        (dispatch by kernel size), ``"spatial"`` or ``"fft"`` — see
        :func:`repro.core.convolution.apply_kernel_valid`.

    Examples
    --------
    A roughness gradient with a smooth valley::

        gen = ContinuousGenerator(
            family=lambda cl: GaussianSpectrum(h=1.0, clx=cl, cly=cl),
            h_field=lambda x, y: 0.5 + 1.5 * x / 1024.0,
            cl_field=lambda x, y: 20.0 + 60.0 * y / 1024.0,
            grid=Grid2D(nx=512, ny=512, lx=1024.0, ly=1024.0),
            levels=5,
        )
        surface = gen.generate(seed=1)
    """

    def __init__(
        self,
        family: FamilyBuilder,
        h_field: ParameterField,
        cl_field: ParameterField,
        grid: Grid2D,
        levels: int | Sequence[float] = 5,
        truncation: TruncationSpec = 0.999,
        engine: str = "auto",
        prune: bool = True,
    ) -> None:
        self.family = family
        self.h_field = h_field
        self.cl_field = cl_field
        self.grid = grid
        self.truncation = truncation
        self.engine = _check_engine(engine)
        self.prune = bool(prune)

        if isinstance(levels, (int, np.integer)):
            if levels < 1:
                raise ValueError("need at least one cl level")
            gx, gy = grid.meshgrid()
            cl_vals = np.asarray(cl_field(gx, gy), dtype=float)
            lo, hi = float(cl_vals.min()), float(cl_vals.max())
            if not (np.isfinite(lo) and np.isfinite(hi)) or lo <= 0:
                raise ValueError("cl_field must be positive and finite")
            if np.isclose(lo, hi) or levels == 1:
                ladder = np.array([0.5 * (lo + hi)])
            else:
                ladder = np.geomspace(lo, hi, int(levels))
        else:
            ladder = np.asarray(list(levels), dtype=float)
            if ladder.ndim != 1 or ladder.size < 1 or np.any(ladder <= 0):
                raise ValueError("levels must be positive values")
            if np.any(np.diff(ladder) <= 0):
                raise ValueError("levels must be strictly increasing")
        self.levels = ladder

        self._spectra = [family(float(cl)) for cl in self.levels]
        for s, cl in zip(self._spectra, self.levels):
            if abs(s.h - 1.0) > 1e-9:
                raise ValueError(
                    "family must build unit-h spectra (the h field is "
                    f"applied separately); got h={s.h} at cl={cl}"
                )
        self._kernels = [
            resolve_kernel(s, grid, truncation) for s in self._spectra
        ]

    # ------------------------------------------------------------------
    def _level_mix(self, gx: np.ndarray, gy: np.ndarray):
        """Per-sample level interpolation data for an output window.

        Returns ``(lower, upper, w_lo, w_hi, h_vals, used)`` where
        ``used`` flags the levels referenced with non-zero weight
        anywhere in the window — the level-ladder analogue of the
        region active set: unused levels need no convolution.
        """
        with obs.trace("fields.weight_map"):
            cl_vals = np.asarray(self.cl_field(gx, gy), dtype=float)
            h_vals = np.asarray(self.h_field(gx, gy), dtype=float)
        if np.any(h_vals < 0):
            raise ValueError("h_field must be >= 0")
        lower, w_lo, w_hi = level_weights(cl_vals, self.levels)
        upper = np.minimum(lower + 1, len(self.levels) - 1)
        used = np.zeros(len(self.levels), dtype=bool)
        used[lower[w_lo > 0.0]] = True
        used[upper[w_hi > 0.0]] = True
        return lower, upper, w_lo, w_hi, h_vals, used

    def _blend_levels(self, fields, lower, upper, w_lo, w_hi,
                      h_vals) -> np.ndarray:
        """Cross-fade the bracketing level fields, then apply ``h``.

        Pruned levels arrive as ``None``; they are only ever gathered
        where their interpolation weight is zero, so a shared zero
        placeholder keeps ``take_along_axis`` well-defined without
        affecting the blend.
        """
        zeros: Optional[np.ndarray] = None
        full: List[np.ndarray] = []
        for f in fields:
            if f is None:
                if zeros is None:
                    zeros = np.zeros(h_vals.shape)
                full.append(zeros)
            else:
                full.append(f)
        stack = np.stack(full)  # (L, nx, ny)
        f_lo = np.take_along_axis(stack, lower[None, ...], axis=0)[0]
        f_hi = np.take_along_axis(stack, upper[None, ...], axis=0)[0]
        return (w_lo * f_lo + w_hi * f_hi) * h_vals

    def generate(self, seed: SeedLike = None, *args,
                 noise: Optional[np.ndarray] = None,
                 boundary: str = "wrap",
                 trace: bool = False,
                 provenance: Optional[dict] = None) -> Surface:
        """One realisation on the construction grid.

        Unified signature (:mod:`repro.core.api`): parameters after
        ``seed`` are keyword-only (legacy positional calls emit a
        :class:`DeprecationWarning`); ``trace`` opens a
        ``generator.generate`` span, ``provenance`` adds entries to the
        surface's record.
        """
        if args:
            legacy = absorb_legacy_positionals(
                "ContinuousGenerator.generate", args, ("noise", "boundary")
            )
            noise = legacy.get("noise", noise)
            boundary = legacy.get("boundary", boundary)
        with traced(self, trace):
            return self._generate(seed, noise, boundary, provenance)

    def _generate(self, seed, noise, boundary, provenance):
        if noise is None:
            noise = standard_normal_field(self.grid.shape, seed)
        noise = np.asarray(noise, dtype=float)
        if noise.shape != self.grid.shape:
            raise ValueError("noise shape does not match the grid")
        gx, gy = self.grid.meshgrid()
        lower, upper, w_lo, w_hi, h_vals, used = self._level_mix(gx, gy)
        lxm, rxm, lym, rym = common_margins(self._kernels)
        padded = np.pad(noise, ((lxm, rxm), (lym, rym)),
                        mode=_pad_mode(boundary))
        stats = BatchStats()
        fields = apply_kernels_valid(
            self._kernels, padded,
            active=used if self.prune else None,
            engine=self.engine, stats=stats,
        )
        heights = self._blend_levels(fields, lower, upper, w_lo, w_hi, h_vals)
        return Surface(
            heights=heights,
            grid=self.grid,
            provenance=merge_provenance({
                "method": "continuous-parameters",
                "levels": self.levels.tolist(),
                "truncation": repr(self.truncation),
                "engine": self.engine,
                "levels_active": stats.kernels_active,
                "levels_skipped": stats.kernels_skipped,
                "batch_fft": stats.as_dict(),
            }, provenance),
        )

    def generate_window(self, noise: BlockNoise, x0: int, y0: int,
                        nx: int, ny: int, *, trace: bool = False,
                        provenance: Optional[dict] = None) -> Surface:
        """Window of the unbounded continuous-parameter surface."""
        with traced(self, trace, "generate_window"):
            return self._generate_window(noise, x0, y0, nx, ny, provenance)

    def _generate_window(self, noise, x0, y0, nx, ny, provenance):
        win_grid = self.grid.with_shape(nx, ny)
        origin = (x0 * self.grid.dx, y0 * self.grid.dy)
        gx, gy = win_grid.meshgrid()
        lower, upper, w_lo, w_hi, h_vals, used = self._level_mix(
            gx + origin[0], gy + origin[1]
        )
        margins = common_margins(self._kernels)
        wx0, wy0, wnx, wny = batched_noise_window_for(
            self._kernels, x0, y0, nx, ny, margins=margins
        )
        window = noise.window(wx0, wy0, wnx, wny)
        stats = BatchStats()
        fields = apply_kernels_valid(
            self._kernels, window,
            active=used if self.prune else None,
            engine=self.engine, margins=margins, stats=stats,
        )
        heights = self._blend_levels(fields, lower, upper, w_lo, w_hi, h_vals)
        return Surface(
            heights=heights,
            grid=win_grid,
            origin=origin,
            provenance=merge_provenance({
                "method": "continuous-parameters-window",
                "window": [x0, y0, nx, ny],
                "levels": self.levels.tolist(),
                "noise_seed": noise.seed,
                "engine": self.engine,
                "levels_active": stats.kernels_active,
                "levels_skipped": stats.kernels_skipped,
                "batch_fft": stats.as_dict(),
            }, provenance),
        )
