"""Parameter layouts: mapping surface locations to spectra and weights.

The plate-oriented method (paper Section 3.1) needs, at every output
sample ``n``, a convex combination of homogeneous weighting kernels:
``w_n = sum_m g_n(m) * w(m)`` with ``sum_m g_n(m) = 1`` (eqn 37).  This
module builds those blend fields ``g`` for two layout styles:

* :class:`PlateLattice` — a rectangular lattice of plates with linear
  transitions at interior edges: the separable construction of eqns
  (38)-(39), generalised from the paper's 2x2 quadrant split to any
  ``P x Q`` lattice.  Partition of unity holds *by construction*
  (adjacent 1D ramps are complementary).
* :class:`LayeredLayout` — arbitrary :class:`~repro.fields.regions.Region`
  patches (circle, polygon, ...) over a background spectrum, with
  signed-distance ramps of per-region half-width ``T`` (the Figure 3
  configuration).  Weights are renormalised to sum to one wherever
  layers overlap.

Both produce a :class:`WeightMap`: the list of participating spectra and
a ``(n_regions, nx, ny)`` stack of blend fields, which the inhomogeneous
generator consumes (DESIGN.md S6).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.grid import Grid2D
from ..core.spectra import Spectrum
from .regions import Region
from .transition import Profile, get_profile, ramp_weight

__all__ = ["WeightMap", "RegionSpec", "LayeredLayout", "PlateLattice"]


@dataclass
class WeightMap:
    """Blend fields ``g_n(m)`` over a grid (paper eqn 37 / eqn 46 inputs).

    Attributes
    ----------
    spectra:
        The ``M`` homogeneous spectra being blended.
    weights:
        ``(M, nx, ny)`` array; ``weights[m]`` is the blend field of
        spectrum ``m``.  Rows sum to 1 at every sample (partition of
        unity), which :meth:`validate` checks.
    """

    spectra: List[Spectrum]
    weights: np.ndarray

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=float)
        if w.ndim != 3 or w.shape[0] != len(self.spectra):
            raise ValueError(
                f"weights must be (n_spectra, nx, ny); got {w.shape} for "
                f"{len(self.spectra)} spectra"
            )
        self.weights = w

    @property
    def n_regions(self) -> int:
        return len(self.spectra)

    @property
    def shape(self) -> Tuple[int, int]:
        return self.weights.shape[1:]

    def validate(self, atol: float = 1e-9) -> None:
        """Assert partition of unity and weight bounds."""
        w = self.weights
        if np.any(w < -atol) or np.any(w > 1.0 + atol):
            raise ValueError("blend weights outside [0, 1]")
        total = w.sum(axis=0)
        if not np.allclose(total, 1.0, atol=1e-6):
            worst = float(np.max(np.abs(total - 1.0)))
            raise ValueError(
                f"blend weights do not partition unity (max deviation {worst:g})"
            )

    def dominant_region(self) -> np.ndarray:
        """Index map of the locally heaviest spectrum (for QA/rendering)."""
        return np.argmax(self.weights, axis=0)

    def support(
        self,
        bbox: Optional[Tuple[int, int, int, int]] = None,
        atol: float = 0.0,
    ) -> np.ndarray:
        """Boolean active-set mask: which regions touch a sample window.

        ``support()[m]`` is true iff region ``m`` has any blend weight
        ``> atol`` over the window — the query the batched engine uses
        to skip convolutions entirely (a tile deep inside one plate pays
        for exactly one kernel).  With the default ``atol = 0.0``
        pruning is lossless: a skipped region contributes exactly
        ``0 * field`` to eqn (37).

        Parameters
        ----------
        bbox:
            Optional sample-index window ``(i0, j0, ni, nj)`` *within
            this map's own grid*; default is the whole map.  (Windowed
            generators evaluate the weight map per tile, so they call
            this with no ``bbox``.)
        atol:
            Weights ``<= atol`` count as zero.  Non-zero values trade a
            bounded blend error for more pruning; the default prunes
            only exact zeros.
        """
        w = self.weights
        if bbox is not None:
            i0, j0, ni, nj = bbox
            if ni <= 0 or nj <= 0:
                raise ValueError(f"empty support bbox {bbox}")
            w = w[:, i0 : i0 + ni, j0 : j0 + nj]
            if w.shape[1] != ni or w.shape[2] != nj:
                raise ValueError(
                    f"support bbox {bbox} outside weight map {self.shape}"
                )
        if atol == 0.0:
            return np.any(w != 0.0, axis=(1, 2))
        return np.any(w > atol, axis=(1, 2))

    def active_set(
        self,
        bbox: Optional[Tuple[int, int, int, int]] = None,
        atol: float = 0.0,
    ) -> np.ndarray:
        """Indices of the regions whose :meth:`support` is true."""
        return np.flatnonzero(self.support(bbox=bbox, atol=atol))


@dataclass(frozen=True)
class RegionSpec:
    """One layered patch: a region carrying a spectrum and its transition.

    Parameters
    ----------
    region:
        Patch geometry.
    spectrum:
        Homogeneous spectrum realised inside the patch.
    half_width:
        Transition half-width ``T`` (paper Fig. 3 uses ``T = 100``).
    profile:
        Transition profile name or callable (default linear = paper).
    """

    region: Region
    spectrum: Spectrum
    half_width: float = 0.0
    profile: str = "linear"


class LayeredLayout:
    """Arbitrary patches over a background spectrum (Figure 3 style).

    Raw patch weights come from signed-distance ramps; the background
    absorbs the remainder ``prod(1 - w_patch)``; the stack is then
    normalised so overlapping patch ramps still partition unity.
    """

    def __init__(self, background: Spectrum, patches: Sequence[RegionSpec]):
        self.background = background
        self.patches = list(patches)

    def weight_map(self, grid: Grid2D, origin: Tuple[float, float] = (0.0, 0.0)
                   ) -> WeightMap:
        """Evaluate blend fields on ``grid`` (physical coordinates)."""
        gx, gy = grid.meshgrid()
        gx = gx + origin[0]
        gy = gy + origin[1]
        spectra: List[Spectrum] = [self.background]
        raw: List[np.ndarray] = []
        remainder = np.ones(grid.shape)
        for spec in self.patches:
            sd = spec.region.signed_distance(gx, gy)
            w = ramp_weight(sd, spec.half_width, spec.profile)
            raw.append(w)
            remainder = remainder * (1.0 - w)
            spectra.append(spec.spectrum)
        weights = np.empty((len(spectra), *grid.shape))
        weights[0] = remainder
        for i, w in enumerate(raw, start=1):
            weights[i] = w
        total = weights.sum(axis=0)
        # Overlapping ramps can push the raw sum above 1; renormalise.
        weights /= total[None, :, :]
        wm = WeightMap(spectra=spectra, weights=weights)
        wm.validate()
        return wm


class PlateLattice:
    """Rectangular plate lattice with interior-edge transitions (eqns 37-39).

    Parameters
    ----------
    x_edges, y_edges:
        Strictly increasing plate boundaries, including the domain ends:
        ``P`` plates need ``P + 1`` x-edges.  The paper's quadrant figures
        use ``x_edges = [0, Lx/2, Lx]``, ``y_edges = [0, Ly/2, Ly]``.
    spectra:
        ``(P, Q)`` nested sequence: ``spectra[i][j]`` rules the plate
        ``[x_edges[i], x_edges[i+1]] x [y_edges[j], y_edges[j+1]]``.
    half_width:
        Transition half-width applied at every *interior* edge (the
        boundary edges of the domain get no ramp).  May be a scalar or a
        pair ``(Tx, Ty)``.
    profile:
        Transition profile (default linear = paper).
    """

    def __init__(
        self,
        x_edges: Sequence[float],
        y_edges: Sequence[float],
        spectra: Sequence[Sequence[Spectrum]],
        half_width: float | Tuple[float, float] = 0.0,
        profile: str = "linear",
    ) -> None:
        self.x_edges = np.asarray(x_edges, dtype=float)
        self.y_edges = np.asarray(y_edges, dtype=float)
        for name, edges in (("x_edges", self.x_edges), ("y_edges", self.y_edges)):
            if edges.ndim != 1 or len(edges) < 2 or np.any(np.diff(edges) <= 0):
                raise ValueError(f"{name} must be strictly increasing, length >= 2")
        p, q = len(self.x_edges) - 1, len(self.y_edges) - 1
        rows = list(spectra)
        if len(rows) != p or any(len(list(r)) != q for r in rows):
            raise ValueError(f"spectra must be a ({p}, {q}) nested sequence")
        self.spectra_grid: List[List[Spectrum]] = [list(r) for r in rows]
        if np.isscalar(half_width):
            self.tx = self.ty = float(half_width)  # type: ignore[arg-type]
        else:
            self.tx, self.ty = (float(half_width[0]), float(half_width[1]))
        if self.tx < 0 or self.ty < 0:
            raise ValueError("transition half-widths must be >= 0")
        self.profile = profile

    @property
    def n_plates(self) -> Tuple[int, int]:
        return (len(self.x_edges) - 1, len(self.y_edges) - 1)

    @staticmethod
    def _axis_weights(
        coords: np.ndarray, edges: np.ndarray, t: float, profile: Profile
    ) -> np.ndarray:
        """1D plate weights: ``(n_cells, n_coords)`` trapezoid functions.

        Interior edges carry a linear (or chosen-profile) crossfade over
        ``[edge - t, edge + t]``; the two domain-end edges are hard so the
        first/last plates own the domain boundary.  When bands do not
        overlap, adjacent cells' ramps are complementary and columns sum
        to exactly 1 (the paper's eqns 38-39).  When a transition
        half-width exceeds half a plate's width the two bands inside that
        plate overlap and the raw product form sums to ``1 - r1*r2``
        there; the weights are renormalised columnwise, which reduces to
        the paper's form wherever bands are disjoint and keeps the
        partition exact everywhere.
        """
        n_cells = len(edges) - 1
        out = np.empty((n_cells, coords.size))

        def rise(edge: float) -> np.ndarray:
            # 0 before edge-t, 1 after edge+t
            if t == 0.0:
                return (coords >= edge).astype(float)
            return profile(np.clip((coords - (edge - t)) / (2.0 * t), 0.0, 1.0))

        for i in range(n_cells):
            lo = rise(edges[i]) if i > 0 else np.ones(coords.size)
            hi = 1.0 - rise(edges[i + 1]) if i < n_cells - 1 else np.ones(coords.size)
            out[i] = lo * hi
        total = out.sum(axis=0)
        # total is 1 except where two bands overlap inside one plate,
        # where it dips to at most 1 - 1/4; always safely positive.
        out /= total[None, :]
        return out

    def weight_map(self, grid: Grid2D, origin: Tuple[float, float] = (0.0, 0.0)
                   ) -> WeightMap:
        """Evaluate blend fields on ``grid``; eqns (37)-(39) generalised."""
        phi = get_profile(self.profile)
        wx = self._axis_weights(grid.x + origin[0], self.x_edges, self.tx, phi)
        wy = self._axis_weights(grid.y + origin[1], self.y_edges, self.ty, phi)
        p, q = self.n_plates
        spectra: List[Spectrum] = []
        weights = np.empty((p * q, grid.nx, grid.ny))
        idx = 0
        for i in range(p):
            for j in range(q):
                spectra.append(self.spectra_grid[i][j])
                np.multiply(wx[i][:, None], wy[j][None, :], out=weights[idx])
                idx += 1
        wm = WeightMap(spectra=spectra, weights=weights)
        wm.validate()
        return wm

    @classmethod
    def quadrants(
        cls,
        lx: float,
        ly: float,
        q1: Spectrum,
        q2: Spectrum,
        q3: Spectrum,
        q4: Spectrum,
        half_width: float = 0.0,
        profile: str = "linear",
    ) -> "PlateLattice":
        """The paper's four-quadrant configuration (Figures 1 and 2).

        Quadrants follow the mathematical convention with the origin at
        the domain centre: Q1 = x>cx, y>cy; Q2 = x<cx, y>cy;
        Q3 = x<cx, y<cy; Q4 = x>cx, y<cy.
        """
        cx, cy = lx / 2.0, ly / 2.0
        return cls(
            x_edges=[0.0, cx, lx],
            y_edges=[0.0, cy, ly],
            spectra=[[q3, q2], [q4, q1]],
            half_width=half_width,
            profile=profile,
        )
