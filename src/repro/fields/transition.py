"""Transition (blending) profiles for inhomogeneous RRS generation.

The paper's plate-oriented method interpolates weighting arrays
*linearly* across the transition region (eqns 38-39), and the
point-oriented method fades linearly in the bisector distance ``tau``
(eqn 44).  A transition profile is the 1D shape of that fade:
a monotone map ``phi: [0, 1] -> [0, 1]`` with ``phi(0) = 0`` and
``phi(1) = 1``.

The linear profile reproduces the paper exactly; the smoothstep and
raised-cosine profiles are natural extensions (continuous first
derivatives across the seam — useful when the generated terrain feeds a
ray-tracing propagation model that differentiates the surface), provided
as the ablation knob the design calls out.

:func:`ramp_weight` converts a signed distance field and a half-width
``T`` into a blend weight: 1 deep inside the region, 0 deep outside,
``phi``-shaped within the band of total width ``2T`` straddling the
boundary (the paper's ``T`` in Figure 3, "transition width ... T = 100",
is this half-width).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "linear",
    "smoothstep",
    "cosine",
    "get_profile",
    "ramp_weight",
    "PROFILES",
]

Profile = Callable[[np.ndarray], np.ndarray]


def linear(t: np.ndarray) -> np.ndarray:
    """Identity profile — the paper's eqns (38), (39), (44)."""
    return np.clip(t, 0.0, 1.0)


def smoothstep(t: np.ndarray) -> np.ndarray:
    """Cubic smoothstep ``3t^2 - 2t^3`` (C1-continuous blend)."""
    t = np.clip(t, 0.0, 1.0)
    return t * t * (3.0 - 2.0 * t)


def cosine(t: np.ndarray) -> np.ndarray:
    """Raised-cosine profile ``(1 - cos(pi t)) / 2`` (C1-continuous)."""
    t = np.clip(t, 0.0, 1.0)
    return 0.5 * (1.0 - np.cos(np.pi * t))


PROFILES: Dict[str, Profile] = {
    "linear": linear,
    "smoothstep": smoothstep,
    "cosine": cosine,
}


def get_profile(name_or_fn) -> Profile:
    """Resolve a profile by name or pass a callable through."""
    if callable(name_or_fn):
        return name_or_fn
    try:
        return PROFILES[name_or_fn]
    except KeyError:
        raise KeyError(
            f"unknown transition profile {name_or_fn!r}; known: {sorted(PROFILES)}"
        ) from None


def ramp_weight(
    signed_distance: np.ndarray,
    half_width: float,
    profile: Profile | str = "linear",
) -> np.ndarray:
    """Blend weight from a signed distance field.

    Parameters
    ----------
    signed_distance:
        Negative inside the region, positive outside.
    half_width:
        ``T`` — half of the transition band's total width.  ``T == 0``
        gives a hard (indicator) edge.
    profile:
        Transition profile (default linear, matching the paper).

    Returns
    -------
    Weight in ``[0, 1]``: 1 where ``sd <= -T``, 0 where ``sd >= T``,
    ``phi((T - sd) / 2T)`` in between.
    """
    sd = np.asarray(signed_distance, dtype=float)
    if half_width < 0:
        raise ValueError(f"half_width must be >= 0, got {half_width}")
    if half_width == 0.0:
        return (sd <= 0.0).astype(float)
    phi = get_profile(profile)
    t = (half_width - sd) / (2.0 * half_width)
    return phi(np.clip(t, 0.0, 1.0))
