"""Geometric regions for plate-oriented inhomogeneous generation.

Section 3.1 of the paper defines the plate-oriented method for
rectangular regions and notes that "the present algorithm can easily be
applied to other cases such as a circular region" (used in Figure 3).
This module supplies the geometric vocabulary: each region exposes a
vectorised *signed distance* to its boundary (negative inside, positive
outside), from which the transition weights of eqns (38)-(39) are
obtained by a 1D ramp (see :mod:`repro.fields.transition`).

Provided regions: :class:`HalfPlane`, :class:`Rectangle`,
:class:`Circle`, :class:`Ellipse`, :class:`Polygon`, plus the boolean
combinators :class:`Union`, :class:`Intersection`, :class:`Complement`
(signed distances combined with min/max — exact for membership,
conservative for distance, as is standard for SDF composition).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = [
    "Region",
    "HalfPlane",
    "Rectangle",
    "Circle",
    "Ellipse",
    "Polygon",
    "Union",
    "Intersection",
    "Complement",
    "Everywhere",
]


class Region(abc.ABC):
    """A planar region with a signed distance function.

    Conventions: ``signed_distance(x, y) < 0`` strictly inside, ``> 0``
    strictly outside, ``== 0`` on the boundary.  All methods broadcast
    over ``x`` and ``y``.
    """

    @abc.abstractmethod
    def signed_distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Signed distance to the region boundary (negative inside)."""

    def contains(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Boolean membership (boundary counts as inside)."""
        return self.signed_distance(x, y) <= 0.0

    # combinators -------------------------------------------------------
    def __or__(self, other: "Region") -> "Region":
        return Union((self, other))

    def __and__(self, other: "Region") -> "Region":
        return Intersection((self, other))

    def __invert__(self) -> "Region":
        return Complement(self)


@dataclass(frozen=True)
class Everywhere(Region):
    """The whole plane (used as a background region)."""

    def signed_distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        shape = np.broadcast(np.asarray(x), np.asarray(y)).shape
        return np.full(shape, -np.inf)


@dataclass(frozen=True)
class HalfPlane(Region):
    """Points satisfying ``nx*x + ny*y <= c`` (inward normal ``-(nx,ny)``).

    The normal need not be unit length; it is normalised internally so the
    signed distance is metric.
    """

    nx: float
    ny: float
    c: float

    def __post_init__(self) -> None:
        norm = float(np.hypot(self.nx, self.ny))
        if norm == 0.0:
            raise ValueError("half-plane normal must be nonzero")

    def signed_distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        norm = np.hypot(self.nx, self.ny)
        return (self.nx * x + self.ny * y - self.c) / norm


@dataclass(frozen=True)
class Rectangle(Region):
    """Axis-aligned rectangle ``[x0, x1] x [y0, y1]``."""

    x0: float
    x1: float
    y0: float
    y1: float

    def __post_init__(self) -> None:
        if not (self.x0 < self.x1 and self.y0 < self.y1):
            raise ValueError(
                f"degenerate rectangle [{self.x0},{self.x1}]x[{self.y0},{self.y1}]"
            )

    def signed_distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        # Distance components to the slab in each axis (negative inside).
        dx = np.maximum(self.x0 - x, x - self.x1)
        dy = np.maximum(self.y0 - y, y - self.y1)
        outside = np.hypot(np.maximum(dx, 0.0), np.maximum(dy, 0.0))
        inside = np.minimum(np.maximum(dx, dy), 0.0)
        return outside + inside

    @property
    def center(self) -> Tuple[float, float]:
        return (0.5 * (self.x0 + self.x1), 0.5 * (self.y0 + self.y1))


@dataclass(frozen=True)
class Circle(Region):
    """Disc of radius ``radius`` centred at ``(cx, cy)`` (paper Fig. 3)."""

    cx: float
    cy: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError(f"radius must be positive, got {self.radius}")

    def signed_distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        return np.hypot(x - self.cx, y - self.cy) - self.radius


@dataclass(frozen=True)
class Ellipse(Region):
    """Axis-aligned ellipse with semi-axes ``(a, b)`` centred at ``(cx, cy)``.

    The signed distance is the common scaled approximation
    ``(sqrt((dx/a)^2+(dy/b)^2) - 1) * min(a, b)``; exact at the centre
    and boundary, metric to within the aspect ratio elsewhere — adequate
    for transition bands much smaller than the axes.
    """

    cx: float
    cy: float
    a: float
    b: float

    def __post_init__(self) -> None:
        if self.a <= 0 or self.b <= 0:
            raise ValueError("ellipse semi-axes must be positive")

    def signed_distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        rho = np.sqrt(((x - self.cx) / self.a) ** 2 + ((y - self.cy) / self.b) ** 2)
        return (rho - 1.0) * min(self.a, self.b)


class Polygon(Region):
    """Simple (non-self-intersecting) polygon from a vertex list.

    Signed distance is exact: minimum distance to the edge set, signed by
    even-odd membership.  Vertices are given counter-clockwise or
    clockwise (orientation does not matter for the even-odd rule).
    """

    def __init__(self, vertices: Sequence[Tuple[float, float]]):
        verts = np.asarray(vertices, dtype=float)
        if verts.ndim != 2 or verts.shape[1] != 2 or verts.shape[0] < 3:
            raise ValueError("polygon needs an (n>=3, 2) vertex array")
        self.vertices = verts

    def _edge_arrays(self):
        a = self.vertices
        b = np.roll(a, -1, axis=0)
        return a, b

    def contains(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        shape = np.broadcast(x, y).shape
        px = np.broadcast_to(x, shape).reshape(-1, 1)
        py = np.broadcast_to(y, shape).reshape(-1, 1)
        a, b = self._edge_arrays()
        ax, ay = a[:, 0][None, :], a[:, 1][None, :]
        bx, by = b[:, 0][None, :], b[:, 1][None, :]
        # Even-odd rule: count edges crossing the upward ray from the point.
        cond = (ay > py) != (by > py)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_int = ax + (py - ay) * (bx - ax) / (by - ay)
        crossings = np.sum(cond & (px < x_int), axis=1)
        inside = (crossings % 2 == 1).reshape(shape)
        # boundary points: distance zero counts as inside
        return inside | (self._distance_to_edges(px, py).reshape(shape) <= 1e-12)

    def _distance_to_edges(self, px: np.ndarray, py: np.ndarray) -> np.ndarray:
        a, b = self._edge_arrays()
        ax, ay = a[:, 0][None, :], a[:, 1][None, :]
        bx, by = b[:, 0][None, :], b[:, 1][None, :]
        ex, ey = bx - ax, by - ay
        len2 = ex * ex + ey * ey
        t = np.clip(((px - ax) * ex + (py - ay) * ey) / np.where(len2 > 0, len2, 1.0),
                    0.0, 1.0)
        qx = ax + t * ex
        qy = ay + t * ey
        return np.min(np.hypot(px - qx, py - qy), axis=1)

    def signed_distance(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        shape = np.broadcast(x, y).shape
        px = np.broadcast_to(x, shape).reshape(-1, 1)
        py = np.broadcast_to(y, shape).reshape(-1, 1)
        dist = self._distance_to_edges(px, py).reshape(shape)
        inside = self.contains(x, y)
        return np.where(inside, -dist, dist)


@dataclass(frozen=True)
class Union(Region):
    """Union of regions; SDF is the pointwise minimum."""

    parts: Tuple[Region, ...]

    def __init__(self, parts: Sequence[Region]):
        object.__setattr__(self, "parts", tuple(parts))
        if len(self.parts) == 0:
            raise ValueError("Union of zero regions")

    def signed_distance(self, x, y):
        return np.minimum.reduce([p.signed_distance(x, y) for p in self.parts])


@dataclass(frozen=True)
class Intersection(Region):
    """Intersection of regions; SDF is the pointwise maximum."""

    parts: Tuple[Region, ...]

    def __init__(self, parts: Sequence[Region]):
        object.__setattr__(self, "parts", tuple(parts))
        if len(self.parts) == 0:
            raise ValueError("Intersection of zero regions")

    def signed_distance(self, x, y):
        return np.maximum.reduce([p.signed_distance(x, y) for p in self.parts])


@dataclass(frozen=True)
class Complement(Region):
    """Set complement; SDF is negated."""

    inner: Region

    def signed_distance(self, x, y):
        return -self.inner.signed_distance(x, y)
