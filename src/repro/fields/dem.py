"""Roughness enhancement of coarse terrain models (hybrid surfaces).

The practical deployment of the paper's generator: real digital
elevation models (DEMs) resolve the landscape down to tens of metres,
while propagation and scattering need the sub-grid roughness the paper's
spectra describe.  This module splices the two:

1. upsample the coarse DEM to the target grid (bilinear);
2. generate a synthetic rough surface with the chosen spectrum;
3. **high-pass the synthetic component** so it only adds detail at
   wavenumbers the DEM does not resolve (above ``pi / dx_coarse``), with
   a cosine roll-off to avoid double-counting energy at the seam;
4. sum.

The result keeps the DEM's every resolved feature bit-exactly at its
sample points (the high-pass removes the synthetic component's overlap,
not the DEM's), while the added texture carries the prescribed spectrum
in the enhanced band — verified in the tests by periodogram splitting.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.convolution import convolve_full
from ..core.grid import Grid2D
from ..core.rng import SeedLike, standard_normal_field
from ..core.spectra import Spectrum
from ..core.surface import Surface

__all__ = ["upsample_bilinear", "highpass_field", "enhance_dem"]


def upsample_bilinear(surface: Surface, factor: int) -> Surface:
    """Bilinearly upsample a surface by an integer factor per axis.

    The coarse samples are interpolated on the periodic torus (matching
    the generation convention), so the output grid spans the same
    physical extent at ``factor``-times the sampling density, and the
    original sample values are reproduced exactly at their positions.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1:
        return Surface(heights=surface.heights.copy(), grid=surface.grid,
                       origin=surface.origin,
                       provenance=dict(surface.provenance))
    h = surface.heights
    nx, ny = h.shape
    fx = np.arange(nx * factor) / factor
    fy = np.arange(ny * factor) / factor
    ix0 = np.floor(fx).astype(int) % nx
    iy0 = np.floor(fy).astype(int) % ny
    ix1 = (ix0 + 1) % nx
    iy1 = (iy0 + 1) % ny
    tx = (fx - np.floor(fx))[:, None]
    ty = (fy - np.floor(fy))[None, :]
    out = (
        h[np.ix_(ix0, iy0)] * (1 - tx) * (1 - ty)
        + h[np.ix_(ix1, iy0)] * tx * (1 - ty)
        + h[np.ix_(ix0, iy1)] * (1 - tx) * ty
        + h[np.ix_(ix1, iy1)] * tx * ty
    )
    grid = Grid2D(nx=nx * factor, ny=ny * factor,
                  lx=surface.grid.lx, ly=surface.grid.ly)
    return Surface(heights=out, grid=grid, origin=surface.origin,
                   provenance={**surface.provenance,
                               "upsampled_by": factor})


def highpass_field(
    field: np.ndarray, grid: Grid2D, k_cut: float,
    rolloff_fraction: float = 0.25,
) -> np.ndarray:
    """Isotropic spectral high-pass with a raised-cosine roll-off.

    Energy below ``k_cut * (1 - rolloff_fraction)`` is removed entirely;
    energy above ``k_cut`` passes untouched; the band between is
    cosine-tapered.  Used to strip the synthetic surface of the
    wavenumbers the DEM already resolves.
    """
    if k_cut <= 0:
        raise ValueError("k_cut must be positive")
    if not 0.0 <= rolloff_fraction < 1.0:
        raise ValueError("rolloff_fraction must be in [0, 1)")
    f = np.asarray(field, dtype=float)
    if f.shape != grid.shape:
        raise ValueError("field shape does not match grid")
    kx, ky = grid.k_meshgrid(signed=True)
    k = np.hypot(kx, ky)
    k_lo = k_cut * (1.0 - rolloff_fraction)
    t = np.clip((k - k_lo) / max(k_cut - k_lo, 1e-300), 0.0, 1.0)
    gain = 0.5 * (1.0 - np.cos(np.pi * t))
    gain[k >= k_cut] = 1.0
    spec = np.fft.fft2(f) * gain
    return np.fft.ifft2(spec).real


def enhance_dem(
    dem: Surface,
    spectrum: Spectrum,
    factor: int,
    seed: SeedLike = None,
    rolloff_fraction: float = 0.25,
) -> Surface:
    """Add spectrum-conformant sub-grid roughness to a coarse DEM.

    Parameters
    ----------
    dem:
        The coarse terrain (its spacing defines the resolved band).
    spectrum:
        Roughness model for the *unresolved* scales.  Only its energy
        above the DEM Nyquist ``pi / dx_dem`` survives the high-pass, so
        choose ``h``/``cl`` for the fine-scale texture (e.g. from field
        measurements of surface roughness).
    factor:
        Upsampling factor per axis (output spacing = dem spacing /
        factor); must be >= 2 for the enhancement to add anything.
    seed:
        Noise seed for the synthetic component.

    Returns
    -------
    A surface on the fine grid: DEM (bilinear) + high-passed synthetic
    roughness.
    """
    if factor < 2:
        raise ValueError("factor must be >= 2 to add sub-grid detail")
    base = upsample_bilinear(dem, factor)
    fine_grid = base.grid
    noise = standard_normal_field(fine_grid.shape, seed)
    synth = convolve_full(spectrum, fine_grid, noise=noise)
    k_cut = np.pi / dem.grid.dx  # the DEM's Nyquist wavenumber
    detail = highpass_field(synth, fine_grid, k_cut,
                            rolloff_fraction=rolloff_fraction)
    return Surface(
        heights=base.heights + detail,
        grid=fine_grid,
        origin=dem.origin,
        provenance={
            "method": "dem-enhancement",
            "dem_provenance": dict(dem.provenance),
            "spectrum": spectrum.to_dict(),
            "factor": factor,
            "k_cut": k_cut,
        },
    )
