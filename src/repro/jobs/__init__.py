"""Fault-tolerant, checkpoint/resumable surface-generation jobs.

The robustness layer the ROADMAP's production north-star sits on:
long-running tiled and strip jobs that survive tile failures, crashed
process-pool workers and whole-process restarts, while keeping the
library's determinism contract — a resumed job produces heights
**bit-identical** to an uninterrupted run.

Pieces
------
:class:`RetryPolicy`
    Per-tile retry with deterministic exponential backoff, a run-wide
    failure budget, pool-respawn limits and process → thread → serial
    degradation.
:class:`FaultPlan` / :class:`FaultSpec`
    Deterministic fault injection ("fail tile k on attempt n", kill the
    worker, add latency) for tests and the ``--inject-fault`` CLI flag.
:class:`JobCheckpoint`
    The durable ``repro.jobs/v1`` directory format: a JSON manifest
    plus an NPZ of partial heights and the done-tile mask, both written
    atomically.
:func:`run_tiled` / :func:`run_strips` / :func:`resume` / :func:`status`
    The job API, also exposed as ``repro job run/resume/status`` on the
    command line.

Example
-------
>>> from repro import jobs                              # doctest: +SKIP
>>> surface = jobs.run_tiled(gen, noise, plan,
...                          checkpoint="out/job1")     # doctest: +SKIP
>>> # ... the process dies mid-run; later:
>>> surface = jobs.resume("out/job1", gen)              # doctest: +SKIP
"""

from ..parallel.executor import (
    FailureBudgetExceeded,
    PoolRespawnLimit,
    TileFailedError,
)
from .checkpoint import FORMAT_VERSION, JobCheckpoint, generator_fingerprint
from .faults import FaultPlan, FaultSpec, InjectedFault
from .retry import RetryPolicy
from .runner import (resume, run_spec, run_strips, run_tiled, status,
                     strip_plan)

__all__ = [
    "RetryPolicy",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "JobCheckpoint",
    "generator_fingerprint",
    "FORMAT_VERSION",
    "run_tiled",
    "run_strips",
    "run_spec",
    "resume",
    "status",
    "strip_plan",
    "TileFailedError",
    "FailureBudgetExceeded",
    "PoolRespawnLimit",
]
