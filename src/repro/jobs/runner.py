"""Fault-tolerant job runner: checkpointed tiled/strip generation.

The paper's headline claim — successive computation of arbitrarily long
surfaces (Section 2.4, eqn 36) — at production scale means runs that
outlive worker crashes and process restarts.  This module ties the
resilient executor (:func:`repro.parallel.executor.generate_tiled` with
``retry=``) to the durable :class:`~repro.jobs.checkpoint.JobCheckpoint`
state:

* :func:`run_tiled` / :func:`run_strips` execute a plan while recording
  completed tiles; any failure (injected or real) leaves a resumable
  checkpoint behind.
* :func:`resume` finishes a checkpointed job — skipping completed tiles
  and recomputing the rest — with heights **bit-identical** to an
  uninterrupted run, because tile values are pure functions of
  ``(generator, noise seed, tile)``.
* :func:`status` summarises a checkpoint without touching the noise
  plane.

Strip jobs are scheduled as a degenerate tile plan (one tile per strip:
``tile_nx = strip_nx``, ``tile_ny = width_ny``), whose row-major tile
order equals the strip order of
:func:`repro.parallel.streaming.stream_strips` — so strip jobs inherit
every backend and the whole retry machinery, and their assembled output
equals ``assemble_strips(stream_strips(...))`` bit-for-bit.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from .. import obs
from ..core.rng import BlockNoise
from ..core.surface import Surface
from ..parallel.executor import generate_tiled
from ..parallel.tiles import TilePlan
from .checkpoint import JobCheckpoint, generator_fingerprint
from .faults import FaultPlan
from .retry import RetryPolicy

__all__ = ["run_tiled", "run_strips", "run_spec", "resume", "status",
           "generator_from_rebuild"]

PathLike = Union[str, Path]


def _execute(
    ckpt: JobCheckpoint,
    generator: Any,
    noise: BlockNoise,
    plan: TilePlan,
    *,
    backend: str,
    workers: Optional[int],
    retry: Optional[RetryPolicy],
    fault_plan: Optional[FaultPlan],
    checkpoint_every: int,
    resumed: bool,
    on_tile: Optional[Any] = None,
) -> Surface:
    """Run ``plan`` against the checkpoint, persisting progress.

    Completed tiles are marked immediately and the checkpoint is
    rewritten every ``checkpoint_every`` completions; on *any* failure
    (including ``KeyboardInterrupt``) the final state is flushed with
    ``status="failed"`` before the exception propagates, so the run is
    always resumable.
    """
    if checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    if backend == "dist" and ckpt.store is None:
        raise ValueError(
            "backend='dist' requires a store-backed job (store=): the "
            "store's chunk bitmap is the distributed completion ledger"
        )
    policy = retry if retry is not None else (ckpt.retry or RetryPolicy())
    skip = ckpt.done_indices()
    since_write = 0

    def record_tile(index: int, tile) -> None:
        nonlocal since_write
        ckpt.mark_done(index)
        since_write += 1
        if since_write >= checkpoint_every:
            ckpt.write()
            since_write = 0
        if on_tile is not None:
            # caller's progress hook (serve job trackers); fires after
            # the tile is durably recorded, in the parent process
            on_tile(index, tile)

    if obs.enabled():
        obs.add("jobs.resumes" if resumed else "jobs.runs")
    obs.event(
        "jobs.run.start",
        kind=ckpt.manifest["kind"], backend=backend,
        resumed=resumed, tiles_skipped=len(skip),
        checkpoint=str(ckpt.path),
    )
    span = obs.trace("jobs.run", {
        "kind": ckpt.manifest["kind"], "backend": backend,
        "resumed": resumed, "tiles_skipped": len(skip),
    } if obs.enabled() else None)
    try:
        with span:
            surface = generate_tiled(
                generator, noise, plan,
                backend=backend, workers=workers,
                retry=policy, fault_plan=fault_plan,
                out=ckpt.out_target, skip=skip, on_tile=record_tile,
                rebuild=ckpt.manifest.get("rebuild"),
            )
    except BaseException as exc:
        ckpt.manifest["error"] = repr(exc)
        ckpt.write(status="failed")
        obs.event(
            "jobs.run.failed", level="error",
            kind=ckpt.manifest["kind"], backend=backend,
            error=repr(exc), checkpoint=str(ckpt.path),
        )
        raise
    ckpt.manifest["error"] = None
    ckpt.manifest["resilience"] = surface.provenance.get("resilience")
    ckpt.write(status="complete")
    obs.event(
        "jobs.run.finish",
        kind=ckpt.manifest["kind"], backend=backend,
        resumed=resumed, checkpoint=str(ckpt.path),
    )
    surface.provenance["job"] = {
        "checkpoint": str(ckpt.path),
        "resumed": resumed,
        "tiles_resumed": len(skip),
        "retry": policy.to_dict(),
    }
    return surface


def run_tiled(
    generator: Any,
    noise: BlockNoise,
    plan: TilePlan,
    *,
    checkpoint: PathLike,
    backend: str = "serial",
    workers: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_every: int = 1,
    rebuild: Optional[dict] = None,
    store: Optional[Any] = None,
    on_tile: Optional[Any] = None,
) -> Surface:
    """Checkpointed tiled generation (resilient ``generate_tiled``).

    Parameters mirror :func:`repro.parallel.executor.generate_tiled`;
    additionally ``checkpoint`` names a fresh directory for the durable
    state, ``checkpoint_every`` sets how many completed tiles trigger a
    state flush, and ``rebuild`` optionally records a recipe (spectrum
    or figure parameters) from which :func:`resume` can reconstruct the
    generator when the caller cannot pass one.  ``store`` (a
    :class:`repro.io.store.SurfaceStore` whose chunk grid equals the
    plan) makes the job out-of-core: heights stream to the store, the
    checkpoint keeps no ``state.npz``, and resume skips the chunks the
    store's bitmap has durably recorded.
    """
    policy = retry if retry is not None else RetryPolicy()
    ckpt = JobCheckpoint.create(
        checkpoint, kind="tiled", plan=plan, noise=noise,
        backend=backend, workers=workers, retry=policy,
        generator=generator, rebuild=rebuild, store=store,
    )
    return _execute(
        ckpt, generator, noise, plan,
        backend=backend, workers=workers, retry=policy,
        fault_plan=fault_plan, checkpoint_every=checkpoint_every,
        resumed=False, on_tile=on_tile,
    )


def strip_plan(total_nx: int, width_ny: int, strip_nx: int,
               x0: int = 0, y0: int = 0) -> TilePlan:
    """The tile plan whose row-major tiles are exactly the strips of
    ``stream_strips(generator, noise, total_nx, width_ny, strip_nx)``."""
    return TilePlan(
        total_nx=total_nx, total_ny=width_ny,
        tile_nx=strip_nx, tile_ny=width_ny,
        origin_x=x0, origin_y=y0,
    )


def run_strips(
    generator: Any,
    noise: BlockNoise,
    total_nx: int,
    width_ny: int,
    strip_nx: int,
    x0: int = 0,
    y0: int = 0,
    *,
    checkpoint: PathLike,
    backend: str = "serial",
    workers: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_every: int = 1,
    rebuild: Optional[dict] = None,
    store: Optional[Any] = None,
    on_tile: Optional[Any] = None,
) -> Surface:
    """Checkpointed strip-stream generation.

    Covers the same strips as :func:`~repro.parallel.streaming.
    stream_strips` (including the clipped final strip) and returns the
    assembled surface — bit-identical to
    ``assemble_strips(stream_strips(...))`` — while gaining every
    resilience feature of the tiled path: retries, worker-crash
    recovery, degradation, and resumable checkpoints.  ``store`` (one
    chunk per strip: ``chunk=(strip_nx, width_ny)``) streams the
    strips to disk instead of RAM, exactly as in :func:`run_tiled`.
    """
    policy = retry if retry is not None else RetryPolicy()
    plan = strip_plan(total_nx, width_ny, strip_nx, x0, y0)
    ckpt = JobCheckpoint.create(
        checkpoint, kind="strips", plan=plan, noise=noise,
        backend=backend, workers=workers, retry=policy,
        generator=generator, rebuild=rebuild,
        strips={"total_nx": total_nx, "width_ny": width_ny,
                "strip_nx": strip_nx, "x0": x0, "y0": y0},
        store=store,
    )
    surface = _execute(
        ckpt, generator, noise, plan,
        backend=backend, workers=workers, retry=policy,
        fault_plan=fault_plan, checkpoint_every=checkpoint_every,
        resumed=False, on_tile=on_tile,
    )
    surface.provenance["strips"] = len(plan)
    return surface


def _rebuild_truncation(rebuild: dict, default: float) -> Any:
    """The recipe's truncation spec, repaired after JSON round-trips.

    A fixed-footprint truncation is a ``(kx, ky)`` *tuple*, which JSON
    (checkpoint manifests, the dist wire) returns as a list —
    ``resolve_kernel`` dispatches on ``isinstance(..., tuple)``, so the
    list must be coerced back or it would be misread as an energy
    fraction and crash.
    """
    truncation = rebuild.get("truncation", default)
    if isinstance(truncation, list):
        if len(truncation) != 2:
            raise ValueError(
                f"truncation list must have two entries, got {truncation!r}"
            )
        return (truncation[0], truncation[1])
    return truncation


def generator_from_rebuild(rebuild: Optional[dict]) -> Any:
    """Reconstruct a generator from a ``rebuild`` recipe.

    Recipes are the JSON descriptions checkpoint manifests record and
    the dist protocol ships: enough to rebuild the generator with a
    matching fingerprint in any process on any host.
    """
    if not rebuild:
        raise ValueError(
            "checkpoint records no rebuild recipe; pass generator= to "
            "resume()"
        )
    kind = rebuild.get("kind")
    if kind == "convolution":
        from ..core.convolution import ConvolutionGenerator
        from ..core.grid import Grid2D
        from ..core.spectra import spectrum_from_dict

        g = rebuild["grid"]
        return ConvolutionGenerator(
            spectrum_from_dict(rebuild["spectrum"]),
            Grid2D(nx=g["nx"], ny=g["ny"], lx=g["lx"], ly=g["ly"]),
            truncation=_rebuild_truncation(rebuild, 0.9999),
            engine=rebuild.get("engine", "auto"),
            dtype=rebuild.get("dtype", "float64"),
        )
    if kind == "figure":
        from ..core.inhomogeneous import InhomogeneousGenerator
        from ..figures import default_grid, figure_layout

        grid = default_grid(rebuild["n"], rebuild["domain"])
        layout = figure_layout(rebuild["name"], rebuild["domain"])
        return InhomogeneousGenerator(
            layout, grid, truncation=_rebuild_truncation(rebuild, 0.999),
            engine=rebuild.get("engine", "auto"),
            dtype=rebuild.get("dtype", "float64"),
        )
    raise ValueError(f"unknown rebuild kind {kind!r}")


#: Backwards-compatible private alias (pre-dist name).
_generator_from_rebuild = generator_from_rebuild


def run_spec(
    spec: Any,
    *,
    checkpoint: PathLike,
    backend: str = "serial",
    workers: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_every: int = 1,
    store: Optional[Any] = None,
    on_tile: Optional[Any] = None,
    verify: bool = False,
) -> Surface:
    """Execute a :class:`~repro.core.spec.GenerationSpec` as a
    checkpointed tiled job.

    The spec is the single source of truth: generator, noise plane and
    tile plan are all materialised from it, its recipe is recorded as
    the checkpoint's ``rebuild``, and — when ``store`` is not passed
    explicitly — a ``spec.store_path`` creates the out-of-core
    :class:`~repro.io.store.SurfaceStore` sink.  Any two calls with an
    equal spec produce bit-identical heights on every backend; this is
    the entry point the CLI's ``--spec`` flag and the ``repro.serve``
    front door share.

    ``verify=True`` runs the :mod:`repro.verify` streaming pass after
    generation, gating the surface against the spec's spectrum.  The
    ``repro.verify/v1`` report is checkpointed as ``verify.json`` next
    to the job manifest and attached to ``surface.provenance["verify"]``;
    a failing report does not raise — callers decide what a red gate
    means (the CLI exits non-zero, serve surfaces it per job).
    """
    from ..core.spec import SpecError

    if spec.plan is None:
        raise SpecError("plan", "spec-driven jobs are tiled; give the "
                                "spec a plan (or a 'tile' shorthand)")
    generator = spec.build_generator()
    noise = spec.noise()
    plan = spec.tile_plan()
    spectrum_recipe = None
    if isinstance(spec.generator, dict):
        recipe = spec.generator.get("spectrum")
        if isinstance(recipe, dict):
            spectrum_recipe = recipe
    if store is None and spec.store_path:
        from ..io.store import SurfaceStore

        grid = generator.grid
        meta = {"seed": spec.seed}
        if spectrum_recipe is not None:
            meta["spectrum"] = spectrum_recipe
        store = SurfaceStore.create(
            spec.store_path, shape=(plan.total_nx, plan.total_ny),
            chunk=(plan.tile_nx, plan.tile_ny),
            dx=grid.dx, dy=grid.dy, meta=meta,
        )
    if fault_plan is None and spec.faults:
        fault_plan = FaultPlan.from_dicts(spec.faults)
    surface = run_tiled(
        generator, noise, plan,
        checkpoint=checkpoint, backend=backend, workers=workers,
        retry=retry, fault_plan=fault_plan,
        checkpoint_every=checkpoint_every,
        rebuild=spec.generator, store=store, on_tile=on_tile,
    )
    if verify:
        from ..verify import (
            REPORT_NAME, verify_heights, verify_store, write_report,
        )

        spectrum = None
        if spectrum_recipe is not None:
            from ..core.spectra import spectrum_from_dict

            spectrum = spectrum_from_dict(spectrum_recipe)
        if store is not None:
            report = verify_store(store, spectrum)
        else:
            grid = generator.grid
            report = verify_heights(
                surface.heights, spectrum, dx=grid.dx, dy=grid.dy)
        write_report(report, Path(checkpoint) / REPORT_NAME)
        surface.provenance["verify"] = report.to_dict()
    return surface


def resume(
    path: PathLike,
    generator: Any = None,
    *,
    backend: Optional[str] = None,
    workers: Optional[int] = None,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[FaultPlan] = None,
    checkpoint_every: int = 1,
    check_generator: bool = True,
    on_tile: Optional[Any] = None,
) -> Surface:
    """Finish a checkpointed job; bit-identical to an uninterrupted run.

    Loads the checkpoint, skips completed tiles, recomputes the rest
    (on ``backend`` if given, else the recorded one — the choice cannot
    change the values) and returns the completed surface.  When
    ``generator`` is omitted the manifest's ``rebuild`` recipe is used;
    when it is given and ``check_generator`` is true, its fingerprint
    must match the recorded one — resuming under a different
    configuration would silently weld two different surfaces together.
    """
    ckpt = JobCheckpoint.load(path)
    if ckpt.status == "complete" and not ckpt.done.all():
        # never trust a manifest over the mask
        ckpt.manifest["status"] = "running"
    if generator is None:
        generator = _generator_from_rebuild(ckpt.manifest.get("rebuild"))
    elif check_generator:
        recorded = (ckpt.manifest.get("generator") or {}).get("fingerprint")
        actual = generator_fingerprint(generator)
        if recorded is not None and recorded != actual:
            raise ValueError(
                f"generator fingerprint {actual} does not match the "
                f"checkpoint's {recorded}; pass check_generator=False "
                f"only if you are certain the configuration is identical"
            )
    return _execute(
        ckpt, generator, ckpt.noise, ckpt.plan,
        backend=backend or ckpt.manifest.get("backend", "serial"),
        workers=workers if workers is not None
        else ckpt.manifest.get("workers"),
        retry=retry, fault_plan=fault_plan,
        checkpoint_every=checkpoint_every, resumed=True, on_tile=on_tile,
    )


def status(path: PathLike) -> Dict[str, Any]:
    """Summarise a checkpoint (status, progress, accounting) as a dict."""
    return JobCheckpoint.load(path).summary()
