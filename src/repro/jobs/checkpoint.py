"""Durable on-disk job state: the ``repro.jobs/v1`` checkpoint format.

A checkpoint is a directory holding two atomically-written files:

``manifest.json``
    Everything needed to *re-derive* the run: the tile plan (or strip
    geometry), the noise plane's seed and block size, backend/workers,
    the retry policy, a fingerprint of the generator's stable
    configuration, an optional ``rebuild`` recipe (how the CLI can
    reconstruct the generator from spectrum/figure parameters),
    retry/respawn accounting, an observability counter snapshot, and
    the job status (``running`` / ``failed`` / ``complete``).
``state.npz``
    The partial ``heights`` array plus the boolean ``done`` mask over
    the plan's row-major tile order.

Store-backed jobs (``store=`` on :func:`repro.jobs.run_tiled` /
:func:`~repro.jobs.run_strips`) keep **no** ``state.npz``: the heights
live in the :class:`repro.io.store.SurfaceStore` and the store's
per-chunk bitmap *is* the done mask — the manifest records the store's
path under ``"store"`` and progress is read back from the bitmap on
load.  Because the store writer marks a chunk only after its durable
write, a resumed store job can never trust data that is not on disk.

Because tile values are pure functions of ``(generator, noise seed,
tile)``, a checkpoint plus the same generator configuration is
sufficient for :func:`repro.jobs.resume` to finish the run with heights
bit-identical to an uninterrupted one — the manifest's fingerprint
guards against resuming under a *different* configuration, which would
silently weld two different surfaces together.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

import numpy as np

from .. import obs
from ..core.rng import BlockNoise
from ..io.atomic import atomic_write_json, atomic_write_npz
from ..parallel.tiles import TilePlan
from .retry import RetryPolicy

__all__ = ["JobCheckpoint", "generator_fingerprint", "FORMAT_VERSION"]

FORMAT_VERSION = "repro.jobs/v1"
MANIFEST_NAME = "manifest.json"
STATE_NAME = "state.npz"

PathLike = Union[str, Path]


def generator_fingerprint(generator: Any) -> str:
    """Stable digest of a generator's run-relevant configuration.

    Hashes the type name, engine, grid geometry, truncation spec and —
    when available — the spectrum parameters; deliberately excludes
    memory addresses and caches so the same configuration always
    fingerprints identically across processes.
    """
    desc: Dict[str, Any] = {"type": type(generator).__name__}
    engine = getattr(generator, "engine", None)
    if engine is not None:
        desc["engine"] = engine
    grid = getattr(generator, "grid", None)
    if grid is not None:
        desc["grid"] = [grid.nx, grid.ny, grid.lx, grid.ly]
    truncation = getattr(generator, "truncation", None)
    if truncation is not None:
        desc["truncation"] = repr(truncation)
    # only a non-default precision marks the digest, so checkpoints
    # written before dtype existed still resume with float64 generators
    dt = getattr(generator, "dtype", None)
    if dt is not None and np.dtype(dt) != np.float64:
        desc["dtype"] = np.dtype(dt).name
    spectrum = getattr(generator, "spectrum", None)
    if spectrum is not None and hasattr(spectrum, "to_dict"):
        desc["spectrum"] = spectrum.to_dict()
    layout = getattr(generator, "layout", None)
    if layout is not None:
        desc["layout"] = type(layout).__name__
    text = json.dumps(desc, sort_keys=True, default=repr)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


@dataclass
class JobCheckpoint:
    """In-memory handle on one checkpoint directory.

    ``heights`` is the live output array — :func:`repro.jobs.run_tiled`
    hands it to the executor as ``out=``, so marking a tile done and
    calling :meth:`write` persists exactly what has been computed.
    For store-backed jobs ``heights`` is ``None``, ``store`` holds the
    open :class:`~repro.io.store.SurfaceStore`, and ``done`` *is* the
    store's live chunk bitmap (shared array, maintained by the store's
    writer).
    """

    path: Path
    manifest: Dict[str, Any]
    heights: Optional[np.ndarray]
    done: np.ndarray
    store: Optional[Any] = None

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        *,
        kind: str,
        plan: TilePlan,
        noise: BlockNoise,
        backend: str,
        workers: Optional[int],
        retry: Optional[RetryPolicy],
        generator: Any,
        rebuild: Optional[dict] = None,
        strips: Optional[dict] = None,
        store: Optional[Any] = None,
    ) -> "JobCheckpoint":
        path = Path(path)
        if (path / MANIFEST_NAME).exists():
            raise FileExistsError(
                f"checkpoint already exists at {path}; use "
                f"repro.jobs.resume() (or delete it) instead of "
                f"starting a new job there"
            )
        if store is not None:
            store.validate_plan(plan)  # tile index must equal chunk index
        path.mkdir(parents=True, exist_ok=True)
        manifest: Dict[str, Any] = {
            "format": FORMAT_VERSION,
            "kind": kind,
            "status": "running",
            "plan": {
                "total_nx": plan.total_nx, "total_ny": plan.total_ny,
                "tile_nx": plan.tile_nx, "tile_ny": plan.tile_ny,
                "origin_x": plan.origin_x, "origin_y": plan.origin_y,
            },
            "noise": {"seed": noise.seed,
                      "block": getattr(noise, "block", None)},
            "backend": backend,
            "workers": workers,
            "retry": retry.to_dict() if retry is not None else None,
            "generator": {
                "type": type(generator).__name__,
                "fingerprint": generator_fingerprint(generator),
            },
            "rebuild": rebuild,
            "progress": {"tiles_total": len(plan), "tiles_done": 0},
            "resilience": None,
            "obs_counters": None,
            "error": None,
        }
        if strips is not None:
            manifest["strips"] = strips
        if store is not None:
            manifest["store"] = {"path": str(Path(store.path).resolve())}
            ckpt = cls(
                path=path, manifest=manifest,
                heights=None, done=store.done, store=store,
            )
        else:
            # the live array must match the generator's precision (the
            # executor refuses a mismatched out= target)
            out_dtype = np.dtype(getattr(generator, "dtype", np.float64))
            ckpt = cls(
                path=path,
                manifest=manifest,
                heights=np.zeros((plan.total_nx, plan.total_ny),
                                 dtype=out_dtype),
                done=np.zeros(len(plan), dtype=bool),
            )
        ckpt.write()
        return ckpt

    @classmethod
    def load(cls, path: PathLike) -> "JobCheckpoint":
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise FileNotFoundError(
                f"no checkpoint manifest at {manifest_path}"
            ) from None
        fmt = manifest.get("format")
        if fmt != FORMAT_VERSION:
            raise ValueError(
                f"unsupported checkpoint format {fmt!r} at {path} "
                f"(this build reads {FORMAT_VERSION!r})"
            )
        plan = _plan_from_manifest(manifest)
        store_spec = manifest.get("store")
        if store_spec is not None:
            # heights + done live in the store; the bitmap — written
            # only after each durable chunk write — is authoritative.
            from ..io.store import SurfaceStore

            store = SurfaceStore.open(store_spec["path"], mode="r+")
            store.validate_plan(plan)
            return cls(path=path, manifest=manifest,
                       heights=None, done=store.done, store=store)
        with np.load(path / STATE_NAME) as state:
            # keep the stored precision: a float32 job must resume into
            # a float32 array or the executor rejects it as out= target
            heights = np.array(state["heights"])
            done = np.array(state["done"], dtype=bool)
        if heights.shape != (plan.total_nx, plan.total_ny):
            raise ValueError(
                f"checkpoint state shape {heights.shape} does not match "
                f"the manifest plan {(plan.total_nx, plan.total_ny)}"
            )
        if done.shape != (len(plan),):
            raise ValueError(
                "checkpoint done mask does not match the plan's tile count"
            )
        return cls(path=path, manifest=manifest, heights=heights, done=done)

    # -- derived pieces ----------------------------------------------------
    @property
    def plan(self) -> TilePlan:
        return _plan_from_manifest(self.manifest)

    @property
    def noise(self) -> BlockNoise:
        spec = self.manifest["noise"]
        kwargs = {"seed": spec["seed"]}
        if spec.get("block") is not None:
            kwargs["block"] = spec["block"]
        return BlockNoise(**kwargs)

    @property
    def retry(self) -> Optional[RetryPolicy]:
        data = self.manifest.get("retry")
        return RetryPolicy.from_dict(data) if data else None

    @property
    def status(self) -> str:
        return self.manifest.get("status", "unknown")

    def done_indices(self) -> List[int]:
        return [int(i) for i in np.flatnonzero(self.done)]

    def mark_done(self, index: int) -> None:
        if self.store is not None:
            # The store's writer owns the bitmap and marks a chunk only
            # after its durable write; the executor's on_tile hook fires
            # at queue submission, which must not count as done.
            return
        self.done[index] = True

    @property
    def out_target(self) -> Any:
        """What the executor should fill: the store or the live array."""
        return self.store if self.store is not None else self.heights

    # -- persistence -------------------------------------------------------
    def write(self, status: Optional[str] = None) -> None:
        """Persist manifest + state atomically (a ``jobs.checkpoint.write``
        span; state first so a crash between the two files leaves a
        manifest that undercounts, never overcounts, progress)."""
        if status is not None:
            self.manifest["status"] = status
        self.manifest["progress"]["tiles_done"] = int(self.done.sum())
        if obs.enabled():
            self.manifest["obs_counters"] = (
                obs.get_recorder().metrics.as_dict()
            )
        with obs.trace("jobs.checkpoint.write",
                       {"tiles_done":
                        self.manifest["progress"]["tiles_done"]}
                       if obs.enabled() else None):
            if self.store is None:
                atomic_write_npz(self.path / STATE_NAME,
                                 heights=self.heights, done=self.done)
            atomic_write_json(self.path / MANIFEST_NAME, self.manifest)
        if obs.enabled():
            obs.add("jobs.checkpoint_writes")

    def summary(self) -> Dict[str, Any]:
        """The ``repro job status`` view of this checkpoint."""
        progress = self.manifest["progress"]
        total = progress["tiles_total"]
        done = int(self.done.sum())
        return {
            "path": str(self.path),
            "format": self.manifest["format"],
            "kind": self.manifest["kind"],
            "status": self.manifest["status"],
            "tiles_total": total,
            "tiles_done": done,
            "fraction_done": done / total if total else 0.0,
            "backend": self.manifest.get("backend"),
            "noise": self.manifest.get("noise"),
            "generator": self.manifest.get("generator"),
            "resilience": self.manifest.get("resilience"),
            "error": self.manifest.get("error"),
            **({"store": self.manifest["store"]}
               if self.manifest.get("store") else {}),
        }


def _plan_from_manifest(manifest: Dict[str, Any]) -> TilePlan:
    spec = manifest["plan"]
    return TilePlan(
        total_nx=spec["total_nx"], total_ny=spec["total_ny"],
        tile_nx=spec["tile_nx"], tile_ny=spec["tile_ny"],
        origin_x=spec.get("origin_x", 0), origin_y=spec.get("origin_y", 0),
    )
