"""Deterministic fault injection for the resilient executor.

A :class:`FaultPlan` is a picklable schedule of failures keyed on
``(tile index, attempt number)``: *fail tile k on attempt n*.  The
executor calls :meth:`FaultPlan.fire` right before computing each tile —
in the parent for the serial/thread backends, inside the worker process
for the process backend — so tests and the ``--inject-fault`` debug CLI
flag can reproduce crashes exactly.

Three kinds:

``raise``
    Raise :class:`InjectedFault` — an ordinary tile failure the retry
    logic must absorb.
``kill``
    Hard-exit the worker process (``os._exit``), breaking the process
    pool mid-run exactly like an OOM-killed or segfaulted worker.  Only
    fires inside pool worker processes — or processes that declared
    themselves expendable via :func:`mark_killable`, which the
    ``repro dist worker`` entrypoint does because dist workers are
    plain subprocesses without a multiprocessing parent.  Everywhere
    else it is inert, because killing the parent would be killing the
    job itself rather than simulating a lost worker.
``delay``
    Sleep ``delay_s`` seconds, then compute normally — a latency
    injector for scheduling/timeout behaviour.

Because every tile attempt is numbered deterministically, a fired plan
perturbs only *when* tiles are computed, never their values — resumed
and fault-free runs stay bit-identical.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "InjectedFault",
    "mark_killable",
]

FAULT_KINDS = ("raise", "kill", "delay")
FaultKind = str

# Processes that are safe to hard-exit even without a multiprocessing
# parent (dist worker subprocesses) opt in explicitly; see mark_killable.
_KILLABLE = False


def mark_killable() -> None:
    """Declare this process expendable for ``kill`` faults.

    Pool workers are detected automatically via their multiprocessing
    parent; distributed workers are spawned with plain ``subprocess`` /
    ``exec`` and must call this from their entrypoint so injected
    ``kill`` faults actually crash them.  Never call this from a process
    that owns the run (coordinator, test runner, interactive session).
    """
    global _KILLABLE
    _KILLABLE = True


class InjectedFault(RuntimeError):
    """A deliberate tile failure raised by a :class:`FaultSpec`."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: tile ``tile`` misbehaves on attempt ``attempt``.

    ``tile`` indexes the plan's row-major tile order (strip index for
    strip jobs); ``attempt`` is 1-based.  ``delay_s`` applies to the
    ``delay`` kind.
    """

    tile: int
    attempt: int = 1
    kind: FaultKind = "raise"
    delay_s: float = 0.0

    def __post_init__(self) -> None:
        if self.tile < 0:
            raise ValueError("tile index must be >= 0")
        if self.attempt < 1:
            raise ValueError("attempt is 1-based")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; "
                f"expected one of {FAULT_KINDS}"
            )
        if self.delay_s < 0:
            raise ValueError("delay_s must be >= 0")

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form for the dist wire protocol."""
        return {
            "tile": self.tile,
            "attempt": self.attempt,
            "kind": self.kind,
            "delay_s": self.delay_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultSpec":
        return cls(
            tile=int(data["tile"]),
            attempt=int(data.get("attempt", 1)),
            kind=str(data.get("kind", "raise")),
            delay_s=float(data.get("delay_s", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec` entries.

    Picklable (it rides the process-pool initializer next to the
    generator), and addressed purely by ``(tile, attempt)`` so identical
    runs fail identically.
    """

    specs: Tuple[FaultSpec, ...] = ()

    @classmethod
    def of(cls, *specs: FaultSpec) -> "FaultPlan":
        return cls(specs=tuple(specs))

    @classmethod
    def parse(cls, texts: Iterable[str]) -> "FaultPlan":
        """Build a plan from CLI ``--inject-fault`` spec strings.

        Each spec is comma-separated ``key=value`` pairs, e.g.
        ``"tile=3,attempt=1,kind=kill"`` or
        ``"tile=0,kind=delay,delay=0.5"``.  Keys: ``tile`` (required),
        ``attempt`` (default 1), ``kind`` (default ``raise``), ``delay``
        (seconds, ``delay`` kind only).
        """
        specs = []
        for text in texts:
            fields: Dict[str, str] = {}
            for part in text.split(","):
                part = part.strip()
                if not part:
                    continue
                if "=" not in part:
                    raise ValueError(
                        f"bad fault spec {text!r}: expected key=value "
                        f"pairs, got {part!r}"
                    )
                key, value = part.split("=", 1)
                fields[key.strip()] = value.strip()
            unknown = set(fields) - {"tile", "attempt", "kind", "delay"}
            if unknown:
                raise ValueError(
                    f"bad fault spec {text!r}: unknown key(s) "
                    f"{sorted(unknown)}"
                )
            if "tile" not in fields:
                raise ValueError(f"bad fault spec {text!r}: missing tile=")
            specs.append(FaultSpec(
                tile=int(fields["tile"]),
                attempt=int(fields.get("attempt", 1)),
                kind=fields.get("kind", "raise"),
                delay_s=float(fields.get("delay", 0.0)),
            ))
        return cls(specs=tuple(specs))

    def to_dicts(self) -> list:
        """JSON-safe form (coordinator ships fault plans to workers)."""
        return [spec.to_dict() for spec in self.specs]

    @classmethod
    def from_dicts(cls, data: Iterable[Dict[str, object]]) -> "FaultPlan":
        return cls(specs=tuple(FaultSpec.from_dict(d) for d in data))

    def lookup(self, tile: int, attempt: int) -> Optional[FaultSpec]:
        for spec in self.specs:
            if spec.tile == tile and spec.attempt == attempt:
                return spec
        return None

    def fire(self, tile: int, attempt: int) -> None:
        """Trigger the fault scheduled for this ``(tile, attempt)``, if any.

        Called by the executor immediately before computing the tile.
        ``raise`` kinds raise :class:`InjectedFault`; ``kill`` hard-exits
        the current process *only* when it is a pool worker; ``delay``
        sleeps and returns.
        """
        spec = self.lookup(tile, attempt)
        if spec is None:
            return
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
            return
        if spec.kind == "kill":
            if multiprocessing.parent_process() is not None or _KILLABLE:
                os._exit(17)  # simulate a hard worker crash
            return  # inert in the parent: nothing to crash but the job
        raise InjectedFault(
            f"injected fault: tile {tile} attempt {attempt}"
        )
