"""Retry policy for fault-tolerant tiled execution.

One frozen dataclass describes every knob of the resilient executor
(:func:`repro.parallel.executor.generate_tiled` with ``retry=``): how
often a tile may fail, how long to back off between attempts, how many
times a crashed process pool is respawned before the run degrades to the
next backend, and the run-wide failure budget.

Backoff is deterministic (no jitter) on purpose: the executor's contract
is bit-identical output for a fixed plan, and the job layer extends that
to *schedules* — two runs with the same policy and fault plan retry at
the same times, which is what makes the fault-injection tests exact.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Optional

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How the resilient executor responds to tile and pool failures.

    Parameters
    ----------
    max_attempts:
        Failures tolerated per tile before the run aborts with
        :class:`~repro.parallel.executor.TileFailedError`.  Requeues
        caused by *another* tile crashing the pool do not count.
    backoff_base, backoff_factor, backoff_max:
        Exponential backoff between a tile's attempts:
        ``base * factor**(failures-1)`` seconds, capped at ``max``.
    failure_budget:
        Total failed attempts tolerated across the whole run (``None``
        = unlimited); exceeding it raises
        :class:`~repro.parallel.executor.FailureBudgetExceeded`.
    max_respawns:
        Times a broken process pool is recreated before giving up on
        the process backend.
    degrade:
        When the respawn budget is spent: fall back process → thread →
        serial (output values are backend-independent, so degradation
        preserves bit-identity) instead of raising.
    """

    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    failure_budget: Optional[int] = None
    max_respawns: int = 2
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff times must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.failure_budget is not None and self.failure_budget < 0:
            raise ValueError("failure_budget must be >= 0 or None")
        if self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0")

    def delay(self, failures: int) -> float:
        """Deterministic backoff before retrying after ``failures`` fails."""
        if failures < 1:
            return 0.0
        return min(
            self.backoff_base * self.backoff_factor ** (failures - 1),
            self.backoff_max,
        )

    def to_dict(self) -> dict:
        """JSON-ready form (stored in checkpoint manifests)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RetryPolicy":
        return cls(**data)
