"""Grid-convergence studies for the spectral discretisation.

Systematises the C3 analysis: how fast do the discrete weighting arrays
converge to the continuous statistics as the grid is refined (smaller
``dx``) or enlarged (bigger ``L``)?  The two knobs control different
error terms:

* refinement extends the Nyquist band — it kills the *out-of-band tail*
  error, dominant for the algebraic-tail families (exponential,
  low-order power-law);
* enlargement tightens the spectral sampling ``dK = 2 pi / L`` — it
  kills the *sampling/wrap-around* error, dominant when the correlation
  length approaches the domain size.

:func:`refinement_study` and :func:`enlargement_study` produce tidy rows
(and estimated convergence orders) that the docs and benches consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.grid import Grid2D
from ..core.spectra import Spectrum
from .checks import weight_acf_error

__all__ = ["ConvergenceRow", "refinement_study", "enlargement_study",
           "estimate_order"]


@dataclass(frozen=True)
class ConvergenceRow:
    """One grid in a convergence sweep."""

    nx: int
    lx: float
    dx: float
    rel_error_at_zero: float
    max_abs_error: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "nx": float(self.nx),
            "lx": self.lx,
            "dx": self.dx,
            "rel_error_at_zero": self.rel_error_at_zero,
            "max_abs_error": self.max_abs_error,
        }


def _row(spectrum: Spectrum, grid: Grid2D) -> ConvergenceRow:
    rep = weight_acf_error(spectrum, grid)
    return ConvergenceRow(
        nx=grid.nx, lx=grid.lx, dx=grid.dx,
        rel_error_at_zero=rep.rel_error_at_zero,
        max_abs_error=rep.max_abs_error,
    )


def refinement_study(
    spectrum: Spectrum, domain: float, sizes: Sequence[int]
) -> List[ConvergenceRow]:
    """Fixed domain, increasing resolution (Nyquist-band extension)."""
    if len(sizes) < 2 or any(n <= 0 for n in sizes):
        raise ValueError("need at least two positive sizes")
    return [
        _row(spectrum, Grid2D(nx=n, ny=n, lx=domain, ly=domain))
        for n in sorted(sizes)
    ]


def enlargement_study(
    spectrum: Spectrum, dx: float, sizes: Sequence[int]
) -> List[ConvergenceRow]:
    """Fixed spacing, increasing domain (spectral-sampling refinement)."""
    if len(sizes) < 2 or any(n <= 0 for n in sizes):
        raise ValueError("need at least two positive sizes")
    return [
        _row(spectrum, Grid2D(nx=n, ny=n, lx=n * dx, ly=n * dx))
        for n in sorted(sizes)
    ]


def estimate_order(rows: Sequence[ConvergenceRow], knob: str = "dx") -> float:
    """Least-squares convergence order ``p`` from ``err ~ C * knob^p``.

    ``knob`` is ``"dx"`` (refinement studies; expect p > 0) or ``"lx"``
    (enlargement studies; error decreases with lx, so the fitted slope
    against ``1/lx`` is reported, again p > 0 for convergence).
    Rows with error at rounding level (< 1e-14) are excluded — they are
    *converged*, not converging.
    """
    if knob not in ("dx", "lx"):
        raise ValueError("knob must be 'dx' or 'lx'")
    xs, es = [], []
    for r in rows:
        if r.rel_error_at_zero > 1e-14:
            xs.append(r.dx if knob == "dx" else 1.0 / r.lx)
            es.append(r.rel_error_at_zero)
    if len(xs) < 2:
        raise ValueError(
            "not enough non-converged rows to estimate an order "
            "(the spectrum may already be exactly resolved)"
        )
    slope, _ = np.polyfit(np.log(xs), np.log(es), 1)
    return float(slope)
