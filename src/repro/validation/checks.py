"""Deterministic accuracy checks on the spectral machinery.

The paper's own verification hook (below eqn 16): "the DFT of this
weighting array corresponds to the autocorrelation function ... and this
relation is useful for checking the accuracy of the numerical results".
:func:`weight_acf_error` quantifies that check — the discrepancy between
``DFT(w)`` and the closed-form :math:`\\rho(\\mathbf r)` — which is pure
spectral truncation + discretisation error: it vanishes as the grid is
refined *and* enlarged (bench C3 sweeps this).

Also here: variance bookkeeping (``sum(w)`` vs ``h^2``; kernel energy),
and the Hermitian/realness invariants of the synthesis path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..core.grid import Grid2D
from ..core.spectra import Spectrum
from ..core.weights import build_kernel, weight_array, weight_autocorrelation

__all__ = [
    "WeightAcfReport",
    "weight_acf_error",
    "variance_closure",
    "kernel_energy_closure",
]


@dataclass(frozen=True)
class WeightAcfReport:
    """Discrepancy between DFT(w) and the analytic autocorrelation."""

    max_abs_error: float
    rms_error: float
    rel_error_at_zero: float
    variance_target: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "max_abs_error": self.max_abs_error,
            "rms_error": self.rms_error,
            "rel_error_at_zero": self.rel_error_at_zero,
            "variance_target": self.variance_target,
        }


def weight_acf_error(spectrum: Spectrum, grid: Grid2D) -> WeightAcfReport:
    """Evaluate the paper's DFT(w) ~ rho accuracy check on a grid.

    Compares the discrete autocorrelation implied by the weighting array
    against the closed-form ACF evaluated at the grid's wrap-ordered lag
    coordinates.
    """
    acf_discrete = weight_autocorrelation(spectrum, grid)
    x = grid.x_centered[:, None]
    y = grid.y_centered[None, :]
    acf_exact = spectrum.autocorrelation(x, y)
    err = acf_discrete - acf_exact
    var = spectrum.variance
    at_zero = abs(err[0, 0]) / var if var > 0 else 0.0
    return WeightAcfReport(
        max_abs_error=float(np.max(np.abs(err))),
        rms_error=float(np.sqrt(np.mean(err * err))),
        rel_error_at_zero=float(at_zero),
        variance_target=var,
    )


def variance_closure(spectrum: Spectrum, grid: Grid2D) -> float:
    """Relative error of ``sum(w)`` against ``h^2`` (eqn 1 discretised)."""
    var = spectrum.variance
    if var == 0:
        return 0.0
    return float(abs(weight_array(spectrum, grid).sum() - var) / var)


def kernel_energy_closure(spectrum: Spectrum, grid: Grid2D) -> float:
    """Relative error of the kernel energy against ``h^2`` (Parseval)."""
    var = spectrum.variance
    if var == 0:
        return 0.0
    return float(abs(build_kernel(spectrum, grid).energy - var) / var)
