"""Validation harness: the paper's DFT(w)~rho accuracy check, variance
closure, and ensemble statistical verification."""

from .checks import (
    WeightAcfReport,
    kernel_energy_closure,
    variance_closure,
    weight_acf_error,
)
from .convergence import (
    ConvergenceRow,
    enlargement_study,
    estimate_order,
    refinement_study,
)
from .ensemble import EnsembleReport, ensemble_variance, verify_homogeneous
from .report import DEFAULT_SPECTRA, render_markdown, run_validation_report

__all__ = [
    "WeightAcfReport",
    "weight_acf_error",
    "variance_closure",
    "kernel_energy_closure",
    "EnsembleReport",
    "verify_homogeneous",
    "ensemble_variance",
    "ConvergenceRow", "refinement_study", "enlargement_study",
    "estimate_order",
    "run_validation_report", "render_markdown", "DEFAULT_SPECTRA",
]
