"""Ensemble (multi-realisation) statistical verification.

The statistics in eqns (1)-(4) are *ensemble* properties; a single
realisation only estimates them.  This module runs a generator over many
seeds and verifies that ensemble estimates converge to their targets:

* measured height variance -> ``sum(w)`` (and hence ~``h^2``);
* ensemble-averaged ACF -> ``DFT(w)`` (the generator realises exactly
  the *discretised* spectrum; comparing against the discrete target
  isolates sampling noise from discretisation error, which
  :mod:`repro.validation.checks` measures separately);
* ensemble-averaged periodogram -> ``W(K)``.

Used by the statistical test tier and the EXPERIMENTS.md tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..core.convolution import convolve_full
from ..core.grid import Grid2D
from ..core.spectra import Spectrum
from ..core.weights import weight_array, weight_autocorrelation
from ..stats.acf import acf2d
from ..stats.spectral import periodogram

__all__ = ["EnsembleReport", "verify_homogeneous", "ensemble_variance"]


@dataclass(frozen=True)
class EnsembleReport:
    """Ensemble verification outcome for a homogeneous generator."""

    n_realisations: int
    target_variance: float
    discrete_variance: float
    measured_variance: float
    variance_rel_error: float
    acf_rms_error: float
    spectrum_rel_error: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n_realisations": float(self.n_realisations),
            "target_variance": self.target_variance,
            "discrete_variance": self.discrete_variance,
            "measured_variance": self.measured_variance,
            "variance_rel_error": self.variance_rel_error,
            "acf_rms_error": self.acf_rms_error,
            "spectrum_rel_error": self.spectrum_rel_error,
        }


def ensemble_variance(
    generate: Callable[[int], np.ndarray], n_realisations: int, seed0: int = 0
) -> float:
    """Mean sample variance over ``n_realisations`` seeded realisations."""
    if n_realisations <= 0:
        raise ValueError("need at least one realisation")
    acc = 0.0
    for i in range(n_realisations):
        f = np.asarray(generate(seed0 + i))
        acc += float(f.var())
    return acc / n_realisations


def verify_homogeneous(
    spectrum: Spectrum,
    grid: Grid2D,
    n_realisations: int = 32,
    seed0: int = 1000,
    generate: Optional[Callable[[int], np.ndarray]] = None,
) -> EnsembleReport:
    """Run the full ensemble verification for one spectrum/grid pair.

    Parameters
    ----------
    generate:
        Realisation factory ``seed -> heights``; defaults to the exact
        full-kernel convolution method.  Pass a truncated or streamed
        generator to quantify its statistical bias instead.
    """
    if generate is None:
        def generate(seed: int) -> np.ndarray:  # noqa: ANN001
            return convolve_full(spectrum, grid, seed=seed)

    w = weight_array(spectrum, grid)
    discrete_var = float(w.sum())
    acf_target = weight_autocorrelation(spectrum, grid)
    spec_target = grid.spectral_cell * spectrum.spectrum(
        grid.kx_folded[:, None], grid.ky_folded[None, :]
    )

    var_acc = 0.0
    acf_acc = np.zeros(grid.shape)
    per_acc = np.zeros(grid.shape)
    for i in range(n_realisations):
        f = np.asarray(generate(seed0 + i))
        var_acc += float(f.var())
        acf_acc += acf2d(f)
        per_acc += periodogram(f, grid)
    var_mean = var_acc / n_realisations
    acf_mean = acf_acc / n_realisations
    per_mean = per_acc / n_realisations * grid.spectral_cell

    # Periodogram comparison restricted to bins carrying energy: relative
    # error weighted by the target (empty tail bins otherwise dominate).
    mask = spec_target > spec_target.max() * 1e-6
    spec_err = float(
        np.sum(np.abs(per_mean[mask] - spec_target[mask]))
        / np.sum(spec_target[mask])
    )
    return EnsembleReport(
        n_realisations=n_realisations,
        target_variance=spectrum.variance,
        discrete_variance=discrete_var,
        measured_variance=var_mean,
        variance_rel_error=abs(var_mean - discrete_var) / max(discrete_var, 1e-30),
        acf_rms_error=float(
            np.sqrt(np.mean((acf_mean - acf_target) ** 2))
        ),
        spectrum_rel_error=spec_err,
    )
