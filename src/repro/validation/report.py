"""Full validation report: one call, one markdown document.

Bundles the library's verification tooling into a single audit a user
can run after changing anything numerical:

* discretisation checks (DFT(w)~rho, variance closure) per family/grid;
* ensemble statistical verification (variance, ACF, spectrum);
* the method-equivalence identity (convolution vs direct DFT);
* slope-identity check (exact discrete forward-difference variance).

Returns a machine-readable dict and renders it as markdown
(:func:`render_markdown`); wired to ``repro-rrs validate --full``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.convolution import convolve_full
from ..core.direct_dft import direct_surface_from_array, hermitian_array_from_noise
from ..core.grid import Grid2D
from ..core.rng import standard_normal_field
from ..core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
    Spectrum,
)
from ..stats.slopes import (
    measured_forward_slope_variance,
    slope_variance_discrete,
)
from .checks import variance_closure, weight_acf_error
from .ensemble import verify_homogeneous

__all__ = ["run_validation_report", "render_markdown", "DEFAULT_SPECTRA"]

DEFAULT_SPECTRA: Dict[str, Spectrum] = {
    "gaussian": GaussianSpectrum(h=1.0, clx=20.0, cly=20.0),
    "power_law_2": PowerLawSpectrum(h=1.5, clx=25.0, cly=25.0, order=2.0),
    "exponential": ExponentialSpectrum(h=2.0, clx=15.0, cly=15.0),
}


def run_validation_report(
    grid: Optional[Grid2D] = None,
    spectra: Optional[Dict[str, Spectrum]] = None,
    n_realisations: int = 16,
    seed: int = 2009,
) -> Dict:
    """Run every verification layer; returns a nested result dict.

    With the defaults this takes a few seconds; the outcome feeds
    :func:`render_markdown` and the ``validate --full`` CLI path.
    """
    grid = grid or Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)
    spectra = spectra or DEFAULT_SPECTRA
    report: Dict = {"grid": {"nx": grid.nx, "ny": grid.ny,
                             "lx": grid.lx, "ly": grid.ly},
                    "families": {}}
    for name, spec in spectra.items():
        entry: Dict = {}
        # 1. discretisation
        acf_rep = weight_acf_error(spec, grid)
        entry["discretisation"] = {
            "rel_error_at_zero": acf_rep.rel_error_at_zero,
            "max_abs_error": acf_rep.max_abs_error,
            "variance_closure": variance_closure(spec, grid),
        }
        # 2. equivalence identity (matched noise)
        x = standard_normal_field(grid.shape, seed)
        f_conv = convolve_full(spec, grid, noise=x)
        f_dir = direct_surface_from_array(
            spec, grid, hermitian_array_from_noise(x)
        )
        scale = float(np.max(np.abs(f_conv))) or 1.0
        entry["method_equivalence_rel"] = float(
            np.max(np.abs(f_conv - f_dir)) / scale
        )
        # 3. ensemble statistics
        ens = verify_homogeneous(spec, grid, n_realisations=n_realisations,
                                 seed0=seed)
        entry["ensemble"] = {
            "variance_rel_error": ens.variance_rel_error,
            "acf_rms_error": ens.acf_rms_error,
            "spectrum_rel_error": ens.spectrum_rel_error,
        }
        # 4. slope identity (single realisation; exact in expectation)
        pred = slope_variance_discrete(spec, grid)
        meas = measured_forward_slope_variance(f_conv, grid.dx, grid.dy)
        entry["slope_identity_rel_error"] = float(
            abs(meas[0] - pred[0]) / max(pred[0], 1e-30)
        )
        report["families"][name] = entry

    report["pass"] = all(
        e["method_equivalence_rel"] < 1e-9
        and e["ensemble"]["variance_rel_error"] < 0.25
        and e["slope_identity_rel_error"] < 0.35
        for e in report["families"].values()
    )
    return report


def render_markdown(report: Dict) -> str:
    """Render a validation report dict as a compact markdown document."""
    g = report["grid"]
    lines = [
        "# Validation report",
        "",
        f"Grid: {g['nx']} x {g['ny']} over {g['lx']:g} x {g['ly']:g}",
        "",
        "| family | DFT(w)~rho rel err | var closure | method equiv | "
        "ens. var err | slope identity |",
        "|--------|-------------------:|------------:|-------------:|"
        "-------------:|---------------:|",
    ]
    for name, e in report["families"].items():
        d = e["discretisation"]
        lines.append(
            f"| {name} | {d['rel_error_at_zero']:.2e} | "
            f"{d['variance_closure']:.2e} | "
            f"{e['method_equivalence_rel']:.2e} | "
            f"{e['ensemble']['variance_rel_error']:.2%} | "
            f"{e['slope_identity_rel_error']:.2%} |"
        )
    lines += ["", f"**Overall: {'PASS' if report['pass'] else 'FAIL'}**", ""]
    return "\n".join(lines)
