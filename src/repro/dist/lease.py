"""Lease-based tile scheduling over the store's completion bitmap.

The :class:`LeaseLedger` is the coordinator's whole scheduling brain,
factored out of any socket code so its state machine is unit-testable
with a fake clock.  Per tile index it tracks one of four states::

            grant                    complete
    PENDING ------> LEASED ---------------------> DONE (bitmap bit set)
       ^              | deadline passed / worker
       |              | lost / failure reported
       +--------------+
         (backoff via RetryPolicy.delay)

The *bitmap is the ledger*: ``done`` is the live
:attr:`repro.io.store.SurfaceStore.done` array, so completion marks are
exactly the marks the store persists, a restarted coordinator rebuilds
PENDING as the bitmap's complement (:meth:`SurfaceStore.pending_indices`),
and a chunk can never be both "needs work" and "trust the bytes on
disk".  Duplicate completions — a straggler finishing after its lease
was re-granted — are accepted idempotently (tile values are pure
functions of ``(generator recipe, seed, tile)``, so both writers wrote
the same bytes) and counted, never double-marked.

Failure semantics deliberately mirror the single-host resilient
executor (:class:`repro.parallel.executor._ResilientRun`): *reported*
tile failures count toward ``RetryPolicy.max_attempts`` and the
run-wide ``failure_budget``; re-leases caused by a lost worker or an
expired deadline bump the attempt number and back off via
``RetryPolicy.delay`` but do **not** count as failures — a crashed
worker says nothing about the tile, exactly like a pool respawn's
requeues.

Shard affinity: tiles are pre-partitioned into contiguous shards
(:meth:`repro.parallel.tiles.TilePlan.shards`); each worker drains its
home shard first and steals from the fullest other shard when idle, so
static locality degrades gracefully into dynamic balancing — the
classic work-stealing compromise, here with the coordinator as the
single arbiter so no lease can be granted twice concurrently.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..jobs.retry import RetryPolicy
from ..parallel.executor import FailureBudgetExceeded, TileFailedError
from ..parallel.tiles import Tile

__all__ = ["LeaseLedger", "Lease"]

#: Bounds for the "come back later" hint handed to idle workers.
_MIN_WAIT_S = 0.05
_MAX_WAIT_S = 1.0


@dataclass
class Lease:
    """One outstanding grant: ``worker`` owns tile ``index`` until
    ``deadline`` (coordinator clock)."""

    index: int
    worker: str
    attempt: int
    deadline: float


class LeaseLedger:
    """Scheduler state for one distributed run (single-threaded; the
    coordinator serialises access under its own lock).

    Parameters
    ----------
    done:
        The live chunk bitmap (shared with the store).  Pre-set bits —
        a resumed run — are simply never queued.
    tiles:
        Row-major tiles, index-aligned with ``done``.
    policy:
        Retry/backoff knobs; ``None`` uses the defaults.
    lease_timeout_s:
        Grant lifetime.  Must comfortably exceed the slowest tile or
        healthy workers get speculatively double-scheduled.
    shards:
        Tile-index partition for worker affinity (defaults to one
        shard, i.e. a plain global queue).
    """

    def __init__(
        self,
        done: np.ndarray,
        tiles: Sequence[Tile],
        *,
        policy: Optional[RetryPolicy] = None,
        lease_timeout_s: float = 30.0,
        shards: Optional[Sequence[Sequence[int]]] = None,
    ) -> None:
        if len(done) != len(tiles):
            raise ValueError(
                f"bitmap has {len(done)} bits for {len(tiles)} tiles"
            )
        if lease_timeout_s <= 0:
            raise ValueError("lease_timeout_s must be positive")
        self.done = done
        self.tiles = list(tiles)
        self.policy = policy if policy is not None else RetryPolicy()
        self.lease_timeout_s = float(lease_timeout_s)
        if shards is None:
            shards = [list(range(len(tiles)))]
        covered = sorted(i for shard in shards for i in shard)
        if covered != list(range(len(tiles))):
            raise ValueError("shards must cover every tile index exactly once")
        self._queues: List[Deque[int]] = [
            deque(i for i in shard if not done[i]) for shard in shards
        ]
        self._home: Dict[int, int] = {
            i: ord_ for ord_, shard in enumerate(shards) for i in shard
        }
        self.leases: Dict[int, Lease] = {}
        self.attempts: Dict[int, int] = {}   # grants per tile (1-based)
        self.failures: Dict[int, int] = {}   # reported failures per tile
        self.expiries: Dict[int, int] = {}   # deadline/lost-worker re-leases
        self.not_before: Dict[int, float] = {}
        self.completions: Dict[int, int] = {}  # reports per tile (dup audit)
        # run counters (the obs/provenance view)
        self.granted = 0
        self.completed = 0
        self.duplicates = 0
        self.expired = 0
        self.worker_releases = 0
        self.total_failures = 0

    # -- queries -----------------------------------------------------------
    @property
    def n_shards(self) -> int:
        return len(self._queues)

    def shard_for(self, worker_ord: int) -> int:
        """Home shard of the ``worker_ord``-th worker to connect."""
        return worker_ord % self.n_shards

    def all_done(self) -> bool:
        return bool(self.done.all())

    def pending_count(self) -> int:
        """Tiles not yet marked done (leased or queued)."""
        return int(len(self.done) - self.done.sum())

    # -- the state machine -------------------------------------------------
    def expire(self, now: float) -> List[int]:
        """Return expired leases to their queues; returns the indices.

        An expiry is a *re-lease*, not a failure: the straggler may
        still finish (its late report is then a counted duplicate), so
        the tile goes back with the next attempt number and a
        deterministic backoff.
        """
        out = []
        for idx, lease in list(self.leases.items()):
            if lease.deadline <= now:
                del self.leases[idx]
                self._relapse(idx, now)
                self.expired += 1
                out.append(idx)
        return out

    def release_worker(self, worker: str, now: float) -> List[int]:
        """Expire every lease held by a vanished worker immediately."""
        out = []
        for idx, lease in list(self.leases.items()):
            if lease.worker == worker:
                del self.leases[idx]
                self._relapse(idx, now)
                self.worker_releases += 1
                out.append(idx)
        return out

    def _relapse(self, idx: int, now: float) -> None:
        if self.done[idx]:
            return  # completed while leased elsewhere; nothing to requeue
        count = self.expiries.get(idx, 0) + 1
        self.expiries[idx] = count
        self.not_before[idx] = now + self.policy.delay(count)
        self._queues[self._home[idx]].append(idx)

    def request(self, worker: str, shard: int, now: float
                ) -> Tuple[str, Any]:
        """One worker's ask for work.

        Returns one of::

            ("grant", Lease)       — compute this tile
            ("wait", seconds)      — nothing grantable yet, come back
            ("complete", None)     — every tile is done, shut down
        """
        self.expire(now)
        if self.all_done():
            return ("complete", None)
        wake: Optional[float] = None
        order = [shard % self.n_shards] + sorted(
            (o for o in range(self.n_shards) if o != shard % self.n_shards),
            key=lambda o: -len(self._queues[o]),
        )
        for ord_ in order:
            q = self._queues[ord_]
            for _ in range(len(q)):
                idx = q.popleft()
                if self.done[idx]:
                    continue  # pre-filled or raced duplicate; drop
                nb = self.not_before.get(idx, 0.0)
                if nb > now:
                    q.append(idx)  # backing off; rotate past it
                    wake = nb if wake is None else min(wake, nb)
                    continue
                attempt = self.attempts.get(idx, 0) + 1
                self.attempts[idx] = attempt
                lease = Lease(index=idx, worker=worker, attempt=attempt,
                              deadline=now + self.lease_timeout_s)
                self.leases[idx] = lease
                self.granted += 1
                return ("grant", lease)
        if wake is None and self.leases:
            # everything pending is leased out; poll around the earliest
            # deadline so stragglers re-lease promptly
            wake = min(l.deadline for l in self.leases.values())
        seconds = _MIN_WAIT_S if wake is None else wake - now
        return ("wait", float(min(max(seconds, _MIN_WAIT_S), _MAX_WAIT_S)))

    def complete(self, idx: int, worker: str, now: float) -> bool:
        """Record a completion report; ``True`` iff it was the first.

        First completion sets the bitmap bit — the durable "this
        chunk's bytes are trustworthy" mark.  Later reports for the
        same tile (stragglers racing a re-lease) are counted and
        ignored; their writes were bit-identical by construction.
        """
        idx = int(idx)
        if not 0 <= idx < len(self.tiles):
            raise ValueError(f"tile index {idx} outside the plan")
        self.completions[idx] = self.completions.get(idx, 0) + 1
        lease = self.leases.get(idx)
        if lease is not None and lease.worker == worker:
            del self.leases[idx]
        if self.done[idx]:
            self.duplicates += 1
            return False
        self.done[idx] = True
        self.completed += 1
        return True

    def fail(self, idx: int, worker: str, error: str, now: float) -> None:
        """Record a *reported* tile failure (the tile computed and
        raised — not a lost worker).

        Counts toward ``max_attempts`` and the run-wide failure budget
        with semantics identical to the resilient executor's
        ``_record_failure``; otherwise requeues the tile behind the
        deterministic backoff.
        """
        idx = int(idx)
        lease = self.leases.get(idx)
        if lease is not None and lease.worker == worker:
            del self.leases[idx]
        if self.done[idx]:
            return  # a duplicate lease already completed it; moot
        count = self.failures.get(idx, 0) + 1
        self.failures[idx] = count
        self.total_failures += 1
        budget = self.policy.failure_budget
        cause = RuntimeError(error)
        if budget is not None and self.total_failures > budget:
            raise FailureBudgetExceeded(
                f"{self.total_failures} failed tile attempts exceed the "
                f"failure budget of {budget}"
            )
        if count >= self.policy.max_attempts:
            raise TileFailedError(idx, self.tiles[idx], count, cause)
        self.not_before[idx] = now + self.policy.delay(count)
        self._queues[self._home[idx]].append(idx)

    # -- accounting --------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        """Run counters for provenance / obs."""
        return {
            "granted": self.granted,
            "completed": self.completed,
            "duplicates": self.duplicates,
            "expired": self.expired,
            "worker_releases": self.worker_releases,
            "failures": self.total_failures,
            "pending": self.pending_count(),
        }
