"""Live run status: per-worker health, EWMA throughput, ETA.

The coordinator owns one :class:`RunTracker` and feeds it every
protocol event it already handles (connect, grant, heartbeat, complete,
disconnect); the tracker turns that stream into the
``repro.obs.status/v1`` document served at ``/status`` and rendered by
``repro top``.  It is deliberately *derived* state: losing it loses a
progress bar, never a tile — the store bitmap remains the only durable
completion ledger.

Schema ``repro.obs.status/v1``::

    {
      "schema": "repro.obs.status/v1",
      "run_id": "r-7f3a...",
      "state": "running" | "complete" | "failed",
      "elapsed_s": 12.3,
      "tiles": {"total": 256, "done": 41, "pending": 210, "leased": 5},
      "progress": 0.16,
      "throughput_tiles_per_s": 3.4,        # EWMA; null before 2 completions
      "eta_s": 61.8,                        # pending / throughput; null too
      "lease": { ... LeaseLedger.summary() ... },
      "heartbeat_s": 0.5,                   # null when heartbeats are off
      "workers": [
        {"name": "w0", "state": "busy" | "idle" | "stale" | "gone",
         "tile": 17, "attempt": 1, "tiles_done": 21, "busy_s": 6.1,
         "utilization": 0.51, "last_seen_age_s": 0.2}, ...
      ]
    }

Threading: the tracker has no lock of its own — every mutator and
:meth:`snapshot` must run under the coordinator lock, which is already
the serialisation point for all the state this summarises.

Staleness: a worker that has not been heard from for
``STALE_HEARTBEATS`` consecutive heartbeat intervals is flagged
``stale`` (likely wedged or partitioned; its leases will expire on the
normal lease clock).  Without heartbeats there is no deadline to miss,
so workers never go stale — only ``gone`` on disconnect.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

__all__ = ["RunTracker", "STATUS_SCHEMA", "STALE_HEARTBEATS"]

STATUS_SCHEMA = "repro.obs.status/v1"

#: Missed-heartbeat deadline, in heartbeat intervals.  3 tolerates one
#: lost frame plus scheduling jitter without flagging a healthy worker.
STALE_HEARTBEATS = 3.0

#: EWMA smoothing for the inter-completion interval; 0.2 ~ the last
#: ten or so completions dominate, so the ETA tracks phase changes
#: (cold caches warming, a worker dying) within a few tiles.
EWMA_ALPHA = 0.2


class _WorkerState:
    __slots__ = ("name", "connected_at", "last_seen", "tile", "attempt",
                 "tiles_done", "busy_s", "gone")

    def __init__(self, name: str, now: float) -> None:
        self.name = name
        self.connected_at = now
        self.last_seen = now
        self.tile: Optional[int] = None
        self.attempt: Optional[int] = None
        self.tiles_done = 0
        self.busy_s = 0.0
        self.gone = False


class RunTracker:
    """Fold coordinator-side protocol events into live run status."""

    def __init__(self, *, run_id: str, heartbeat_s: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.run_id = run_id
        self.heartbeat_s = heartbeat_s
        self._clock = clock
        self.started_at = clock()
        self._workers: Dict[str, _WorkerState] = {}
        self._rate: Optional[float] = None  # EWMA tiles/s
        self._last_completion_at: Optional[float] = None

    # -- event feed (coordinator lock held) ----------------------------
    def worker_connected(self, name: str, now: float) -> None:
        self._workers[name] = _WorkerState(name, now)

    def worker_gone(self, name: str, now: float) -> None:
        w = self._workers.get(name)
        if w is not None:
            w.gone = True
            w.last_seen = now
            w.tile = None
            w.attempt = None

    def lease_granted(self, name: str, tile: int, attempt: int,
                      now: float) -> None:
        w = self._touch(name, now)
        w.tile = tile
        w.attempt = attempt

    def heartbeat(self, name: str, now: float, *,
                  tile: Optional[int] = None,
                  attempt: Optional[int] = None,
                  tiles_done: Optional[int] = None,
                  busy_s: Optional[float] = None) -> None:
        w = self._touch(name, now)
        if tile is not None:
            w.tile = int(tile)
        if attempt is not None:
            w.attempt = int(attempt)
        if tiles_done is not None:
            w.tiles_done = int(tiles_done)
        if busy_s is not None:
            w.busy_s = max(w.busy_s, float(busy_s))

    def tile_completed(self, name: str, now: float, *,
                       seconds: float = 0.0, first: bool = True) -> None:
        w = self._touch(name, now)
        w.tile = None
        w.attempt = None
        w.tiles_done += 1
        w.busy_s += float(seconds)
        if not first:
            return  # duplicates advance no progress; keep the rate honest
        last = self._last_completion_at
        self._last_completion_at = now
        if last is None:
            return  # first completion: no interval yet
        interval = max(now - last, 1e-9)
        inst = 1.0 / interval
        self._rate = (inst if self._rate is None
                      else EWMA_ALPHA * inst + (1 - EWMA_ALPHA) * self._rate)

    def _touch(self, name: str, now: float) -> _WorkerState:
        w = self._workers.get(name)
        if w is None:
            w = _WorkerState(name, now)
            self._workers[name] = w
        w.last_seen = now
        w.gone = False
        return w

    # -- read side -----------------------------------------------------
    @property
    def stale_after_s(self) -> Optional[float]:
        if self.heartbeat_s is None:
            return None
        return STALE_HEARTBEATS * self.heartbeat_s

    def throughput(self) -> Optional[float]:
        return self._rate

    def worker_rows(self, now: Optional[float] = None
                    ) -> List[Dict[str, Any]]:
        now = self._clock() if now is None else now
        deadline = self.stale_after_s
        rows = []
        for name in sorted(self._workers):
            w = self._workers[name]
            age = max(0.0, now - w.last_seen)
            if w.gone:
                state = "gone"
            elif deadline is not None and age > deadline:
                state = "stale"
            elif w.tile is not None:
                state = "busy"
            else:
                state = "idle"
            alive_s = max(now - w.connected_at, 1e-9)
            rows.append({
                "name": name,
                "state": state,
                "tile": w.tile,
                "attempt": w.attempt,
                "tiles_done": w.tiles_done,
                "busy_s": round(w.busy_s, 3),
                "utilization": round(min(w.busy_s / alive_s, 1.0), 4),
                "last_seen_age_s": round(age, 3),
            })
        return rows

    def snapshot(self, *, tiles_total: int, tiles_done: int,
                 leased: int, lease_summary: Dict[str, Any],
                 state: str = "running",
                 now: Optional[float] = None) -> Dict[str, Any]:
        """The full ``repro.obs.status/v1`` document."""
        now = self._clock() if now is None else now
        pending = max(tiles_total - tiles_done, 0)
        rate = self._rate
        eta = (pending / rate) if (rate and pending) else None
        return {
            "schema": STATUS_SCHEMA,
            "run_id": self.run_id,
            "state": state,
            "elapsed_s": round(now - self.started_at, 3),
            "tiles": {
                "total": tiles_total,
                "done": tiles_done,
                "pending": pending,
                "leased": leased,
            },
            "progress": (tiles_done / tiles_total) if tiles_total else 1.0,
            "throughput_tiles_per_s": (round(rate, 4)
                                       if rate is not None else None),
            "eta_s": round(eta, 1) if eta is not None else None,
            "lease": dict(lease_summary),
            "heartbeat_s": self.heartbeat_s,
            "workers": self.worker_rows(now),
        }
