"""``generate_dist``: the distributed counterpart of ``generate_tiled``.

Runs one coordinator in-process and N workers as independent OS
processes (``python -m repro dist worker --connect host:port``) — the
same subprocess shape they would have on remote hosts, so the localhost
test substrate exercises the real seam: process isolation, socket
transport, crash detection, respawn.

Responsibilities are split three ways:

- the :class:`~repro.dist.coordinator.Coordinator` owns scheduling and
  the completion ledger,
- workers own tile compute and height delivery,
- this module owns *process supervision*: spawning local workers,
  respawning dead ones up to ``RetryPolicy.max_respawns`` (the same
  budget the process backend spends on broken pools), and failing the
  run with :class:`~repro.parallel.executor.PoolRespawnLimit` when no
  workers remain — a coordinator with work left and nobody to lease it
  to must fail loudly, not hang.

On a multi-host deployment this module is replaced by the operator:
start ``repro-rrs dist coordinator`` on one host, ``repro-rrs dist
worker --connect`` on the others; everything below the CLI is identical.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from .. import obs
from ..core.rng import BlockNoise
from ..core.surface import Surface
from ..io.store import SurfaceStore
from ..jobs.retry import RetryPolicy
from ..parallel.executor import PoolRespawnLimit
from ..parallel.tiles import TilePlan
from ..core.spec import GenerationSpec
from .coordinator import Coordinator

__all__ = ["generate_dist", "worker_command", "worker_environment"]


def worker_command(host: str, port: int) -> List[str]:
    """The argv that starts a local worker for ``(host, port)``."""
    return [
        sys.executable, "-m", "repro",
        "dist", "worker", "--connect", f"{host}:{port}",
    ]


def worker_environment() -> Dict[str, str]:
    """Environment for spawned workers: inherit, plus make this exact
    ``repro`` importable even when the parent runs from a source tree."""
    import repro

    pkg_parent = str(Path(repro.__file__).resolve().parents[1])
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        pkg_parent + os.pathsep + existing if existing else pkg_parent
    )
    return env


def generate_dist(
    rebuild: Dict[str, Any],
    noise: BlockNoise,
    plan: TilePlan,
    store: SurfaceStore,
    *,
    workers: int = 2,
    retry: Optional[RetryPolicy] = None,
    fault_plan: Optional[Any] = None,
    lease_timeout_s: float = 30.0,
    persist_every: int = 8,
    on_tile: Optional[Callable[[int, Any], None]] = None,
    host: str = "127.0.0.1",
    run_id: Optional[str] = None,
    heartbeat_s: Optional[float] = None,
    status_port: Optional[int] = None,
) -> Surface:
    """Generate ``plan`` into ``store`` with ``workers`` local worker
    processes scheduled by a lease coordinator.

    ``rebuild`` is the generator recipe (see
    :func:`repro.jobs.runner.generator_from_rebuild`) — the dist path
    ships recipes, never live generators, which is both what makes it
    host-agnostic and what guarantees workers rebuild the exact
    configuration the recipe fingerprints.

    Chunks already marked done in the store's bitmap are not
    recomputed, so calling this on a partially-written store *is*
    resume — the same contract as every other store-backed path.

    Returns a :class:`Surface` whose heights are the store's read-only
    memmap; bit-identical to the single-host tiled backends for the
    same ``(rebuild, seed, plan)``.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    policy = retry if retry is not None else RetryPolicy()
    spec = GenerationSpec(
        generator=rebuild,
        seed=noise.seed,
        noise_block=getattr(noise, "block", None),
        plan={
            "total_nx": plan.total_nx, "total_ny": plan.total_ny,
            "tile_nx": plan.tile_nx, "tile_ny": plan.tile_ny,
            "origin_x": plan.origin_x, "origin_y": plan.origin_y,
        },
        store_path=str(Path(store.path).resolve()),
        access="shared",
        obs=obs.enabled(),
        faults=list(fault_plan.to_dicts()) if fault_plan is not None else [],
    )
    coordinator = Coordinator(
        spec, plan, store,
        policy=policy, lease_timeout_s=lease_timeout_s,
        n_shards=workers, host=host,
        persist_every=persist_every, on_tile=on_tile,
        run_id=run_id, heartbeat_s=heartbeat_s, status_port=status_port,
    )
    bound_host, port = coordinator.start()
    supervisor = _Supervisor(
        coordinator, worker_command(bound_host, port),
        worker_environment(), workers, policy,
    )
    run_span = obs.trace("dist.run", {
        "tiles": len(plan), "workers": workers,
    } if obs.enabled() else None)
    try:
        with run_span:
            supervisor.start()
            summary = coordinator.serve()
    finally:
        supervisor.stop()

    from ..core.grid import Grid2D

    dx = float(store.manifest["dx"])
    dy = float(store.manifest["dy"])
    grid = Grid2D(nx=plan.total_nx, ny=plan.total_ny,
                  lx=plan.total_nx * dx, ly=plan.total_ny * dy)
    provenance: Dict[str, Any] = {
        "method": "tiled",
        "backend": "dist",
        "tiles": len(plan),
        "noise_seed": noise.seed,
        "plan_cache": summary["plan_cache"],
        "dist": {
            "workers": workers,
            "respawns": supervisor.respawns,
            "lease": summary["lease"],
            "lease_timeout_s": summary["lease_timeout_s"],
            "shards": summary["shards"],
            "workers_seen": summary["workers_seen"],
            "seconds_in_tiles": summary["seconds_in_tiles"],
            "run_id": coordinator.run_id,
            "heartbeat_s": heartbeat_s,
        },
        "store": store.progress_summary(),
    }
    provenance.update(summary["provenance"])
    if obs.enabled() and run_span.duration_s > 0.0:
        obs.set_gauge(
            "dist.worker_utilization",
            summary["seconds_in_tiles"] / (workers * run_span.duration_s),
        )
    return Surface(
        heights=store.heights("r"),
        grid=grid,
        origin=(plan.origin_x * dx, plan.origin_y * dy),
        provenance=provenance,
    )


class _Supervisor:
    """Keep ``n`` local worker processes alive until the run finishes.

    A worker that exits non-zero mid-run (crash, kill fault, OOM) is
    replaced while the respawn budget lasts; the budget is shared
    across all workers, mirroring the process backend's pool-respawn
    accounting.  Workers exiting zero are never replaced — the
    coordinator releases a clean leaver's leases on disconnect, and a
    zero exit after the finish event is just the normal shutdown.
    """

    def __init__(self, coordinator: Coordinator, command: List[str],
                 env: Dict[str, str], n: int, policy: RetryPolicy) -> None:
        self._coordinator = coordinator
        self._command = command
        self._env = env
        self._n = n
        self._policy = policy
        self._procs: List[subprocess.Popen] = []
        self._thread: Optional[threading.Thread] = None
        self.respawns = 0

    def start(self) -> None:
        for _ in range(self._n):
            self._procs.append(self._spawn())
        self._thread = threading.Thread(
            target=self._watch, name="dist-supervisor", daemon=True
        )
        self._thread.start()

    def _spawn(self) -> subprocess.Popen:
        return subprocess.Popen(
            self._command, env=self._env,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            stdin=subprocess.DEVNULL,
        )

    def _watch(self) -> None:
        finished = self._coordinator._finished
        while not finished.wait(0.1):
            alive: List[subprocess.Popen] = []
            for proc in self._procs:
                code = proc.poll()
                if code is None:
                    alive.append(proc)
                    continue
                if code != 0 and not finished.is_set():
                    if self.respawns < self._policy.max_respawns:
                        self.respawns += 1
                        if obs.enabled():
                            obs.add("dist.worker_respawns")
                        alive.append(self._spawn())
            self._procs = alive
            if not self._procs and not finished.is_set():
                self._coordinator.abort(PoolRespawnLimit(
                    f"all dist workers exited with "
                    f"{self._coordinator.ledger.pending_count()} tiles "
                    f"pending and the respawn budget "
                    f"({self._policy.max_respawns}) spent"
                ))
                return

    def stop(self) -> None:
        """Reap workers: brief grace for orderly exits, then terminate."""
        deadline = time.monotonic() + 10.0
        for proc in self._procs:
            try:
                proc.wait(timeout=max(0.0, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=5.0)
                except subprocess.TimeoutExpired:
                    proc.kill()
                    proc.wait()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
