"""Length-prefixed JSON/binary framing for the dist coordinator/worker link.

Every message on the wire is one *frame*::

    +----------------+------+-------------------+
    | length (4B BE) | kind |  payload bytes    |
    +----------------+------+-------------------+

``length`` counts the payload only; ``kind`` is :data:`KIND_JSON` (a
UTF-8 JSON object) or :data:`KIND_BINARY` (raw bytes — tile heights in
``ship`` mode travel as one binary frame of little-endian float64, C
order, immediately after their ``complete`` message).  The frame layer
is deliberately dumb: no compression, no multiplexing, no partial
frames — each connection is a simple request/reply conversation driven
by the worker, which keeps the coordinator's per-client handler a
straight-line loop.

Message vocabulary (JSON frames; ``type`` discriminates)::

    worker -> coordinator            coordinator -> worker
    ---------------------            ---------------------
    hello {protocol}                 welcome {worker, spec
                                              [, heartbeat_s]}
    lease {worker}                   grant {tile, attempt, deadline_s}
                                     wait {seconds}
                                     done {}
                                     abort {error}
    complete {tile, attempt,         ack {}
              seconds, prov, cache,
              obs, heights_follow}
    failed {tile, attempt, error}    ack {} | abort {error}
    heartbeat {tile, attempt,        ack {} | abort {error}
               tiles_done, busy_s,
               obs}

Heartbeats are opt-in per run: the coordinator advertises the interval
as ``heartbeat_s`` in its welcome, and a worker that received no
interval never sends one — a telemetry-off run exchanges exactly the
frames this protocol exchanged before heartbeats existed.

The protocol version travels in ``hello`` and a mismatch is rejected
before any work is leased, so a stale worker binary can never write
into a store it misinterprets.

Localhost TCP is the test substrate; nothing in this module assumes it —
any connected, reliable, ordered byte stream (an SSH tunnel, a real
multi-host TCP mesh) carries the same frames.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, Tuple

__all__ = [
    "PROTOCOL_VERSION",
    "KIND_JSON",
    "KIND_BINARY",
    "MAX_FRAME_BYTES",
    "ProtocolError",
    "PeerGone",
    "send_json",
    "send_binary",
    "recv_frame",
    "recv_json",
]

PROTOCOL_VERSION = "repro.dist/v1"

_HEADER = struct.Struct(">IB")  # payload length, frame kind
KIND_JSON = 0
KIND_BINARY = 1

#: Refuse frames beyond this — a 4096x4096 float64 tile is 128 MiB, so
#: 256 MiB covers any sane ship-mode tile while bounding a corrupt or
#: hostile length header to one refused allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class ProtocolError(RuntimeError):
    """The peer sent bytes that violate the framing or vocabulary."""


class PeerGone(ConnectionError):
    """The peer closed the connection at a clean frame boundary."""


def send_json(sock: socket.socket, obj: Dict[str, Any]) -> None:
    """Send one JSON frame (compact separators; one sendall syscall)."""
    payload = json.dumps(obj, separators=(",", ":")).encode()
    _send(sock, KIND_JSON, payload)


def send_binary(sock: socket.socket, data: bytes) -> None:
    """Send one binary frame."""
    _send(sock, KIND_BINARY, data)


def _send(sock: socket.socket, kind: int, payload: bytes) -> None:
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing to send a {len(payload)}-byte frame "
            f"(limit {MAX_FRAME_BYTES})"
        )
    # Header + payload in one sendall: the header is tiny, and coalescing
    # avoids a Nagle/delayed-ACK stall on the request/reply pattern.
    sock.sendall(_HEADER.pack(len(payload), kind) + payload)


def recv_frame(sock: socket.socket) -> Tuple[int, bytes]:
    """Receive one frame as ``(kind, payload)``.

    Raises :class:`PeerGone` on EOF at a frame boundary (the peer's
    orderly or crashed exit) and :class:`ProtocolError` on EOF inside a
    frame or an oversized/unknown header.
    """
    header = _recv_exact(sock, _HEADER.size, boundary=True)
    length, kind = _HEADER.unpack(header)
    if kind not in (KIND_JSON, KIND_BINARY):
        raise ProtocolError(f"unknown frame kind {kind}")
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"refusing a {length}-byte frame (limit {MAX_FRAME_BYTES})"
        )
    return kind, _recv_exact(sock, length, boundary=False)


def recv_json(sock: socket.socket) -> Dict[str, Any]:
    """Receive one frame and require it to be a JSON object."""
    kind, payload = recv_frame(sock)
    if kind != KIND_JSON:
        raise ProtocolError("expected a JSON frame, got a binary frame")
    try:
        obj = json.loads(payload)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"undecodable JSON frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("JSON frame payload must be an object")
    return obj


def _recv_exact(sock: socket.socket, n: int, *, boundary: bool) -> bytes:
    """Read exactly ``n`` bytes; EOF semantics depend on position.

    At a frame ``boundary`` an immediate EOF is a clean disconnect
    (:class:`PeerGone`); EOF anywhere else means a frame was torn
    mid-flight (:class:`ProtocolError`).
    """
    if n == 0:
        return b""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if boundary and got == 0:
                raise PeerGone("peer closed the connection")
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)
