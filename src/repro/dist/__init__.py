"""Multi-host tile sharding: coordinator/worker scale-out.

The engine computes tiles; :mod:`repro.parallel` schedules them across
one host's cores; this package schedules them across *hosts*.  The
design is the smallest thing that is actually a distributed system:

- a length-prefixed JSON/binary socket protocol
  (:mod:`~repro.dist.protocol`) — localhost TCP in the tests, any
  reliable byte stream in production;
- a lease ledger (:mod:`~repro.dist.lease`) granting tiles with
  deadlines over the :class:`~repro.io.store.SurfaceStore` chunk
  bitmap, re-leasing stragglers through the
  :class:`~repro.jobs.retry.RetryPolicy` backoff;
- a coordinator (:mod:`~repro.dist.coordinator`) that owns the ledger
  and merges per-worker obs payloads;
- stateless workers (:mod:`~repro.dist.worker`) that rebuild the
  generator from its recipe and write straight into the shared store
  (or ship heights over the socket);
- :func:`~repro.dist.executor.generate_dist`, the localhost
  supervisor exposed as ``backend="dist"`` on
  :func:`repro.parallel.executor.generate_tiled`.

Correctness rests on the same two invariants as every other backend:
tile values are pure functions of ``(recipe, seed, tile)``, and the
store bitmap marks a chunk only after its bytes are written — so
crashes, duplicate leases and restarts can cost throughput, never
bits.
"""

from .coordinator import Coordinator
from .executor import generate_dist
from .lease import Lease, LeaseLedger
from .spec import RunSpec
from .status import STATUS_SCHEMA, RunTracker
from .worker import run_worker

__all__ = [
    "Coordinator",
    "generate_dist",
    "Lease",
    "LeaseLedger",
    "RunSpec",
    "RunTracker",
    "STATUS_SCHEMA",
    "run_worker",
]
