"""The dist coordinator: lease server + completion ledger over a store.

One coordinator owns one run: it listens on a TCP address, hands every
connecting worker the :class:`~repro.dist.spec.RunSpec`, leases tiles
through a :class:`~repro.dist.lease.LeaseLedger`, and is the *only*
process that marks and persists the store's chunk bitmap.  Workers are
stateless and interchangeable; all run state that matters lives in the
ledger (in memory) and the store (on disk), which is what makes the
fault story compositional:

- **Worker crash**: its connection drops, its leases re-queue
  immediately, another worker recomputes the tiles.  Values are pure
  functions of ``(recipe, seed, tile)``, so recomputation is
  bit-identical.
- **Duplicate lease** (straggler raced a re-lease): both writers wrote
  identical bytes; the ledger marks once and counts a duplicate.
- **Coordinator crash**: the persisted bitmap undercounts (marks are
  persisted only after completion reports, bitmap before manifest), so
  a restarted coordinator re-leases at most the unpersisted tail —
  never trusts an unwritten chunk.

Concurrency model: one daemon thread per client connection, every
ledger/store/recorder mutation under a single coordinator lock.  The
protocol is request/reply per worker, so per-connection handlers are
straight-line loops and the lock is held only between frames, never
across a blocking recv of another client.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..io.store import SurfaceStore
from ..jobs.retry import RetryPolicy
from ..parallel.executor import _merge_tile_provenance
from ..parallel.tiles import TilePlan
from . import protocol
from .lease import LeaseLedger
from .spec import RunSpec

__all__ = ["Coordinator"]


class Coordinator:
    """Serve one distributed run over ``store`` according to ``spec``.

    Usage::

        coord = Coordinator(spec, plan, store, n_shards=workers)
        host, port = coord.start()
        ... point workers at (host, port) ...
        summary = coord.serve()     # blocks; raises on failed runs

    ``serve`` raises the same exceptions as the single-host resilient
    executor (:class:`TileFailedError`, :class:`FailureBudgetExceeded`)
    so :mod:`repro.jobs` handles both paths identically.
    """

    def __init__(
        self,
        spec: RunSpec,
        plan: TilePlan,
        store: SurfaceStore,
        *,
        policy: Optional[RetryPolicy] = None,
        lease_timeout_s: float = 30.0,
        n_shards: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        persist_every: int = 8,
        on_tile: Optional[Callable[[int, Any], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        store.validate_plan(plan)
        if not store.owns_ledger:
            raise ValueError(
                "the coordinator must own the store ledger "
                "(open the store with ledger=True)"
            )
        self.spec = spec
        self.plan = plan
        self.store = store
        self.tiles = plan.tiles()
        self.ledger = LeaseLedger(
            store.done, self.tiles,
            policy=policy, lease_timeout_s=lease_timeout_s,
            shards=plan.shards(max(1, n_shards)),
        )
        self._host = host
        self._port = port
        self._persist_every = max(1, int(persist_every))
        self._on_tile = on_tile
        self._clock = clock
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._finished = threading.Event()
        self._error: Optional[BaseException] = None
        self._next_worker = 0
        self._workers_connected = 0
        self._since_persist = 0
        self._seconds_in_tiles = 0.0
        self.cache_delta = {"hits": 0, "misses": 0}
        self.prov_agg: Dict[str, Any] = {}
        # welcome payload is identical for every worker; build it once
        self._spec_wire = spec.to_wire()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, start accepting, and return the bound ``(host, port)``."""
        if self._listener is not None:
            raise RuntimeError("coordinator already started")
        self._listener = socket.create_server(
            (self._host, self._port), reuse_port=False
        )
        self._host, self._port = self._listener.getsockname()[:2]
        if self.ledger.all_done():
            self._finished.set()  # resumed run with nothing left to do
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True
        )
        self._accept_thread.start()
        return (self._host, self._port)

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self._port)

    def abort(self, exc: BaseException) -> None:
        """Fail the run: remember ``exc``, wake :meth:`serve`, and make
        every subsequent worker request an ``abort`` reply."""
        with self._lock:
            if self._error is None:
                self._error = exc
        self._finished.set()

    def serve(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the run completes, fails, or ``timeout`` passes.

        On success returns the run summary (ledger counters, cache
        deltas, wall/compute seconds); on failure persists progress and
        re-raises the run's error; on timeout raises ``TimeoutError``
        (the run keeps its state — callers may retry).
        """
        if not self._finished.wait(timeout):
            raise TimeoutError(
                f"distributed run incomplete after {timeout} s "
                f"({self.ledger.pending_count()} tiles pending)"
            )
        try:
            with self._lock:
                self.store.persist_progress()
                error = self._error
            self._fsync_heights()
            if error is not None:
                raise error
            return self.summary()
        finally:
            self._shutdown()

    # -- internals ---------------------------------------------------------
    def _fsync_heights(self) -> None:
        """Make every worker's height write durable.

        fsync flushes an inode's dirty pages regardless of which fd
        (or process) wrote them, so one coordinator-side fsync covers
        all shared-store workers on this host.
        """
        try:
            fd = os.open(self.store.heights_path, os.O_RDWR)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _shutdown(self) -> None:
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        # handlers are daemons; give orderly worker goodbyes a moment
        for t in list(self._handlers):
            t.join(timeout=5.0)

    def _accept_loop(self) -> None:
        listener = self._listener  # local ref: _shutdown nulls the attribute
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed; run is over
            with self._lock:
                ord_ = self._next_worker
                self._next_worker += 1
            t = threading.Thread(
                target=self._serve_client, args=(conn, ord_),
                name=f"dist-client-{ord_}", daemon=True,
            )
            self._handlers.append(t)
            t.start()

    def _serve_client(self, conn: socket.socket, ord_: int) -> None:
        worker = f"w{ord_}"
        # generous per-frame timeout: a healthy worker computing a tile
        # is silent for at most one lease lifetime
        conn.settimeout(max(4 * self.ledger.lease_timeout_s, 60.0))
        try:
            with conn:
                hello = protocol.recv_json(conn)
                if (hello.get("type") != "hello"
                        or hello.get("protocol") != protocol.PROTOCOL_VERSION):
                    protocol.send_json(conn, {
                        "type": "abort",
                        "error": (
                            f"protocol mismatch: coordinator speaks "
                            f"{protocol.PROTOCOL_VERSION}, worker said "
                            f"{hello.get('protocol')!r}"
                        ),
                    })
                    return
                shard = self.ledger.shard_for(ord_)
                with self._lock:
                    self._workers_connected += 1
                    if obs.enabled():
                        obs.set_gauge("dist.workers", self._workers_connected)
                protocol.send_json(conn, {
                    "type": "welcome", "worker": worker, "shard": shard,
                    "spec": self._spec_wire,
                })
                self._message_loop(conn, worker, shard)
        except (protocol.PeerGone, protocol.ProtocolError,
                socket.timeout, OSError):
            pass  # lost worker; leases below
        finally:
            with self._lock:
                self._workers_connected -= 1
                released = self.ledger.release_worker(worker, self._clock())
                if obs.enabled():
                    obs.set_gauge("dist.workers", self._workers_connected)
                    if released:
                        obs.add("dist.worker_releases")
                        obs.add("dist.leases_released", len(released))

    def _message_loop(self, conn: socket.socket, worker: str,
                      shard: int) -> None:
        while True:
            msg = protocol.recv_json(conn)
            kind = msg.get("type")
            if kind == "lease":
                reply = self._handle_lease(worker, shard)
            elif kind == "complete":
                heights = None
                if msg.get("heights_follow"):
                    fkind, payload = protocol.recv_frame(conn)
                    if fkind != protocol.KIND_BINARY:
                        raise protocol.ProtocolError(
                            "complete promised heights but sent JSON"
                        )
                    heights = payload
                reply = self._handle_complete(worker, msg, heights)
            elif kind == "failed":
                reply = self._handle_failed(worker, msg)
            else:
                raise protocol.ProtocolError(
                    f"unexpected message type {kind!r} from {worker}"
                )
            protocol.send_json(conn, reply)
            if reply["type"] in ("done", "abort"):
                return

    def _handle_lease(self, worker: str, shard: int) -> Dict[str, Any]:
        with self._lock:
            if self._error is not None:
                return {"type": "abort", "error": repr(self._error)}
            verdict, detail = self.ledger.request(
                worker, shard, self._clock()
            )
            if verdict == "grant":
                if obs.enabled():
                    obs.add("dist.leases_granted")
                    obs.set_gauge("dist.pending_tiles",
                                  self.ledger.pending_count())
                return {
                    "type": "grant",
                    "tile": detail.index,
                    "attempt": detail.attempt,
                    "deadline_s": self.ledger.lease_timeout_s,
                }
            if verdict == "complete":
                return {"type": "done"}
            return {"type": "wait", "seconds": detail}

    def _handle_complete(self, worker: str, msg: Dict[str, Any],
                         heights: Optional[bytes]) -> Dict[str, Any]:
        idx = int(msg["tile"])
        x0, y0, nx, ny = self.store.chunk_window(idx)
        shipped = None
        if heights is not None:
            expect = nx * ny * self.store.dtype.itemsize
            if len(heights) != expect:
                raise protocol.ProtocolError(
                    f"tile {idx} shipped {len(heights)} bytes; "
                    f"expected {expect}"
                )
            shipped = np.frombuffer(heights, dtype=self.store.dtype
                                    ).reshape(nx, ny)
        with self._lock:
            if self._error is not None:
                return {"type": "abort", "error": repr(self._error)}
            now = self._clock()
            # peek, don't mark yet: ship-mode bytes must land first so
            # the bitmap never claims an unwritten chunk
            already = bool(self.store.done[idx])
            if shipped is not None and not already:
                self.store.write_window(x0, y0, shipped, mark=False)
                if obs.enabled():
                    obs.add("dist.bytes_shipped", len(heights))
            first = self.ledger.complete(idx, worker, now)
            if first:
                self._absorb_report(msg)
                if self._on_tile is not None:
                    self._on_tile(idx, self.tiles[idx])
                self._since_persist += 1
                if (self._since_persist >= self._persist_every
                        or self.ledger.all_done()):
                    self.store.persist_progress()
                    self._since_persist = 0
                if obs.enabled():
                    obs.add("dist.tiles_completed")
                    obs.set_gauge("dist.pending_tiles",
                                  self.ledger.pending_count())
            elif obs.enabled():
                obs.add("dist.duplicate_completions")
            if self.ledger.all_done():
                self._finished.set()
                return {"type": "done"}
        return {"type": "ack"}

    def _absorb_report(self, msg: Dict[str, Any]) -> None:
        """Fold one completion report into run-level accounting
        (coordinator lock held)."""
        cache = msg.get("cache") or {}
        self.cache_delta["hits"] += int(cache.get("hits", 0))
        self.cache_delta["misses"] += int(cache.get("misses", 0))
        self._seconds_in_tiles += float(msg.get("seconds", 0.0))
        _merge_tile_provenance(self.prov_agg, msg.get("prov"))
        payload = msg.get("obs")
        if payload and obs.enabled():
            obs.get_recorder().merge_wire(payload)

    def _handle_failed(self, worker: str, msg: Dict[str, Any]
                       ) -> Dict[str, Any]:
        idx = int(msg["tile"])
        error = str(msg.get("error", "unknown error"))
        with self._lock:
            if self._error is not None:
                return {"type": "abort", "error": repr(self._error)}
            if obs.enabled():
                obs.add("dist.tile_failures")
            try:
                self.ledger.fail(idx, worker, error, self._clock())
            except BaseException as exc:
                self._error = exc
                self._finished.set()
                return {"type": "abort", "error": repr(exc)}
        return {"type": "ack"}

    # -- accounting --------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """The run's provenance block (``dist`` section + cache sums)."""
        with self._lock:
            return {
                "lease": self.ledger.summary(),
                "lease_timeout_s": self.ledger.lease_timeout_s,
                "shards": self.ledger.n_shards,
                "workers_seen": self._next_worker,
                "seconds_in_tiles": self._seconds_in_tiles,
                "plan_cache": dict(self.cache_delta),
                "provenance": dict(self.prov_agg),
            }
