"""The dist coordinator: lease server + completion ledger over a store.

One coordinator owns one run: it listens on a TCP address, hands every
connecting worker the :class:`~repro.core.spec.GenerationSpec`, leases tiles
through a :class:`~repro.dist.lease.LeaseLedger`, and is the *only*
process that marks and persists the store's chunk bitmap.  Workers are
stateless and interchangeable; all run state that matters lives in the
ledger (in memory) and the store (on disk), which is what makes the
fault story compositional:

- **Worker crash**: its connection drops, its leases re-queue
  immediately, another worker recomputes the tiles.  Values are pure
  functions of ``(recipe, seed, tile)``, so recomputation is
  bit-identical.
- **Duplicate lease** (straggler raced a re-lease): both writers wrote
  identical bytes; the ledger marks once and counts a duplicate.
- **Coordinator crash**: the persisted bitmap undercounts (marks are
  persisted only after completion reports, bitmap before manifest), so
  a restarted coordinator re-leases at most the unpersisted tail —
  never trusts an unwritten chunk.

Concurrency model: one daemon thread per client connection, every
ledger/store/recorder mutation under a single coordinator lock.  The
protocol is request/reply per worker, so per-connection handlers are
straight-line loops and the lock is held only between frames, never
across a blocking recv of another client.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..io.store import SurfaceStore
from ..jobs.retry import RetryPolicy
from ..obs.events import event, new_run_id
from ..obs.httpd import StatusServer
from ..parallel.executor import _merge_tile_provenance
from ..parallel.tiles import TilePlan
from ..core.spec import GenerationSpec
from . import protocol
from .lease import LeaseLedger
from .status import RunTracker

__all__ = ["Coordinator"]


class Coordinator:
    """Serve one distributed run over ``store`` according to ``spec``.

    Usage::

        coord = Coordinator(spec, plan, store, n_shards=workers)
        host, port = coord.start()
        ... point workers at (host, port) ...
        summary = coord.serve()     # blocks; raises on failed runs

    ``serve`` raises the same exceptions as the single-host resilient
    executor (:class:`TileFailedError`, :class:`FailureBudgetExceeded`)
    so :mod:`repro.jobs` handles both paths identically.
    """

    def __init__(
        self,
        spec: GenerationSpec,
        plan: TilePlan,
        store: SurfaceStore,
        *,
        policy: Optional[RetryPolicy] = None,
        lease_timeout_s: float = 30.0,
        n_shards: int = 1,
        host: str = "127.0.0.1",
        port: int = 0,
        persist_every: int = 8,
        on_tile: Optional[Callable[[int, Any], None]] = None,
        clock: Callable[[], float] = time.monotonic,
        run_id: Optional[str] = None,
        heartbeat_s: Optional[float] = None,
        status_port: Optional[int] = None,
        status_host: str = "127.0.0.1",
    ) -> None:
        store.validate_plan(plan)
        if not store.owns_ledger:
            raise ValueError(
                "the coordinator must own the store ledger "
                "(open the store with ledger=True)"
            )
        self.spec = spec
        self.plan = plan
        self.store = store
        self.tiles = plan.tiles()
        self.ledger = LeaseLedger(
            store.done, self.tiles,
            policy=policy, lease_timeout_s=lease_timeout_s,
            shards=plan.shards(max(1, n_shards)),
        )
        self._host = host
        self._port = port
        self._persist_every = max(1, int(persist_every))
        self._on_tile = on_tile
        self._clock = clock
        self._lock = threading.Lock()
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._handlers: List[threading.Thread] = []
        self._finished = threading.Event()
        self._error: Optional[BaseException] = None
        self._next_worker = 0
        self._workers_connected = 0
        self._since_persist = 0
        self._seconds_in_tiles = 0.0
        self.cache_delta = {"hits": 0, "misses": 0}
        self.prov_agg: Dict[str, Any] = {}
        # -- telemetry plane (all opt-in; off = zero protocol change) --
        if heartbeat_s is not None and heartbeat_s <= 0:
            raise ValueError(
                f"heartbeat_s must be positive, got {heartbeat_s}"
            )
        self.run_id = run_id if run_id is not None else new_run_id()
        self.heartbeat_s = heartbeat_s
        self.tracker = RunTracker(run_id=self.run_id,
                                  heartbeat_s=heartbeat_s, clock=clock)
        self._status_server: Optional[StatusServer] = None
        self._status_port = status_port
        self._status_host = status_host
        # welcome payload is identical for every worker; build it once
        self._spec_wire = spec.to_wire()

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> Tuple[str, int]:
        """Bind, start accepting, and return the bound ``(host, port)``."""
        if self._listener is not None:
            raise RuntimeError("coordinator already started")
        self._listener = socket.create_server(
            (self._host, self._port), reuse_port=False
        )
        self._host, self._port = self._listener.getsockname()[:2]
        if self.ledger.all_done():
            self._finished.set()  # resumed run with nothing left to do
        if self._status_port is not None:
            self._status_server = StatusServer(
                self.status_snapshot, self.metrics_snapshot,
                extra_gauges_fn=self._status_gauges,
                host=self._status_host, port=self._status_port,
            )
            self._status_server.start()
        event("dist.run.start", run=self.run_id,
              tiles=len(self.tiles),
              pending=self.ledger.pending_count(),
              host=self._host, port=self._port)
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-accept", daemon=True
        )
        self._accept_thread.start()
        return (self._host, self._port)

    @property
    def status_address(self) -> Optional[Tuple[str, int]]:
        """Bound ``(host, port)`` of the status server, or ``None``."""
        if self._status_server is None:
            return None
        return self._status_server.address

    @property
    def address(self) -> Tuple[str, int]:
        return (self._host, self._port)

    def abort(self, exc: BaseException) -> None:
        """Fail the run: remember ``exc``, wake :meth:`serve`, and make
        every subsequent worker request an ``abort`` reply."""
        with self._lock:
            if self._error is None:
                self._error = exc
        self._finished.set()

    def serve(self, timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until the run completes, fails, or ``timeout`` passes.

        On success returns the run summary (ledger counters, cache
        deltas, wall/compute seconds); on failure persists progress and
        re-raises the run's error; on timeout raises ``TimeoutError``
        (the run keeps its state — callers may retry).
        """
        if not self._finished.wait(timeout):
            raise TimeoutError(
                f"distributed run incomplete after {timeout} s "
                f"({self.ledger.pending_count()} tiles pending)"
            )
        try:
            with self._lock:
                self.store.persist_progress()
                error = self._error
            self._fsync_heights()
            if error is not None:
                raise error
            return self.summary()
        finally:
            self._shutdown()

    # -- internals ---------------------------------------------------------
    def _fsync_heights(self) -> None:
        """Make every worker's height write durable.

        fsync flushes an inode's dirty pages regardless of which fd
        (or process) wrote them, so one coordinator-side fsync covers
        all shared-store workers on this host.
        """
        try:
            fd = os.open(self.store.heights_path, os.O_RDWR)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _shutdown(self) -> None:
        event("dist.run.finish", run=self.run_id,
              state="failed" if self._error is not None else "complete",
              pending=self.ledger.pending_count())
        listener, self._listener = self._listener, None
        if listener is not None:
            listener.close()
        server, self._status_server = self._status_server, None
        if server is not None:
            server.stop()
        # handlers are daemons; give orderly worker goodbyes a moment
        for t in list(self._handlers):
            t.join(timeout=5.0)

    def _accept_loop(self) -> None:
        listener = self._listener  # local ref: _shutdown nulls the attribute
        while True:
            try:
                conn, _addr = listener.accept()
            except OSError:
                return  # listener closed; run is over
            with self._lock:
                ord_ = self._next_worker
                self._next_worker += 1
            t = threading.Thread(
                target=self._serve_client, args=(conn, ord_),
                name=f"dist-client-{ord_}", daemon=True,
            )
            self._handlers.append(t)
            t.start()

    def _serve_client(self, conn: socket.socket, ord_: int) -> None:
        worker = f"w{ord_}"
        # generous per-frame timeout: a healthy worker computing a tile
        # is silent for at most one lease lifetime
        conn.settimeout(max(4 * self.ledger.lease_timeout_s, 60.0))
        try:
            with conn:
                hello = protocol.recv_json(conn)
                if (hello.get("type") != "hello"
                        or hello.get("protocol") != protocol.PROTOCOL_VERSION):
                    protocol.send_json(conn, {
                        "type": "abort",
                        "error": (
                            f"protocol mismatch: coordinator speaks "
                            f"{protocol.PROTOCOL_VERSION}, worker said "
                            f"{hello.get('protocol')!r}"
                        ),
                    })
                    return
                shard = self.ledger.shard_for(ord_)
                with self._lock:
                    self._workers_connected += 1
                    self.tracker.worker_connected(worker, self._clock())
                    if obs.enabled():
                        obs.set_gauge("dist.workers", self._workers_connected)
                welcome = {
                    "type": "welcome", "worker": worker, "shard": shard,
                    "spec": self._spec_wire,
                }
                if self.heartbeat_s is not None:
                    welcome["heartbeat_s"] = self.heartbeat_s
                protocol.send_json(conn, welcome)
                event("dist.worker.join", run=self.run_id,
                      worker=worker, shard=shard)
                self._message_loop(conn, worker, shard)
        except (protocol.PeerGone, protocol.ProtocolError,
                socket.timeout, OSError):
            pass  # lost worker; leases below
        finally:
            with self._lock:
                self._workers_connected -= 1
                released = self.ledger.release_worker(worker, self._clock())
                self.tracker.worker_gone(worker, self._clock())
                if obs.enabled():
                    obs.set_gauge("dist.workers", self._workers_connected)
                    if released:
                        obs.add("dist.worker_releases")
                        obs.add("dist.leases_released", len(released))
            event("dist.worker.leave", run=self.run_id, worker=worker,
                  leases_released=len(released),
                  level="warn" if released else "info")

    def _message_loop(self, conn: socket.socket, worker: str,
                      shard: int) -> None:
        while True:
            msg = protocol.recv_json(conn)
            kind = msg.get("type")
            if kind == "lease":
                reply = self._handle_lease(worker, shard)
            elif kind == "complete":
                heights = None
                if msg.get("heights_follow"):
                    fkind, payload = protocol.recv_frame(conn)
                    if fkind != protocol.KIND_BINARY:
                        raise protocol.ProtocolError(
                            "complete promised heights but sent JSON"
                        )
                    heights = payload
                reply = self._handle_complete(worker, msg, heights)
            elif kind == "failed":
                reply = self._handle_failed(worker, msg)
            elif kind == "heartbeat":
                reply = self._handle_heartbeat(worker, msg)
            else:
                raise protocol.ProtocolError(
                    f"unexpected message type {kind!r} from {worker}"
                )
            protocol.send_json(conn, reply)
            if reply["type"] in ("done", "abort"):
                return

    def _handle_lease(self, worker: str, shard: int) -> Dict[str, Any]:
        with self._lock:
            if self._error is not None:
                return {"type": "abort", "error": repr(self._error)}
            now = self._clock()
            verdict, detail = self.ledger.request(worker, shard, now)
            if verdict == "grant":
                self.tracker.lease_granted(worker, detail.index,
                                           detail.attempt, now)
                if obs.enabled():
                    obs.add("dist.leases_granted")
                    obs.set_gauge("dist.pending_tiles",
                                  self.ledger.pending_count())
                event("dist.lease.grant", run=self.run_id, level="debug",
                      worker=worker, tile=detail.index,
                      attempt=detail.attempt)
                return {
                    "type": "grant",
                    "tile": detail.index,
                    "attempt": detail.attempt,
                    "deadline_s": self.ledger.lease_timeout_s,
                }
            if verdict == "complete":
                return {"type": "done"}
            self.tracker.heartbeat(worker, now)  # waiting worker is alive
            return {"type": "wait", "seconds": detail}

    def _handle_heartbeat(self, worker: str, msg: Dict[str, Any]
                          ) -> Dict[str, Any]:
        """Fold one heartbeat into the live tracker; ack (or abort).

        Heartbeats may carry a drained obs payload (counter deltas
        accumulated since the last report); folding it here instead of
        waiting for the completion report keeps ``/metrics`` live
        during long tiles.  Drain payloads partition the counters, so
        run totals stay deterministic whether a delta arrived in a
        heartbeat or the final ``complete``.
        """
        with self._lock:
            if self._error is not None:
                return {"type": "abort", "error": repr(self._error)}
            self.tracker.heartbeat(
                worker, self._clock(),
                tile=msg.get("tile"), attempt=msg.get("attempt"),
                tiles_done=msg.get("tiles_done"),
                busy_s=msg.get("busy_s"),
            )
            if obs.enabled():
                obs.add("dist.heartbeats")
                payload = msg.get("obs")
                if payload:
                    obs.get_recorder().merge_wire(payload)
        return {"type": "ack"}

    def _handle_complete(self, worker: str, msg: Dict[str, Any],
                         heights: Optional[bytes]) -> Dict[str, Any]:
        idx = int(msg["tile"])
        x0, y0, nx, ny = self.store.chunk_window(idx)
        shipped = None
        if heights is not None:
            expect = nx * ny * self.store.dtype.itemsize
            if len(heights) != expect:
                raise protocol.ProtocolError(
                    f"tile {idx} shipped {len(heights)} bytes; "
                    f"expected {expect}"
                )
            shipped = np.frombuffer(heights, dtype=self.store.dtype
                                    ).reshape(nx, ny)
        with self._lock:
            if self._error is not None:
                return {"type": "abort", "error": repr(self._error)}
            now = self._clock()
            # peek, don't mark yet: ship-mode bytes must land first so
            # the bitmap never claims an unwritten chunk
            already = bool(self.store.done[idx])
            if shipped is not None and not already:
                self.store.write_window(x0, y0, shipped, mark=False)
                if obs.enabled():
                    obs.add("dist.bytes_shipped", len(heights))
            first = self.ledger.complete(idx, worker, now)
            self.tracker.tile_completed(
                worker, now, seconds=float(msg.get("seconds", 0.0)),
                first=first,
            )
            if first:
                self._absorb_report(msg)
                if self._on_tile is not None:
                    self._on_tile(idx, self.tiles[idx])
                self._since_persist += 1
                if (self._since_persist >= self._persist_every
                        or self.ledger.all_done()):
                    self.store.persist_progress()
                    self._since_persist = 0
                if obs.enabled():
                    obs.add("dist.tiles_completed")
                    obs.set_gauge("dist.pending_tiles",
                                  self.ledger.pending_count())
                event("dist.tile.complete", run=self.run_id, level="debug",
                      worker=worker, tile=idx,
                      seconds=round(float(msg.get("seconds", 0.0)), 4))
            elif obs.enabled():
                obs.add("dist.duplicate_completions")
            if self.ledger.all_done():
                self._finished.set()
                return {"type": "done"}
        return {"type": "ack"}

    def _absorb_report(self, msg: Dict[str, Any]) -> None:
        """Fold one completion report into run-level accounting
        (coordinator lock held)."""
        cache = msg.get("cache") or {}
        self.cache_delta["hits"] += int(cache.get("hits", 0))
        self.cache_delta["misses"] += int(cache.get("misses", 0))
        self._seconds_in_tiles += float(msg.get("seconds", 0.0))
        _merge_tile_provenance(self.prov_agg, msg.get("prov"))
        payload = msg.get("obs")
        if payload and obs.enabled():
            obs.get_recorder().merge_wire(payload)

    def _handle_failed(self, worker: str, msg: Dict[str, Any]
                       ) -> Dict[str, Any]:
        idx = int(msg["tile"])
        error = str(msg.get("error", "unknown error"))
        event("dist.tile.failed", run=self.run_id, level="warn",
              worker=worker, tile=idx, error=error)
        with self._lock:
            if self._error is not None:
                return {"type": "abort", "error": repr(self._error)}
            if obs.enabled():
                obs.add("dist.tile_failures")
            self.tracker.heartbeat(worker, self._clock())
            try:
                self.ledger.fail(idx, worker, error, self._clock())
            except BaseException as exc:
                self._error = exc
                self._finished.set()
                event("dist.run.abort", run=self.run_id, level="error",
                      error=repr(exc))
                return {"type": "abort", "error": repr(exc)}
        return {"type": "ack"}

    # -- telemetry read side ----------------------------------------------
    def status_snapshot(self) -> Dict[str, Any]:
        """The live ``repro.obs.status/v1`` document (HTTP ``/status``).

        Tile counts come from the store bitmap — the durable ledger —
        not from any counter the tracker keeps, so a scrape and a
        resume always agree on what is actually done.
        """
        with self._lock:
            if self._error is not None:
                state = "failed"
            elif self.ledger.all_done():
                state = "complete"
            else:
                state = "running"
            return self.tracker.snapshot(
                tiles_total=len(self.tiles),
                tiles_done=int(self.store.done.sum()),
                leased=len(self.ledger.leases),
                lease_summary=self.ledger.summary(),
                state=state,
                now=self._clock(),
            )

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The installed recorder's registry (HTTP ``/metrics`` body).

        With recording off this is the null recorder's empty registry;
        ``/metrics`` still carries run progress via the derived gauges
        in :meth:`_status_gauges`.
        """
        return obs.get_recorder().metrics.as_dict()

    def _status_gauges(self) -> Dict[str, float]:
        """Derived samples exposed on ``/metrics`` even when obs is off."""
        doc = self.status_snapshot()
        gauges = {
            "dist.status.tiles_total": float(doc["tiles"]["total"]),
            "dist.status.tiles_done": float(doc["tiles"]["done"]),
            "dist.status.tiles_pending": float(doc["tiles"]["pending"]),
            "dist.status.tiles_leased": float(doc["tiles"]["leased"]),
            "dist.status.progress": float(doc["progress"]),
            "dist.status.elapsed_s": float(doc["elapsed_s"]),
            "dist.status.workers": float(len(doc["workers"])),
        }
        if doc["throughput_tiles_per_s"] is not None:
            gauges["dist.status.throughput_tiles_per_s"] = float(
                doc["throughput_tiles_per_s"]
            )
        if doc["eta_s"] is not None:
            gauges["dist.status.eta_s"] = float(doc["eta_s"])
        return gauges

    # -- accounting --------------------------------------------------------
    def summary(self) -> Dict[str, Any]:
        """The run's provenance block (``dist`` section + cache sums)."""
        with self._lock:
            return {
                "lease": self.ledger.summary(),
                "lease_timeout_s": self.ledger.lease_timeout_s,
                "shards": self.ledger.n_shards,
                "workers_seen": self._next_worker,
                "seconds_in_tiles": self._seconds_in_tiles,
                "plan_cache": dict(self.cache_delta),
                "provenance": dict(self.prov_agg),
            }
