"""The dist worker: a stateless tile computer driven by lease grants.

A worker connects, says hello, receives the :class:`RunSpec`, rebuilds
the generator from its recipe (the same ``rebuild`` recipes
:mod:`repro.jobs` checkpoints — values are pure functions of the recipe,
seed and tile, so any worker anywhere computes identical bytes), then
loops: request a lease, compute the tile, deliver the heights, report.

Height delivery follows ``spec.access``: ``shared`` workers open the
store themselves with ``ledger=False`` (write windows, never touch the
bitmap — the coordinator owns completion); ``ship`` workers send the
raw float64 bytes as a binary frame after the ``complete`` message.

Per-tile observability mirrors the process backend exactly: when the
spec asks for it, the worker installs its own recorder and attaches
each tile's drained span/metric payload to the completion report, which
the coordinator merges into one run-level view.

This module is transport-complete but policy-free: *when* to retry,
*who* computes what, and *what counts as done* all live coordinator-side
in the lease ledger, so a malfunctioning worker can cost throughput but
never correctness.
"""

from __future__ import annotations

import socket
import threading
import time
from typing import Any, Dict, Optional, Tuple

import numpy as np

from .. import obs
from ..core.engine import plan_cache
from ..core.rng import BlockNoise
from ..io.store import SurfaceStore
from ..jobs.faults import FaultPlan
from ..parallel.executor import _slim_provenance, _traced_tile
from ..core.spec import GenerationSpec
from . import protocol

__all__ = ["run_worker", "connect"]


def connect(host: str, port: int, *, timeout_s: float = 30.0,
            retry_for_s: float = 10.0) -> socket.socket:
    """Dial the coordinator, retrying briefly while it binds.

    Workers are usually spawned a moment before (or after) the
    coordinator starts listening; a short connect-retry window makes
    startup order irrelevant without masking a genuinely absent
    coordinator.
    """
    deadline = time.monotonic() + retry_for_s
    while True:
        try:
            sock = socket.create_connection((host, port), timeout=timeout_s)
            sock.settimeout(timeout_s)
            return sock
        except OSError:
            if time.monotonic() >= deadline:
                raise
            time.sleep(0.1)


def run_worker(
    host: str,
    port: int,
    *,
    max_tiles: Optional[int] = None,
    timeout_s: float = 120.0,
) -> Dict[str, Any]:
    """Serve one coordinator until the run completes (or aborts).

    Returns a small summary (tiles computed, failures reported, exit
    reason).  ``max_tiles`` bounds this worker's contribution — useful
    for drain-and-rotate tests and capped scratch hosts.

    Raises :class:`repro.dist.protocol.ProtocolError` (or the socket
    errors it wraps) on a broken conversation; tile-level compute
    errors are *reported*, not raised — the coordinator decides whether
    the run survives them.
    """
    sock = connect(host, port, timeout_s=timeout_s)
    computed = failures = 0
    reason = "done"
    store: Optional[SurfaceStore] = None
    try:
        protocol.send_json(sock, {
            "type": "hello", "protocol": protocol.PROTOCOL_VERSION,
        })
        welcome = protocol.recv_json(sock)
        if welcome.get("type") == "abort":
            raise protocol.ProtocolError(
                f"coordinator refused: {welcome.get('error')}"
            )
        if welcome.get("type") != "welcome":
            raise protocol.ProtocolError(
                f"expected welcome, got {welcome.get('type')!r}"
            )
        spec = GenerationSpec.from_wire(welcome["spec"])
        heartbeat_s = welcome.get("heartbeat_s")
        busy_total = 0.0
        generator, noise, tiles = _materialise(spec)
        fault_plan = (FaultPlan.from_dicts(spec.faults)
                      if spec.faults else None)
        if spec.access == "shared":
            store = SurfaceStore.open(spec.store_path, "r+", ledger=False)
        if spec.obs and not obs.enabled():
            obs.install(obs.Recorder())
        while True:
            protocol.send_json(sock, {"type": "lease"})
            msg = protocol.recv_json(sock)
            kind = msg.get("type")
            if kind == "wait":
                time.sleep(float(msg.get("seconds", 0.1)))
                continue
            if kind == "done":
                break
            if kind == "abort":
                reason = f"abort: {msg.get('error')}"
                break
            if kind != "grant":
                raise protocol.ProtocolError(
                    f"expected grant/wait/done, got {kind!r}"
                )
            idx = int(msg["tile"])
            attempt = int(msg.get("attempt", 1))
            tile = tiles[idx]
            try:
                if heartbeat_s:
                    outcome = _compute_with_heartbeats(
                        sock, generator, noise, tile, fault_plan,
                        idx, attempt, heartbeat_s,
                        tiles_done=computed, busy_total=busy_total,
                    )
                    if isinstance(outcome, str):
                        reason = outcome  # coordinator aborted mid-tile
                        break
                    heights, prov, seconds, before, after = outcome
                else:
                    if fault_plan is not None:
                        fault_plan.fire(idx, attempt)
                    before = plan_cache.stats()
                    heights, prov, seconds = _traced_tile(
                        generator, noise, tile
                    )
                    after = plan_cache.stats()
                busy_total += seconds
            except BaseException as exc:
                failures += 1
                protocol.send_json(sock, {
                    "type": "failed", "tile": idx, "attempt": attempt,
                    "error": repr(exc),
                })
                reply = protocol.recv_json(sock)
                if reply.get("type") == "abort":
                    reason = f"abort: {reply.get('error')}"
                    break
                continue
            ship: Optional[bytes] = None
            if store is not None:
                # global -> store-local coordinates via the plan origin
                store.write_window(tile.x0 - spec.plan.get("origin_x", 0),
                                   tile.y0 - spec.plan.get("origin_y", 0),
                                   heights, mark=False)
            else:
                ship = np.ascontiguousarray(
                    heights, dtype=np.float64
                ).tobytes()
            rec = obs.get_recorder()
            payload = rec.drain() if rec.enabled else None
            protocol.send_json(sock, {
                "type": "complete",
                "tile": idx,
                "attempt": attempt,
                "seconds": seconds,
                "prov": _slim_provenance(prov),
                "cache": {"hits": after.hits - before.hits,
                          "misses": after.misses - before.misses},
                "obs": payload,
                "heights_follow": ship is not None,
            })
            if ship is not None:
                protocol.send_binary(sock, ship)
            reply = protocol.recv_json(sock)
            if reply.get("type") == "abort":
                reason = f"abort: {reply.get('error')}"
                break
            if reply.get("type") not in ("ack", "done"):
                raise protocol.ProtocolError(
                    f"expected ack, got {reply.get('type')!r}"
                )
            computed += 1
            if reply.get("type") == "done":
                break
            if max_tiles is not None and computed >= max_tiles:
                reason = "max_tiles"
                break
    finally:
        if store is not None:
            store.close()  # non-owner handle: fsyncs data, leaves ledger
        sock.close()
    return {"tiles": computed, "failures": failures, "reason": reason}


def _compute_with_heartbeats(
    sock: socket.socket,
    generator: Any,
    noise: BlockNoise,
    tile: Any,
    fault_plan: Optional[FaultPlan],
    idx: int,
    attempt: int,
    heartbeat_s: float,
    *,
    tiles_done: int,
    busy_total: float,
):
    """Compute one tile while heartbeating the coordinator.

    The tile runs in a background thread; this (socket-owning) thread
    wakes every ``heartbeat_s`` and sends a ``heartbeat`` frame with
    the worker's progress counters and a drained obs payload (counter
    deltas since the last report), expecting ``ack``.  The computation
    itself is byte-for-byte the inline path — only the thread it runs
    on changes, and the engine is a pure function of its inputs, so
    heartbeating can never change the surface.

    Returns ``(heights, prov, seconds, cache_before, cache_after)``, or
    the abort reason string if the coordinator aborted mid-tile.
    Re-raises the tile's compute exception (the caller reports it as
    ``failed``, exactly like the inline path).
    """
    box: Dict[str, Any] = {}

    def compute() -> None:
        try:
            if fault_plan is not None:
                fault_plan.fire(idx, attempt)
            before = plan_cache.stats()
            heights, prov, seconds = _traced_tile(generator, noise, tile)
            after = plan_cache.stats()
            box["value"] = (heights, prov, seconds, before, after)
        except BaseException as exc:  # delivered to the caller below
            box["error"] = exc

    worker = threading.Thread(
        target=compute, name=f"dist-tile-{idx}", daemon=True
    )
    t0 = time.monotonic()
    worker.start()
    while True:
        worker.join(heartbeat_s)
        if not worker.is_alive():
            break
        rec = obs.get_recorder()
        protocol.send_json(sock, {
            "type": "heartbeat",
            "tile": idx,
            "attempt": attempt,
            "tiles_done": tiles_done,
            "busy_s": busy_total + (time.monotonic() - t0),
            "obs": rec.drain() if rec.enabled else None,
        })
        reply = protocol.recv_json(sock)
        if reply.get("type") == "abort":
            return f"abort: {reply.get('error')}"
        if reply.get("type") != "ack":
            raise protocol.ProtocolError(
                f"expected heartbeat ack, got {reply.get('type')!r}"
            )
    if "error" in box:
        raise box["error"]
    return box["value"]


def _materialise(spec: GenerationSpec) -> Tuple[Any, BlockNoise, list]:
    """Rebuild the generator/noise/tiles a run spec describes."""
    generator = spec.build_generator()
    return generator, spec.noise(), spec.tile_plan().tiles()
