"""Deprecation shim: ``RunSpec`` is now ``repro.core.spec.GenerationSpec``.

The run specification started life here as the dist wire's private
document; PR 9 promoted it to :class:`repro.core.spec.GenerationSpec`,
the one canonical "what to generate" encoding shared by the CLI, the
jobs layer, the dist protocol and ``repro.serve``.  This module keeps
the old constructor signature (``rebuild=``/``noise_seed=``) and the
old, laxer validation working for existing callers, with a
``DeprecationWarning`` pointing at the new home.

The wire document itself is unchanged: ``GenerationSpec.to_wire()``
emits exactly the frames deployed workers already parse (see
``repro.dist/v1``), so old and new processes interoperate.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional

from ..core.spec import ACCESS_MODES, GenerationSpec, SpecError

__all__ = ["RunSpec", "ACCESS_MODES"]


def _warn() -> None:
    warnings.warn(
        "repro.dist.spec.RunSpec is deprecated; use "
        "repro.core.spec.GenerationSpec (fields: generator=, seed=)",
        DeprecationWarning, stacklevel=3,
    )


class RunSpec(GenerationSpec):
    """Wire-serialisable description of one distributed run.

    Deprecated alias of :class:`repro.core.spec.GenerationSpec` keeping
    the historical ``rebuild``/``noise_seed`` constructor arguments and
    attribute names.
    """

    def __init__(
        self,
        rebuild: Dict[str, Any],
        noise_seed: int,
        plan: Dict[str, int],
        store_path: Optional[str],
        access: str = "shared",
        noise_block: Optional[int] = None,
        obs: bool = False,
        faults: Optional[List[Dict[str, Any]]] = None,
    ) -> None:
        _warn()
        GenerationSpec.__init__(
            self, generator=rebuild, seed=int(noise_seed), plan=plan,
            noise_block=noise_block, store_path=store_path, access=access,
            obs=obs, faults=list(faults or []),
        )

    # Historical RunSpec accepted any recipe dict carrying a 'kind';
    # keep that contract for the shim instead of the strict v1 checks.
    def validate(self) -> None:
        if self.access not in ACCESS_MODES:
            raise ValueError(
                f"access must be one of {ACCESS_MODES}, got {self.access!r}"
            )
        if self.access == "shared" and not self.store_path:
            raise ValueError("shared access requires a store path")
        if not isinstance(self.generator, dict) or "kind" not in self.generator:
            raise ValueError("rebuild recipe must be a dict with a 'kind'")

    @property
    def rebuild(self) -> Dict[str, Any]:
        return self.generator

    @property
    def noise_seed(self) -> int:
        return self.seed

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "RunSpec":
        try:
            return cls(
                rebuild=data["rebuild"],
                noise_seed=int(data["noise_seed"]),
                noise_block=(int(data["noise_block"])
                             if data.get("noise_block") is not None
                             else None),
                plan={k: int(v) for k, v in data["plan"].items()},
                store_path=data.get("store_path"),
                access=data.get("access", "shared"),
                obs=bool(data.get("obs", False)),
                faults=list(data.get("faults") or []),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, SpecError):
                raise
            raise ValueError(f"malformed run spec: {exc!r}") from exc
