"""The run specification a coordinator ships to every worker.

A :class:`RunSpec` is everything a fresh process on any host needs to
compute tiles bit-identically to the single-host path: the generator's
``rebuild`` recipe (the same JSON recipe :mod:`repro.jobs` checkpoints),
the noise plane's seed/block, the tile plan geometry, where finished
heights go, and the observability / fault-injection switches.  It is
deliberately *descriptive* — no live objects cross the wire, so the
worker can run on a different host (or a different Python) as long as it
speaks the protocol and shares the store when ``access == "shared"``.

Two height-delivery modes:

``shared``
    Worker opens the store path itself (same host or a shared
    filesystem) with ``ledger=False`` and writes windows directly;
    only completion reports cross the socket.
``ship``
    Worker has no store access; finished heights ride the socket as a
    binary frame after each ``complete`` message and the coordinator
    writes them.  Slower, but host-agnostic with no shared filesystem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["RunSpec", "ACCESS_MODES"]

ACCESS_MODES = ("shared", "ship")


@dataclass(frozen=True)
class RunSpec:
    """Wire-serialisable description of one distributed run."""

    rebuild: Dict[str, Any]
    noise_seed: int
    plan: Dict[str, int]
    store_path: Optional[str]
    access: str = "shared"
    noise_block: Optional[int] = None
    obs: bool = False
    faults: List[Dict[str, Any]] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.access not in ACCESS_MODES:
            raise ValueError(
                f"access must be one of {ACCESS_MODES}, got {self.access!r}"
            )
        if self.access == "shared" and not self.store_path:
            raise ValueError("shared access requires a store path")
        if not isinstance(self.rebuild, dict) or "kind" not in self.rebuild:
            raise ValueError("rebuild recipe must be a dict with a 'kind'")

    def to_wire(self) -> Dict[str, Any]:
        return {
            "rebuild": self.rebuild,
            "noise_seed": self.noise_seed,
            "noise_block": self.noise_block,
            "plan": self.plan,
            "store_path": self.store_path,
            "access": self.access,
            "obs": self.obs,
            "faults": list(self.faults),
        }

    @classmethod
    def from_wire(cls, data: Dict[str, Any]) -> "RunSpec":
        try:
            return cls(
                rebuild=data["rebuild"],
                noise_seed=int(data["noise_seed"]),
                noise_block=(int(data["noise_block"])
                             if data.get("noise_block") is not None else None),
                plan={k: int(v) for k, v in data["plan"].items()},
                store_path=data.get("store_path"),
                access=data.get("access", "shared"),
                obs=bool(data.get("obs", False)),
                faults=list(data.get("faults") or []),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed run spec: {exc!r}") from exc
