"""Streaming (successive) generation of arbitrarily long surfaces.

Paper Section 2.4, advantage (a): "once the weighting array is computed,
we can generate any size of continuous RRSs ... by successive
computations".  This module makes that operational: a
:class:`StripStream` walks along the x axis emitting fixed-width strips
of an unbounded surface.  Because each strip is a windowed convolution
over the shared deterministic noise plane, consecutive strips join
*seamlessly* — the assembled strips equal the one-shot windowed surface
up to FFT rounding (~1e-15 relative; tested), and memory stays O(strip),
independent of the total length.

Typical uses: kilometre-scale propagation transects sampled at
sub-metre resolution (the sensor-network scenario of the paper's
introduction), or out-of-core export of terrain too large for RAM.
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np

from .. import obs
from ..core.rng import BlockNoise
from ..core.surface import Surface
from .executor import WindowedGenerator, _slim_provenance, _tile_result
from .tiles import Tile

__all__ = ["StripStream", "stream_strips", "assemble_strips"]


def _strip_provenance(generator: WindowedGenerator, noise: BlockNoise,
                      tile: Tile, index: int,
                      tile_prov: Optional[dict]) -> dict:
    """One strip's full provenance record.

    Carries everything the checkpoint layer needs to re-derive the
    strip — its global index, exact window, and the noise plane's seed
    *and* block size — so callers (and :mod:`repro.jobs`) no longer
    recompute strip → window arithmetic themselves.
    """
    provenance = {
        "method": "strip-stream",
        "strip_index": index,
        "window": [tile.x0, tile.y0, tile.nx, tile.ny],
        "noise_seed": noise.seed,
        "noise_block": getattr(noise, "block", None),
    }
    engine = getattr(generator, "engine", None)
    if engine is not None:
        provenance["engine"] = engine
    slim = _slim_provenance(tile_prov)
    if slim:
        # active-set / batched-FFT record of this strip's window
        provenance.update(slim)
    return provenance


class StripStream:
    """Iterator of consecutive surface strips along x.

    Parameters
    ----------
    generator:
        Windowed generator (homogeneous or inhomogeneous).
    noise:
        Deterministic noise plane; fixes the surface.
    width_ny:
        Strip extent in y (constant across strips).
    strip_nx:
        Strip extent in x per emission.
    x0, y0:
        Global sample index of the first strip's corner.
    n_strips:
        Number of strips to emit, or ``None`` for an endless stream
        (terminate by breaking out of the loop).
    start_index:
        Strip index to start at (default 0): the stream behaves as if
        the first ``start_index`` strips had already been emitted — the
        resume hook of :mod:`repro.jobs`.  ``emitted`` still counts
        only this iterator's own emissions.

    Examples
    --------
    >>> stream = StripStream(gen, BlockNoise(seed=1), width_ny=256,
    ...                      strip_nx=128, n_strips=8)      # doctest: +SKIP
    >>> for strip in stream:                                 # doctest: +SKIP
    ...     process(strip.heights)
    """

    def __init__(
        self,
        generator: WindowedGenerator,
        noise: BlockNoise,
        width_ny: int,
        strip_nx: int,
        x0: int = 0,
        y0: int = 0,
        n_strips: Optional[int] = None,
        start_index: int = 0,
    ) -> None:
        if width_ny <= 0 or strip_nx <= 0:
            raise ValueError("strip dimensions must be positive")
        if n_strips is not None and n_strips < 0:
            raise ValueError("n_strips must be >= 0")
        if start_index < 0:
            raise ValueError("start_index must be >= 0")
        self.generator = generator
        self.noise = noise
        self.width_ny = width_ny
        self.strip_nx = strip_nx
        self.x0 = x0
        self.y0 = y0
        self.n_strips = n_strips
        self.start_index = start_index
        self._emitted = 0

    @property
    def emitted(self) -> int:
        """Number of strips successfully produced so far.

        Incremented only after a strip's :class:`Surface` has been
        fully constructed, so a strip that raises mid-iteration is
        re-attempted by the next ``next()`` call instead of being
        silently skipped (the accounting previously bumped the counter
        before validation could fail).
        """
        return self._emitted

    @property
    def next_index(self) -> int:
        """Global index of the strip the next ``next()`` will produce."""
        return self.start_index + self._emitted

    def __iter__(self) -> Iterator[Surface]:
        return self

    def __next__(self) -> Surface:
        if self.n_strips is not None and self._emitted >= self.n_strips:
            raise StopIteration
        index = self.start_index + self._emitted
        gx = self.x0 + index * self.strip_nx
        tile = Tile(x0=gx, y0=self.y0, nx=self.strip_nx, ny=self.width_ny)
        with obs.trace("stream.strip",
                       {"index": index}
                       if obs.enabled() else None) as span:
            heights, tile_prov = _tile_result(self.generator, self.noise,
                                              tile)
        if obs.enabled():
            obs.add("stream.strips")
            obs.observe("stream.strip_seconds", span.duration_s)
        grid = self.generator.grid.with_shape(tile.nx, tile.ny)  # type: ignore[attr-defined]
        provenance = _strip_provenance(
            self.generator, self.noise, tile, index, tile_prov
        )
        surface = Surface(
            heights=heights,
            grid=grid,
            origin=(gx * grid.dx, self.y0 * grid.dy),
            provenance=provenance,
        )
        # Count the emission only once the strip exists: if anything
        # above raised, this strip has NOT been emitted and the stream
        # retries the same index on the next call.
        self._emitted += 1
        return surface


def stream_strips(
    generator: WindowedGenerator,
    noise: BlockNoise,
    total_nx: int,
    width_ny: int,
    strip_nx: int,
    x0: int = 0,
    y0: int = 0,
) -> Iterator[Surface]:
    """Finite strip stream covering ``total_nx`` samples along x.

    The last strip is clipped so the strips exactly tile the requested
    extent.
    """
    if total_nx <= 0:
        raise ValueError("total_nx must be positive")
    emitted = 0
    index = 0
    while emitted < total_nx:
        nx = min(strip_nx, total_nx - emitted)
        tile = Tile(x0=x0 + emitted, y0=y0, nx=nx, ny=width_ny)
        with obs.trace("stream.strip") as span:
            heights, tile_prov = _tile_result(generator, noise, tile)
        if obs.enabled():
            obs.add("stream.strips")
            obs.observe("stream.strip_seconds", span.duration_s)
        grid = generator.grid.with_shape(tile.nx, tile.ny)  # type: ignore[attr-defined]
        provenance = _strip_provenance(generator, noise, tile, index,
                                       tile_prov)
        yield Surface(
            heights=heights,
            grid=grid,
            origin=(tile.x0 * grid.dx, y0 * grid.dy),
            provenance=provenance,
        )
        emitted += nx
        index += 1


def assemble_strips(strips: Iterator[Surface]) -> Surface:
    """Concatenate a finite strip stream back into one surface.

    Verifies strips are contiguous along x and share y extent/spacing.
    (Mostly for tests and small cases — the point of streaming is *not*
    to assemble.)
    """
    pieces = list(strips)
    if not pieces:
        raise ValueError("no strips to assemble")
    first = pieces[0]
    dy = first.grid.dy
    dx = first.grid.dx
    y_org = first.origin[1]
    ny = first.shape[1]
    expected_x = first.origin[0]
    arrays = []
    for s in pieces:
        if s.shape[1] != ny or abs(s.origin[1] - y_org) > 1e-9:
            raise ValueError("strips do not share the y window")
        if abs(s.grid.dx - dx) > 1e-12 or abs(s.grid.dy - dy) > 1e-12:
            raise ValueError("strips do not share sample spacing")
        if abs(s.origin[0] - expected_x) > 1e-9:
            raise ValueError(
                f"strips not contiguous: expected x origin {expected_x}, "
                f"got {s.origin[0]}"
            )
        arrays.append(s.heights)
        expected_x += s.shape[0] * dx
    heights = np.concatenate(arrays, axis=0)
    grid = first.grid.with_shape(heights.shape[0], ny)
    return Surface(
        heights=heights,
        grid=grid,
        origin=first.origin,
        provenance={"method": "strip-assembled", "strips": len(pieces)},
    )
