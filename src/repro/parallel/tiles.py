"""Tile decomposition of large surface computations.

The convolution method's locality (eqn 36: each output sample depends
only on noise inside the kernel footprint) makes domain decomposition
embarrassingly parallel *given* a location-addressable noise plane
(:class:`repro.core.rng.BlockNoise`): every tile is an independent
windowed generation whose implicit halo is read directly from the shared
noise function — the functional analogue of an MPI halo exchange, with
the exchange replaced by recomputation from the counter-based RNG
(DESIGN.md S10; mpi4py is substituted per the design's substitution
table).

A :class:`TilePlan` enumerates the output windows; executors in
:mod:`repro.parallel.executor` realise them serially, with threads, or
with processes, and all three produce bit-identical surfaces (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

__all__ = ["Tile", "TilePlan"]


@dataclass(frozen=True)
class Tile:
    """One output window ``[x0, x0+nx) x [y0, y0+ny)`` in global samples."""

    x0: int
    y0: int
    nx: int
    ny: int

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(f"tile must be non-empty, got {self}")

    @property
    def x1(self) -> int:
        return self.x0 + self.nx

    @property
    def y1(self) -> int:
        return self.y0 + self.ny

    @property
    def n_samples(self) -> int:
        return self.nx * self.ny


@dataclass(frozen=True)
class TilePlan:
    """Decomposition of a ``total_nx x total_ny`` output into tiles.

    Parameters
    ----------
    total_nx, total_ny:
        Output extent in samples; the output's global origin is
        ``(origin_x, origin_y)`` (samples, may be negative).
    tile_nx, tile_ny:
        Nominal tile extent; edge tiles are clipped.

    Notes
    -----
    Tiles partition the output exactly (no overlap, no gaps) — the
    *noise* windows the tiles read do overlap by the kernel support, but
    that is handled inside windowed generation and never materialised
    globally.
    """

    total_nx: int
    total_ny: int
    tile_nx: int
    tile_ny: int
    origin_x: int = 0
    origin_y: int = 0

    def __post_init__(self) -> None:
        if self.total_nx <= 0 or self.total_ny <= 0:
            raise ValueError("total extent must be positive")
        if self.tile_nx <= 0 or self.tile_ny <= 0:
            raise ValueError("tile extent must be positive")

    @property
    def n_tiles(self) -> Tuple[int, int]:
        """Tile counts per axis."""
        cx = -(-self.total_nx // self.tile_nx)
        cy = -(-self.total_ny // self.tile_ny)
        return (cx, cy)

    def __len__(self) -> int:
        cx, cy = self.n_tiles
        return cx * cy

    def tiles(self) -> List[Tile]:
        """All tiles in row-major order."""
        return list(iter(self))

    def __iter__(self) -> Iterator[Tile]:
        for gx in range(self.origin_x, self.origin_x + self.total_nx, self.tile_nx):
            nx = min(self.tile_nx, self.origin_x + self.total_nx - gx)
            for gy in range(
                self.origin_y, self.origin_y + self.total_ny, self.tile_ny
            ):
                ny = min(self.tile_ny, self.origin_y + self.total_ny - gy)
                yield Tile(x0=gx, y0=gy, nx=nx, ny=ny)

    def shards(self, n_shards: int) -> List[List[int]]:
        """Partition the row-major tile indices into ``n_shards`` shards.

        Shards are contiguous index ranges balanced to within one tile —
        the static decomposition the distributed scheduler
        (:mod:`repro.dist`) uses for worker affinity: worker ``k``
        preferentially leases from shard ``k`` and steals from the
        fullest other shard when its own runs dry.  Contiguity keeps a
        worker's tiles row-adjacent, which maximises kernel-plan and
        page-cache reuse inside that worker.

        ``n_shards`` may exceed the tile count; the surplus shards are
        empty (a degenerate but valid decomposition — more hosts than
        tiles).  The shards always cover every index exactly once.
        """
        if n_shards <= 0:
            raise ValueError(f"n_shards must be positive, got {n_shards}")
        total = len(self)
        base, extra = divmod(total, n_shards)
        out: List[List[int]] = []
        start = 0
        for i in range(n_shards):
            size = base + (1 if i < extra else 0)
            out.append(list(range(start, start + size)))
            start += size
        return out

    def halo_samples(self, kernel_shape: Tuple[int, int]) -> Tuple[int, int]:
        """Noise-read accounting for this plan under ``kernel_shape``.

        Each tile reads a noise window inflated by ``kernel - 1`` per
        axis (the halo).  Returns ``(total_read, output)`` — the total
        noise samples read across all tiles and the output sample count —
        so executors can report halo cost in provenance without
        re-walking the plan.
        """
        kx, ky = kernel_shape
        if kx <= 0 or ky <= 0:
            raise ValueError(f"kernel shape must be positive, got {kernel_shape}")
        read = 0
        for t in self:
            read += (t.nx + kx - 1) * (t.ny + ky - 1)
        return read, self.total_nx * self.total_ny

    def halo_overhead(self, kernel_shape: Tuple[int, int]) -> float:
        """Fraction of redundant noise reads caused by halos.

        ``(total noise samples read) / (output samples) - 1`` from
        :meth:`halo_samples`.  Guides the tile-size choice: halo cost
        ~ K/tile per axis (bench A2 sweeps this).
        """
        read, output = self.halo_samples(kernel_shape)
        return read / output - 1.0
