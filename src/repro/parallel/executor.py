"""Execution backends for tiled surface generation.

Maps a :class:`~repro.parallel.tiles.TilePlan` over a generator that
supports windowed generation (``ConvolutionGenerator`` or
``InhomogeneousGenerator``) and assembles the tiles into one height
array.  Three backends:

``serial``
    Plain loop; the reference.
``thread``
    ``ThreadPoolExecutor``.  NumPy's FFT and BLAS release the GIL for
    large arrays, so threads give genuine speedups with zero pickling
    cost and shared output memory.
``process``
    ``ProcessPoolExecutor``.  Full CPU parallelism regardless of GIL;
    the generator and noise spec are pickled to workers and tiles are
    shipped back.  Worth it for large tiles / heavy kernels.

For a fixed tile plan, all three backends produce *bit-identical* output
because tile values are pure functions of ``(generator, noise seed, tile
coordinates)`` — the counter-based noise plane
(:class:`~repro.core.rng.BlockNoise`) does for this code what keyed RNGs
do for GPU/MPI stochastic codes.  *Different* tile plans agree to
floating-point rounding (~1e-15 relative): the FFT used inside the
windowed convolution rounds differently for different window shapes.

This module is the library's MPI substitute (DESIGN.md S10): the tile
decomposition, halo arithmetic, and determinism contract are exactly
what an mpi4py backend would need; only the transport differs.
"""

from __future__ import annotations

import concurrent.futures as cf
import os
from typing import Iterable, List, Optional, Protocol, Tuple

import numpy as np

from ..core.engine import plan_cache
from ..core.rng import BlockNoise
from ..core.surface import Surface
from .tiles import Tile, TilePlan

__all__ = ["WindowedGenerator", "generate_tiled", "default_workers"]


class WindowedGenerator(Protocol):
    """Anything that can generate arbitrary windows of an unbounded RRS."""

    grid: "object"

    def generate_window(
        self, noise: BlockNoise, x0: int, y0: int, nx: int, ny: int
    ): ...


def default_workers() -> int:
    """Default worker count: physical parallelism minus one, at least 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def _tile_heights(generator: WindowedGenerator, noise: BlockNoise, tile: Tile
                  ) -> np.ndarray:
    out = generator.generate_window(noise, tile.x0, tile.y0, tile.nx, tile.ny)
    # InhomogeneousGenerator returns Surface; ConvolutionGenerator ndarray.
    if isinstance(out, Surface):
        return out.heights
    return np.asarray(out)


def _worker(args: Tuple[WindowedGenerator, BlockNoise, Tile]
            ) -> Tuple[Tile, np.ndarray]:
    generator, noise, tile = args
    return tile, _tile_heights(generator, noise, tile)


def generate_tiled(
    generator: WindowedGenerator,
    noise: BlockNoise,
    plan: TilePlan,
    backend: str = "serial",
    workers: Optional[int] = None,
) -> Surface:
    """Generate a large surface tile-by-tile.

    Parameters
    ----------
    generator:
        A windowed generator; its grid supplies the sample spacing.
    noise:
        The shared deterministic noise plane (seed fixes the surface).
    plan:
        Tile decomposition covering the desired output.
    backend:
        ``"serial"``, ``"thread"`` or ``"process"``.
    workers:
        Pool size for the parallel backends (default
        :func:`default_workers`).

    Returns
    -------
    The assembled :class:`~repro.core.surface.Surface`; bit-identical
    across backends for a fixed plan, and equal up to FFT rounding across
    different tile shapes, for a fixed ``(generator, noise)``.
    """
    grid = generator.grid  # type: ignore[attr-defined]
    out = np.empty((plan.total_nx, plan.total_ny), dtype=float)
    tiles = plan.tiles()
    stats_before = plan_cache.stats()

    def place(tile: Tile, values: np.ndarray) -> None:
        ix = tile.x0 - plan.origin_x
        iy = tile.y0 - plan.origin_y
        out[ix : ix + tile.nx, iy : iy + tile.ny] = values

    if backend == "serial":
        for t in tiles:
            place(t, _tile_heights(generator, noise, t))
    elif backend in ("thread", "process"):
        n = workers or default_workers()
        pool_cls = (
            cf.ThreadPoolExecutor if backend == "thread" else cf.ProcessPoolExecutor
        )
        with pool_cls(max_workers=n) as pool:
            if backend == "thread":
                futures = [
                    pool.submit(_tile_heights, generator, noise, t) for t in tiles
                ]
                for t, fut in zip(tiles, futures):
                    place(t, fut.result())
            else:
                for t, values in pool.map(
                    _worker, [(generator, noise, t) for t in tiles]
                ):
                    place(t, values)
    else:
        raise ValueError(
            f"unknown backend {backend!r}; expected serial|thread|process"
        )

    big_grid = grid.with_shape(plan.total_nx, plan.total_ny)
    origin = (plan.origin_x * grid.dx, plan.origin_y * grid.dy)
    provenance = {
        "method": "tiled",
        "backend": backend,
        "tiles": len(tiles),
        "noise_seed": noise.seed,
    }
    engine = getattr(generator, "engine", None)
    if engine is not None:
        provenance["engine"] = engine
    footprint = getattr(generator, "footprint", None)
    if footprint is not None:
        read, output = plan.halo_samples(tuple(footprint))
        provenance["halo_overhead"] = read / output - 1.0
    if backend in ("serial", "thread"):
        # Process workers hold their own plan caches; a delta against the
        # parent's cache would be meaningless there.
        stats_after = plan_cache.stats()
        provenance["plan_cache"] = {
            "hits": stats_after.hits - stats_before.hits,
            "misses": stats_after.misses - stats_before.misses,
        }
    return Surface(
        heights=out,
        grid=big_grid,
        origin=origin,
        provenance=provenance,
    )
