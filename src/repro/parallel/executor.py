"""Execution backends for tiled surface generation.

Maps a :class:`~repro.parallel.tiles.TilePlan` over a generator that
supports windowed generation (anything satisfying the
:class:`~repro.core.api.SurfaceGenerator` protocol with a 2D ``grid``)
and assembles the tiles into one height array.  Three backends:

``serial``
    Plain loop; the reference.
``thread``
    ``ThreadPoolExecutor``.  NumPy's FFT and BLAS release the GIL for
    large arrays, so threads give genuine speedups with zero pickling
    cost and shared output memory.  The best default on one machine.
``process``
    ``ProcessPoolExecutor`` with persistent workers: the generator and
    noise spec are broadcast **once** per worker through the pool
    initializer (not pickled per tile), and each worker writes its
    tiles directly into a ``multiprocessing.shared_memory`` output
    buffer — zero-copy assembly, nothing but a slim provenance record
    crosses the result pipe.  Full CPU parallelism regardless of the
    GIL; worth it when per-tile Python overhead (weight maps, blend
    fields) rivals the FFT work, at the cost of one kernel-plan warmup
    per worker.

For a fixed tile plan, all three backends produce *bit-identical* output
because tile values are pure functions of ``(generator, noise seed, tile
coordinates)`` — the counter-based noise plane
(:class:`~repro.core.rng.BlockNoise`) does for this code what keyed RNGs
do for GPU/MPI stochastic codes.  *Different* tile plans agree to
floating-point rounding (~1e-15 relative): the FFT used inside the
windowed convolution rounds differently for different window shapes.

Fault tolerance (the substrate of :mod:`repro.jobs`): passing any of the
``retry`` / ``fault_plan`` / ``out`` / ``skip`` / ``on_tile`` keywords
switches :func:`generate_tiled` to a resilient scheduler that retries
failed tiles with deterministic exponential backoff, enforces a run-wide
failure budget, survives crashed process-pool workers
(``BrokenProcessPool`` → respawn the pool and requeue the in-flight
tiles), and degrades process → thread → serial when respawning keeps
failing.  Because tile values are backend-independent, retries and
degradation never change the output — only when it is computed.

Run-level provenance aggregates what the windowed generators report per
tile: plan-cache hit/miss deltas (summed across process workers' own
caches), region/level active-set totals, batched-FFT counters, and — for
resilient runs — retry/respawn/degradation counts.

This module is the library's MPI substitute (DESIGN.md S10): the tile
decomposition, halo arithmetic, and determinism contract are exactly
what an mpi4py backend would need; only the transport differs.
"""

from __future__ import annotations

import concurrent.futures as cf
import os
import time
from collections import deque
from multiprocessing import shared_memory
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    NamedTuple,
    Optional,
    Protocol,
    Tuple,
)

import numpy as np

from .. import obs
from ..core.api import split_result
from ..core.engine import plan_cache
from ..core.rng import BlockNoise
from ..core.surface import Surface
from .tiles import Tile, TilePlan

__all__ = [
    "WindowedGenerator",
    "generate_tiled",
    "default_workers",
    "TileFailedError",
    "FailureBudgetExceeded",
    "PoolRespawnLimit",
]

#: Per-tile generator-provenance keys worth aggregating at run level
#: (and the only ones process workers ship back to the parent).
_TILE_PROV_KEYS = (
    "regions",
    "regions_active",
    "regions_skipped",
    "levels_active",
    "levels_skipped",
    "batch_fft",
)


class WindowedGenerator(Protocol):
    """Anything that can generate arbitrary windows of an unbounded RRS."""

    grid: "object"

    def generate_window(
        self, noise: BlockNoise, x0: int, y0: int, nx: int, ny: int
    ): ...


class TileFailedError(RuntimeError):
    """A tile kept failing past ``RetryPolicy.max_attempts``."""

    def __init__(self, index: int, tile: Tile, failures: int,
                 last: BaseException) -> None:
        super().__init__(
            f"tile {index} {tile} failed {failures} time(s); "
            f"last error: {last!r}"
        )
        self.index = index
        self.tile = tile
        self.failures = failures
        self.last = last


class FailureBudgetExceeded(RuntimeError):
    """The run-wide ``RetryPolicy.failure_budget`` was exhausted."""


class PoolRespawnLimit(RuntimeError):
    """The process pool kept breaking past ``RetryPolicy.max_respawns``
    and degradation was disabled."""


def default_workers() -> int:
    """Default worker count: physical parallelism minus one, at least 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def _tile_result(
    generator: WindowedGenerator, noise: BlockNoise, tile: Tile
) -> Tuple[np.ndarray, Optional[dict]]:
    """One tile's heights plus the generator's per-window provenance.

    Normalises every protocol-conformant return shape — ``Surface``,
    ``HeightField`` or bare array — via
    :func:`repro.core.api.split_result`.
    """
    out = generator.generate_window(noise, tile.x0, tile.y0, tile.nx, tile.ny)
    return split_result(out)


def _tile_heights(generator: WindowedGenerator, noise: BlockNoise, tile: Tile
                  ) -> np.ndarray:
    out, _prov = _tile_result(generator, noise, tile)
    return out


def _traced_tile(
    generator: WindowedGenerator,
    noise: BlockNoise,
    tile: Tile,
    submit_ns: Optional[int] = None,
) -> Tuple[np.ndarray, Optional[dict], float]:
    """One tile's result wrapped in an ``executor.tile`` span.

    Returns ``(heights, provenance, tile_seconds)``.  ``submit_ns``
    (thread backend) dates the pool submission so the span's start gap
    is recorded as queue wait.  All of this is a no-op when tracing is
    off — the null span allocates nothing and ``tile_seconds`` is 0.
    """
    if submit_ns is not None and obs.enabled():
        obs.observe("executor.queue_wait_seconds",
                    (time.perf_counter_ns() - submit_ns) / 1e9)
    with obs.trace("executor.tile",
                   {"x0": tile.x0, "y0": tile.y0,
                    "nx": tile.nx, "ny": tile.ny}
                   if obs.enabled() else None) as span:
        heights, prov = _tile_result(generator, noise, tile)
    if obs.enabled():
        obs.observe("executor.tile_seconds", span.duration_s)
        obs.add("executor.tiles")
    return heights, prov, span.duration_s


def _slim_provenance(prov: Optional[dict]) -> Optional[dict]:
    """The aggregatable subset of a tile's provenance."""
    if not prov:
        return None
    slim = {k: prov[k] for k in _TILE_PROV_KEYS if k in prov}
    return slim or None


def _merge_tile_provenance(agg: dict, prov: Optional[dict]) -> None:
    """Fold one tile's provenance into the run-level summary ``agg``."""
    if not prov:
        return
    for akey, pkey in (("regions", "regions_active"),
                       ("levels", "levels_active")):
        if pkey not in prov:
            continue
        active = int(prov[pkey])
        skipped = int(prov.get(pkey.replace("_active", "_skipped"), 0))
        row = agg.setdefault(akey, {
            "active_total": 0,
            "skipped_total": 0,
            "min_active": active,
            "max_active": active,
            "single_kernel_tiles": 0,
        })
        row["active_total"] += active
        row["skipped_total"] += skipped
        row["min_active"] = min(row["min_active"], active)
        row["max_active"] = max(row["max_active"], active)
        if active == 1 and skipped > 0:
            row["single_kernel_tiles"] += 1
    batch = prov.get("batch_fft")
    if batch:
        row = agg.setdefault("batch_fft", {})
        for key, val in batch.items():
            row[key] = row.get(key, 0) + int(val)


# ---------------------------------------------------------------------------
# Shared-memory process backend
# ---------------------------------------------------------------------------
#: Worker-side run state installed once by the pool initializer.
_POOL_STATE: dict = {}


def _attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership.

    The parent creates and unlinks the segment; workers must only map
    it.  ``track=False`` (Python >= 3.13) expresses that directly.  On
    older interpreters attaching re-registers the name with the shared
    resource tracker, which is harmless here: the tracker's cache is a
    set, so the workers' registrations collapse into the parent's and
    the parent's ``unlink`` balances them — no leak warning, and no
    explicit unregister (which would double-remove and make the
    parent's ``unlink`` trip the tracker).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 signature
        return shared_memory.SharedMemory(name=name)


def _generator_dtype(generator) -> np.dtype:
    """Output precision of ``generator`` (``float64`` unless it opts in).

    Generators grown a ``dtype`` attribute (the engine's ``float32``
    mode) drive the dtype of every executor-side buffer — the assembled
    output array, both shared-memory staging views, and the worker-side
    mappings — so tiles land without a hidden cast.
    """
    return np.dtype(getattr(generator, "dtype", np.float64))


def _pool_init(
    generator: WindowedGenerator,
    noise: BlockNoise,
    shm_name: str,
    shape: Tuple[int, int],
    origin: Tuple[int, int],
    obs_enabled: bool = False,
    fault_plan: Optional[Any] = None,
) -> None:
    """Pool initializer: receive the run state once per worker.

    Everything tile-independent — the generator (with its kernels), the
    noise spec, the mapped output buffer, and any fault-injection plan —
    lives in module state for the worker's lifetime, so per-tile tasks
    carry only a ``Tile`` (plus index/attempt in resilient mode).
    When the parent is recording, each worker installs its own
    :class:`repro.obs.Recorder`; per-tile drains ride the result pipe
    next to the plan-cache deltas.
    """
    shm = _attach_shared_memory(shm_name)
    view = np.ndarray(shape, dtype=_generator_dtype(generator), buffer=shm.buf)
    if obs_enabled:
        obs.install(obs.Recorder())
    _POOL_STATE.update(
        generator=generator,
        noise=noise,
        shm=shm,  # keep the mapping alive for the worker's lifetime
        view=view,
        origin=origin,
        fault_plan=fault_plan,
    )


def _pool_tile(
    tile: Tile,
) -> Tuple[Optional[dict], Dict[str, int], Optional[Dict[str, Any]]]:
    """Worker task: write one tile straight into the shared output.

    Returns the tile's slim provenance, this tile's plan-cache delta
    (each worker process holds its own cache), and — when the run is
    being recorded — the worker recorder's drained span/metric payload.
    No height data crosses the result pipe.
    """
    state = _POOL_STATE
    before = plan_cache.stats()
    heights, prov, _dt = _traced_tile(state["generator"], state["noise"], tile)
    after = plan_cache.stats()
    ox, oy = state["origin"]
    state["view"][
        tile.x0 - ox : tile.x0 - ox + tile.nx,
        tile.y0 - oy : tile.y0 - oy + tile.ny,
    ] = heights
    delta = {
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
    }
    rec = obs.get_recorder()
    payload = rec.drain() if rec.enabled else None
    return _slim_provenance(prov), delta, payload


def _pool_resilient_tile(
    task: Tuple[int, Tile, int],
) -> Tuple[int, Optional[dict], Dict[str, int], Optional[Dict[str, Any]]]:
    """Worker task for resilient runs: fire any scheduled fault, then
    compute the tile.  Echoes the tile index so the parent can match
    out-of-order completions."""
    idx, tile, attempt = task
    fault_plan = _POOL_STATE.get("fault_plan")
    if fault_plan is not None:
        fault_plan.fire(idx, attempt)
    slim, delta, payload = _pool_tile(tile)
    return idx, slim, delta, payload


# ---------------------------------------------------------------------------
# Resilient scheduler
# ---------------------------------------------------------------------------
class _Task(NamedTuple):
    idx: int
    tile: Tile
    attempt: int  # 1-based count of times this tile has been started


def _default_retry_policy():
    from ..jobs.retry import RetryPolicy  # local: jobs depends on us

    return RetryPolicy()


class _ResilientRun:
    """State machine for the fault-tolerant execution of one tile plan.

    Owns the pending queue, per-tile failure counts, the failure
    budget, process-pool respawn accounting and backend degradation.
    Tiles land in ``self.out`` (caller-provided or freshly allocated),
    and ``on_tile(idx, tile)`` fires in the parent after each tile's
    data is in ``self.out`` — the checkpoint hook of :mod:`repro.jobs`.
    """

    def __init__(self, generator, noise, plan, backend, workers, policy,
                 fault_plan, out, skip, on_tile, agg, writer=None):
        self.generator = generator
        self.noise = noise
        self.plan = plan
        self.workers = workers
        self.policy = policy
        self.fault_plan = fault_plan
        self.out = out
        self.writer = writer  # async store writeback (out is None then)
        self.shape = (plan.total_nx, plan.total_ny)
        self.on_tile = on_tile
        self.agg = agg
        tiles = plan.tiles()
        self.skipped = frozenset(int(i) for i in (skip or ()))
        unknown = [i for i in self.skipped if not 0 <= i < len(tiles)]
        if unknown:
            raise ValueError(
                f"skip indices {sorted(unknown)} outside the plan's "
                f"{len(tiles)} tiles"
            )
        self.pending = deque(
            _Task(idx, tiles[idx], 1)
            for idx in range(len(tiles))
            if idx not in self.skipped
        )
        self.failures: Dict[int, int] = {}
        self.retries = 0
        self.respawns = 0
        self.degraded_to: Optional[str] = None
        self.busy_s = 0.0
        self.cache_delta = {"hits": 0, "misses": 0}
        self.saw_worker_delta = False
        self.backend_chain = {
            "process": ["process", "thread", "serial"],
            "thread": ["thread", "serial"],
            "serial": ["serial"],
        }[backend]

    # -- shared bookkeeping ------------------------------------------------
    def _fire(self, task: _Task) -> None:
        if self.fault_plan is not None:
            self.fault_plan.fire(task.idx, task.attempt)

    def _place(self, idx: int, tile: Tile, values: np.ndarray) -> None:
        ix = tile.x0 - self.plan.origin_x
        iy = tile.y0 - self.plan.origin_y
        if self.writer is not None:
            # Hand the tile to the async writeback path; the writer
            # marks the store's chunk bitmap only after the durable
            # write, so crash-resume never trusts unwritten data.
            self.writer.submit(idx, ix, iy, values)
        else:
            self.out[ix : ix + tile.nx, iy : iy + tile.ny] = values

    def _complete(self, task: _Task, prov: Optional[dict]) -> None:
        _merge_tile_provenance(self.agg, _slim_provenance(prov))
        if self.on_tile is not None:
            self.on_tile(task.idx, task.tile)

    def _record_failure(self, task: _Task, exc: BaseException) -> None:
        """Account one genuine tile failure; raise when budgets run out,
        otherwise sleep the deterministic backoff before the retry."""
        count = self.failures.get(task.idx, 0) + 1
        self.failures[task.idx] = count
        self.retries += 1
        if obs.enabled():
            obs.add("executor.tile_retries")
        budget = self.policy.failure_budget
        if budget is not None and self.retries > budget:
            raise FailureBudgetExceeded(
                f"{self.retries} failed tile attempts exceed the "
                f"failure budget of {budget}"
            ) from exc
        if count >= self.policy.max_attempts:
            raise TileFailedError(task.idx, task.tile, count, exc) from exc
        delay = self.policy.delay(count)
        if delay > 0:
            time.sleep(delay)

    # -- backends ----------------------------------------------------------
    def run(self) -> None:
        chain = iter(self.backend_chain)
        current = next(chain)
        while self.pending:
            try:
                if current == "serial":
                    self._run_serial()
                elif current == "thread":
                    self._run_thread()
                else:
                    self._run_process()
            except cf.BrokenExecutor as exc:
                # A broken pool that may not be respawned: degrade (the
                # values are backend-independent) or give up.
                if not self.policy.degrade:
                    raise PoolRespawnLimit(
                        f"{current} pool kept breaking after "
                        f"{self.respawns} respawn(s)"
                    ) from exc
            if self.pending:
                current = next(chain)
                self.degraded_to = current
                if obs.enabled():
                    obs.add("executor.degradations")

    def _run_serial(self) -> None:
        while self.pending:
            task = self.pending.popleft()
            try:
                self._fire(task)
                heights, prov, dt = _traced_tile(
                    self.generator, self.noise, task.tile
                )
            except Exception as exc:
                self._record_failure(task, exc)
                self.pending.appendleft(task._replace(attempt=task.attempt + 1))
                continue
            self.busy_s += dt
            self._place(task.idx, task.tile, heights)
            self._complete(task, prov)

    def _thread_tile(self, task: _Task, submit_ns: Optional[int]):
        self._fire(task)
        return _traced_tile(self.generator, self.noise, task.tile, submit_ns)

    def _run_thread(self) -> None:
        tracing = obs.enabled()
        with cf.ThreadPoolExecutor(max_workers=self.workers) as pool:

            def submit(task: _Task):
                ns = time.perf_counter_ns() if tracing else None
                return pool.submit(self._thread_tile, task, ns)

            inflight = {}
            while self.pending:
                task = self.pending.popleft()
                inflight[submit(task)] = task
            while inflight:
                done, _ = cf.wait(
                    list(inflight), return_when=cf.FIRST_COMPLETED
                )
                for fut in done:
                    task = inflight.pop(fut)
                    try:
                        heights, prov, dt = fut.result()
                    except Exception as exc:
                        self._record_failure(task, exc)
                        retry = task._replace(attempt=task.attempt + 1)
                        inflight[submit(retry)] = retry
                        continue
                    self.busy_s += dt
                    self._place(task.idx, task.tile, heights)
                    self._complete(task, prov)

    def _run_process(self) -> None:
        """Process backend with pool respawn and in-flight requeue.

        A worker death breaks the whole ``ProcessPoolExecutor`` (every
        pending future raises ``BrokenProcessPool``); the in-flight and
        unsubmitted tiles are requeued at ``attempt + 1`` — a bumped
        attempt, not a counted failure, so one crashing tile cannot
        exhaust its neighbours' retry budgets — and a fresh pool is
        spawned, up to ``RetryPolicy.max_respawns`` times.  Completed
        tiles are copied from the shared-memory buffer into ``out``
        incrementally, so already-done (skipped/resumed) regions of
        ``out`` are never overwritten with uninitialised memory.
        """
        dt = _generator_dtype(self.generator)
        nbytes = self.shape[0] * self.shape[1] * dt.itemsize
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        recorder = obs.get_recorder()
        try:
            view = np.ndarray(
                self.shape, dtype=dt, buffer=shm.buf
            )
            while self.pending:
                pool = cf.ProcessPoolExecutor(
                    max_workers=self.workers,
                    initializer=_pool_init,
                    initargs=(self.generator, self.noise, shm.name,
                              self.shape,
                              (self.plan.origin_x, self.plan.origin_y),
                              obs.enabled(), self.fault_plan),
                )
                broken = False
                inflight: Dict[cf.Future, _Task] = {}
                try:

                    def submit(task: _Task) -> bool:
                        try:
                            fut = pool.submit(
                                _pool_resilient_tile,
                                (task.idx, task.tile, task.attempt),
                            )
                        except cf.BrokenExecutor:
                            self.pending.append(task)
                            return False
                        inflight[fut] = task
                        return True

                    while self.pending:
                        if not submit(self.pending.popleft()):
                            broken = True
                            break
                    while inflight:
                        done, _ = cf.wait(
                            list(inflight), return_when=cf.FIRST_COMPLETED
                        )
                        for fut in done:
                            task = inflight.pop(fut)
                            try:
                                _idx, slim, delta, payload = fut.result()
                            except cf.BrokenExecutor:
                                broken = True
                                self.pending.append(
                                    task._replace(attempt=task.attempt + 1)
                                )
                                continue
                            except Exception as exc:
                                self._record_failure(task, exc)
                                retry = task._replace(
                                    attempt=task.attempt + 1
                                )
                                if not submit(retry):
                                    broken = True
                                continue
                            tile = task.tile
                            ix = tile.x0 - self.plan.origin_x
                            iy = tile.y0 - self.plan.origin_y
                            if self.writer is not None:
                                # copy out of the shared buffer before
                                # handing over: the segment outlives no
                                # respawn and workers may rewrite it
                                self.writer.submit(
                                    task.idx, ix, iy,
                                    np.array(view[ix:ix + tile.nx,
                                                  iy:iy + tile.ny]),
                                )
                            else:
                                self.out[ix:ix + tile.nx,
                                         iy:iy + tile.ny] = (
                                    view[ix:ix + tile.nx, iy:iy + tile.ny]
                                )
                            self.saw_worker_delta = True
                            self.cache_delta["hits"] += delta["hits"]
                            self.cache_delta["misses"] += delta["misses"]
                            if payload is not None and recorder.enabled:
                                stats = payload.get("span_stats", {})
                                tile_row = stats.get("executor.tile")
                                if tile_row:
                                    self.busy_s += tile_row[1] / 1e9
                                recorder.merge(payload)
                            self._complete(task, slim)
                        if broken:
                            # every remaining in-flight future is doomed
                            # on the same broken pool: requeue them all
                            for other in inflight.values():
                                self.pending.append(
                                    other._replace(attempt=other.attempt + 1)
                                )
                            inflight.clear()
                finally:
                    pool.shutdown(wait=True, cancel_futures=True)
                if broken and self.pending:
                    self.respawns += 1
                    if obs.enabled():
                        obs.add("executor.pool_respawns")
                    if self.respawns > self.policy.max_respawns:
                        raise cf.BrokenExecutor(
                            "process pool kept breaking; respawn budget "
                            f"({self.policy.max_respawns}) spent"
                        )
        finally:
            shm.close()
            shm.unlink()


def generate_tiled(
    generator: WindowedGenerator,
    noise: BlockNoise,
    plan: TilePlan,
    backend: str = "serial",
    workers: Optional[int] = None,
    *,
    retry: Optional[Any] = None,
    fault_plan: Optional[Any] = None,
    out: Optional[np.ndarray] = None,
    skip: Optional[Iterable[int]] = None,
    on_tile: Optional[Callable[[int, Tile], None]] = None,
    rebuild: Optional[dict] = None,
    telemetry: Optional[dict] = None,
) -> Surface:
    """Generate a large surface tile-by-tile.

    Parameters
    ----------
    generator:
        A windowed generator (any :class:`~repro.core.api.
        SurfaceGenerator` with a 2D ``grid``); its grid supplies the
        sample spacing.
    noise:
        The shared deterministic noise plane (seed fixes the surface).
    plan:
        Tile decomposition covering the desired output.
    backend:
        ``"serial"``, ``"thread"``, ``"process"`` (see module
        docstring for the trade-offs) or ``"dist"`` — worker
        *processes* scheduled by a lease coordinator over a socket
        (:func:`repro.dist.executor.generate_dist`; requires ``out``
        to be a :class:`~repro.io.store.SurfaceStore` and a
        ``rebuild`` recipe, since live generators cannot cross hosts).
    workers:
        Pool size for the parallel backends (default
        :func:`default_workers`).
    retry:
        A :class:`repro.jobs.RetryPolicy` enabling the resilient
        scheduler: per-tile retries with deterministic backoff, a
        run-wide failure budget, process-pool respawn on worker death,
        and process → thread → serial degradation.  ``None`` (with all
        the keywords below unset) keeps the zero-overhead plain paths.
    fault_plan:
        A :class:`repro.jobs.FaultPlan` fired before each tile attempt
        (testing/debugging aid; implies the resilient scheduler with
        default :class:`~repro.jobs.retry.RetryPolicy` when ``retry``
        is not given — as do ``out``, ``skip`` and ``on_tile``).
    out:
        Preallocated output of shape ``(plan.total_nx, plan.total_ny)``
        and the generator's dtype (float64 unless the generator opts
        into float32) to fill in place — the checkpoint/resume hook:
        tiles listed in ``skip`` keep whatever ``out`` already holds.
        May also be a :class:`repro.io.store.SurfaceStore` whose chunk
        grid equals the tile plan: tiles are then streamed to disk
        through an async :class:`~repro.io.store.StoreWriter` (the
        full array never exists in RAM; the returned surface holds a
        read-only memmap) and the store's chunk bitmap records
        completion after each durable write.  The process backend
        still allocates a full-size shared-memory staging buffer — use
        serial/thread backends when the output exceeds RAM.
    skip:
        Indices into ``plan.tiles()`` (row-major) already completed.
    on_tile:
        ``on_tile(index, tile)`` called in the parent after that tile's
        data has landed in the output array (any backend) — the
        incremental-checkpoint hook of :mod:`repro.jobs`.  With a
        store target the hook fires at *submission* to the writeback
        queue; durable completion is what the store's own bitmap
        records, so store-backed checkpoints must trust the bitmap,
        not this hook (``repro.jobs`` does).
    rebuild:
        Generator recipe (as checkpointed by :mod:`repro.jobs`) for
        the ``dist`` backend, whose workers rebuild the generator in
        their own processes instead of receiving this one.  Ignored by
        the single-host backends.
    telemetry:
        ``dist``-backend live-telemetry options forwarded to
        :func:`repro.dist.executor.generate_dist`: ``run_id``,
        ``heartbeat_s`` (periodic worker heartbeat frames) and
        ``status_port`` (coordinator HTTP ``/metrics``/``/status``/
        ``/health``).  Rejected for the single-host backends, which
        have no coordinator to serve it.

    Returns
    -------
    The assembled :class:`~repro.core.surface.Surface`; bit-identical
    across backends for a fixed plan, and equal up to FFT rounding across
    different tile shapes, for a fixed ``(generator, noise)``.

    Raises
    ------
    TileFailedError, FailureBudgetExceeded, PoolRespawnLimit
        Resilient runs only, when the retry policy's budgets are spent.
    """
    if backend not in ("serial", "thread", "process", "dist"):
        raise ValueError(
            f"unknown backend {backend!r}; "
            f"expected serial|thread|process|dist"
        )
    if backend == "dist":
        if not (out is not None and hasattr(out, "write_window")
                and hasattr(out, "chunk_shape")):
            raise ValueError(
                "backend='dist' needs out= to be a SurfaceStore: the "
                "store's chunk bitmap is the distributed completion "
                "ledger"
            )
        if rebuild is None:
            raise ValueError(
                "backend='dist' needs a rebuild= recipe: workers run in "
                "separate processes (possibly other hosts) and rebuild "
                "the generator themselves"
            )
        from ..dist.executor import generate_dist  # local: avoid cycle

        # skip= is redundant here — done chunks are already marked in
        # the store bitmap, which is exactly what the ledger consults
        return generate_dist(
            rebuild, noise, plan, out,
            workers=workers or 2, retry=retry,
            fault_plan=fault_plan, on_tile=on_tile,
            **(telemetry or {}),
        )
    if telemetry:
        raise ValueError(
            "telemetry= (heartbeats/status server) is a dist-backend "
            f"option; backend {backend!r} has no coordinator to serve it"
        )
    grid = generator.grid  # type: ignore[attr-defined]
    # Duck-typed out-of-core target (repro.io.store.SurfaceStore): the
    # executor must not import repro.io (which imports this module), so
    # a store is recognised by its write/chunk protocol instead.
    store = out if (out is not None and hasattr(out, "write_window")
                    and hasattr(out, "chunk_shape")) else None
    writer = None
    gen_dtype = _generator_dtype(generator)
    if store is not None:
        store.validate_plan(plan)
        out = None
    elif out is not None:
        out = np.asarray(out)
        if out.shape != (plan.total_nx, plan.total_ny):
            raise ValueError(
                f"out has shape {out.shape}; plan needs "
                f"({plan.total_nx}, {plan.total_ny})"
            )
        if out.dtype != gen_dtype:
            raise ValueError(
                f"out must match the generator dtype {gen_dtype.name}"
            )
    else:
        out = np.empty((plan.total_nx, plan.total_ny), dtype=gen_dtype)
    tiles = plan.tiles()
    stats_before = plan_cache.stats()
    agg: dict = {}
    cache_delta: Optional[Dict[str, int]] = None
    n = workers or default_workers()
    pool_size = 1 if backend == "serial" else n
    busy_s = 0.0  # summed per-tile wall time (worker-utilization input)
    resilient = (
        retry is not None or fault_plan is not None
        or skip is not None or on_tile is not None
        or store is not None
    )
    run: Optional[_ResilientRun] = None

    def place(tile: Tile, values: np.ndarray) -> None:
        ix = tile.x0 - plan.origin_x
        iy = tile.y0 - plan.origin_y
        out[ix : ix + tile.nx, iy : iy + tile.ny] = values

    run_span = obs.trace("executor.run", {
        "backend": backend, "tiles": len(tiles), "workers": pool_size,
    } if obs.enabled() else None)
    with run_span:
        if resilient:
            if store is not None:
                writer = store.writer()
            run = _ResilientRun(
                generator, noise, plan, backend, n,
                retry if retry is not None else _default_retry_policy(),
                fault_plan, out, skip, on_tile, agg, writer=writer,
            )
            try:
                run.run()
            except BaseException:
                if writer is not None:
                    # drain what's queued but don't mask the original
                    # error with a secondary write failure
                    writer.close(raise_pending=False)
                raise
            if writer is not None:
                writer.close()  # re-raises a deferred write error
            busy_s = run.busy_s
            if run.saw_worker_delta:
                cache_delta = run.cache_delta
        elif backend == "serial":
            for t in tiles:
                heights, prov, dt = _traced_tile(generator, noise, t)
                busy_s += dt
                place(t, heights)
                _merge_tile_provenance(agg, _slim_provenance(prov))
        elif backend == "thread":
            with cf.ThreadPoolExecutor(max_workers=n) as pool:
                tracing = obs.enabled()
                futures = [
                    pool.submit(_traced_tile, generator, noise, t,
                                time.perf_counter_ns() if tracing else None)
                    for t in tiles
                ]
                for t, fut in zip(tiles, futures):
                    heights, prov, dt = fut.result()
                    busy_s += dt
                    place(t, heights)
                    _merge_tile_provenance(agg, _slim_provenance(prov))
        else:  # process
            shm = shared_memory.SharedMemory(create=True, size=out.nbytes)
            try:
                view = np.ndarray(out.shape, dtype=out.dtype, buffer=shm.buf)
                with cf.ProcessPoolExecutor(
                    max_workers=n,
                    initializer=_pool_init,
                    initargs=(generator, noise, shm.name, out.shape,
                              (plan.origin_x, plan.origin_y),
                              obs.enabled()),
                ) as pool:
                    cache_delta = {"hits": 0, "misses": 0}
                    recorder = obs.get_recorder()
                    for slim, delta, payload in pool.map(_pool_tile, tiles):
                        _merge_tile_provenance(agg, slim)
                        cache_delta["hits"] += delta["hits"]
                        cache_delta["misses"] += delta["misses"]
                        if payload is not None and recorder.enabled:
                            # tile order is fixed by the plan, so the
                            # merged totals are deterministic
                            stats = payload.get("span_stats", {})
                            tile_row = stats.get("executor.tile")
                            if tile_row:
                                busy_s += tile_row[1] / 1e9
                            recorder.merge(payload)
                out[:] = view
                del view  # release the buffer before closing the mapping
            finally:
                shm.close()
                shm.unlink()

    big_grid = grid.with_shape(plan.total_nx, plan.total_ny)
    origin = (plan.origin_x * grid.dx, plan.origin_y * grid.dy)
    provenance = {
        "method": "tiled",
        "backend": backend,
        "tiles": len(tiles),
        "noise_seed": noise.seed,
    }
    engine = getattr(generator, "engine", None)
    if engine is not None:
        provenance["engine"] = engine
    footprint = getattr(generator, "footprint", None)
    if footprint is not None:
        read, output = plan.halo_samples(tuple(footprint))
        # a degenerate plan (or stub) may report zero output samples;
        # overhead is then undefined, not infinite
        provenance["halo_overhead"] = (
            read / output - 1.0 if output > 0 else 0.0
        )
        if obs.enabled():
            obs.add("executor.halo_read_samples", read)
            obs.add("executor.output_samples", output)
            obs.set_gauge("executor.halo_overhead",
                          provenance["halo_overhead"])
    stats_after = plan_cache.stats()
    local_delta = {
        "hits": stats_after.hits - stats_before.hits,
        "misses": stats_after.misses - stats_before.misses,
    }
    if resilient:
        # Degradation can mix backends in one run: the global cache
        # delta covers the serial/thread portion, the summed worker
        # deltas the process portion.
        provenance["plan_cache"] = {
            "hits": local_delta["hits"] + (cache_delta or {}).get("hits", 0),
            "misses": (local_delta["misses"]
                       + (cache_delta or {}).get("misses", 0)),
        }
        assert run is not None
        provenance["resilience"] = {
            "retries": run.retries,
            "respawns": run.respawns,
            "degraded_to": run.degraded_to,
            "tiles_skipped": len(run.skipped),
        }
    elif backend in ("serial", "thread"):
        provenance["plan_cache"] = local_delta
    elif cache_delta is not None:
        # Sum of the workers' own cache deltas: misses count each
        # worker's warmup, hits the cross-tile reuse inside workers.
        provenance["plan_cache"] = cache_delta
    provenance.update(agg)
    if obs.enabled() and run_span.duration_s > 0.0:
        obs.set_gauge(
            "executor.worker_utilization",
            busy_s / (pool_size * run_span.duration_s),
        )
    if store is not None:
        provenance["store"] = store.progress_summary()
        # Hand back the on-disk result as a read-only memmap; Surface
        # keeps it lazy, so the full field still never enters RAM.
        heights = store.heights("r")
    else:
        heights = out
    return Surface(
        heights=heights,
        grid=big_grid,
        origin=origin,
        provenance=provenance,
    )
