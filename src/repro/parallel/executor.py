"""Execution backends for tiled surface generation.

Maps a :class:`~repro.parallel.tiles.TilePlan` over a generator that
supports windowed generation (``ConvolutionGenerator`` or
``InhomogeneousGenerator``) and assembles the tiles into one height
array.  Three backends:

``serial``
    Plain loop; the reference.
``thread``
    ``ThreadPoolExecutor``.  NumPy's FFT and BLAS release the GIL for
    large arrays, so threads give genuine speedups with zero pickling
    cost and shared output memory.  The best default on one machine.
``process``
    ``ProcessPoolExecutor`` with persistent workers: the generator and
    noise spec are broadcast **once** per worker through the pool
    initializer (not pickled per tile), and each worker writes its
    tiles directly into a ``multiprocessing.shared_memory`` output
    buffer — zero-copy assembly, nothing but a slim provenance record
    crosses the result pipe.  Full CPU parallelism regardless of the
    GIL; worth it when per-tile Python overhead (weight maps, blend
    fields) rivals the FFT work, at the cost of one kernel-plan warmup
    per worker.

For a fixed tile plan, all three backends produce *bit-identical* output
because tile values are pure functions of ``(generator, noise seed, tile
coordinates)`` — the counter-based noise plane
(:class:`~repro.core.rng.BlockNoise`) does for this code what keyed RNGs
do for GPU/MPI stochastic codes.  *Different* tile plans agree to
floating-point rounding (~1e-15 relative): the FFT used inside the
windowed convolution rounds differently for different window shapes.

Run-level provenance aggregates what the windowed generators report per
tile: plan-cache hit/miss deltas (summed across process workers' own
caches), region/level active-set totals, and batched-FFT counters.

This module is the library's MPI substitute (DESIGN.md S10): the tile
decomposition, halo arithmetic, and determinism contract are exactly
what an mpi4py backend would need; only the transport differs.
"""

from __future__ import annotations

import concurrent.futures as cf
import os
import time
from multiprocessing import shared_memory
from typing import Any, Dict, Optional, Protocol, Tuple

import numpy as np

from .. import obs
from ..core.engine import plan_cache
from ..core.rng import BlockNoise
from ..core.surface import Surface
from .tiles import Tile, TilePlan

__all__ = ["WindowedGenerator", "generate_tiled", "default_workers"]

#: Per-tile generator-provenance keys worth aggregating at run level
#: (and the only ones process workers ship back to the parent).
_TILE_PROV_KEYS = (
    "regions",
    "regions_active",
    "regions_skipped",
    "levels_active",
    "levels_skipped",
    "batch_fft",
)


class WindowedGenerator(Protocol):
    """Anything that can generate arbitrary windows of an unbounded RRS."""

    grid: "object"

    def generate_window(
        self, noise: BlockNoise, x0: int, y0: int, nx: int, ny: int
    ): ...


def default_workers() -> int:
    """Default worker count: physical parallelism minus one, at least 1."""
    return max(1, (os.cpu_count() or 2) - 1)


def _tile_result(
    generator: WindowedGenerator, noise: BlockNoise, tile: Tile
) -> Tuple[np.ndarray, Optional[dict]]:
    """One tile's heights plus the generator's per-window provenance."""
    out = generator.generate_window(noise, tile.x0, tile.y0, tile.nx, tile.ny)
    # InhomogeneousGenerator returns Surface; ConvolutionGenerator ndarray.
    if isinstance(out, Surface):
        return out.heights, out.provenance
    return np.asarray(out), None


def _tile_heights(generator: WindowedGenerator, noise: BlockNoise, tile: Tile
                  ) -> np.ndarray:
    out, _prov = _tile_result(generator, noise, tile)
    return out


def _traced_tile(
    generator: WindowedGenerator,
    noise: BlockNoise,
    tile: Tile,
    submit_ns: Optional[int] = None,
) -> Tuple[np.ndarray, Optional[dict], float]:
    """One tile's result wrapped in an ``executor.tile`` span.

    Returns ``(heights, provenance, tile_seconds)``.  ``submit_ns``
    (thread backend) dates the pool submission so the span's start gap
    is recorded as queue wait.  All of this is a no-op when tracing is
    off — the null span allocates nothing and ``tile_seconds`` is 0.
    """
    if submit_ns is not None and obs.enabled():
        obs.observe("executor.queue_wait_seconds",
                    (time.perf_counter_ns() - submit_ns) / 1e9)
    with obs.trace("executor.tile",
                   {"x0": tile.x0, "y0": tile.y0,
                    "nx": tile.nx, "ny": tile.ny}
                   if obs.enabled() else None) as span:
        heights, prov = _tile_result(generator, noise, tile)
    if obs.enabled():
        obs.observe("executor.tile_seconds", span.duration_s)
        obs.add("executor.tiles")
    return heights, prov, span.duration_s


def _slim_provenance(prov: Optional[dict]) -> Optional[dict]:
    """The aggregatable subset of a tile's provenance."""
    if not prov:
        return None
    slim = {k: prov[k] for k in _TILE_PROV_KEYS if k in prov}
    return slim or None


def _merge_tile_provenance(agg: dict, prov: Optional[dict]) -> None:
    """Fold one tile's provenance into the run-level summary ``agg``."""
    if not prov:
        return
    for akey, pkey in (("regions", "regions_active"),
                       ("levels", "levels_active")):
        if pkey not in prov:
            continue
        active = int(prov[pkey])
        skipped = int(prov.get(pkey.replace("_active", "_skipped"), 0))
        row = agg.setdefault(akey, {
            "active_total": 0,
            "skipped_total": 0,
            "min_active": active,
            "max_active": active,
            "single_kernel_tiles": 0,
        })
        row["active_total"] += active
        row["skipped_total"] += skipped
        row["min_active"] = min(row["min_active"], active)
        row["max_active"] = max(row["max_active"], active)
        if active == 1 and skipped > 0:
            row["single_kernel_tiles"] += 1
    batch = prov.get("batch_fft")
    if batch:
        row = agg.setdefault("batch_fft", {})
        for key, val in batch.items():
            row[key] = row.get(key, 0) + int(val)


# ---------------------------------------------------------------------------
# Shared-memory process backend
# ---------------------------------------------------------------------------
#: Worker-side run state installed once by the pool initializer.
_POOL_STATE: dict = {}


def _attach_shared_memory(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without claiming ownership.

    The parent creates and unlinks the segment; workers must only map
    it.  ``track=False`` (Python >= 3.13) expresses that directly.  On
    older interpreters attaching re-registers the name with the shared
    resource tracker, which is harmless here: the tracker's cache is a
    set, so the workers' registrations collapse into the parent's and
    the parent's ``unlink`` balances them — no leak warning, and no
    explicit unregister (which would double-remove and make the
    parent's ``unlink`` trip the tracker).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13 signature
        return shared_memory.SharedMemory(name=name)


def _pool_init(
    generator: WindowedGenerator,
    noise: BlockNoise,
    shm_name: str,
    shape: Tuple[int, int],
    origin: Tuple[int, int],
    obs_enabled: bool = False,
) -> None:
    """Pool initializer: receive the run state once per worker.

    Everything tile-independent — the generator (with its kernels), the
    noise spec, and the mapped output buffer — lives in module state for
    the worker's lifetime, so per-tile tasks carry only a ``Tile``.
    When the parent is recording, each worker installs its own
    :class:`repro.obs.Recorder`; per-tile drains ride the result pipe
    next to the plan-cache deltas.
    """
    shm = _attach_shared_memory(shm_name)
    view = np.ndarray(shape, dtype=np.float64, buffer=shm.buf)
    if obs_enabled:
        obs.install(obs.Recorder())
    _POOL_STATE.update(
        generator=generator,
        noise=noise,
        shm=shm,  # keep the mapping alive for the worker's lifetime
        view=view,
        origin=origin,
    )


def _pool_tile(
    tile: Tile,
) -> Tuple[Optional[dict], Dict[str, int], Optional[Dict[str, Any]]]:
    """Worker task: write one tile straight into the shared output.

    Returns the tile's slim provenance, this tile's plan-cache delta
    (each worker process holds its own cache), and — when the run is
    being recorded — the worker recorder's drained span/metric payload.
    No height data crosses the result pipe.
    """
    state = _POOL_STATE
    before = plan_cache.stats()
    heights, prov, _dt = _traced_tile(state["generator"], state["noise"], tile)
    after = plan_cache.stats()
    ox, oy = state["origin"]
    state["view"][
        tile.x0 - ox : tile.x0 - ox + tile.nx,
        tile.y0 - oy : tile.y0 - oy + tile.ny,
    ] = heights
    delta = {
        "hits": after.hits - before.hits,
        "misses": after.misses - before.misses,
    }
    rec = obs.get_recorder()
    payload = rec.drain() if rec.enabled else None
    return _slim_provenance(prov), delta, payload


def generate_tiled(
    generator: WindowedGenerator,
    noise: BlockNoise,
    plan: TilePlan,
    backend: str = "serial",
    workers: Optional[int] = None,
) -> Surface:
    """Generate a large surface tile-by-tile.

    Parameters
    ----------
    generator:
        A windowed generator; its grid supplies the sample spacing.
    noise:
        The shared deterministic noise plane (seed fixes the surface).
    plan:
        Tile decomposition covering the desired output.
    backend:
        ``"serial"``, ``"thread"`` or ``"process"`` (see module
        docstring for the trade-offs).
    workers:
        Pool size for the parallel backends (default
        :func:`default_workers`).

    Returns
    -------
    The assembled :class:`~repro.core.surface.Surface`; bit-identical
    across backends for a fixed plan, and equal up to FFT rounding across
    different tile shapes, for a fixed ``(generator, noise)``.
    """
    grid = generator.grid  # type: ignore[attr-defined]
    out = np.empty((plan.total_nx, plan.total_ny), dtype=float)
    tiles = plan.tiles()
    stats_before = plan_cache.stats()
    agg: dict = {}
    cache_delta: Optional[Dict[str, int]] = None
    n = workers or default_workers()
    pool_size = 1 if backend == "serial" else n
    busy_s = 0.0  # summed per-tile wall time (worker-utilization input)

    def place(tile: Tile, values: np.ndarray) -> None:
        ix = tile.x0 - plan.origin_x
        iy = tile.y0 - plan.origin_y
        out[ix : ix + tile.nx, iy : iy + tile.ny] = values

    run_span = obs.trace("executor.run", {
        "backend": backend, "tiles": len(tiles), "workers": pool_size,
    } if obs.enabled() else None)
    with run_span:
        if backend == "serial":
            for t in tiles:
                heights, prov, dt = _traced_tile(generator, noise, t)
                busy_s += dt
                place(t, heights)
                _merge_tile_provenance(agg, _slim_provenance(prov))
        elif backend == "thread":
            with cf.ThreadPoolExecutor(max_workers=n) as pool:
                tracing = obs.enabled()
                futures = [
                    pool.submit(_traced_tile, generator, noise, t,
                                time.perf_counter_ns() if tracing else None)
                    for t in tiles
                ]
                for t, fut in zip(tiles, futures):
                    heights, prov, dt = fut.result()
                    busy_s += dt
                    place(t, heights)
                    _merge_tile_provenance(agg, _slim_provenance(prov))
        elif backend == "process":
            shm = shared_memory.SharedMemory(create=True, size=out.nbytes)
            try:
                view = np.ndarray(out.shape, dtype=np.float64, buffer=shm.buf)
                with cf.ProcessPoolExecutor(
                    max_workers=n,
                    initializer=_pool_init,
                    initargs=(generator, noise, shm.name, out.shape,
                              (plan.origin_x, plan.origin_y),
                              obs.enabled()),
                ) as pool:
                    cache_delta = {"hits": 0, "misses": 0}
                    recorder = obs.get_recorder()
                    for slim, delta, payload in pool.map(_pool_tile, tiles):
                        _merge_tile_provenance(agg, slim)
                        cache_delta["hits"] += delta["hits"]
                        cache_delta["misses"] += delta["misses"]
                        if payload is not None and recorder.enabled:
                            # tile order is fixed by the plan, so the
                            # merged totals are deterministic
                            stats = payload.get("span_stats", {})
                            tile_row = stats.get("executor.tile")
                            if tile_row:
                                busy_s += tile_row[1] / 1e9
                            recorder.merge(payload)
                out[:] = view
                del view  # release the buffer before closing the mapping
            finally:
                shm.close()
                shm.unlink()
        else:
            raise ValueError(
                f"unknown backend {backend!r}; expected serial|thread|process"
            )

    big_grid = grid.with_shape(plan.total_nx, plan.total_ny)
    origin = (plan.origin_x * grid.dx, plan.origin_y * grid.dy)
    provenance = {
        "method": "tiled",
        "backend": backend,
        "tiles": len(tiles),
        "noise_seed": noise.seed,
    }
    engine = getattr(generator, "engine", None)
    if engine is not None:
        provenance["engine"] = engine
    footprint = getattr(generator, "footprint", None)
    if footprint is not None:
        read, output = plan.halo_samples(tuple(footprint))
        # a degenerate plan (or stub) may report zero output samples;
        # overhead is then undefined, not infinite
        provenance["halo_overhead"] = (
            read / output - 1.0 if output > 0 else 0.0
        )
        if obs.enabled():
            obs.add("executor.halo_read_samples", read)
            obs.add("executor.output_samples", output)
            obs.set_gauge("executor.halo_overhead",
                          provenance["halo_overhead"])
    if backend in ("serial", "thread"):
        stats_after = plan_cache.stats()
        provenance["plan_cache"] = {
            "hits": stats_after.hits - stats_before.hits,
            "misses": stats_after.misses - stats_before.misses,
        }
    elif cache_delta is not None:
        # Sum of the workers' own cache deltas: misses count each
        # worker's warmup, hits the cross-tile reuse inside workers.
        provenance["plan_cache"] = cache_delta
    provenance.update(agg)
    if obs.enabled() and run_span.duration_s > 0.0:
        obs.set_gauge(
            "executor.worker_utilization",
            busy_s / (pool_size * run_span.duration_s),
        )
    return Surface(
        heights=out,
        grid=big_grid,
        origin=origin,
        provenance=provenance,
    )
