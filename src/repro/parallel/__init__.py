"""Parallel and out-of-core generation: tile decomposition, execution
backends, and streaming strips over the unbounded noise plane."""

from .executor import (
    FailureBudgetExceeded,
    PoolRespawnLimit,
    TileFailedError,
    WindowedGenerator,
    default_workers,
    generate_tiled,
)
from .streaming import StripStream, assemble_strips, stream_strips
from .tiles import Tile, TilePlan

__all__ = [
    "Tile",
    "TilePlan",
    "generate_tiled",
    "default_workers",
    "WindowedGenerator",
    "TileFailedError",
    "FailureBudgetExceeded",
    "PoolRespawnLimit",
    "StripStream",
    "stream_strips",
    "assemble_strips",
]
