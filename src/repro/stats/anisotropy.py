"""Anisotropy estimation: orientation and aspect ratio of a surface.

Pairs with :class:`repro.core.spectra_ext.RotatedSpectrum`: given a
realisation, recover the principal texture direction and the anisotropy
ratio from the second moments (inertia tensor) of the power spectrum,

.. math::

    M = \\begin{pmatrix}
        \\langle K_x^2\\rangle_W & \\langle K_x K_y\\rangle_W \\\\
        \\langle K_x K_y\\rangle_W & \\langle K_y^2\\rangle_W
        \\end{pmatrix},

whose eigenvectors give the spectral principal axes.  The *spatial*
long axis of the texture is perpendicular to the spectral major axis
(long correlation = narrow spectrum), which is what
:func:`estimate_anisotropy` reports.

The periodogram's heavy per-bin noise cancels in these integrated
moments, so a single realisation usually suffices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.grid import Grid2D
from .spectral import periodogram

__all__ = ["AnisotropyEstimate", "estimate_anisotropy", "spectral_moments"]


@dataclass(frozen=True)
class AnisotropyEstimate:
    """Principal texture direction and strength."""

    angle: float          # radians, spatial long axis, in [-pi/2, pi/2)
    ratio: float          # long/short correlation ratio (>= 1)
    coherence: float      # 0 = isotropic, -> 1 = perfectly oriented


def spectral_moments(estimate: np.ndarray, grid: Grid2D) -> np.ndarray:
    """Spectral inertia tensor ``M`` of a 2D spectrum estimate."""
    if estimate.shape != grid.shape:
        raise ValueError("estimate shape mismatch")
    kx, ky = grid.k_meshgrid(signed=True)
    w = np.asarray(estimate, dtype=float)
    total = float(w.sum())
    if total <= 0:
        raise ValueError("spectrum estimate carries no energy")
    mxx = float(np.sum(w * kx * kx)) / total
    myy = float(np.sum(w * ky * ky)) / total
    mxy = float(np.sum(w * kx * ky)) / total
    return np.array([[mxx, mxy], [mxy, myy]])


def estimate_anisotropy(
    heights: np.ndarray, grid: Grid2D
) -> AnisotropyEstimate:
    """Texture orientation and anisotropy ratio of a height field.

    Returns the *spatial* long-axis angle (the direction along which the
    surface is most correlated), the ratio of principal correlation
    scales, and a 0-1 coherence score
    ``(lam_max - lam_min)/(lam_max + lam_min)``.
    """
    est = periodogram(np.asarray(heights, dtype=float), grid)
    m = spectral_moments(est, grid)
    eigvals, eigvecs = np.linalg.eigh(m)  # ascending
    lam_min, lam_max = float(eigvals[0]), float(eigvals[1])
    if lam_max <= 0:
        raise ValueError("degenerate spectral moments")
    # spectral MINOR axis (small <K^2>) is the spatial LONG axis
    v = eigvecs[:, 0]
    angle = float(np.arctan2(v[1], v[0]))
    # fold into [-pi/2, pi/2)
    if angle >= np.pi / 2:
        angle -= np.pi
    elif angle < -np.pi / 2:
        angle += np.pi
    ratio = float(np.sqrt(lam_max / max(lam_min, 1e-300)))
    coherence = (lam_max - lam_min) / (lam_max + lam_min)
    return AnisotropyEstimate(angle=angle, ratio=ratio,
                              coherence=float(coherence))
