"""Slope statistics from the spectrum — exact discrete identities.

The RMS slope governs both rendering (hillshade) and physics (shadowing
probability, Kirchhoff validity), and it follows from the spectrum:

.. math:: \\mathrm{Var}(\\partial f/\\partial x)
          = \\iint K_x^2\\, W(\\mathbf K)\\, d\\mathbf K .

Two sharpenings matter in practice and are implemented here:

* For the *discrete* surfaces this library generates, the slope variance
  of the **forward difference** ``(f[n+1]-f[n])/dx`` is exactly

  .. math:: \\sum_m w_m \\cdot \\frac{2 - 2\\cos(K_{x,m}\\, dx)}{dx^2},

  a testable identity (no approximation, no tail issues) — see
  :func:`slope_variance_discrete`.
* The *continuum* slope variance is family-dependent: finite with a
  closed form for the Gaussian family (``2 h^2 / cl_x^2`` per axis),
  finite for Power-Law orders ``N > 2``, and **divergent** for the
  Exponential family and low-order Power-Law — those surfaces get
  rougher at every scale, and their measured slope grows with
  resolution.  :func:`slope_variance_continuum` returns the closed
  forms where they exist and raises informatively where they do not
  (:func:`slope_variance_spectral` gives the band-limited value any
  actual grid realises).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.grid import Grid2D
from ..core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
    Spectrum,
)
from ..core.weights import weight_array

__all__ = [
    "slope_variance_discrete",
    "slope_variance_spectral",
    "slope_variance_continuum",
    "measured_forward_slope_variance",
]


def slope_variance_discrete(
    spectrum: Spectrum, grid: Grid2D
) -> Tuple[float, float]:
    """Exact forward-difference slope variances ``(var_x, var_y)``.

    The expectation of ``Var((f[n+1,m]-f[n,m]) / dx)`` over realisations
    generated on ``grid`` — exact because the generated field's discrete
    spectrum *is* the weighting array.
    """
    w = weight_array(spectrum, grid)
    tx = (2.0 - 2.0 * np.cos(grid.kx_folded * grid.dx)) / grid.dx**2
    ty = (2.0 - 2.0 * np.cos(grid.ky_folded * grid.dy)) / grid.dy**2
    var_x = float(np.sum(w * tx[:, None]))
    var_y = float(np.sum(w * ty[None, :]))
    return var_x, var_y


def slope_variance_spectral(
    spectrum: Spectrum, grid: Grid2D
) -> Tuple[float, float]:
    """Band-limited continuum slope variances ``(var_x, var_y)``.

    ``sum w * Kx^2`` — the continuum derivative's variance as realised
    within the grid's Nyquist band.  For heavy-tailed spectra this grows
    with resolution (by design: the continuum value diverges).
    """
    w = weight_array(spectrum, grid)
    var_x = float(np.sum(w * grid.kx_folded[:, None] ** 2))
    var_y = float(np.sum(w * grid.ky_folded[None, :] ** 2))
    return var_x, var_y


def slope_variance_continuum(spectrum: Spectrum) -> Tuple[float, float]:
    """Closed-form continuum slope variances, where they exist.

    Gaussian: ``(2 h^2/clx^2, 2 h^2/cly^2)`` (from -rho'' at 0).
    Power-Law order N > 2: ``(2 h^2/((N-2) clx^2), ...)`` — the Matérn
    second derivative at the origin (smoothness ``nu = N-1``; finite iff
    ``nu > 1``; verified against the fine-grid spectral sum in the
    tests).
    Exponential and Power-Law N <= 2: divergent; raises ValueError with
    guidance to use :func:`slope_variance_spectral`.
    """
    if isinstance(spectrum, GaussianSpectrum):
        v = 2.0 * spectrum.variance
        return (v / spectrum.clx**2, v / spectrum.cly**2)
    if isinstance(spectrum, PowerLawSpectrum):
        n = spectrum.order
        if n <= 2.0:
            raise ValueError(
                f"Power-Law slope variance diverges for N <= 2 (got N={n}); "
                "use slope_variance_spectral for the band-limited value"
            )
        v = 2.0 * spectrum.variance / (n - 2.0)
        return (v / spectrum.clx**2, v / spectrum.cly**2)
    if isinstance(spectrum, ExponentialSpectrum):
        raise ValueError(
            "the exponential family has divergent continuum slope variance "
            "(K^-3 spectral tail); use slope_variance_spectral for the "
            "band-limited value on a specific grid"
        )
    raise ValueError(
        f"no closed form registered for {type(spectrum).__name__}; "
        "use slope_variance_spectral"
    )


def measured_forward_slope_variance(
    heights: np.ndarray, dx: float, dy: float
) -> Tuple[float, float]:
    """Sample forward-difference slope variances of a (periodic) field.

    Uses the wrap-around difference so the estimator matches the
    circular generation convention bin for bin.
    """
    h = np.asarray(heights, dtype=float)
    if h.ndim != 2:
        raise ValueError("heights must be 2D")
    gx = (np.roll(h, -1, axis=0) - h) / dx
    gy = (np.roll(h, -1, axis=1) - h) / dy
    return float(gx.var() + gx.mean() ** 2), float(gy.var() + gy.mean() ** 2)
