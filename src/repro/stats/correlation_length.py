"""Correlation-length estimation.

The paper's families are parameterised by correlation lengths ``clx``,
``cly`` with *different conventions per family*:

* Gaussian (eqn 6):      ``rho(cl, 0) = h^2 / e``        (1/e at x = cl)
* Exponential (eqn 10):  ``rho(cl, 0) = h^2 / e``        (1/e at x = cl)
* Power-Law (eqn 7):     no simple 1/e identity — the Matérn ACF's 1/e
  point depends on the order N.

The generic estimator :func:`one_over_e_length` therefore recovers the
*nominal* ``cl`` exactly (in expectation) for the Gaussian and
Exponential families, and a family-specific effective length for the
Power-Law; :func:`expected_one_over_e` evaluates where a given
:class:`~repro.core.spectra.Spectrum`'s true ACF crosses ``1/e``, so
tests and benches can compare like with like.

:func:`fit_correlation_length` instead least-squares fits the sampled
ACF profile against the family's closed form — the sharper tool when the
family is known (used in the figure benches' per-region QA).
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np
from scipy import optimize

from ..core.spectra import Spectrum
from .acf import acf_profile_x, acf_profile_y

__all__ = [
    "one_over_e_length",
    "one_over_e_from_profile",
    "expected_one_over_e",
    "fit_correlation_length",
    "estimate_clx",
    "estimate_cly",
]


def one_over_e_from_profile(lags: np.ndarray, rho: np.ndarray) -> float:
    """First ``1/e`` crossing of a normalised ACF profile.

    ``rho`` must start at its zero-lag value; the crossing is located by
    linear interpolation between the straddling samples.  Raises if the
    profile never drops below ``1/e`` (field too correlated for its
    extent).
    """
    lags = np.asarray(lags, dtype=float)
    rho = np.asarray(rho, dtype=float)
    if lags.shape != rho.shape or lags.ndim != 1 or lags.size < 2:
        raise ValueError("lags and rho must be equal-length 1D arrays")
    if rho[0] <= 0:
        raise ValueError("zero-lag ACF must be positive")
    target = rho[0] / np.e
    below = np.nonzero(rho < target)[0]
    if below.size == 0:
        raise ValueError(
            "ACF never crosses 1/e within the profile; increase the field "
            "extent relative to the correlation length"
        )
    i = below[0]
    if i == 0:
        return float(lags[0])
    # linear interpolation between (i-1, i)
    r0, r1 = rho[i - 1], rho[i]
    t = (r0 - target) / (r0 - r1)
    return float(lags[i - 1] + t * (lags[i] - lags[i - 1]))


def one_over_e_length(
    heights: np.ndarray, d: float, axis: str = "x"
) -> float:
    """1/e correlation length of a field along an axis (circular ACF)."""
    if axis == "x":
        prof = acf_profile_x(heights)
    elif axis == "y":
        prof = acf_profile_y(heights)
    else:
        raise ValueError("axis must be 'x' or 'y'")
    lags = np.arange(prof.size) * d
    return one_over_e_from_profile(lags, prof)


def estimate_clx(heights: np.ndarray, dx: float) -> float:
    """Convenience: 1/e correlation length along x."""
    return one_over_e_length(heights, dx, axis="x")


def estimate_cly(heights: np.ndarray, dy: float) -> float:
    """Convenience: 1/e correlation length along y."""
    return one_over_e_length(heights, dy, axis="y")


def expected_one_over_e(spectrum: Spectrum, axis: str = "x",
                        r_max_factor: float = 20.0) -> float:
    """Lag where the spectrum's *true* ACF equals ``h^2/e`` along an axis.

    Gaussian and Exponential families return exactly ``clx``/``cly``;
    Power-Law returns the order-dependent effective length (solved
    numerically on the exact Matérn ACF).
    """
    cl = spectrum.clx if axis == "x" else spectrum.cly
    target = spectrum.variance / np.e

    def f(r: float) -> float:
        if axis == "x":
            return float(spectrum.autocorrelation(r, 0.0)) - target
        return float(spectrum.autocorrelation(0.0, r)) - target

    lo, hi = 0.0, cl
    while f(hi) > 0.0:
        hi *= 2.0
        if hi > r_max_factor * cl:
            raise ValueError("ACF does not reach 1/e within search range")
    return float(optimize.brentq(f, lo, hi, xtol=1e-10 * cl))


def fit_correlation_length(
    heights: np.ndarray,
    d: float,
    spectrum_template: Spectrum,
    axis: str = "x",
    max_lag_fraction: float = 0.25,
) -> Tuple[float, float]:
    """Least-squares fit of ``(h, cl)`` against the family's ACF shape.

    Fits the sampled one-sided axis ACF profile to
    ``template.with_params(h=h, cl<axis>=cl).autocorrelation`` over lags
    up to ``max_lag_fraction`` of the field.  Returns ``(h_fit, cl_fit)``.
    """
    if axis == "x":
        prof = acf_profile_x(heights)
    else:
        prof = acf_profile_y(heights)
    n_fit = max(4, int(prof.size * max_lag_fraction * 2))
    n_fit = min(n_fit, prof.size)
    lags = np.arange(n_fit) * d
    data = prof[:n_fit]

    def model(lag: np.ndarray, h: float, cl: float) -> np.ndarray:
        params = {"h": abs(h), "clx" if axis == "x" else "cly": abs(cl)}
        s = spectrum_template.with_params(**params)
        if axis == "x":
            return np.asarray(s.autocorrelation(lag, 0.0), dtype=float)
        return np.asarray(s.autocorrelation(0.0, lag), dtype=float)

    h0 = float(np.sqrt(max(data[0], 1e-30)))
    cl0 = spectrum_template.clx if axis == "x" else spectrum_template.cly
    popt, _ = optimize.curve_fit(
        model, lags, data, p0=(h0, cl0), maxfev=20000
    )
    return (abs(float(popt[0])), abs(float(popt[1])))
