"""Spatially-resolved (local) statistics for inhomogeneous surfaces.

Homogeneous estimators average away exactly the structure the paper's
algorithm creates.  To verify Figures 1-4 we need *maps*: the local
height std and local correlation length, estimated in sliding windows,
plus region-masked statistics ("inside the pond, ĥ should be 0.2; in the
field, 1.0").

Windowed estimates trade bias for locality: a window of side ``w``
samples only resolves parameter changes on scales > ``w`` and clips the
ACF at lag ``w``.  The figure benches use windows of 2-4 correlation
lengths — enough to estimate ``h`` to ~10% while staying inside one
region of the paper's layouts.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..core.surface import Surface
from ..fields.regions import Region
from .estimators import height_moments

__all__ = [
    "local_std_map",
    "local_mean_map",
    "region_statistics",
    "region_mask",
    "interior_region_mask",
]


def _box_sum(a: np.ndarray, w: int) -> np.ndarray:
    """Sliding ``w x w`` box sums via cumulative sums (valid positions)."""
    c = np.cumsum(np.cumsum(a, axis=0), axis=1)
    c = np.pad(c, ((1, 0), (1, 0)))
    return c[w:, w:] - c[:-w, w:] - c[w:, :-w] + c[:-w, :-w]


def local_mean_map(heights: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window mean (valid positions: shape ``N - w + 1`` per axis)."""
    h = np.asarray(heights, dtype=float)
    if window < 1 or window > min(h.shape):
        raise ValueError(f"window {window} out of range for field {h.shape}")
    return _box_sum(h, window) / (window * window)


def local_std_map(heights: np.ndarray, window: int) -> np.ndarray:
    """Sliding-window height std map (the local ``h`` estimate).

    Uses the one-pass sums-of-squares identity on cumulative sums; cost
    is O(N) independent of window size (guides: vectorise, no loops).
    """
    h = np.asarray(heights, dtype=float)
    if window < 2 or window > min(h.shape):
        raise ValueError(f"window {window} out of range for field {h.shape}")
    n = window * window
    s1 = _box_sum(h, window)
    s2 = _box_sum(h * h, window)
    var = np.maximum(s2 / n - (s1 / n) ** 2, 0.0)
    return np.sqrt(var)


def region_mask(surface: Surface, region: Region) -> np.ndarray:
    """Boolean membership mask of a region on a surface's sample points."""
    gx, gy = surface.grid.meshgrid()
    return region.contains(gx + surface.origin[0], gy + surface.origin[1])


def interior_region_mask(
    surface: Surface, region: Region, margin: float
) -> np.ndarray:
    """Mask of points at least ``margin`` *inside* the region boundary.

    Used to exclude transition bands when verifying per-region targets
    (the band is deliberately mixed; eqn 37's middle case).
    """
    gx, gy = surface.grid.meshgrid()
    sd = region.signed_distance(gx + surface.origin[0], gy + surface.origin[1])
    return sd <= -abs(margin)


def region_statistics(
    surface: Surface, mask: np.ndarray
) -> Dict[str, float]:
    """Moment summary of the heights under a boolean mask."""
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != surface.shape:
        raise ValueError("mask shape does not match surface")
    vals = surface.heights[mask]
    if vals.size == 0:
        raise ValueError("mask selects no samples")
    return height_moments(vals).as_dict()
