"""Extreme-value and exceedance statistics for rough surfaces.

Terrain peaks dominate link obstruction (the Deygout edges live on
them), so the propagation substrate needs more than second moments:

* :func:`exceedance_curve` — empirical ``P(f > z)`` over thresholds;
* :func:`expected_maximum_gaussian` — the classical asymptotic for the
  maximum of ``n_eff`` correlated Gaussian samples,
  ``E[max] ~ h * sqrt(2 ln n_eff)``, with ``n_eff`` from the
  correlation-area argument;
* :func:`effective_sample_count` — independent-patch count
  ``(Lx Ly) / (pi clx cly)`` used in the above and in tolerance bands;
* :func:`peak_count` — local maxima above a threshold (vectorised
  4-neighbour test), the density of candidate diffraction edges.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "exceedance_curve",
    "effective_sample_count",
    "expected_maximum_gaussian",
    "peak_count",
]


def exceedance_curve(
    heights: np.ndarray, thresholds: Optional[np.ndarray] = None,
    n_points: int = 64,
) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical exceedance probability ``P(height > z)``.

    Returns ``(thresholds, probability)``; thresholds default to an even
    ladder spanning the sample range.
    """
    h = np.asarray(heights, dtype=float).ravel()
    if h.size == 0:
        raise ValueError("empty height sample")
    if thresholds is None:
        thresholds = np.linspace(h.min(), h.max(), n_points)
    else:
        thresholds = np.asarray(thresholds, dtype=float)
    sorted_h = np.sort(h)
    # P(f > z) via searchsorted on the sorted sample
    idx = np.searchsorted(sorted_h, thresholds, side="right")
    prob = 1.0 - idx / h.size
    return thresholds, prob


def effective_sample_count(
    lx: float, ly: float, clx: float, cly: float
) -> float:
    """Independent-patch count of a correlated field.

    The standard correlation-area argument: a field of extent
    ``Lx x Ly`` with correlation lengths ``clx, cly`` carries roughly
    ``Lx*Ly / (pi*clx*cly)`` independent degrees of freedom.  Used for
    tolerance bands and extreme-value estimates; it is an order-of-
    magnitude tool, not an exact count.
    """
    if min(lx, ly, clx, cly) <= 0:
        raise ValueError("all lengths must be positive")
    return float(lx * ly / (np.pi * clx * cly))


def expected_maximum_gaussian(h: float, n_effective: float) -> float:
    """Asymptotic expected maximum of ``n_eff`` standard-ish samples.

    ``E[max] ~ h * (sqrt(2 ln n) - (ln ln n + ln 4 pi)/(2 sqrt(2 ln n)))``
    (the Gumbel-limit mean for Gaussian maxima).  Requires
    ``n_effective > e`` for the asymptotic to be meaningful.
    """
    if h < 0:
        raise ValueError("h must be >= 0")
    if n_effective <= np.e:
        raise ValueError("need n_effective > e for the asymptotic")
    ln_n = np.log(n_effective)
    a = np.sqrt(2.0 * ln_n)
    return float(h * (a - (np.log(ln_n) + np.log(4.0 * np.pi)) / (2.0 * a)))


def peak_count(heights: np.ndarray, threshold: float) -> int:
    """Number of strict local maxima above ``threshold``.

    4-neighbour definition on the interior samples (boundary samples are
    never counted as peaks).
    """
    h = np.asarray(heights, dtype=float)
    if h.ndim != 2 or min(h.shape) < 3:
        raise ValueError("need a 2D field of at least 3x3 samples")
    c = h[1:-1, 1:-1]
    is_peak = (
        (c > h[:-2, 1:-1]) & (c > h[2:, 1:-1])
        & (c > h[1:-1, :-2]) & (c > h[1:-1, 2:])
        & (c > threshold)
    )
    return int(np.count_nonzero(is_peak))
