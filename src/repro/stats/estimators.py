"""Scalar statistical estimators for rough-surface height fields.

These are the estimators used to *verify* generated surfaces against
their target parameters: the paper parameterises every RRS by the height
standard deviation ``h`` and correlation lengths (Section 2.1), so the
reproduction criterion for each figure is that measured statistics match
the targets region by region (DESIGN.md §3).

All functions accept plain 2D arrays; the :class:`repro.core.surface.Surface`
convenience methods delegate here conceptually (they are kept separately
so the container stays dependency-light).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "height_moments",
    "MomentSummary",
    "rms_height",
    "rms_slope",
    "normality_diagnostics",
    "ensemble_std_tolerance",
]


@dataclass(frozen=True)
class MomentSummary:
    """First four standardised moments of a height sample."""

    mean: float
    std: float
    skewness: float
    kurtosis_excess: float
    n: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "mean": self.mean,
            "std": self.std,
            "skewness": self.skewness,
            "kurtosis_excess": self.kurtosis_excess,
            "n": float(self.n),
        }


def height_moments(heights: np.ndarray, ddof: int = 0) -> MomentSummary:
    """Mean, std, skewness and excess kurtosis of a height field."""
    h = np.asarray(heights, dtype=float).ravel()
    if h.size == 0:
        raise ValueError("empty height sample")
    mean = float(h.mean())
    centred = h - mean
    var = float(np.mean(centred**2))
    if ddof:
        var *= h.size / max(h.size - ddof, 1)
    std = float(np.sqrt(var))
    if std == 0.0:
        return MomentSummary(mean, 0.0, 0.0, 0.0, h.size)
    m3 = float(np.mean(centred**3))
    m4 = float(np.mean(centred**4))
    s0 = float(np.sqrt(np.mean(centred**2)))
    return MomentSummary(
        mean=mean,
        std=std,
        skewness=m3 / s0**3,
        kurtosis_excess=m4 / s0**4 - 3.0,
        n=h.size,
    )


def rms_height(heights: np.ndarray) -> float:
    """RMS height about the sample mean — the estimator of ``h`` (eqn 1)."""
    h = np.asarray(heights, dtype=float)
    return float(np.sqrt(np.mean((h - h.mean()) ** 2)))


def rms_slope(heights: np.ndarray, dx: float, dy: float) -> Tuple[float, float]:
    """RMS slopes ``(s_x, s_y)`` via centred differences."""
    if dx <= 0 or dy <= 0:
        raise ValueError("sample spacings must be positive")
    gx, gy = np.gradient(np.asarray(heights, dtype=float), dx, dy)
    return (float(np.sqrt(np.mean(gx * gx))), float(np.sqrt(np.mean(gy * gy))))


def normality_diagnostics(heights: np.ndarray) -> Dict[str, float]:
    """Moment-based Gaussianity diagnostics (Jarque-Bera style).

    Returns the skewness/kurtosis z-scores computed with the *effective*
    sample size unavailable (heights are spatially correlated), so the
    z-scores are only indicative; the tests use generous thresholds and
    multiple seeds.
    """
    m = height_moments(heights)
    n = m.n
    z_skew = m.skewness / np.sqrt(6.0 / n)
    z_kurt = m.kurtosis_excess / np.sqrt(24.0 / n)
    jb = (n / 6.0) * (m.skewness**2 + 0.25 * m.kurtosis_excess**2)
    return {
        "skewness": m.skewness,
        "kurtosis_excess": m.kurtosis_excess,
        "z_skewness": float(z_skew),
        "z_kurtosis": float(z_kurt),
        "jarque_bera": float(jb),
    }


def ensemble_std_tolerance(
    h: float, n_effective: float, n_sigma: float = 4.0
) -> float:
    """Sampling tolerance for the measured std of a correlated field.

    For a Gaussian sample of ``n_eff`` effectively independent values the
    std estimator has relative standard error ``1/sqrt(2 n_eff)``;
    surfaces sampled at spacing ``d`` with correlation length ``cl`` have
    roughly ``(L/cl)^2`` independent patches.  Used by the figure benches
    to set pass/fail bands (EXPERIMENTS.md).
    """
    if n_effective <= 1:
        raise ValueError("need more than one effective sample")
    return float(n_sigma * h / np.sqrt(2.0 * n_effective))
