"""Model fitting and family classification for sampled surfaces.

Inverse problems the verification pipeline needs:

* :func:`fit_family` — given a height field and a candidate family,
  least-squares fit ``(h, cl[, N])`` against the sampled axis ACF;
* :func:`classify_family` — try all three of the paper's families and
  pick the best-fitting one (used to confirm that each quadrant of
  Figure 2 realises its *family*, not just its h and cl);
* :func:`estimate_power_law_order` — recover the Power-Law order ``N``
  from a realisation (the parameter that interpolates between
  exponential-like and Gaussian-like textures).

All fits operate on the normalised one-sided axis ACF over a few
correlation lengths — the regime where the family signatures (parabolic
vs conical peak, algebraic vs exponential shoulder) live.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np
from scipy import optimize

from ..core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
    Spectrum,
)
from .acf import acf2d_unbiased

__all__ = [
    "FamilyFit",
    "fit_family",
    "classify_family",
    "estimate_power_law_order",
]


@dataclass(frozen=True)
class FamilyFit:
    """Outcome of fitting one spectral family to a sampled ACF."""

    kind: str
    h: float
    cl: float
    order: Optional[float]
    rss: float  # residual sum of squares on the normalised ACF

    def build(self) -> Spectrum:
        """Instantiate the fitted spectrum."""
        if self.kind == "gaussian":
            return GaussianSpectrum(h=self.h, clx=self.cl, cly=self.cl)
        if self.kind == "exponential":
            return ExponentialSpectrum(h=self.h, clx=self.cl, cly=self.cl)
        if self.kind == "power_law":
            return PowerLawSpectrum(
                h=self.h, clx=self.cl, cly=self.cl, order=self.order or 2.0
            )
        raise ValueError(f"unknown kind {self.kind!r}")


def _axis_acf(heights: np.ndarray, dx: float, max_lag: int
              ) -> Tuple[np.ndarray, np.ndarray]:
    acf = acf2d_unbiased(heights, max_lag=(max_lag, 1))
    lags = np.arange(acf.shape[0]) * dx
    return lags, acf[:, 0]


def _model_acf(kind: str, lags: np.ndarray, h: float, cl: float,
               order: Optional[float]) -> np.ndarray:
    if kind == "gaussian":
        s = GaussianSpectrum(h=abs(h), clx=abs(cl), cly=abs(cl))
    elif kind == "exponential":
        s = ExponentialSpectrum(h=abs(h), clx=abs(cl), cly=abs(cl))
    else:
        s = PowerLawSpectrum(
            h=abs(h), clx=abs(cl), cly=abs(cl),
            order=max(order if order is not None else 2.0, 1.01),
        )
    return np.asarray(s.autocorrelation(lags, 0.0), dtype=float)


def fit_family(
    heights: np.ndarray,
    dx: float,
    kind: str,
    cl_guess: float,
    max_lag: Optional[int] = None,
    fit_order: bool = True,
    fixed_order: float = 2.0,
) -> FamilyFit:
    """Least-squares fit of one family to the sampled x-axis ACF.

    Parameters
    ----------
    heights:
        2D height field (assumed statistically homogeneous).
    dx:
        Sample spacing along axis 0.
    kind:
        ``"gaussian"``, ``"exponential"`` or ``"power_law"``.
    cl_guess:
        Starting correlation length (sets the fitted lag range to
        ~4 cl as well).
    fit_order:
        For ``power_law``: also fit N; otherwise N = ``fixed_order``.
    fixed_order:
        The Power-Law order used when ``fit_order`` is false.
    """
    if kind not in ("gaussian", "exponential", "power_law"):
        raise ValueError(f"unknown family {kind!r}")
    if cl_guess <= 0:
        raise ValueError("cl_guess must be positive")
    nx = heights.shape[0]
    if max_lag is None:
        max_lag = int(min(nx // 3, max(8, 4.0 * cl_guess / dx)))
    lags, data = _axis_acf(np.asarray(heights, dtype=float), dx, max_lag)

    h0 = float(np.sqrt(max(data[0], 1e-30)))
    if kind == "power_law" and fit_order:
        def model(lag, h, cl, order):
            return _model_acf(kind, lag, h, cl, order)
        p0 = (h0, cl_guess, 2.0)
        bounds = ([0.0, 1e-6, 1.01], [np.inf, np.inf, 40.0])
    else:
        def model(lag, h, cl):
            return _model_acf(kind, lag, h, cl, fixed_order)
        p0 = (h0, cl_guess)
        bounds = ([0.0, 1e-6], [np.inf, np.inf])

    popt, _ = optimize.curve_fit(
        model, lags, data, p0=p0, bounds=bounds, maxfev=20000
    )
    pred = model(lags, *popt)
    rss = float(np.sum((pred - data) ** 2) / max(data[0], 1e-30) ** 2)
    if kind == "power_law":
        order = float(popt[2]) if fit_order else float(fixed_order)
    else:
        order = None
    return FamilyFit(kind=kind, h=float(popt[0]), cl=float(popt[1]),
                     order=order, rss=rss)


def classify_family(
    heights: np.ndarray,
    dx: float,
    cl_guess: float,
    candidates: Sequence[str] = ("gaussian", "exponential", "power_law"),
    power_law_orders: Sequence[float] = (2.0, 3.0),
) -> Tuple[FamilyFit, Dict[str, FamilyFit]]:
    """Fit every candidate family and return the best plus all fits.

    The winner is the family with the smallest normalised residual.

    The Power-Law candidate is fitted at *fixed* orders
    (``power_law_orders``; the paper's figures use N = 2 and 3), one fit
    per order, keyed ``"power_law_N"``.  A free-order Power-Law fit
    would be a superset of the other two families (N -> infinity is
    Gaussian-like, N -> 3/2 exponential-like) and would always win;
    fixing the order keeps the candidates genuinely distinct.  Use
    :func:`estimate_power_law_order` when the order itself is the
    quantity of interest.
    """
    fits: Dict[str, FamilyFit] = {}
    for kind in candidates:
        try:
            if kind == "power_law":
                for order in power_law_orders:
                    fit = fit_family(heights, dx, kind, cl_guess,
                                     fit_order=False, fixed_order=order)
                    fits[f"power_law_{order:g}"] = fit
            else:
                fits[kind] = fit_family(heights, dx, kind, cl_guess)
        except RuntimeError:  # curve_fit non-convergence
            continue
    if not fits:
        raise RuntimeError("no candidate family converged")
    best = min(fits.values(), key=lambda f: f.rss)
    return best, fits


def estimate_power_law_order(
    heights: np.ndarray, dx: float, cl_guess: float
) -> float:
    """Fitted Power-Law order N of a realisation."""
    fit = fit_family(heights, dx, "power_law", cl_guess, fit_order=True)
    assert fit.order is not None
    return fit.order
