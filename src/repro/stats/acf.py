"""Autocorrelation estimation for sampled surfaces.

Estimates the 2D autocorrelation function :math:`\\rho(\\mathbf r)` of
eqn (4) from one realisation, via the Wiener-Khinchin FFT route:

.. math:: \\hat\\rho = \\mathrm{IDFT}\\big(|\\mathrm{DFT}(f - \\bar f)|^2\\big)/N

(circular/biased estimator; appropriate here because the generators are
circularly stationary on the grid by construction).  The *unbiased*
aperiodic variant (zero-padded, normalised by overlap counts) is also
provided for windows cut from larger surfaces, where circular wrap-around
would alias the estimate.

These estimators let the tests and benches confirm that generated
surfaces realise the target correlation *shape* — Gaussian vs exponential
vs power-law — and the target correlation length, region by region.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "acf2d",
    "acf2d_unbiased",
    "acf_profile_x",
    "acf_profile_y",
    "radial_acf",
]


def acf2d(heights: np.ndarray, demean: bool = True) -> np.ndarray:
    """Biased circular ACF estimate in wrap (FFT) lag order.

    ``acf[0, 0]`` is the sample variance; lags follow the same wrap
    convention as :attr:`repro.core.grid.Grid2D.x_centered`.
    """
    f = np.asarray(heights, dtype=float)
    if f.ndim != 2:
        raise ValueError("heights must be 2D")
    if demean:
        f = f - f.mean()
    spec = np.fft.fft2(f)
    acf = np.fft.ifft2(spec * np.conj(spec)).real / f.size
    return np.ascontiguousarray(acf)


def acf2d_unbiased(heights: np.ndarray, demean: bool = True,
                   max_lag: Optional[Tuple[int, int]] = None) -> np.ndarray:
    """Unbiased aperiodic ACF estimate.

    Zero-pads to avoid circular wrap and divides each lag by its overlap
    count.  Returns lags ``[0..max_lag_x] x [0..max_lag_y]`` (one-sided;
    the ACF of a real field is even).  Variance grows at large lags where
    few pairs overlap — restrict ``max_lag`` accordingly (default: a
    quarter of the field in each axis).
    """
    f = np.asarray(heights, dtype=float)
    if f.ndim != 2:
        raise ValueError("heights must be 2D")
    nx, ny = f.shape
    if demean:
        f = f - f.mean()
    if max_lag is None:
        max_lag = (nx // 4, ny // 4)
    lx, ly = max_lag
    if lx >= nx or ly >= ny:
        raise ValueError("max_lag must be smaller than the field")
    px, py = 2 * nx, 2 * ny
    spec = np.fft.rfft2(f, s=(px, py))
    raw = np.fft.irfft2(spec * np.conj(spec), s=(px, py))
    counts_x = nx - np.arange(lx + 1)
    counts_y = ny - np.arange(ly + 1)
    counts = counts_x[:, None] * counts_y[None, :]
    return np.ascontiguousarray(raw[: lx + 1, : ly + 1] / counts)


def acf_profile_x(heights: np.ndarray, demean: bool = True) -> np.ndarray:
    """One-sided ACF along the x axis, lags ``0..nx//2`` (circular)."""
    acf = acf2d(heights, demean=demean)
    nx = acf.shape[0]
    return acf[: nx // 2 + 1, 0].copy()


def acf_profile_y(heights: np.ndarray, demean: bool = True) -> np.ndarray:
    """One-sided ACF along the y axis, lags ``0..ny//2`` (circular)."""
    acf = acf2d(heights, demean=demean)
    ny = acf.shape[1]
    return acf[0, : ny // 2 + 1].copy()


def radial_acf(
    heights: np.ndarray, dx: float, dy: float, n_bins: int = 64,
    r_max: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Isotropically averaged ACF profile ``(r_centres, rho(r))``.

    Bins the full 2D circular ACF estimate by lag radius.  Only
    meaningful for isotropic surfaces (``clx == cly``); anisotropic
    surfaces should use the axis profiles.
    """
    acf = acf2d(heights)
    nx, ny = acf.shape
    ix = np.fft.fftfreq(nx, d=1.0 / nx)  # signed integer lags
    iy = np.fft.fftfreq(ny, d=1.0 / ny)
    r = np.hypot(ix[:, None] * dx, iy[None, :] * dy)
    if r_max is None:
        r_max = min(nx * dx, ny * dy) / 4.0
    edges = np.linspace(0.0, r_max, n_bins + 1)
    which = np.digitize(r.ravel(), edges) - 1
    ok = (which >= 0) & (which < n_bins)
    sums = np.bincount(which[ok], weights=acf.ravel()[ok], minlength=n_bins)
    counts = np.bincount(which[ok], minlength=n_bins)
    with np.errstate(invalid="ignore"):
        profile = sums / counts
    centres = 0.5 * (edges[:-1] + edges[1:])
    valid = counts > 0
    return centres[valid], profile[valid]
