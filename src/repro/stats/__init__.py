"""Statistical estimators used to verify generated surfaces against their
target parameters (height std, correlation length, spectrum family)."""

from .acf import acf2d, acf2d_unbiased, acf_profile_x, acf_profile_y, radial_acf
from .correlation_length import (
    estimate_clx,
    estimate_cly,
    expected_one_over_e,
    fit_correlation_length,
    one_over_e_from_profile,
    one_over_e_length,
)
from .slopes import (
    measured_forward_slope_variance,
    slope_variance_continuum,
    slope_variance_discrete,
    slope_variance_spectral,
)
from .anisotropy import (
    AnisotropyEstimate,
    estimate_anisotropy,
    spectral_moments,
)
from .extremes import (
    exceedance_curve,
    effective_sample_count,
    expected_maximum_gaussian,
    peak_count,
)
from .fitting import (
    FamilyFit,
    classify_family,
    estimate_power_law_order,
    fit_family,
)
from .estimators import (
    MomentSummary,
    ensemble_std_tolerance,
    height_moments,
    normality_diagnostics,
    rms_height,
    rms_slope,
)
from .local import (
    interior_region_mask,
    local_mean_map,
    local_std_map,
    region_mask,
    region_statistics,
)
from .spectral import (
    ensemble_spectrum,
    periodogram,
    radial_spectrum,
    spectrum_axis_profile,
    welch_spectrum,
)

__all__ = [
    "acf2d", "acf2d_unbiased", "acf_profile_x", "acf_profile_y", "radial_acf",
    "one_over_e_length", "one_over_e_from_profile", "expected_one_over_e",
    "fit_correlation_length", "estimate_clx", "estimate_cly",
    "height_moments", "MomentSummary", "rms_height", "rms_slope",
    "normality_diagnostics", "ensemble_std_tolerance",
    "local_std_map", "local_mean_map", "region_statistics", "region_mask",
    "interior_region_mask",
    "FamilyFit", "fit_family", "classify_family", "estimate_power_law_order",
    "periodogram", "welch_spectrum", "radial_spectrum", "ensemble_spectrum",
    "spectrum_axis_profile",
    "exceedance_curve", "effective_sample_count",
    "expected_maximum_gaussian", "peak_count",
    "AnisotropyEstimate", "estimate_anisotropy", "spectral_moments",
    "slope_variance_discrete", "slope_variance_spectral",
    "slope_variance_continuum", "measured_forward_slope_variance",
]
