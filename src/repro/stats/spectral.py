"""Spectral density estimation for sampled surfaces.

Inverts the synthesis relation: given a realisation, estimate
:math:`W(\\mathbf K)` of eqn (2) and compare with the target family.
The discrete periodogram consistent with the paper's conventions is

.. math:: \\hat W(\\mathbf K_m) = \\frac{|\\mathrm{DFT}(f)_m|^2\\,
          (\\Delta x\\, \\Delta y)^2}{4\\pi^2 L_x L_y},

whose sum times the spectral cell recovers the sample variance (a
Parseval identity the tests assert).  Welch-style averaging over
subwindows and ensemble averaging over realisations reduce the
periodogram's variance (the raw periodogram is exponentially distributed
about the true spectrum, so single-shot bins scatter by 100%).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.grid import Grid2D

__all__ = [
    "periodogram",
    "welch_spectrum",
    "radial_spectrum",
    "ensemble_spectrum",
    "spectrum_axis_profile",
]


def periodogram(heights: np.ndarray, grid: Grid2D, demean: bool = True) -> np.ndarray:
    """Raw 2D periodogram ``W-hat`` on the grid's (signed) frequency bins.

    Normalised such that ``periodogram.sum() * grid.spectral_cell``
    equals the sample variance of ``heights``.
    """
    f = np.asarray(heights, dtype=float)
    if f.shape != grid.shape:
        raise ValueError(f"heights shape {f.shape} != grid shape {grid.shape}")
    if demean:
        f = f - f.mean()
    spec = np.fft.fft2(f)
    power = (spec.real**2 + spec.imag**2) * grid.cell_area**2
    return np.ascontiguousarray(power / (4.0 * np.pi**2 * grid.lx * grid.ly))


def welch_spectrum(
    heights: np.ndarray,
    grid: Grid2D,
    segments: Tuple[int, int] = (4, 4),
    window: str = "hann",
) -> Tuple[Grid2D, np.ndarray]:
    """Welch-averaged spectrum over non-overlapping subwindows.

    Splits the field into ``segments`` patches per axis, applies a taper
    window (``"hann"`` or ``"boxcar"``), and averages the per-patch
    periodograms.  Returns the sub-grid and the averaged estimate (bias
    from the taper is compensated so Parseval holds on average).
    """
    f = np.asarray(heights, dtype=float)
    sx, sy = segments
    if sx <= 0 or sy <= 0:
        raise ValueError("segment counts must be positive")
    nx, ny = grid.nx // sx, grid.ny // sy
    if nx < 2 or ny < 2 or nx % 2 or ny % 2:
        raise ValueError(
            f"segments {segments} give invalid subwindow {nx}x{ny} "
            "(need even sizes >= 2)"
        )
    sub = grid.with_shape(nx, ny)
    if window == "hann":
        wx = np.hanning(nx)
        wy = np.hanning(ny)
    elif window == "boxcar":
        wx = np.ones(nx)
        wy = np.ones(ny)
    else:
        raise ValueError(f"unknown window {window!r}")
    taper = wx[:, None] * wy[None, :]
    norm = np.mean(taper**2)  # power-bias compensation
    acc = np.zeros((nx, ny))
    count = 0
    for i in range(sx):
        for j in range(sy):
            patch = f[i * nx : (i + 1) * nx, j * ny : (j + 1) * ny]
            patch = (patch - patch.mean()) * taper
            acc += periodogram(patch, sub, demean=False)
            count += 1
    return sub, acc / (count * norm)


def ensemble_spectrum(
    realisations: Sequence[np.ndarray], grid: Grid2D
) -> np.ndarray:
    """Average periodogram over independent realisations (eqn 2's
    ensemble average made literal)."""
    reals = list(realisations)
    if not reals:
        raise ValueError("need at least one realisation")
    acc = np.zeros(grid.shape)
    for r in reals:
        acc += periodogram(r, grid)
    return acc / len(reals)


def radial_spectrum(
    estimate: np.ndarray, grid: Grid2D, n_bins: int = 48,
    k_max: Optional[float] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Isotropic radial average ``(K_centres, W(K))`` of a 2D estimate."""
    if estimate.shape != grid.shape:
        raise ValueError("estimate shape mismatch")
    kx, ky = grid.k_meshgrid(signed=True)
    k = np.hypot(kx, ky)
    if k_max is None:
        k_max = min(grid.nyquist_kx, grid.nyquist_ky)
    edges = np.linspace(0.0, k_max, n_bins + 1)
    which = np.digitize(k.ravel(), edges) - 1
    ok = (which >= 0) & (which < n_bins)
    sums = np.bincount(which[ok], weights=estimate.ravel()[ok], minlength=n_bins)
    counts = np.bincount(which[ok], minlength=n_bins)
    with np.errstate(invalid="ignore"):
        profile = sums / counts
    centres = 0.5 * (edges[:-1] + edges[1:])
    valid = counts > 0
    return centres[valid], profile[valid]


def spectrum_axis_profile(
    estimate: np.ndarray, grid: Grid2D, axis: str = "x"
) -> Tuple[np.ndarray, np.ndarray]:
    """One-sided spectrum cut along an axis ``(K, W(K, 0))``."""
    if axis == "x":
        k = grid.kx_folded[: grid.mx + 1]
        prof = estimate[: grid.mx + 1, 0]
    elif axis == "y":
        k = grid.ky_folded[: grid.my + 1]
        prof = estimate[0, : grid.my + 1]
    else:
        raise ValueError("axis must be 'x' or 'y'")
    return k.copy(), prof.copy()
