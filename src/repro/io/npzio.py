"""NPZ persistence for surfaces (heights + grid + provenance).

The native interchange format: a compressed ``.npz`` holding the height
array plus the grid geometry and a JSON-encoded provenance blob, so a
surface reloads exactly (bit-for-bit heights, reconstructed grid and
metadata).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from ..core.grid import Grid2D
from ..core.surface import Surface

__all__ = ["save_surface", "load_surface"]

_FORMAT_VERSION = 1


def save_surface(path: Union[str, Path], surface: Surface) -> None:
    """Write a surface to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    np.savez_compressed(
        path,
        format_version=np.array(_FORMAT_VERSION),
        heights=surface.heights,
        nx=np.array(surface.grid.nx),
        ny=np.array(surface.grid.ny),
        lx=np.array(surface.grid.lx),
        ly=np.array(surface.grid.ly),
        origin=np.array(surface.origin, dtype=float),
        provenance=np.array(json.dumps(surface.provenance)),
    )


def load_surface(path: Union[str, Path]) -> Surface:
    """Load a surface previously written by :func:`save_surface`."""
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported surface file version {version} "
                f"(this build reads version {_FORMAT_VERSION})"
            )
        grid = Grid2D(
            nx=int(data["nx"]),
            ny=int(data["ny"]),
            lx=float(data["lx"]),
            ly=float(data["ly"]),
        )
        provenance = json.loads(str(data["provenance"]))
        origin = tuple(float(v) for v in data["origin"])
        return Surface(
            heights=np.array(data["heights"], dtype=float),
            grid=grid,
            origin=origin,  # type: ignore[arg-type]
            provenance=provenance,
        )
