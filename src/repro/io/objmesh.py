"""Wavefront OBJ mesh export.

Exports a surface as a triangulated height-field mesh readable by every
3D tool (Blender, MeshLab, ParaView, game engines) — the practical route
to the paper's style of 3D figure renderings, and to using generated
terrains as geometry in external EM solvers.

The mesh is a regular triangulation: each grid cell is split into two
triangles; vertices carry the physical coordinates (origin included).
An optional ``decimate`` stride subsamples large surfaces.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..core.surface import Surface

__all__ = ["save_obj"]


def save_obj(
    path: Union[str, Path],
    surface: Surface,
    decimate: int = 1,
    z_scale: float = 1.0,
) -> None:
    """Write the surface as a triangulated OBJ mesh.

    Parameters
    ----------
    decimate:
        Keep every ``decimate``-th sample per axis (1 = full resolution).
        A 1024^2 surface at full resolution is ~2M triangles; decimate 4
        gives a ~130k-triangle mesh that loads instantly.
    z_scale:
        Vertical exaggeration applied to the heights.
    """
    if decimate < 1:
        raise ValueError("decimate must be >= 1")
    h = surface.heights[::decimate, ::decimate] * z_scale
    xs = surface.x[::decimate]
    ys = surface.y[::decimate]
    nx, ny = h.shape
    if nx < 2 or ny < 2:
        raise ValueError("decimated surface too small to mesh")

    path = Path(path)
    with path.open("w") as fh:
        fh.write("# repro rough-surface mesh\n")
        fh.write(f"# {nx} x {ny} vertices, dx={xs[1] - xs[0]:g}\n")
        # vertices, row-major in x (axis 0)
        for i in range(nx):
            for j in range(ny):
                fh.write(f"v {xs[i]:.6g} {ys[j]:.6g} {h[i, j]:.6g}\n")

        def vid(i: int, j: int) -> int:
            return i * ny + j + 1  # OBJ indices are 1-based

        for i in range(nx - 1):
            for j in range(ny - 1):
                a, b = vid(i, j), vid(i + 1, j)
                c, d = vid(i + 1, j + 1), vid(i, j + 1)
                fh.write(f"f {a} {b} {c}\n")
                fh.write(f"f {a} {c} {d}\n")
