"""ESRI-style ASCII grid export/import.

A lowest-common-denominator text format readable by GIS tooling (QGIS,
GDAL) and by eyeball, for moving generated terrains into downstream EM
solvers or visualisation pipelines.  Layout follows the ESRI ASCII
raster convention: header (ncols/nrows/xllcorner/yllcorner/cellsize/
NODATA_value) followed by rows north-to-south.

Only square cells are supported by the format; rectangular-cell surfaces
raise (resample first).
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..core.grid import Grid2D
from ..core.surface import Surface

__all__ = ["save_ascii_grid", "load_ascii_grid"]

_NODATA = -9999.0


def save_ascii_grid(path: Union[str, Path], surface: Surface,
                    precision: int = 6) -> None:
    """Write a surface as an ESRI ASCII grid.

    Axis mapping: the library's axis 0 is x (east), axis 1 is y (north);
    the file stores rows of constant y from north to south, columns west
    to east.
    """
    if abs(surface.grid.dx - surface.grid.dy) > 1e-12 * surface.grid.dx:
        raise ValueError(
            "ASCII grid requires square cells; "
            f"got dx={surface.grid.dx}, dy={surface.grid.dy}"
        )
    path = Path(path)
    nx, ny = surface.shape
    header = (
        f"ncols {nx}\n"
        f"nrows {ny}\n"
        f"xllcorner {surface.origin[0]:.10g}\n"
        f"yllcorner {surface.origin[1]:.10g}\n"
        f"cellsize {surface.grid.dx:.10g}\n"
        f"NODATA_value {_NODATA:.1f}\n"
    )
    # rows north->south: y index descending; columns = x ascending
    rows = surface.heights.T[::-1, :]
    with path.open("w") as fh:
        fh.write(header)
        np.savetxt(fh, rows, fmt=f"%.{precision}g")


def load_ascii_grid(path: Union[str, Path]) -> Surface:
    """Read an ESRI ASCII grid written by :func:`save_ascii_grid`."""
    path = Path(path)
    header: dict = {}
    with path.open() as fh:
        for _ in range(6):
            key, value = fh.readline().split()
            header[key.lower()] = float(value)
        data = np.loadtxt(fh)
    nx = int(header["ncols"])
    ny = int(header["nrows"])
    cell = header["cellsize"]
    data = np.atleast_2d(data)
    if data.shape != (ny, nx):
        raise ValueError(
            f"grid body shape {data.shape} does not match header ({ny}, {nx})"
        )
    heights = data[::-1, :].T.copy()
    if np.any(heights == _NODATA):
        raise ValueError("grid contains NODATA cells; cannot build a Surface")
    grid = Grid2D(nx=nx, ny=ny, lx=nx * cell, ly=ny * cell)
    return Surface(
        heights=heights,
        grid=grid,
        origin=(header["xllcorner"], header["yllcorner"]),
        provenance={"source": str(path), "format": "esri-ascii"},
    )
