"""Atomic file writes for durable on-disk state.

Checkpoints must never be half-written: a crash *during* a checkpoint
write would otherwise destroy the very state the checkpoint exists to
protect.  Both helpers write to a temporary sibling in the destination
directory and ``os.replace`` it over the target — atomic on POSIX and
Windows — so readers only ever observe the old or the new complete file.

Durability note: fsyncing the *file* makes its contents durable, but on
POSIX the rename itself lives in the containing directory, which has its
own durability.  After ``os.replace`` we therefore fsync the directory
too; without it a power loss just after the rename can resurrect the old
file (or no file), which for the coordinator's bitmap/manifest would
silently roll progress back past chunks already handed out as done.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

import numpy as np

__all__ = [
    "atomic_write_json",
    "atomic_write_npz",
    "atomic_write_bytes",
    "fsync_directory",
]

PathLike = Union[str, Path]


def fsync_directory(path: PathLike) -> None:
    """Make a directory's entries (renames, creates) durable on POSIX.

    No-op on platforms where directories cannot be opened for fsync
    (Windows), and tolerant of filesystems that reject directory fsync —
    durability degrades gracefully to the pre-fsync behaviour there.
    """
    if os.name != "posix":
        return
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass  # e.g. some network/virtual filesystems refuse EINVAL
    finally:
        os.close(fd)


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmp sibling + rename)."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)


def atomic_write_json(path: PathLike, obj: object) -> None:
    """Serialise ``obj`` as indented JSON and write it atomically."""
    atomic_write_bytes(
        path, (json.dumps(obj, indent=2, sort_keys=True) + "\n").encode()
    )


def atomic_write_npz(path: PathLike, **arrays: np.ndarray) -> None:
    """Write an uncompressed ``.npz`` of ``arrays`` atomically.

    ``np.savez`` appends ``.npz`` to suffix-less names, so the temporary
    file keeps the suffix to make the rename exact.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp.npz")
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        fsync_directory(path.parent)
    finally:
        if tmp.exists():  # only on failure before the rename
            tmp.unlink()
