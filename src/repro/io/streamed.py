"""Out-of-core surface export: stream strips straight to disk.

Closes the loop on the paper's advantage (a): surfaces of *arbitrary*
extent can not only be generated strip by strip but written strip by
strip — the full array never exists in RAM.  The on-disk format is a
standard ``.npy`` (little-endian float64, C order) created with
``numpy.lib.format.open_memmap``, so any NumPy stack reads the result
with ``np.load(path, mmap_mode="r")`` — no custom reader required.

A sidecar JSON (``<path>.meta.json``) records the grid geometry and
provenance so :func:`load_streamed_surface` can rebuild windows of the
surface as proper :class:`~repro.core.surface.Surface` objects.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..core.rng import BlockNoise
from ..core.surface import Surface
from ..parallel.executor import WindowedGenerator, _tile_heights
from ..parallel.tiles import Tile
from .atomic import atomic_write_json

__all__ = ["stream_to_npy", "load_streamed_surface"]


def stream_to_npy(
    path: Union[str, Path],
    generator: WindowedGenerator,
    noise: BlockNoise,
    total_nx: int,
    ny: int,
    strip_nx: int = 1024,
    x0: int = 0,
    y0: int = 0,
) -> Path:
    """Generate ``total_nx x ny`` samples directly into a ``.npy`` file.

    Memory use is one strip plus the memmap page cache; determinism is
    inherited from the windowed generator (same ``(generator, noise)``
    => identical file, byte for byte, regardless of ``strip_nx``* ).

    *to FFT rounding across different strip widths, exactly as for
    in-memory streaming.
    """
    if total_nx <= 0 or ny <= 0 or strip_nx <= 0:
        raise ValueError("extents must be positive")
    path = Path(path)
    if path.suffix != ".npy":
        path = path.with_suffix(path.suffix + ".npy")
    out = np.lib.format.open_memmap(
        path, mode="w+", dtype=np.float64, shape=(total_nx, ny)
    )
    written = 0
    while written < total_nx:
        nx = min(strip_nx, total_nx - written)
        tile = Tile(x0=x0 + written, y0=y0, nx=nx, ny=ny)
        out[written : written + nx, :] = _tile_heights(generator, noise, tile)
        written += nx
    out.flush()
    del out

    grid = generator.grid  # type: ignore[attr-defined]
    meta = {
        "dx": grid.dx,
        "dy": grid.dy,
        "x0": x0,
        "y0": y0,
        "total_nx": total_nx,
        "ny": ny,
        "noise_seed": noise.seed,
        "noise_block": noise.block,
        "method": "streamed-npy",
    }
    # Atomic (tmp sibling + rename): a crash mid-write must never leave
    # a truncated-but-parseable sidecar next to a valid heights file.
    atomic_write_json(Path(str(path) + ".meta.json"), meta)
    return path


def load_streamed_surface(
    path: Union[str, Path],
    x_slice: Optional[slice] = None,
    y_slice: Optional[slice] = None,
) -> Surface:
    """Load a window of a streamed file as a :class:`Surface`.

    The file is memory-mapped; only the requested window is copied into
    RAM, so kilometre-scale exports can be sliced cheaply.
    """
    path = Path(path)
    meta = json.loads(Path(str(path) + ".meta.json").read_text())
    data = np.load(path, mmap_mode="r")
    xs = range(data.shape[0])[x_slice] if x_slice else range(data.shape[0])
    ys = range(data.shape[1])[y_slice] if y_slice else range(data.shape[1])
    if len(xs) == 0 or len(ys) == 0:
        raise ValueError("empty window")
    if (xs.step if isinstance(xs, range) else 1) != 1 or ys.step != 1:
        raise ValueError("window slices must have unit step")
    heights = np.array(data[xs.start : xs.stop, ys.start : ys.stop],
                       dtype=float)
    from ..core.grid import Grid2D

    grid = Grid2D(
        nx=heights.shape[0],
        ny=heights.shape[1],
        lx=heights.shape[0] * meta["dx"],
        ly=heights.shape[1] * meta["dy"],
    )
    origin = (
        (meta["x0"] + xs.start) * meta["dx"],
        (meta["y0"] + ys.start) * meta["dy"],
    )
    return Surface(
        heights=heights, grid=grid, origin=origin,
        provenance={"source": str(path), **meta},
    )
