"""Portable-pixmap rendering of surfaces (no matplotlib required).

The development environment has no plotting stack, so the figure benches
regenerate the paper's Figures 1-4 as portable graymaps/pixmaps (PGM/PPM
— plain, universally viewable formats) plus compact ASCII previews for
terminals.  Renderers:

* :func:`render_gray` — linear grayscale of the heights;
* :func:`render_hillshade` — Lambertian hillshade (the visual idiom of
  the paper's figures, which show illuminated 3D terrain);
* :func:`render_terrain` — hypsometric tint composited with hillshade
  (water-to-highland colormap), written as PPM;
* :func:`ascii_preview` — quick-look character art.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from ..core.surface import Surface

__all__ = [
    "write_pgm",
    "write_ppm",
    "render_gray",
    "render_hillshade",
    "render_terrain",
    "ascii_preview",
]


def _normalise(values: np.ndarray, vmin: Optional[float], vmax: Optional[float]
               ) -> np.ndarray:
    v = np.asarray(values, dtype=float)
    lo = float(v.min()) if vmin is None else vmin
    hi = float(v.max()) if vmax is None else vmax
    if hi <= lo:
        return np.zeros_like(v)
    return np.clip((v - lo) / (hi - lo), 0.0, 1.0)


def write_pgm(path: Union[str, Path], gray: np.ndarray) -> None:
    """Write a [0,1] float image as binary PGM (P5).

    Image convention: array axis 0 is x (rendered left-to-right), axis 1
    is y (rendered bottom-to-top), i.e. standard map orientation.
    """
    g = np.asarray(gray, dtype=float)
    if g.ndim != 2:
        raise ValueError("gray image must be 2D")
    pixels = (np.clip(g, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    raster = pixels.T[::-1, :]  # rows top-to-bottom = y descending
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(f"P5\n{raster.shape[1]} {raster.shape[0]}\n255\n".encode())
        fh.write(raster.tobytes())


def write_ppm(path: Union[str, Path], rgb: np.ndarray) -> None:
    """Write a [0,1] float ``(nx, ny, 3)`` image as binary PPM (P6)."""
    c = np.asarray(rgb, dtype=float)
    if c.ndim != 3 or c.shape[2] != 3:
        raise ValueError("rgb image must be (nx, ny, 3)")
    pixels = (np.clip(c, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)
    raster = pixels.transpose(1, 0, 2)[::-1, :, :]
    path = Path(path)
    with path.open("wb") as fh:
        fh.write(f"P6\n{raster.shape[1]} {raster.shape[0]}\n255\n".encode())
        fh.write(raster.tobytes())


def render_gray(
    surface: Surface,
    path: Optional[Union[str, Path]] = None,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
) -> np.ndarray:
    """Linear grayscale height map; optionally written as PGM."""
    img = _normalise(surface.heights, vmin, vmax)
    if path is not None:
        write_pgm(path, img)
    return img


def render_hillshade(
    surface: Surface,
    path: Optional[Union[str, Path]] = None,
    azimuth_deg: float = 315.0,
    altitude_deg: float = 45.0,
    vertical_exaggeration: float = 1.0,
) -> np.ndarray:
    """Lambertian hillshade (illuminated-relief rendering).

    Matches the visual style of the paper's figures better than plain
    grayscale: region boundaries show up as texture changes rather than
    brightness steps.
    """
    z = surface.heights * vertical_exaggeration
    gx, gy = np.gradient(z, surface.grid.dx, surface.grid.dy)
    az = np.deg2rad(azimuth_deg)
    alt = np.deg2rad(altitude_deg)
    lx = np.cos(alt) * np.cos(az)
    ly = np.cos(alt) * np.sin(az)
    lz = np.sin(alt)
    norm = np.sqrt(gx * gx + gy * gy + 1.0)
    shade = (-gx * lx - gy * ly + lz) / norm
    img = np.clip(shade, 0.0, 1.0)
    if path is not None:
        write_pgm(path, img)
    return img


_TERRAIN_STOPS = np.array(
    [
        (0.00, (0.10, 0.25, 0.55)),  # deep water
        (0.30, (0.25, 0.55, 0.75)),  # shallow
        (0.42, (0.85, 0.80, 0.55)),  # shore
        (0.60, (0.35, 0.62, 0.30)),  # lowland
        (0.80, (0.55, 0.45, 0.30)),  # upland
        (1.00, (0.95, 0.95, 0.95)),  # peaks
    ],
    dtype=object,
)


def _terrain_colormap(t: np.ndarray) -> np.ndarray:
    """Piecewise-linear hypsometric tint over [0, 1]."""
    pts = np.array([s[0] for s in _TERRAIN_STOPS], dtype=float)
    cols = np.array([s[1] for s in _TERRAIN_STOPS], dtype=float)
    out = np.empty(t.shape + (3,))
    for c in range(3):
        out[..., c] = np.interp(t, pts, cols[:, c])
    return out


def render_terrain(
    surface: Surface,
    path: Optional[Union[str, Path]] = None,
    vmin: Optional[float] = None,
    vmax: Optional[float] = None,
    shade_strength: float = 0.6,
    vertical_exaggeration: float = 2.0,
) -> np.ndarray:
    """Hypsometric tint + hillshade composite, optionally written as PPM."""
    t = _normalise(surface.heights, vmin, vmax)
    rgb = _terrain_colormap(t)
    shade = render_hillshade(
        surface, vertical_exaggeration=vertical_exaggeration
    )
    mix = (1.0 - shade_strength) + shade_strength * shade[..., None]
    img = np.clip(rgb * mix, 0.0, 1.0)
    if path is not None:
        write_ppm(path, img)
    return img


_ASCII_RAMP = " .:-=+*#%@"


def ascii_preview(
    surface: Surface, width: int = 72, height: Optional[int] = None
) -> str:
    """Character-art quick look (terminal aspect ratio compensated)."""
    nx, ny = surface.shape
    if height is None:
        height = max(1, int(width * ny / nx * 0.5))
    ix = np.linspace(0, nx - 1, width).astype(int)
    iy = np.linspace(0, ny - 1, height).astype(int)
    sub = surface.heights[np.ix_(ix, iy)]
    t = _normalise(sub, None, None)
    idx = (t * (len(_ASCII_RAMP) - 1) + 0.5).astype(int)
    chars = np.array(list(_ASCII_RAMP))[idx]
    lines = ["".join(chars[:, j]) for j in range(height - 1, -1, -1)]
    return "\n".join(lines)
