"""Out-of-core surface store: a chunked, disk-backed output sink.

The paper's headline advantage for the convolution method is that
surfaces of arbitrary extent can be produced *by successive computation*
(Section 2.4) — synthesis cost should scale with the window being
computed, not with the whole field.  The tiled executor and
:mod:`repro.jobs` already compute piecewise; this module makes the
*output* piecewise too, so the full ``(nx, ny)`` float64 array never has
to exist in RAM.

A store is a directory holding three files:

``heights.npy``
    A standard NumPy array file (little-endian float64, C order)
    created sparse with ``numpy.lib.format.open_memmap`` — any NumPy
    stack reads the result with ``np.load(path, mmap_mode="r")``, no
    custom reader required.
``chunks.npy``
    Boolean completion bitmap over the row-major chunk grid, written
    atomically (:mod:`repro.io.atomic`).  A chunk is marked only
    *after* its heights are on disk, so the bitmap never overcounts —
    the resume contract of :mod:`repro.jobs`.
``manifest.json``
    Geometry (shape, chunk shape, sample spacing, origin), format
    version and progress, written atomically.  Torn or inconsistent
    files raise :class:`StoreCorrupt` at :meth:`SurfaceStore.open`
    rather than ever yielding garbage heights.

Why writes are syscalls, not memmap stores: dirty pages of a writable
``mmap`` are charged to the writing process's RSS until the kernel
gets around to cleaning them, which defeats the point of an
out-of-core sink.  :meth:`SurfaceStore.write_window` therefore writes
through ordinary ``seek``/``write`` on the underlying file — the data
lands in the page cache, which is *not* part of process RSS — and
reads go through a read-only memmap.  A 16384² (2 GiB) surface
generates with peak RSS well under the output size (tested).

Async writeback: :class:`StoreWriter` runs the writes on a background
thread behind a bounded queue (double-buffered by default), so tile
compute and disk I/O overlap; a full queue applies backpressure to the
producer.  Queue depth, flush latency and bytes written are recorded
via :mod:`repro.obs` (``store.*`` metrics).

The chunk grid mirrors :class:`repro.parallel.tiles.TilePlan` exactly
(row-major, edge chunks clipped), so for a matching plan the tile index
*is* the chunk index — :func:`repro.parallel.executor.generate_tiled`
accepts a store as its ``out=`` target and :mod:`repro.jobs` resumes
straight off the bitmap.
"""

from __future__ import annotations

import io as _io
import json
import os
import queue
import threading
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

import numpy as np

from .. import obs
from ..core.surface import Surface
from .atomic import atomic_write_bytes, atomic_write_json

__all__ = [
    "SurfaceStore",
    "StoreWriter",
    "StoreCorrupt",
    "stream_to_store",
    "iter_chunks",
    "FORMAT_VERSION",
]

FORMAT_VERSION = "repro.store/v1"
MANIFEST_NAME = "manifest.json"
HEIGHTS_NAME = "heights.npy"
BITMAP_NAME = "chunks.npy"

#: On-disk element type; fixed so files are portable across machines.
_DTYPE = np.dtype("<f8")

PathLike = Union[str, Path]


class StoreCorrupt(RuntimeError):
    """The store's on-disk state is torn or inconsistent.

    Raised by :meth:`SurfaceStore.open` for unreadable/truncated
    manifests, format mismatches, missing files, or geometry that
    disagrees between manifest, bitmap and heights header — never
    silently returning garbage heights.
    """


def _npy_header(path: Path) -> Tuple[int, Tuple[int, ...], np.dtype, bool]:
    """Parse an ``.npy`` header: ``(data_offset, shape, dtype, fortran)``."""
    with open(path, "rb") as fh:
        version = np.lib.format.read_magic(fh)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(fh)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(fh)
        else:  # pragma: no cover - numpy only emits 1.0/2.0
            raise StoreCorrupt(f"unsupported npy version {version} in {path}")
        return fh.tell(), shape, dtype, fortran


def _npy_bytes(arr: np.ndarray) -> bytes:
    buf = _io.BytesIO()
    np.save(buf, arr)
    return buf.getvalue()


def _pwrite_all(fd: int, data: memoryview, offset: int) -> None:
    """``os.pwrite`` the whole buffer, looping over short writes."""
    while data:
        n = os.pwrite(fd, data, offset)
        data = data[n:]
        offset += n


class SurfaceStore:
    """A chunked, memmap-backed on-disk height field.

    Create with :meth:`create` (fresh directory) or :meth:`open`
    (existing store); write with :meth:`write_chunk` /
    :meth:`write_window` (or asynchronously through :meth:`writer`);
    read with :meth:`heights` (read-only memmap), :meth:`read_window`
    or :meth:`surface`.

    The chunk grid is row-major with clipped edge chunks — identical
    to :class:`repro.parallel.tiles.TilePlan` — so a store created
    with ``chunk == (plan.tile_nx, plan.tile_ny)`` and ``shape ==
    (plan.total_nx, plan.total_ny)`` indexes chunks exactly like the
    plan indexes tiles (checked by :meth:`validate_plan`).
    """

    def __init__(self, path: Path, manifest: Dict[str, Any],
                 done: np.ndarray, mode: str,
                 owns_ledger: bool = True) -> None:
        self.path = Path(path)
        self.manifest = manifest
        self.done = done
        self.mode = mode
        #: Whether this handle may persist the bitmap/manifest.  A dist
        #: worker opens the store with ``ledger=False``: it writes height
        #: windows but its in-memory bitmap is a stale snapshot, and
        #: persisting it would roll back marks the coordinator (the
        #: single ledger owner) has already committed.
        self.owns_ledger = owns_ledger
        self._fh: Optional[Any] = None
        self._lock = threading.Lock()
        self._mm_r: Optional[np.ndarray] = None

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: PathLike,
        shape: Tuple[int, int],
        chunk: Tuple[int, int],
        *,
        dx: float = 1.0,
        dy: float = 1.0,
        origin: Tuple[int, int] = (0, 0),
        meta: Optional[Dict[str, Any]] = None,
    ) -> "SurfaceStore":
        """Create a fresh store directory (refuses to overwrite one).

        ``shape``/``chunk``/``origin`` are in samples; ``dx``/``dy``
        are the physical sample spacings recorded for
        :meth:`surface`.  The heights file is created sparse, so disk
        is only consumed as chunks are written.
        """
        path = Path(path)
        nx, ny = int(shape[0]), int(shape[1])
        cnx, cny = int(chunk[0]), int(chunk[1])
        if nx <= 0 or ny <= 0:
            raise ValueError("store shape must be positive")
        if cnx <= 0 or cny <= 0:
            raise ValueError("chunk shape must be positive")
        if np.dtype(np.float64) != _DTYPE:  # pragma: no cover - BE platforms
            raise RuntimeError(
                "SurfaceStore requires a little-endian float64 platform"
            )
        if (path / MANIFEST_NAME).exists():
            raise FileExistsError(
                f"store already exists at {path}; open it with "
                f"SurfaceStore.open() (or delete it) instead"
            )
        path.mkdir(parents=True, exist_ok=True)
        mm = np.lib.format.open_memmap(
            path / HEIGHTS_NAME, mode="w+", dtype=np.float64, shape=(nx, ny)
        )
        del mm  # header written, file preallocated sparse
        n_chunks = (-(-nx // cnx)) * (-(-ny // cny))
        done = np.zeros(n_chunks, dtype=bool)
        atomic_write_bytes(path / BITMAP_NAME, _npy_bytes(done))
        manifest: Dict[str, Any] = {
            "format": FORMAT_VERSION,
            "shape": [nx, ny],
            "chunk": [cnx, cny],
            "dtype": _DTYPE.str,
            "dx": float(dx),
            "dy": float(dy),
            "origin": [int(origin[0]), int(origin[1])],
            "meta": meta or {},
            "progress": {"chunks_total": n_chunks, "chunks_done": 0},
        }
        atomic_write_json(path / MANIFEST_NAME, manifest)
        return cls(path=path, manifest=manifest, done=done, mode="r+")

    @classmethod
    def open(cls, path: PathLike, mode: str = "r+",
             *, ledger: bool = True) -> "SurfaceStore":
        """Open an existing store, validating every on-disk piece.

        Any torn or inconsistent file — a truncated manifest, a bitmap
        of the wrong length, a heights header that disagrees with the
        manifest — raises :class:`StoreCorrupt`.

        ``ledger=False`` opens a *non-owner* writer handle: it may write
        height windows but :meth:`flush`/:meth:`close` will not persist
        the bitmap or manifest.  Use it when another process (the dist
        coordinator) owns progress accounting over the same store.
        """
        if mode not in ("r", "r+"):
            raise ValueError(f"mode must be 'r' or 'r+', got {mode!r}")
        path = Path(path)
        manifest_path = path / MANIFEST_NAME
        try:
            text = manifest_path.read_text()
        except FileNotFoundError:
            raise FileNotFoundError(
                f"no store manifest at {manifest_path}"
            ) from None
        try:
            manifest = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreCorrupt(
                f"unreadable store manifest at {manifest_path}: {exc}"
            ) from exc
        if not isinstance(manifest, dict):
            raise StoreCorrupt(f"store manifest at {manifest_path} "
                               f"is not a JSON object")
        fmt = manifest.get("format")
        if fmt != FORMAT_VERSION:
            raise StoreCorrupt(
                f"unsupported store format {fmt!r} at {path} "
                f"(this build reads {FORMAT_VERSION!r})"
            )
        try:
            nx, ny = (int(v) for v in manifest["shape"])
            cnx, cny = (int(v) for v in manifest["chunk"])
            dtype = np.dtype(manifest["dtype"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorrupt(
                f"store manifest at {manifest_path} is missing or has "
                f"malformed geometry: {exc!r}"
            ) from exc
        if dtype != _DTYPE:
            raise StoreCorrupt(
                f"store dtype {dtype} is not {_DTYPE} at {path}"
            )
        heights_path = path / HEIGHTS_NAME
        if not heights_path.exists():
            raise StoreCorrupt(f"store heights file missing at {heights_path}")
        try:
            offset, h_shape, h_dtype, fortran = _npy_header(heights_path)
        except (ValueError, OSError) as exc:
            raise StoreCorrupt(
                f"unreadable heights header at {heights_path}: {exc}"
            ) from exc
        if h_shape != (nx, ny) or h_dtype != _DTYPE or fortran:
            raise StoreCorrupt(
                f"heights file {heights_path} (shape={h_shape}, "
                f"dtype={h_dtype}, fortran={fortran}) does not match the "
                f"manifest geometry ({nx}, {ny})"
            )
        expected = offset + nx * ny * _DTYPE.itemsize
        actual = heights_path.stat().st_size
        if actual != expected:
            raise StoreCorrupt(
                f"heights file {heights_path} has {actual} bytes; "
                f"expected {expected}"
            )
        bitmap_path = path / BITMAP_NAME
        try:
            done = np.load(bitmap_path)
        except (FileNotFoundError, ValueError, OSError) as exc:
            raise StoreCorrupt(
                f"unreadable chunk bitmap at {bitmap_path}: {exc}"
            ) from exc
        n_chunks = (-(-nx // cnx)) * (-(-ny // cny))
        if done.shape != (n_chunks,) or done.dtype != np.bool_:
            raise StoreCorrupt(
                f"chunk bitmap at {bitmap_path} (shape={done.shape}, "
                f"dtype={done.dtype}) does not match the {n_chunks}-chunk "
                f"grid"
            )
        return cls(path=path, manifest=manifest, done=done, mode=mode,
                   owns_ledger=ledger)

    def close(self) -> None:
        """Flush (when writable) and release the write handle."""
        self._mm_r = None
        if self._fh is not None:
            if self.mode == "r+":
                self.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "SurfaceStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- geometry ----------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        return (int(self.manifest["shape"][0]), int(self.manifest["shape"][1]))

    @property
    def chunk_shape(self) -> Tuple[int, int]:
        return (int(self.manifest["chunk"][0]), int(self.manifest["chunk"][1]))

    @property
    def origin(self) -> Tuple[int, int]:
        o = self.manifest.get("origin", [0, 0])
        return (int(o[0]), int(o[1]))

    @property
    def dtype(self) -> np.dtype:
        return _DTYPE

    @property
    def nbytes(self) -> int:
        nx, ny = self.shape
        return nx * ny * _DTYPE.itemsize

    @property
    def n_chunks(self) -> Tuple[int, int]:
        """Chunk counts per axis (row-major grid, edge chunks clipped)."""
        nx, ny = self.shape
        cnx, cny = self.chunk_shape
        return (-(-nx // cnx), -(-ny // cny))

    @property
    def chunks_total(self) -> int:
        cx, cy = self.n_chunks
        return cx * cy

    @property
    def fraction_done(self) -> float:
        total = self.chunks_total
        return float(self.done.sum()) / total if total else 0.0

    @property
    def heights_path(self) -> Path:
        return self.path / HEIGHTS_NAME

    def chunk_window(self, index: int) -> Tuple[int, int, int, int]:
        """The ``(x0, y0, nx, ny)`` sample window of chunk ``index``."""
        total = self.chunks_total
        if not 0 <= index < total:
            raise IndexError(f"chunk index {index} outside [0, {total})")
        nx, ny = self.shape
        cnx, cny = self.chunk_shape
        _cx, cy = self.n_chunks
        jx, jy = divmod(int(index), cy)
        x0 = jx * cnx
        y0 = jy * cny
        return (x0, y0, min(cnx, nx - x0), min(cny, ny - y0))

    def validate_plan(self, plan: Any) -> None:
        """Check that ``plan`` and this store share one chunk grid.

        Duck-typed on the :class:`~repro.parallel.tiles.TilePlan`
        attributes so the executor can hand a store over without either
        module importing the other.
        """
        if (plan.total_nx, plan.total_ny) != self.shape:
            raise ValueError(
                f"store shape {self.shape} does not match the plan's "
                f"({plan.total_nx}, {plan.total_ny})"
            )
        if (plan.tile_nx, plan.tile_ny) != self.chunk_shape:
            raise ValueError(
                f"store chunk shape {self.chunk_shape} does not match the "
                f"plan's tile shape ({plan.tile_nx}, {plan.tile_ny}); "
                f"tile and chunk grids must coincide so the bitmap can "
                f"index tiles"
            )

    # -- writing -----------------------------------------------------------
    def _write_handle(self):
        if self.mode != "r+":
            raise ValueError(f"store at {self.path} is opened read-only")
        if self._fh is None:
            # Unbuffered: rows go straight to the page cache via pwrite;
            # a buffered layer would copy and flush every 4 KiB row.
            self._fh = open(self.heights_path, "r+b", buffering=0)
            self._offset = _npy_header(self.heights_path)[0]
        return self._fh

    def write_window(self, x0: int, y0: int, values: np.ndarray,
                     *, mark: bool = True) -> int:
        """Write a rectangular window of heights at ``(x0, y0)``.

        Writes row-by-row through plain file ``write`` calls (one
        contiguous write for full-width windows) so the dirtied pages
        live in the kernel's page cache, not this process's RSS.
        Chunks *fully covered* by the window are marked done in memory
        (persist with :meth:`flush` or via :class:`StoreWriter`);
        partial coverage marks nothing, so a crash mid-window can never
        claim a chunk it did not finish.  Returns the bytes written.
        """
        values = np.ascontiguousarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise ValueError(f"window must be 2D, got ndim={values.ndim}")
        nx, ny = values.shape
        NX, NY = self.shape
        if not (0 <= x0 and x0 + nx <= NX and 0 <= y0 and y0 + ny <= NY):
            raise ValueError(
                f"window [{x0}:{x0 + nx}, {y0}:{y0 + ny}] outside the "
                f"store shape {self.shape}"
            )
        itemsize = _DTYPE.itemsize
        with self._lock:
            fd = self._write_handle().fileno()
            if y0 == 0 and ny == NY:
                _pwrite_all(fd, memoryview(values).cast("B"),
                            self._offset + x0 * NY * itemsize)
            else:
                row_stride = NY * itemsize
                base = self._offset + y0 * itemsize
                data = memoryview(values).cast("B")
                row_bytes = ny * itemsize
                for i in range(nx):
                    _pwrite_all(fd,
                                data[i * row_bytes:(i + 1) * row_bytes],
                                base + (x0 + i) * row_stride)
            if mark:
                self._mark_covered(x0, y0, nx, ny)
        return nx * ny * itemsize

    def write_chunk(self, index: int, values: np.ndarray) -> int:
        """Write one whole chunk (marks exactly that chunk done)."""
        x0, y0, nx, ny = self.chunk_window(index)
        values = np.asarray(values)
        if values.shape != (nx, ny):
            raise ValueError(
                f"chunk {index} needs shape ({nx}, {ny}), "
                f"got {values.shape}"
            )
        return self.write_window(x0, y0, values)

    def _mark_covered(self, x0: int, y0: int, nx: int, ny: int) -> None:
        cnx, cny = self.chunk_shape
        NX, NY = self.shape
        _cx, cy = self.n_chunks
        for jx in range((x0 // cnx), ((x0 + nx - 1) // cnx) + 1):
            wx0 = jx * cnx
            wnx = min(cnx, NX - wx0)
            if wx0 < x0 or wx0 + wnx > x0 + nx:
                continue
            for jy in range((y0 // cny), ((y0 + ny - 1) // cny) + 1):
                wy0 = jy * cny
                wny = min(cny, NY - wy0)
                if wy0 < y0 or wy0 + wny > y0 + ny:
                    continue
                self.done[jx * cy + jy] = True

    def mark_done(self, index: int) -> None:
        """Mark one chunk complete in memory (see :meth:`flush`)."""
        self.done[int(index)] = True

    def done_indices(self) -> List[int]:
        return [int(i) for i in np.flatnonzero(self.done)]

    def pending_indices(self) -> List[int]:
        """Chunk indices not yet marked done — the dist scheduler's
        initial work queue on start and on coordinator restart."""
        return [int(i) for i in np.flatnonzero(~self.done)]

    def refresh_done(self) -> None:
        """Re-read the persisted bitmap into the live ``done`` array.

        In place, so ledgers holding a reference to ``done`` observe the
        reload.  Because marks are persisted only after durable chunk
        writes, refreshing can only *add* recompute work relative to the
        true state, never claim an unwritten chunk — the safe direction
        for a restarted coordinator.
        """
        persisted = np.load(self.path / BITMAP_NAME)
        if persisted.shape != self.done.shape or persisted.dtype != np.bool_:
            raise StoreCorrupt(
                f"chunk bitmap at {self.path / BITMAP_NAME} changed shape "
                f"({persisted.shape}, {persisted.dtype}) under an open "
                f"store handle"
            )
        self.done[:] = persisted

    def persist_progress(self) -> None:
        """Atomically persist the bitmap, then the manifest's progress.

        Bitmap first: a crash between the two leaves a manifest that
        undercounts — never overcounts — completed chunks.
        """
        self.manifest["progress"]["chunks_done"] = int(self.done.sum())
        atomic_write_bytes(self.path / BITMAP_NAME, _npy_bytes(self.done))
        atomic_write_json(self.path / MANIFEST_NAME, self.manifest)

    def flush(self) -> None:
        """fsync the heights file and persist bitmap + manifest.

        Non-owner handles (``ledger=False``) fsync their height writes
        but leave the bitmap/manifest to the ledger owner.
        """
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
        if self.owns_ledger:
            self.persist_progress()

    # -- reading -----------------------------------------------------------
    def heights(self, mode: str = "r") -> np.ndarray:
        """The full height field as a memmap (read-only by default).

        The read-only mapping is cached on the handle: it is a shared
        mapping of the same pages ``write_window`` pwrites through, so
        it stays coherent with concurrent writes, and repeated
        window reads (e.g. the streaming verifier's) skip the per-call
        header parse.
        """
        if mode == "r":
            if self._mm_r is None:
                self._mm_r = np.load(self.heights_path, mmap_mode="r")
            return self._mm_r
        return np.load(self.heights_path, mmap_mode=mode)

    def read_window(self, x0: int, y0: int, nx: int, ny: int) -> np.ndarray:
        """Copy one window into RAM (only those pages are touched)."""
        NX, NY = self.shape
        if not (0 <= x0 and x0 + nx <= NX and 0 <= y0 and y0 + ny <= NY):
            raise ValueError(
                f"window [{x0}:{x0 + nx}, {y0}:{y0 + ny}] outside the "
                f"store shape {self.shape}"
            )
        data = self.heights("r")
        return np.array(data[x0:x0 + nx, y0:y0 + ny], dtype=float)

    def surface(self, provenance: Optional[Dict[str, Any]] = None) -> Surface:
        """The store as a :class:`Surface` with memmap-backed heights.

        The heights stay on disk (``Surface`` skips its eager finite
        scan for memmaps); statistics accessors will page data in as
        touched.
        """
        from ..core.grid import Grid2D

        nx, ny = self.shape
        dx = float(self.manifest["dx"])
        dy = float(self.manifest["dy"])
        grid = Grid2D(nx=nx, ny=ny, lx=nx * dx, ly=ny * dy)
        ox, oy = self.origin
        prov = {"store": self.progress_summary()}
        if provenance:
            prov.update(provenance)
        return Surface(
            heights=self.heights("r"), grid=grid,
            origin=(ox * dx, oy * dy), provenance=prov,
        )

    # -- accounting --------------------------------------------------------
    def progress_summary(self) -> Dict[str, Any]:
        return {
            "path": str(self.path),
            "chunks_total": self.chunks_total,
            "chunks_done": int(self.done.sum()),
        }

    def summary(self) -> Dict[str, Any]:
        """The CLI/status view of this store."""
        nx, ny = self.shape
        return {
            "path": str(self.path),
            "format": self.manifest["format"],
            "shape": [nx, ny],
            "chunk": list(self.chunk_shape),
            "dtype": _DTYPE.str,
            "nbytes": self.nbytes,
            "chunks_total": self.chunks_total,
            "chunks_done": int(self.done.sum()),
            "fraction_done": self.fraction_done,
            "dx": self.manifest["dx"],
            "dy": self.manifest["dy"],
            "origin": list(self.origin),
        }

    # -- async writeback ---------------------------------------------------
    def writer(self, queue_depth: int = 2,
               persist_interval_s: float = 0.5) -> "StoreWriter":
        """A :class:`StoreWriter` draining into this store."""
        return StoreWriter(self, queue_depth=queue_depth,
                           persist_interval_s=persist_interval_s)


class StoreWriter:
    """Async double-buffered writeback into a :class:`SurfaceStore`.

    Producers :meth:`submit` finished windows; a background thread
    writes them and marks + persists chunk completion *after* each
    durable write, so the bitmap never claims data that is not on
    disk.  The queue is bounded (``queue_depth``, default 2 — classic
    double buffering): when the disk cannot keep up, :meth:`submit`
    blocks, applying backpressure to the compute side instead of
    buffering unbounded tiles in RAM.

    A write failure is remembered, subsequent submissions are drained
    without writing (so producers never deadlock on a full queue), and
    the error re-raises from the next :meth:`submit` or from
    :meth:`close`.

    Durability boundary: chunk data reaches the OS page cache as each
    write syscall returns, which makes it visible to any other process
    and safe against *process* crashes (the fault model of
    :mod:`repro.jobs`).  Progress (bitmap + manifest) is persisted at
    most every ``persist_interval_s`` seconds rather than per chunk —
    two fsynced atomic renames per chunk would dominate small-chunk
    runs — and once more on :meth:`close`.  A hard kill can therefore
    lose at most the last interval's *marks* (never data): the bitmap
    undercounts and resume recomputes a few chunks.  Power-failure
    durability of the heights themselves is the explicit
    :meth:`SurfaceStore.flush` / :meth:`SurfaceStore.close` fsync.

    Obs metrics: ``store.queue_depth`` (gauge), ``store.flush_seconds``
    and ``store.backpressure_seconds`` (histograms),
    ``store.bytes_written`` and ``store.chunks_written`` (counters).
    """

    def __init__(self, store: SurfaceStore, queue_depth: int = 2,
                 persist_interval_s: float = 0.5) -> None:
        if queue_depth < 1:
            raise ValueError("queue_depth must be >= 1")
        self.store = store
        self._persist_interval = float(persist_interval_s)
        self._last_persist = time.monotonic()
        self._q: "queue.Queue[Optional[Tuple[Optional[int], int, int, np.ndarray]]]" = (
            queue.Queue(maxsize=queue_depth)
        )
        self._error: Optional[BaseException] = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._run, name="store-writer", daemon=True
        )
        self._thread.start()

    # -- producer side -----------------------------------------------------
    def submit(self, index: Optional[int], x0: int, y0: int,
               values: np.ndarray) -> None:
        """Queue one window for writeback (blocks when the queue is full).

        ``index`` is the chunk to mark done after the write, or
        ``None`` to only write the window (chunks fully covered by it
        are still marked).  The caller must hand over ownership of
        ``values`` — do not mutate it afterwards.
        """
        if self._closed:
            raise RuntimeError("writer is closed")
        if self._error is not None:
            raise self._error
        if obs.enabled():
            t0 = time.perf_counter()
            self._q.put((index, x0, y0, values))
            obs.observe("store.backpressure_seconds",
                        time.perf_counter() - t0)
            obs.set_gauge("store.queue_depth", self._q.qsize())
        else:
            self._q.put((index, x0, y0, values))

    def close(self, raise_pending: bool = True) -> None:
        """Drain the queue, persist progress, and stop the thread.

        With ``raise_pending`` (the default) a deferred write error
        re-raises here; pass ``False`` on an unwinding error path so
        the original exception is not masked.
        """
        if not self._closed:
            self._closed = True
            self._q.put(None)
            self._thread.join()
            # Persist even after an error: marks only exist for chunks
            # whose write completed, so the bitmap is always truthful.
            self.store.persist_progress()
        if raise_pending and self._error is not None:
            raise self._error

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type: Any, *exc: Any) -> None:
        self.close(raise_pending=exc_type is None)

    # -- consumer side -----------------------------------------------------
    def _run(self) -> None:
        while True:
            item = self._q.get()
            if item is None:
                return
            if self._error is not None:
                continue  # drain without writing; producers must not block
            index, x0, y0, values = item
            try:
                t0 = time.perf_counter()
                nbytes = self.store.write_window(x0, y0, values)
                if index is not None:
                    self.store.mark_done(index)
                now = time.monotonic()
                if now - self._last_persist >= self._persist_interval:
                    self.store.persist_progress()
                    self._last_persist = now
                if obs.enabled():
                    obs.observe("store.flush_seconds",
                                time.perf_counter() - t0)
                    obs.add("store.bytes_written", nbytes)
                    obs.add("store.chunks_written")
                    obs.set_gauge("store.queue_depth", self._q.qsize())
            except BaseException as exc:  # remembered, re-raised at close
                self._error = exc


def stream_to_store(
    generator: Any,
    noise: Any,
    store: SurfaceStore,
    *,
    queue_depth: int = 2,
) -> SurfaceStore:
    """Generate every unfinished chunk of ``store`` straight to disk.

    The streaming analogue of
    :func:`repro.parallel.executor.generate_tiled` with ``out=store``:
    chunks already marked done in the bitmap are skipped, so calling
    this on a partially-written store *is* resume.  Compute and
    writeback overlap through a :class:`StoreWriter`.  Memory use is
    one chunk plus the writer queue, independent of the store size.
    """
    from ..core.api import split_result  # local: keep io import-light

    ox, oy = store.origin
    writer = store.writer(queue_depth=queue_depth)
    try:
        for index in range(store.chunks_total):
            if store.done[index]:
                continue
            x0, y0, nx, ny = store.chunk_window(index)
            out = generator.generate_window(noise, ox + x0, oy + y0, nx, ny)
            heights, _prov = split_result(out)
            writer.submit(index, x0, y0, heights)
    except BaseException:
        writer.close(raise_pending=False)
        raise
    writer.close()
    return store


def iter_chunks(store: SurfaceStore) -> Iterator[Tuple[int, int, int, int, int]]:
    """Yield ``(index, x0, y0, nx, ny)`` over the store's chunk grid."""
    for index in range(store.chunks_total):
        x0, y0, nx, ny = store.chunk_window(index)
        yield (index, x0, y0, nx, ny)
