"""Surface persistence and rendering: NPZ, ESRI ASCII grid, PGM/PPM."""

from .asciigrid import load_ascii_grid, save_ascii_grid
from .atomic import atomic_write_bytes, atomic_write_json, atomic_write_npz
from .npzio import load_surface, save_surface
from .objmesh import save_obj
from .store import (
    StoreCorrupt,
    StoreWriter,
    SurfaceStore,
    stream_to_store,
)
from .streamed import load_streamed_surface, stream_to_npy
from .pgm import (
    ascii_preview,
    render_gray,
    render_hillshade,
    render_terrain,
    write_pgm,
    write_ppm,
)

__all__ = [
    "save_surface", "load_surface", "save_obj",
    "save_ascii_grid", "load_ascii_grid",
    "atomic_write_bytes", "atomic_write_json", "atomic_write_npz",
    "SurfaceStore", "StoreWriter", "StoreCorrupt", "stream_to_store",
    "stream_to_npy", "load_streamed_surface",
    "write_pgm", "write_ppm", "render_gray", "render_hillshade",
    "render_terrain", "ascii_preview",
]
