"""Shared-spectrum request batching for the serve front door.

Concurrent small requests usually repeat themselves: many clients
asking for realisations of the *same* spectrum (different seeds are a
different group; same seed + same window means the same bytes, which
dedups to one compute).  The batched engine
(:func:`repro.core.convolution.apply_kernels_valid`) was built for
exactly this shape — one forward FFT per overlap-save block shared by
every kernel — so the batcher drains the queue, groups compatible
requests, and runs each group through **one** engine pass instead of
one pass per request.

Bit-identity contract
---------------------
A request only joins a group whose members share the noise plane
``(seed, block)``, the output window, the engine precision, and the
kernel *geometry* ``(shape, centre)``.  Equal shapes and centres make
the batch's :func:`~repro.core.engine.common_margins` equal every
member's own margins, so the noise window, block geometry and wrap-free
slices are exactly those of a solo
:meth:`~repro.core.convolution.ConvolutionGenerator.generate_window`
call — the batched heights are bit-identical to sequential direct
generation on both engines (see the ``apply_kernels_valid`` contract).
Kernels that are *value*-identical too (same ``plan_key`` and scale)
collapse to a single inverse transform whose output all their requests
share.

The kernel-plan cache is the process-global
:data:`repro.core.engine.plan_cache`, so plans warm up across requests
and across batch groups.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.convolution import (
    apply_kernels_valid,
    noise_window_for,
    select_engine,
)
from ..core.rng import BlockNoise

__all__ = ["BatchItem", "Batcher", "group_key"]


@dataclass
class BatchItem:
    """One queued small request.

    ``on_done(heights, meta)`` / ``on_error(exc)`` fire on the batcher
    thread once the group executes; ``heights`` is a read-only array.
    """

    generator: Any              # ConvolutionGenerator
    seed: int
    noise_block: Optional[int]
    window: Tuple[int, int, int, int]          # (x0, y0, nx, ny)
    on_done: Callable[[np.ndarray, Dict[str, Any]], None]
    on_error: Callable[[BaseException], None]


def group_key(item: BatchItem) -> tuple:
    """Requests with equal keys are bit-safe to run as one engine pass."""
    kernel = item.generator.kernel
    engine = item.generator.engine
    if engine == "auto":
        # resolve the dispatch now so "auto" and an explicit equal
        # engine land in the same group (the choice is a pure function
        # of the kernel footprint)
        engine = select_engine(kernel.shape)
    return (
        item.seed,
        item.noise_block,
        item.window,
        kernel.shape,
        kernel.cx,
        kernel.cy,
        engine,
        np.dtype(item.generator.dtype).str,
    )


def _kernel_identity(kernel) -> tuple:
    """Requests with equal kernel identities share one output array."""
    return (kernel.plan_key, kernel.shape, kernel.cx, kernel.cy,
            kernel.plan_scale)


class Batcher:
    """Collect small requests for ``linger_s`` and run them grouped.

    One daemon thread owns the queue: it blocks for the first item,
    lingers briefly so concurrent submitters can pile on, then drains
    and executes group by group.  Lingering trades a bounded latency
    floor for batching opportunity; the default is a few milliseconds —
    well under one small engine pass — and tests/benches widen it to
    make batching deterministic.
    """

    def __init__(self, *, linger_s: float = 0.005, max_batch: int = 64) -> None:
        if linger_s < 0:
            raise ValueError(f"linger_s must be >= 0, got {linger_s}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.linger_s = float(linger_s)
        self.max_batch = int(max_batch)
        self._queue: "queue.Queue[Optional[BatchItem]]" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._closed = False

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._run, name="serve-batcher", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._closed = True
        self._queue.put(None)
        self._thread.join(timeout=10.0)
        self._thread = None

    def submit(self, item: BatchItem) -> None:
        if self._closed:
            raise RuntimeError("batcher is stopped")
        self._queue.put(item)

    # -- batcher thread ------------------------------------------------

    def _run(self) -> None:
        while True:
            first = self._queue.get()
            if first is None:
                return
            batch = [first]
            deadline = time.monotonic() + self.linger_s
            while len(batch) < self.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0 and self._queue.empty():
                    break
                try:
                    item = self._queue.get(timeout=max(remaining, 0.0))
                except queue.Empty:
                    break
                if item is None:
                    self._drain_error(batch, RuntimeError("batcher stopped"))
                    return
                batch.append(item)
            groups: Dict[tuple, List[BatchItem]] = {}
            for item in batch:
                groups.setdefault(group_key(item), []).append(item)
            for members in groups.values():
                try:
                    self._execute(members)
                except BaseException as exc:  # deliver, keep serving
                    self._drain_error(members, exc)

    @staticmethod
    def _drain_error(items: List[BatchItem], exc: BaseException) -> None:
        for item in items:
            try:
                item.on_error(exc)
            except Exception:
                pass

    def _execute(self, members: List[BatchItem]) -> None:
        """One engine pass for one compatible group."""
        rep = members[0]
        x0, y0, nx, ny = rep.window
        # distinct kernel values: value-equal kernels share one inverse
        kernels: List[Any] = []
        positions: List[int] = []          # member -> kernel index
        seen: Dict[tuple, int] = {}
        for item in members:
            kernel = item.generator.kernel
            identity = _kernel_identity(kernel)
            idx = seen.get(identity)
            if idx is None:
                idx = len(kernels)
                seen[identity] = idx
                kernels.append(kernel)
            positions.append(idx)
        engine = rep.generator.engine
        if engine == "auto":
            engine = select_engine(kernels[0].shape)
        noise_kwargs: Dict[str, Any] = {"seed": rep.seed}
        if rep.noise_block is not None:
            noise_kwargs["block"] = rep.noise_block
        noise = BlockNoise(**noise_kwargs)
        wx0, wy0, wnx, wny = noise_window_for(kernels[0], x0, y0, nx, ny)
        window = noise.window(wx0, wy0, wnx, wny)
        with obs.trace("serve.batch", {
            "requests": len(members), "kernels": len(kernels),
        } if obs.enabled() else None):
            outs = apply_kernels_valid(
                kernels, window, engine=engine,
                dtype=rep.generator.dtype,
            )
        obs.add("serve.batch.groups")
        obs.add("serve.batch.requests", len(members))
        obs.add("serve.batch.kernels", len(kernels))
        meta = {
            "batched_with": len(members),
            "distinct_kernels": len(kernels),
            "engine": engine,
            "window": [x0, y0, nx, ny],
        }
        for item, idx in zip(members, positions):
            heights = outs[idx]
            heights.flags.writeable = False  # shared across requests
            item.on_done(heights, dict(meta))
