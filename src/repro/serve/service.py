"""``SurfaceService``: the serve front door's HTTP-free core.

Everything the HTTP layer does is a thin translation onto this class,
so the whole job lifecycle — spec validation, tenant admission, small-
request batching, store-backed big jobs, chunk reads — is testable
without sockets.

Job taxonomy
------------
*Small* jobs (single-tile convolution specs at or below
``ServeConfig.small_max_elems`` output elements, no store) run through
the :class:`~repro.serve.batch.Batcher`: concurrent requests sharing a
spectrum collapse onto one engine pass and the results live in RAM.

*Big* jobs run through the :mod:`repro.jobs` checkpoint layer on a
thread pool: each gets a checkpoint directory (making every serve job
resumable with ``repro-rrs job resume``) and — above
``ServeConfig.store_threshold_elems`` or when the spec names a
``store_path`` — an out-of-core :class:`~repro.io.store.SurfaceStore`
sink, from which clients range-read chunks without the server ever
materialising the surface.

Admission control is per tenant (the ``X-Tenant`` header upstream):
at most ``tenant_max_active`` jobs of a tenant execute concurrently and
at most ``tenant_max_queued`` more may wait; beyond that, submission
raises :class:`TenantBusy`, which the HTTP layer maps to
``429 Too Many Requests`` + ``Retry-After``.

Heights served from a store are **bit-identical** to a direct
:func:`~repro.parallel.executor.generate_tiled` run of the same spec,
and batched small results are bit-identical to solo windowed
generation — the spec pins the bytes, the execution strategy never
does.
"""

from __future__ import annotations

import io
import json
import threading
import time
import uuid
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from .. import obs
from ..core.spec import GenerationSpec, SpecError
from ..dist.status import STATUS_SCHEMA
from ..io.store import SurfaceStore
from .batch import Batcher, BatchItem

__all__ = ["ServeConfig", "SurfaceService", "TenantBusy", "JOB_STATES"]

JOB_STATES = ("queued", "running", "complete", "failed")


class TenantBusy(Exception):
    """Per-tenant admission limits are exhausted; retry later."""

    def __init__(self, tenant: str, retry_after_s: float, detail: str) -> None:
        super().__init__(detail)
        self.tenant = tenant
        self.retry_after_s = retry_after_s


@dataclass
class ServeConfig:
    """Service tuning knobs (all defaults are test-friendly)."""

    data_dir: Path
    tenant_max_active: int = 2       # concurrently executing jobs/tenant
    tenant_max_queued: int = 8       # additionally waiting jobs/tenant
    retry_after_s: float = 1.0       # advertised backoff on 429
    batch_linger_s: float = 0.005    # small-request pile-on window
    batch_max: int = 64              # largest single engine pass
    small_max_elems: int = 1 << 18   # <= 512^2 outputs are batch-eligible
    store_threshold_elems: int = 1 << 24   # > 16M elems auto-stream to store
    workers: int = 2                 # big-job thread pool size
    backend: str = "serial"          # inner backend for big jobs
    inner_workers: Optional[int] = None


@dataclass
class _Job:
    """Mutable job record; guarded by the service lock."""

    id: str
    tenant: str
    spec: GenerationSpec
    small: bool
    state: str = "queued"
    created_s: float = field(default_factory=time.monotonic)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    error: Optional[str] = None
    error_field: Optional[str] = None
    tiles_total: int = 1
    tiles_done: int = 0
    result: Optional[np.ndarray] = None
    result_meta: Dict[str, Any] = field(default_factory=dict)
    store_dir: Optional[Path] = None
    checkpoint_dir: Optional[Path] = None
    reader: Optional[SurfaceStore] = None
    verify_report: Optional[Dict[str, Any]] = None


def _utc_stamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


class SurfaceService:
    """Job manager behind the serve HTTP API (see module docstring)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.data_dir = Path(config.data_dir)
        (self.data_dir / "jobs").mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._jobs: "OrderedDict[str, _Job]" = OrderedDict()
        self._pending: List[_Job] = []          # big jobs awaiting a slot
        self._running: Dict[str, int] = {}      # tenant -> active count
        self._pool = ThreadPoolExecutor(
            max_workers=config.workers, thread_name_prefix="serve-job"
        )
        self._batcher = Batcher(
            linger_s=config.batch_linger_s, max_batch=config.batch_max
        )
        self._batcher.start()
        self._generators: "OrderedDict[str, Any]" = OrderedDict()
        self._started_s = time.monotonic()
        self._started_at = _utc_stamp()
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        """Stop accepting work, drain the batcher, release readers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._batcher.stop()
        self._pool.shutdown(wait=True)
        with self._lock:
            for job in self._jobs.values():
                if job.reader is not None:
                    job.reader.close()
                    job.reader = None

    # -- submission ----------------------------------------------------

    def submit(self, payload: Any, tenant: str = "public") -> Dict[str, Any]:
        """Admit one spec document; returns the job document.

        Raises :class:`~repro.core.spec.SpecError` on an invalid spec
        and :class:`TenantBusy` when the tenant's limits are exhausted.
        """
        if isinstance(payload, (bytes, str)):
            spec = GenerationSpec.from_json(
                payload.decode() if isinstance(payload, bytes) else payload
            )
        elif isinstance(payload, GenerationSpec):
            spec = payload
        else:
            spec = GenerationSpec.from_dict(payload)
        if spec.faults:
            raise SpecError("faults", "fault injection is not accepted "
                                      "over the serve API")
        spec = self._normalise(spec)
        job = _Job(
            id=uuid.uuid4().hex[:12],
            tenant=str(tenant or "public"),
            spec=spec,
            small=self._batch_eligible(spec),
            tiles_total=len(spec.tile_plan()),
        )
        with self._lock:
            if self._closed:
                raise RuntimeError("service is shut down")
            self._admit(job.tenant)
            self._jobs[job.id] = job
            if job.small:
                self._running[job.tenant] = (
                    self._running.get(job.tenant, 0) + 1
                )
            else:
                self._pending.append(job)
        obs.event("serve.submit", job=job.id, tenant=job.tenant,
                  small=job.small, tiles=job.tiles_total)
        obs.add("serve.jobs_submitted")
        if job.small:
            self._submit_small(job)
        else:
            self._pump()
        return self.job_doc(job.id)

    def _admit(self, tenant: str) -> None:
        """Enforce the per-tenant inflight ceiling (lock held)."""
        limit = (self.config.tenant_max_active
                 + self.config.tenant_max_queued)
        inflight = sum(
            1 for j in self._jobs.values()
            if j.tenant == tenant and j.state in ("queued", "running")
        )
        if inflight >= limit:
            obs.add("serve.rejected_busy")
            raise TenantBusy(
                tenant, self.config.retry_after_s,
                f"tenant {tenant!r} has {inflight} jobs in flight "
                f"(limit {limit}); retry after "
                f"{self.config.retry_after_s:g}s",
            )

    def _normalise(self, spec: GenerationSpec) -> GenerationSpec:
        """The effective spec the service executes.

        Serve is always *windowed* (tiled over the unbounded noise
        plane): a spec without a plan gets the single-tile plan
        covering its grid, so every served surface is bit-identical to
        ``generate_tiled`` of the same spec regardless of size — the
        one-shot periodic path is a CLI/library concern, not a serving
        mode.  Big outputs with no explicit ``store_path`` are assigned
        an out-of-core store under the service data dir.
        """
        if spec.plan is None:
            nx, ny = spec.grid_shape
            spec = replace(spec, plan={
                "total_nx": nx, "total_ny": ny,
                "tile_nx": nx, "tile_ny": ny,
                "origin_x": 0, "origin_y": 0,
            })
        return spec

    def _batch_eligible(self, spec: GenerationSpec) -> bool:
        plan = spec.plan or {}
        single_tile = (plan.get("tile_nx", 0) >= plan.get("total_nx", 1)
                       and plan.get("tile_ny", 0) >= plan.get("total_ny", 1))
        nx, ny = spec.grid_shape
        return (spec.generator.get("kind") == "convolution"
                and single_tile
                and spec.store_path is None
                and plan.get("total_nx", nx) * plan.get("total_ny", ny)
                <= self.config.small_max_elems)

    # -- small (batched) path ------------------------------------------

    def _generator_for(self, spec: GenerationSpec) -> Any:
        """Per-recipe generator cache (kernel construction is not free;
        the kernel-plan cache underneath is process-global already)."""
        key = json.dumps(spec.generator, sort_keys=True)
        with self._lock:
            gen = self._generators.get(key)
            if gen is not None:
                self._generators.move_to_end(key)
                return gen
        gen = spec.build_generator()
        with self._lock:
            self._generators[key] = gen
            while len(self._generators) > 32:
                self._generators.popitem(last=False)
        return gen

    def _submit_small(self, job: _Job) -> None:
        plan = job.spec.plan
        window = (int(plan.get("origin_x", 0)), int(plan.get("origin_y", 0)),
                  int(plan["total_nx"]), int(plan["total_ny"]))
        job.state = "running"
        job.started_s = time.monotonic()

        def on_done(heights: np.ndarray, meta: Dict[str, Any]) -> None:
            with self._lock:
                job.result = heights
                job.result_meta = meta
                job.tiles_done = job.tiles_total
                self._finish(job, "complete")

        def on_error(exc: BaseException) -> None:
            with self._lock:
                job.error = repr(exc)
                self._finish(job, "failed")

        try:
            generator = self._generator_for(job.spec)
        except Exception as exc:
            with self._lock:
                job.error = repr(exc)
                self._finish(job, "failed")
            return
        self._batcher.submit(BatchItem(
            generator=generator,
            seed=job.spec.seed,
            noise_block=job.spec.noise_block,
            window=window,
            on_done=on_done,
            on_error=on_error,
        ))

    # -- big (jobs-layer) path -----------------------------------------

    def _pump(self) -> None:
        """Move pending big jobs into the pool within tenant limits."""
        to_start: List[_Job] = []
        with self._lock:
            remaining: List[_Job] = []
            for job in self._pending:
                if (self._running.get(job.tenant, 0)
                        < self.config.tenant_max_active):
                    self._running[job.tenant] = (
                        self._running.get(job.tenant, 0) + 1
                    )
                    to_start.append(job)
                else:
                    remaining.append(job)
            self._pending = remaining
        for job in to_start:
            self._pool.submit(self._run_big, job)

    def _run_big(self, job: _Job) -> None:
        from ..jobs import run_spec

        job_dir = self.data_dir / "jobs" / job.id
        job_dir.mkdir(parents=True, exist_ok=True)
        with self._lock:
            job.state = "running"
            job.started_s = time.monotonic()
            job.checkpoint_dir = job_dir / "ckpt"
        obs.event("serve.job.start", job=job.id, tenant=job.tenant)
        store: Optional[SurfaceStore] = None
        try:
            spec = job.spec
            plan = spec.tile_plan()
            nx, ny = plan.total_nx, plan.total_ny
            wants_store = (spec.store_path is not None
                           or nx * ny > self.config.store_threshold_elems)
            if wants_store:
                store_dir = Path(spec.store_path) if spec.store_path \
                    else job_dir / "store"
                generator = self._generator_for(spec) \
                    if spec.generator.get("kind") == "convolution" \
                    else spec.build_generator()
                grid = generator.grid
                store_meta: Dict[str, Any] = {"seed": spec.seed}
                if isinstance(spec.generator.get("spectrum"), dict):
                    store_meta["spectrum"] = spec.generator["spectrum"]
                store = SurfaceStore.create(
                    store_dir, shape=(nx, ny),
                    chunk=(plan.tile_nx, plan.tile_ny),
                    dx=grid.dx, dy=grid.dy, meta=store_meta,
                )
                with self._lock:
                    job.store_dir = store_dir

            def on_tile(_index: int, _tile) -> None:
                with self._lock:
                    job.tiles_done += 1

            surface = run_spec(
                spec, checkpoint=job.checkpoint_dir,
                backend=self.config.backend,
                workers=self.config.inner_workers,
                store=store, on_tile=on_tile,
            )
            with self._lock:
                job.tiles_done = job.tiles_total
                if store is None:
                    job.result = np.asarray(surface.heights)
                    job.result.flags.writeable = False
                job.result_meta = {"backend": self.config.backend}
                self._finish(job, "complete")
        except BaseException as exc:
            with self._lock:
                job.error = repr(exc)
                self._finish(job, "failed")
        finally:
            if store is not None:
                store.close()
            with self._lock:
                self._running[job.tenant] = max(
                    0, self._running.get(job.tenant, 0) - 1
                )
            self._pump()

    def _finish(self, job: _Job, state: str) -> None:
        """Terminal bookkeeping (lock held)."""
        job.state = state
        job.finished_s = time.monotonic()
        if job.small:
            self._running[job.tenant] = max(
                0, self._running.get(job.tenant, 0) - 1
            )
        obs.add("serve.jobs_" + state)
        obs.event("serve.job.finish", job=job.id, tenant=job.tenant,
                  state=state, error=job.error)

    # -- documents -----------------------------------------------------

    def _get(self, job_id: str) -> _Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"no such job {job_id!r}")
        return job

    def job_doc(self, job_id: str) -> Dict[str, Any]:
        """The ``GET /v1/jobs/{id}`` document."""
        job = self._get(job_id)
        with self._lock:
            nx, ny = job.spec.grid_shape
            doc: Dict[str, Any] = {
                "id": job.id,
                "tenant": job.tenant,
                "state": job.state,
                "small": job.small,
                "spec": job.spec.to_dict(),
                "shape": [nx, ny],
                "tiles": {"total": job.tiles_total, "done": job.tiles_done},
                "error": job.error,
                "elapsed_s": self._elapsed(job),
                "store": (str(job.store_dir)
                          if job.store_dir is not None else None),
                "checkpoint": (str(job.checkpoint_dir)
                               if job.checkpoint_dir is not None else None),
                "result": None,
            }
            if job.state == "complete":
                if job.result is not None:
                    doc["result"] = {"kind": "inline",
                                     "dtype": str(job.result.dtype),
                                     **job.result_meta}
                else:
                    doc["result"] = {"kind": "store", **job.result_meta}
        return doc

    def list_docs(self) -> List[Dict[str, Any]]:
        with self._lock:
            ids = list(self._jobs)
        return [self.job_doc(i) for i in ids]

    @staticmethod
    def _elapsed(job: _Job) -> Optional[float]:
        if job.started_s is None:
            return None
        end = job.finished_s if job.finished_s is not None else time.monotonic()
        return end - job.started_s

    def job_status_doc(self, job_id: str) -> Dict[str, Any]:
        """Per-job ``repro.obs.status/v1`` document (for ``repro top``)."""
        job = self._get(job_id)
        with self._lock:
            total = job.tiles_total
            done = job.tiles_done
            elapsed = self._elapsed(job)
            state = {"queued": "pending"}.get(job.state, job.state)
            rate = (done / elapsed) if elapsed and done else None
            eta = ((total - done) / rate) if rate else None
            return {
                "schema": STATUS_SCHEMA,
                "run_id": job.id,
                "state": state,
                "source": "serve",
                "tiles": {"total": total, "done": done,
                          "pending": total - done, "leased": None},
                "progress": (done / total) if total else 1.0,
                "throughput_tiles_per_s": rate,
                "eta_s": eta,
                "elapsed_s": elapsed,
                "lease": {},
                "workers": [],
            }

    def status_doc(self) -> Dict[str, Any]:
        """Service-level ``/status`` document.

        Same ``repro.obs.status/v1`` schema the dist coordinator
        serves — tiles aggregate over every admitted job — plus a
        ``serve`` block with queue/tenant detail, so one ``repro top``
        dashboard covers dist and serve runs alike.
        """
        with self._lock:
            jobs = list(self._jobs.values())
            counts = {s: 0 for s in JOB_STATES}
            tenants: Dict[str, Dict[str, int]] = {}
            total = done = 0
            for job in jobs:
                counts[job.state] += 1
                total += job.tiles_total
                done += job.tiles_done
                t = tenants.setdefault(job.tenant, {"inflight": 0,
                                                    "jobs": 0})
                t["jobs"] += 1
                if job.state in ("queued", "running"):
                    t["inflight"] += 1
            return {
                "schema": STATUS_SCHEMA,
                "run_id": "serve",
                "state": "running",
                "source": "serve",
                "started_at": self._started_at,
                "tiles": {"total": total, "done": done,
                          "pending": total - done, "leased": None},
                "progress": (done / total) if total else 1.0,
                "throughput_tiles_per_s": None,
                "eta_s": None,
                "elapsed_s": time.monotonic() - self._started_s,
                "lease": {},
                "workers": [],
                "serve": {
                    "jobs": counts,
                    "tenants": tenants,
                    "limits": {
                        "tenant_max_active": self.config.tenant_max_active,
                        "tenant_max_queued": self.config.tenant_max_queued,
                    },
                },
            }

    def metrics_doc(self) -> Dict[str, Any]:
        """``Metrics.as_dict()``-shaped mapping for ``/metrics``."""
        if obs.enabled():
            return obs.get_recorder().metrics.as_dict()
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def extra_gauges(self) -> Dict[str, float]:
        with self._lock:
            states = {s: 0 for s in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
        return {f"serve.jobs.{s}": float(n) for s, n in states.items()}

    # -- reading results -----------------------------------------------

    def _reader(self, job: _Job) -> SurfaceStore:
        """A read-only store handle for serving (memmap, pages only)."""
        with self._lock:
            if job.reader is None:
                if job.store_dir is None:
                    raise KeyError(f"job {job.id} has no store")
                job.reader = SurfaceStore.open(job.store_dir, "r",
                                               ledger=False)
            return job.reader

    def chunk_meta(self, job_id: str) -> Dict[str, Any]:
        """Chunk-grid geometry for range-reading clients."""
        job = self._get(job_id)
        if job.store_dir is None:
            raise KeyError(f"job {job.id} has no store (inline result)")
        store = self._reader(job)
        ck_nx, ck_ny = store.chunk_shape
        n_cx, n_cy = store.n_chunks
        return {
            "id": job.id,
            "shape": list(store.shape),
            "chunk": [ck_nx, ck_ny],
            "chunk_grid": [n_cx, n_cy],
            "chunks_total": store.chunks_total,
            "dtype": "float64",
        }

    def read_chunk(self, job_id: str, index: int
                   ) -> Tuple[bytes, Dict[str, Any]]:
        """One completed chunk's raw little-endian float64 C-order bytes.

        Reads through the store's read-only memmap: the server's
        resident footprint stays O(chunk), however large the surface.
        """
        job = self._get(job_id)
        store = self._reader(job)
        n_chunks = store.chunks_total
        if not (0 <= index < n_chunks):
            raise KeyError(
                f"chunk {index} outside grid of {n_chunks} chunks"
            )
        if job.state != "complete":
            store.refresh_done()
            if not bool(store.done[index]):
                raise LookupError(
                    f"chunk {index} is not complete yet"
                )
        x0, y0, cnx, cny = store.chunk_window(index)
        window = store.read_window(x0, y0, cnx, cny)
        data = np.ascontiguousarray(window, dtype="<f8").tobytes()
        obs.add("serve.chunks_read")
        return data, {"index": index, "x0": x0, "y0": y0,
                      "nx": cnx, "ny": cny, "dtype": "<f8"}

    def heights_file(self, job_id: str) -> Tuple[Path, int]:
        """``(path, size)`` of the raw ``heights.npy`` for range-reads."""
        job = self._get(job_id)
        if job.store_dir is None:
            raise KeyError(f"job {job.id} has no store (inline result)")
        store = self._reader(job)
        path = Path(store.heights_path)
        return path, path.stat().st_size

    def verify_doc(self, job_id: str) -> Dict[str, Any]:
        """``repro.verify/v1`` report for a completed job, computed lazily.

        The first call runs the streaming verification pass (out of core
        for store-backed jobs: the report is also persisted next to the
        job's checkpoint as ``verify.json``); subsequent calls return the
        cached document.  Incomplete jobs raise :class:`LookupError`
        (mapped to 409 + Retry-After by the server), unknown jobs
        :class:`KeyError` (404).
        """
        job = self._get(job_id)
        if job.state == "failed":
            raise LookupError(f"job {job.id} failed: {job.error}")
        if job.state != "complete":
            raise LookupError(f"job {job.id} is {job.state}")
        with self._lock:
            if job.verify_report is not None:
                return job.verify_report
        from ..core.spectra import spectrum_from_dict
        from ..verify import (REPORT_NAME, verify_heights, verify_store,
                              write_report)

        spectrum = None
        recipe = job.spec.generator.get("spectrum") \
            if isinstance(job.spec.generator, dict) else None
        if isinstance(recipe, dict):
            spectrum = spectrum_from_dict(recipe)
        if job.store_dir is not None:
            report = verify_store(self._reader(job), spectrum)
            if job.checkpoint_dir is not None:
                write_report(report, Path(job.checkpoint_dir) / REPORT_NAME)
        else:
            if job.result is None:
                raise KeyError(f"job {job.id} has no result to verify")
            grid = job.spec.build_generator().grid
            report = verify_heights(np.asarray(job.result), spectrum,
                                    dx=grid.dx, dy=grid.dy)
        doc = report.to_dict()
        doc["id"] = job.id
        with self._lock:
            if job.verify_report is None:
                job.verify_report = doc
        obs.add("serve.verifies")
        return job.verify_report

    def result_npy(self, job_id: str) -> bytes:
        """The completed surface as ``.npy`` bytes (inline jobs only).

        Store-backed jobs refuse: materialising them would defeat the
        out-of-core design — clients stream ``/chunks`` or ``/heights``
        instead.
        """
        job = self._get(job_id)
        if job.state == "failed":
            raise LookupError(f"job {job.id} failed: {job.error}")
        if job.state != "complete":
            raise LookupError(f"job {job.id} is {job.state}")
        if job.result is None:
            raise KeyError(
                f"job {job.id} streams from a store; use /chunks or "
                f"/heights instead of /result"
            )
        buf = io.BytesIO()
        np.save(buf, np.asarray(job.result))
        return buf.getvalue()
