"""Minimal asyncio HTTP/1.1 plumbing for the serve front door.

The repo's exposition endpoints (:mod:`repro.obs.httpd`) use stdlib
``http.server`` on a thread per scrape, which is right for a couple of
Prometheus pollers but not for a request front door that must multiplex
many slow readers (range-reads of multi-GB stores) over a few threads.
This module is the asyncio counterpart: a hand-rolled, dependency-free
request reader and response writer speaking enough HTTP/1.1 for the
serve API — request line, headers, ``Content-Length`` bodies,
keep-alive, and byte ranges.

Deliberately *not* here: chunked transfer encoding, TLS, pipelining,
compression.  A production deployment puts a reverse proxy in front;
this speaks exactly what ``curl``, ``urllib`` and the test-suite need.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

__all__ = ["HttpError", "Request", "read_request", "response_head",
           "parse_range", "STATUS_REASONS"]

#: Largest accepted request body (a spec document is a few KB; anything
#: bigger is a client error, not a workload).
MAX_BODY_BYTES = 1 << 20

#: Largest accepted request line + header block.
MAX_HEAD_BYTES = 1 << 16

STATUS_REASONS = {
    200: "OK",
    202: "Accepted",
    206: "Partial Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    416: "Range Not Satisfiable",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """An error reply with a status code and a JSON-able message.

    ``headers`` lets raisers attach reply headers — the tenant
    backpressure path uses it for ``Retry-After``.
    """

    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None,
                 **extra) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        self.extra = extra


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: str
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        conn = (self.header("connection") or "").lower()
        if conn == "close":
            return False
        return True  # HTTP/1.1 default


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Read one request off the stream; ``None`` on clean EOF.

    Raises :class:`HttpError` (400/413) on malformed input — the caller
    replies and closes — and ``asyncio.IncompleteReadError`` when the
    peer vanishes mid-request.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between requests
        raise HttpError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise HttpError(413, "request head too large")
    if len(head) > MAX_HEAD_BYTES:
        raise HttpError(413, "request head too large")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length {length_text!r}")
        if length < 0:
            raise HttpError(400, f"bad Content-Length {length}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes exceeds "
                                 f"the {MAX_BODY_BYTES} byte limit")
        body = await reader.readexactly(length)
    return Request(method=method.upper(), path=path, query=query,
                   headers=headers, body=body)


def response_head(status: int, headers: Dict[str, str]) -> bytes:
    """Serialise the status line + headers (callers append the body)."""
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def parse_range(header: Optional[str], size: int) -> Optional[Tuple[int, int]]:
    """Resolve a ``Range: bytes=`` header against ``size`` total bytes.

    Returns ``(offset, length)`` for a single satisfiable range,
    ``None`` when no range was requested (serve the whole entity), and
    raises ``HttpError(416)`` for unsatisfiable or multi-part ranges
    (multi-part is deliberately unsupported: chunk endpoints give
    clients aligned reads for free).
    """
    if header is None:
        return None
    if not header.startswith("bytes="):
        raise HttpError(416, f"unsupported range unit in {header!r}")
    spec = header[len("bytes="):]
    if "," in spec:
        raise HttpError(416, "multi-part ranges are not supported")
    start_text, sep, end_text = spec.partition("-")
    if not sep:
        raise HttpError(416, f"malformed range {header!r}")
    try:
        if not start_text:
            # suffix form: last N bytes
            length = int(end_text)
            if length <= 0:
                raise HttpError(416, f"empty range {header!r}")
            start = max(0, size - length)
            end = size - 1
        else:
            start = int(start_text)
            end = int(end_text) if end_text else size - 1
    except ValueError:
        raise HttpError(416, f"malformed range {header!r}")
    if start >= size or end < start:
        raise HttpError(416, f"range {header!r} outside entity "
                             f"of {size} bytes")
    end = min(end, size - 1)
    return start, end - start + 1
