"""The serve front door: an asyncio HTTP server over ``SurfaceService``.

Routing is a flat table of ``(method, path-pattern) -> handler``; every
handler translates one :class:`~repro.serve.service.SurfaceService`
call into a reply.  The event loop only ever parses requests, consults
the (lock-guarded, mostly O(1)) service bookkeeping, and streams bytes;
engine passes run on the batcher thread and big jobs on the service's
pool, so a slow surface never stalls another client's poll.

API (all JSON unless noted)::

    POST /v1/jobs                    submit a GenerationSpec  -> 202 job doc
    GET  /v1/jobs                    list job docs
    GET  /v1/jobs/{id}               one job doc
    GET  /v1/jobs/{id}/status        repro.obs.status/v1 doc (repro top)
    GET  /v1/jobs/{id}/chunks        chunk-grid geometry
    GET  /v1/jobs/{id}/chunks/{i}    raw <f8 C-order chunk bytes
    GET  /v1/jobs/{id}/heights       raw heights.npy, Range supported
    GET  /v1/jobs/{id}/result        .npy download (inline jobs only)
    GET  /status                     service-level status/v1 doc
    GET  /metrics                    Prometheus text
    GET  /health                     liveness

Tenancy rides on the ``X-Tenant`` request header (default ``public``);
exhausted tenants get ``429`` with ``Retry-After``.  Error bodies are
``{"error": ..., "status": ...}`` with ``field`` added for spec
validation failures.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from .. import obs
from ..core.spec import SpecError
from ..obs.export import prometheus_text
from .http import HttpError, Request, parse_range, read_request, response_head
from .service import SurfaceService, TenantBusy

__all__ = ["ServeServer", "start_server"]

#: Streamed-file write granularity: large enough to amortise syscalls,
#: small enough that ``drain()`` backpressure bounds per-client memory.
STREAM_CHUNK_BYTES = 1 << 20


class ServeServer:
    """One listening socket bound to one :class:`SurfaceService`."""

    def __init__(self, service: SurfaceService, *, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle -----------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        obs.event("serve.listen", host=self.host, port=self.port)
        return self.host, self.port

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- connection loop -----------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await self._reply_error(writer, exc)
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                try:
                    keep = await self._dispatch(request, writer)
                except HttpError as exc:
                    await self._reply_error(writer, exc)
                    keep = request.keep_alive
                except (ConnectionError, asyncio.CancelledError):
                    break
                except Exception as exc:  # never kill the acceptor
                    obs.event("serve.error", path=request.path,
                              error=repr(exc))
                    await self._reply_error(
                        writer, HttpError(500, f"internal error: {exc!r}")
                    )
                    keep = False
                if not keep or not request.keep_alive:
                    break
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        """Route one request; returns whether to keep the connection."""
        method, path = request.method, request.path.rstrip("/") or "/"
        parts = [p for p in path.split("/") if p]
        handler: Optional[Callable[..., Awaitable[bool]]] = None
        args: tuple = ()
        if path == "/health":
            handler = self._h_health
        elif path == "/status":
            handler = self._h_status
        elif path == "/metrics":
            handler = self._h_metrics
        elif parts[:2] == ["v1", "jobs"]:
            rest = parts[2:]
            if not rest:
                handler = (self._h_submit if method == "POST"
                           else self._h_list)
            elif len(rest) == 1:
                handler, args = self._h_job, (rest[0],)
            elif len(rest) == 2 and rest[1] == "status":
                handler, args = self._h_job_status, (rest[0],)
            elif len(rest) == 2 and rest[1] == "chunks":
                handler, args = self._h_chunk_meta, (rest[0],)
            elif len(rest) == 3 and rest[1] == "chunks":
                handler, args = self._h_chunk, (rest[0], rest[2])
            elif len(rest) == 2 and rest[1] == "heights":
                handler, args = self._h_heights, (rest[0],)
            elif len(rest) == 2 and rest[1] == "result":
                handler, args = self._h_result, (rest[0],)
            elif len(rest) == 2 and rest[1] == "verify":
                handler, args = self._h_verify, (rest[0],)
        if handler is None:
            raise HttpError(404, f"no route for {request.path!r}")
        if method not in ("GET", "POST", "HEAD"):
            raise HttpError(405, f"method {method} not allowed")
        # bound methods compare by underlying function, not identity
        if method == "POST" and handler.__func__ is not ServeServer._h_submit:
            raise HttpError(405, "POST only accepted at /v1/jobs")
        return await handler(request, writer, *args)

    # -- reply helpers -------------------------------------------------

    @staticmethod
    async def _reply(writer: asyncio.StreamWriter, status: int, body: bytes,
                     *, content_type: str = "application/json",
                     headers: Optional[Dict[str, str]] = None,
                     head_only: bool = False) -> bool:
        hdrs = {
            "Content-Type": content_type,
            "Content-Length": str(len(body)),
            "Accept-Ranges": "bytes",
        }
        if headers:
            hdrs.update(headers)
        writer.write(response_head(status, hdrs))
        if not head_only:
            writer.write(body)
        await writer.drain()
        return True

    async def _reply_json(self, writer: asyncio.StreamWriter, status: int,
                          doc: Any, *, headers: Optional[Dict[str, str]] = None,
                          head_only: bool = False) -> bool:
        body = (json.dumps(doc, indent=2, sort_keys=True) + "\n").encode()
        return await self._reply(writer, status, body, headers=headers,
                                 head_only=head_only)

    async def _reply_error(self, writer: asyncio.StreamWriter,
                           exc: HttpError) -> None:
        doc = {"error": exc.message, "status": exc.status, **exc.extra}
        try:
            await self._reply_json(writer, exc.status, doc,
                                   headers=exc.headers)
        except (ConnectionError, OSError):
            pass

    @staticmethod
    def _tenant(request: Request) -> str:
        return request.header("x-tenant") or "public"

    # -- handlers ------------------------------------------------------

    async def _h_health(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        return await self._reply_json(writer, 200, {"ok": True},
                                      head_only=request.method == "HEAD")

    async def _h_status(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        return await self._reply_json(writer, 200, self.service.status_doc(),
                                      head_only=request.method == "HEAD")

    async def _h_metrics(self, request: Request,
                         writer: asyncio.StreamWriter) -> bool:
        text = prometheus_text(self.service.metrics_doc(),
                               extra_gauges=self.service.extra_gauges())
        return await self._reply(
            writer, 200, text.encode(),
            content_type="text/plain; version=0.0.4",
            head_only=request.method == "HEAD",
        )

    async def _h_submit(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        if not request.body:
            raise HttpError(400, "POST /v1/jobs requires a JSON spec body")
        loop = asyncio.get_running_loop()
        try:
            doc = await loop.run_in_executor(
                None, self.service.submit, request.body,
                self._tenant(request),
            )
        except SpecError as exc:
            raise HttpError(400, str(exc), field=exc.field)
        except TenantBusy as exc:
            raise HttpError(
                429, str(exc),
                headers={"Retry-After": f"{exc.retry_after_s:g}"},
                tenant=exc.tenant,
            )
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}")
        return await self._reply_json(writer, 202, doc)

    async def _h_list(self, request: Request,
                      writer: asyncio.StreamWriter) -> bool:
        return await self._reply_json(
            writer, 200, {"jobs": self.service.list_docs()},
            head_only=request.method == "HEAD",
        )

    async def _h_job(self, request: Request, writer: asyncio.StreamWriter,
                     job_id: str) -> bool:
        try:
            doc = self.service.job_doc(job_id)
        except KeyError as exc:
            raise HttpError(404, str(exc))
        return await self._reply_json(writer, 200, doc,
                                      head_only=request.method == "HEAD")

    async def _h_job_status(self, request: Request,
                            writer: asyncio.StreamWriter,
                            job_id: str) -> bool:
        try:
            doc = self.service.job_status_doc(job_id)
        except KeyError as exc:
            raise HttpError(404, str(exc))
        return await self._reply_json(writer, 200, doc,
                                      head_only=request.method == "HEAD")

    async def _h_chunk_meta(self, request: Request,
                            writer: asyncio.StreamWriter,
                            job_id: str) -> bool:
        try:
            doc = self.service.chunk_meta(job_id)
        except KeyError as exc:
            raise HttpError(404, str(exc))
        return await self._reply_json(writer, 200, doc,
                                      head_only=request.method == "HEAD")

    async def _h_chunk(self, request: Request, writer: asyncio.StreamWriter,
                       job_id: str, index_text: str) -> bool:
        try:
            index = int(index_text)
        except ValueError:
            raise HttpError(400, f"bad chunk index {index_text!r}")
        loop = asyncio.get_running_loop()
        try:
            data, meta = await loop.run_in_executor(
                None, self.service.read_chunk, job_id, index
            )
        except KeyError as exc:
            raise HttpError(404, str(exc))
        except LookupError as exc:
            # chunk exists but is not computed yet: retryable conflict
            raise HttpError(409, str(exc),
                            headers={"Retry-After": "1"})
        headers = {
            "X-Chunk-X0": str(meta["x0"]), "X-Chunk-Y0": str(meta["y0"]),
            "X-Chunk-NX": str(meta["nx"]), "X-Chunk-NY": str(meta["ny"]),
            "X-Dtype": meta["dtype"],
        }
        return await self._reply(writer, 200, data,
                                 content_type="application/octet-stream",
                                 headers=headers,
                                 head_only=request.method == "HEAD")

    async def _h_heights(self, request: Request,
                         writer: asyncio.StreamWriter, job_id: str) -> bool:
        """Range-read the raw heights file, streamed in bounded pieces.

        The file is read incrementally and written behind ``drain()``,
        so serving any slice of an arbitrarily large store costs the
        server O(STREAM_CHUNK_BYTES) memory per client.
        """
        try:
            path, size = self.service.heights_file(job_id)
        except KeyError as exc:
            raise HttpError(404, str(exc))
        rng = parse_range(request.header("range"), size)
        if rng is None:
            status, offset, length = 200, 0, size
            headers = {"Content-Length": str(size)}
        else:
            offset, length = rng
            status = 206
            headers = {
                "Content-Length": str(length),
                "Content-Range": f"bytes {offset}-{offset + length - 1}"
                                 f"/{size}",
            }
        headers["Content-Type"] = "application/octet-stream"
        headers["Accept-Ranges"] = "bytes"
        writer.write(response_head(status, headers))
        if request.method != "HEAD":
            loop = asyncio.get_running_loop()
            with open(path, "rb") as fh:
                fh.seek(offset)
                remaining = length
                while remaining > 0:
                    piece = await loop.run_in_executor(
                        None, fh.read, min(STREAM_CHUNK_BYTES, remaining)
                    )
                    if not piece:
                        break  # truncated file; peer sees a short body
                    writer.write(piece)
                    await writer.drain()
                    remaining -= len(piece)
        await writer.drain()
        return True

    async def _h_result(self, request: Request,
                        writer: asyncio.StreamWriter, job_id: str) -> bool:
        loop = asyncio.get_running_loop()
        try:
            body = await loop.run_in_executor(
                None, self.service.result_npy, job_id
            )
        except KeyError as exc:
            raise HttpError(404, str(exc))
        except LookupError as exc:
            raise HttpError(409, str(exc), headers={"Retry-After": "1"})
        return await self._reply(writer, 200, body,
                                 content_type="application/octet-stream",
                                 head_only=request.method == "HEAD")

    async def _h_verify(self, request: Request,
                        writer: asyncio.StreamWriter, job_id: str) -> bool:
        # the streaming pass can take a moment on big stores — keep it
        # off the event loop (the result is cached in the job record)
        loop = asyncio.get_running_loop()
        try:
            doc = await loop.run_in_executor(
                None, self.service.verify_doc, job_id
            )
        except KeyError as exc:
            raise HttpError(404, str(exc))
        except LookupError as exc:
            raise HttpError(409, str(exc), headers={"Retry-After": "1"})
        return await self._reply_json(writer, 200, doc,
                                      head_only=request.method == "HEAD")


async def start_server(service: SurfaceService, *, host: str = "127.0.0.1",
                       port: int = 0) -> ServeServer:
    """Create, bind and return a running :class:`ServeServer`."""
    server = ServeServer(service, host=host, port=port)
    await server.start()
    return server
