"""Surface-as-a-service: an async HTTP front door over the engine.

``repro.serve`` turns the library into a long-lived server: clients
POST a versioned :class:`~repro.core.spec.GenerationSpec` document and
get a job id; they poll job state (``repro.obs.status/v1`` documents,
so ``repro top`` works unchanged), then range-read the finished surface
chunk by chunk straight off the :class:`~repro.io.store.SurfaceStore`
memmap — the server never materialises a big surface in RAM.

Layered bottom-up:

``http``     dependency-free asyncio HTTP/1.1 plumbing
``batch``    shared-spectrum batching of concurrent small requests
             onto one ``apply_kernels_valid`` pass (bit-identical to
             solo generation — see the module docstring for the proof
             obligations)
``service``  the HTTP-free job manager: spec validation, per-tenant
             admission (429 + Retry-After upstream), checkpointed big
             jobs, chunk reads
``server``   the asyncio router binding it all to a socket

Start one from the CLI (``repro-rrs serve``) or programmatically::

    from repro.serve import ServeConfig, SurfaceService, start_server

    service = SurfaceService(ServeConfig(data_dir="/tmp/serve"))
    server = await start_server(service, port=8787)
"""

from .batch import BatchItem, Batcher, group_key
from .http import HttpError, Request, parse_range
from .server import ServeServer, start_server
from .service import JOB_STATES, ServeConfig, SurfaceService, TenantBusy

__all__ = [
    "BatchItem",
    "Batcher",
    "group_key",
    "HttpError",
    "Request",
    "parse_range",
    "ServeServer",
    "start_server",
    "JOB_STATES",
    "ServeConfig",
    "SurfaceService",
    "TenantBusy",
]
