"""Command-line interface: ``repro-rrs`` / ``python -m repro``.

Subcommands
-----------
``generate``
    Homogeneous surface from spectrum parameters; writes NPZ and/or
    PGM/PPM renders and prints summary statistics.
``figure``
    Regenerate one of the paper's Figures 1-4 at a chosen resolution.
``job``
    Fault-tolerant checkpointed generation: ``job run`` starts a
    tiled/strip job that records progress durably, ``job resume``
    finishes an interrupted one with bit-identical heights, and
    ``job status`` summarises a checkpoint as JSON.
``inspect``
    Print statistics (and optionally an ASCII preview) of a saved
    surface.
``validate``
    Run the paper's DFT(w)~rho accuracy check and variance closure for a
    spectrum/grid combination.
``classify``
    Fit all spectral families to a saved surface and report the best
    match (family, h, cl).
``mesh``
    Export a saved surface as a Wavefront OBJ mesh.
``profile1d``
    Generate a 1D rough profile (direct 1D convolution method).
``serve``
    Surface-as-a-service: an asyncio HTTP front door that accepts
    versioned ``GenerationSpec`` documents (POST /v1/jobs), batches
    concurrent small same-spectrum requests onto one engine pass, and
    range-serves big surfaces chunk-by-chunk from a ``SurfaceStore``.
``top``
    Live status view of a running distributed generation or serve
    endpoint: polls a ``/status`` endpoint (or falls back to reading a
    ``SurfaceStore`` bitmap directly) and renders a refreshing
    progress/worker table.

The ``generate``, ``figure`` and ``job run`` subcommands share one
execution-options flag group (``--engine/--tile/--backend/--workers/
--inject-fault``), documented once in ``docs/API.md``.

Examples
--------
::

    repro-rrs generate --spectrum gaussian --h 1.0 --cl 40 \\
        --n 512 --domain 1024 --seed 7 --npz out.npz --ppm out.ppm
    repro-rrs figure fig3 --n 512 --ppm fig3.ppm
    repro-rrs job run --checkpoint ck --n 512 --tile 128 \\
        --backend process --cl 40
    repro-rrs job resume ck
    repro-rrs inspect out.npz --preview
    repro-rrs validate --spectrum exponential --h 2 --cl 80 --n 256
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np

from . import obs
from ._version import __version__
from .core.convolution import ENGINES, ConvolutionGenerator
from .core.grid import Grid2D
from .core.rng import BlockNoise
from .core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    PowerLawSpectrum,
    Spectrum,
)
from .core.spectra_ext import SelfAffineSpectrum
from .core.surface import Surface
from .figures import FIGURES, figure_surface
from .io.npzio import load_surface, save_surface
from .io.pgm import ascii_preview, render_gray, render_terrain
from .validation.checks import variance_closure, weight_acf_error

__all__ = ["main", "build_parser"]

BACKENDS = ("serial", "thread", "process", "dist")


def _positive_int(text: str) -> int:
    """argparse type for counts that must be >= 1 (``--workers``).

    Rejecting zero/negative values at parse time turns what used to be
    a late executor traceback into a one-line usage error.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected a positive integer, got {text!r}"
        )
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _spectrum_from_args(args: argparse.Namespace) -> Spectrum:
    if args.spectrum == "self-affine":
        if args.hurst is None:
            raise SystemExit("--spectrum self-affine requires --hurst")
        return SelfAffineSpectrum(sigma=args.h, hurst=args.hurst, qr=args.qr)
    clx = args.clx if args.clx is not None else args.cl
    cly = args.cly if args.cly is not None else args.cl
    if clx is None or cly is None:
        raise SystemExit("specify --cl or both --clx/--cly")
    if args.spectrum == "gaussian":
        return GaussianSpectrum(h=args.h, clx=clx, cly=cly)
    if args.spectrum == "exponential":
        return ExponentialSpectrum(h=args.h, clx=clx, cly=cly)
    if args.spectrum == "power_law":
        return PowerLawSpectrum(h=args.h, clx=clx, cly=cly, order=args.order)
    raise SystemExit(f"unknown spectrum {args.spectrum!r}")


def _add_spectrum_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--spectrum",
        choices=("gaussian", "power_law", "exponential", "self-affine"),
        default="gaussian",
        help="spectral family (paper Section 2.1, plus the self-affine "
        "q^(-2-2H) PSD of artificial_surf.m)",
    )
    p.add_argument("--h", type=float, default=1.0,
                   help="height std (sigma/Rq for self-affine)")
    p.add_argument("--cl", type=float, default=None, help="isotropic correlation length")
    p.add_argument("--clx", type=float, default=None, help="x correlation length")
    p.add_argument("--cly", type=float, default=None, help="y correlation length")
    p.add_argument(
        "--order", type=float, default=2.0, help="power-law order N (> 1)"
    )
    p.add_argument(
        "--hurst", type=float, default=None,
        help="Hurst exponent H in (0, 1] (self-affine only)",
    )
    p.add_argument(
        "--qr", type=float, default=None,
        help="roll-off wavevector: PSD plateaus below qr (self-affine only)",
    )


def _add_grid_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--n", type=int, default=512, help="samples per axis")
    p.add_argument(
        "--domain", type=float, default=1024.0, help="physical side length"
    )


def _execution_parent() -> argparse.ArgumentParser:
    """Shared ``--engine/--tile/--backend/--workers/--inject-fault``
    flag group used by ``generate``, ``figure`` and ``job run``
    (see the Execution options section of ``docs/API.md``)."""
    parent = argparse.ArgumentParser(add_help=False)
    x = parent.add_argument_group("execution options")
    x.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="convolution engine: auto picks spatial for small kernels "
        "and the plan-cached overlap-save FFT otherwise",
    )
    x.add_argument(
        "--dtype", choices=("float64", "float32"), default="float64",
        help="engine working precision: float32 halves FFT memory "
             "traffic at single-precision accuracy (see the conformance "
             "tier for which statistics are float32-safe)",
    )
    x.add_argument(
        "--tile", type=int, default=None,
        help="generate tile-by-tile over the unbounded noise plane "
             "(tile edge in samples; non-periodic windowed surface)",
    )
    x.add_argument(
        "--backend", choices=BACKENDS,
        default="serial",
        help="tiled execution backend (with --tile): thread shares "
             "memory, process uses persistent shared-memory workers, "
             "dist runs lease-scheduled worker processes over a socket "
             "(requires --store)",
    )
    x.add_argument(
        "--workers", type=_positive_int, default=None,
        help="pool size for the parallel backends (default: cores - 1; "
             "dist backend: 2)",
    )
    x.add_argument(
        "--inject-fault", action="append", default=None, metavar="SPEC",
        help="deterministic fault injection for resilience testing: "
             '"tile=K[,attempt=N][,kind=raise|kill|delay][,delay=S]" '
             "(repeatable; requires --tile)",
    )
    return parent


def _add_output_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--npz", default=None, help="write surface NPZ")
    p.add_argument("--pgm", default=None, help="write grayscale PGM")
    p.add_argument("--ppm", default=None, help="write terrain PPM")
    p.add_argument("--preview", action="store_true", help="ASCII preview")


def _fault_plan_from_args(args: argparse.Namespace):
    specs = getattr(args, "inject_fault", None)
    if not specs:
        return None
    from .jobs import FaultPlan

    try:
        return FaultPlan.parse(specs)
    except ValueError as exc:
        raise SystemExit(f"--inject-fault: {exc}")


def _resilience_kwargs(args: argparse.Namespace) -> dict:
    """Executor retry/fault kwargs for the generate/figure tiled paths."""
    fault_plan = _fault_plan_from_args(args)
    if fault_plan is None:
        return {}
    if args.tile is None:
        raise SystemExit("--inject-fault requires --tile")
    from .jobs import RetryPolicy

    return {"retry": RetryPolicy(), "fault_plan": fault_plan}


def _store_from_args(args: argparse.Namespace, grid,
                     chunk: tuple, meta: dict):
    """Create the ``--store`` target, or ``None`` when the flag is unset."""
    if not getattr(args, "store", None):
        return None
    from .io.store import SurfaceStore

    try:
        return SurfaceStore.create(
            args.store, shape=grid.shape, chunk=chunk,
            dx=grid.dx, dy=grid.dy, meta=meta,
        )
    except (FileExistsError, ValueError) as exc:
        raise SystemExit(f"--store: {exc}")


def _load_spec(path: str):
    """Read a ``repro.spec/v1`` document for ``--spec`` flags."""
    from .core.spec import GenerationSpec, SpecError

    try:
        return GenerationSpec.from_json(Path(path).read_text())
    except OSError as exc:
        raise SystemExit(f"--spec: {exc}")
    except (SpecError, ValueError) as exc:
        raise SystemExit(f"--spec: {exc}")


def _spec_from_args(args: argparse.Namespace, rebuild: dict):
    """The :class:`GenerationSpec` equivalent of a flag-built command.

    This is what ``--dump-spec`` prints: one JSON document that
    reproduces the exact same surface through ``generate --spec``,
    ``job run --spec``, the dist backend, or a served POST.
    """
    from .core.spec import GenerationSpec

    plan = None
    if getattr(args, "tile", None):
        plan = {"total_nx": args.n, "total_ny": args.n,
                "tile_nx": args.tile, "tile_ny": args.tile,
                "origin_x": 0, "origin_y": 0}
    store = getattr(args, "store", None)
    fault_plan = _fault_plan_from_args(args)
    return GenerationSpec(
        generator=rebuild,
        seed=args.seed,
        plan=plan,
        store_path=str(Path(store).resolve()) if store else None,
        faults=fault_plan.to_dicts() if fault_plan is not None else [],
    )


def _generate_rebuild(args: argparse.Namespace, spectrum: Spectrum) -> dict:
    return {
        "kind": "convolution",
        "spectrum": spectrum.to_dict(),
        "grid": {"nx": args.n, "ny": args.n,
                 "lx": args.domain, "ly": args.domain},
        "truncation": args.truncation,
        "engine": args.engine,
        "dtype": args.dtype,
    }


def _emit_surface(surface: Surface, args: argparse.Namespace) -> None:
    if obs.enabled():
        # Saved alongside the surface so ``inspect --timings`` can render
        # the run's counters long after the process is gone.
        surface.provenance["obs_metrics"] = (
            obs.get_recorder().metrics.as_dict()
        )
    store_info = surface.provenance.get("store")
    if store_info:
        # Out-of-core result: computing the usual summary statistics
        # would page the entire file through RAM, so report the store
        # record instead (npz/pgm/preview below remain opt-in scans).
        print(json.dumps({"shape": list(surface.shape), **store_info},
                         indent=2))
    else:
        print(json.dumps(surface.summary(), indent=2))
    if args.npz:
        save_surface(args.npz, surface)
        print(f"wrote {args.npz}")
    if args.pgm:
        render_gray(surface, path=args.pgm)
        print(f"wrote {args.pgm}")
    if args.ppm:
        render_terrain(surface, path=args.ppm)
        print(f"wrote {args.ppm}")
    if args.preview:
        print(ascii_preview(surface))


def _generate_from_spec(args: argparse.Namespace) -> int:
    """``generate --spec FILE``: the spec document drives everything.

    Spectrum/grid/seed flags are ignored; only execution knobs
    (``--backend/--workers``) and output flags apply.  The heights are
    bit-identical to every other consumer of the same document.
    """
    spec = _load_spec(args.spec)
    gen = spec.build_generator()
    if spec.plan is None:
        if args.backend == "dist":
            raise SystemExit("--backend dist requires a spec with a plan "
                             "and a store_path")
        heights = gen.generate(seed=spec.seed)
        surface = Surface(
            heights=np.asarray(heights), grid=gen.grid,
            provenance={"method": spec.generator.get("kind"),
                        "spec": spec.to_dict(), "seed": spec.seed},
        )
        _emit_surface(surface, args)
        return 0
    from .parallel.executor import generate_tiled

    plan = spec.tile_plan()
    store = None
    if spec.store_path:
        from .io.store import SurfaceStore

        try:
            store = SurfaceStore.create(
                spec.store_path,
                shape=(plan.total_nx, plan.total_ny),
                chunk=(plan.tile_nx, plan.tile_ny),
                dx=gen.grid.dx, dy=gen.grid.dy,
                meta={"seed": spec.seed},
            )
        except (FileExistsError, ValueError) as exc:
            raise SystemExit(f"spec store_path: {exc}")
    if args.backend == "dist" and store is None:
        raise SystemExit("--backend dist requires the spec to carry a "
                         "store_path (the bitmap is the completion ledger)")
    surface = generate_tiled(
        gen, spec.noise(), plan,
        backend=args.backend, workers=args.workers,
        out=store, rebuild=spec.generator,
    )
    surface.provenance["spec"] = spec.to_dict()
    surface.provenance["seed"] = spec.seed
    _emit_surface(surface, args)
    if store is not None:
        store.close()
        print(f"wrote store {store.path}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.spec and args.dump_spec:
        raise SystemExit("--spec and --dump-spec are mutually exclusive")
    if args.spec:
        return _generate_from_spec(args)
    grid = Grid2D(nx=args.n, ny=args.n, lx=args.domain, ly=args.domain)
    spectrum = _spectrum_from_args(args)
    if args.dump_spec:
        print(_spec_from_args(args, _generate_rebuild(args, spectrum))
              .to_json(indent=2))
        return 0
    gen = ConvolutionGenerator(
        spectrum, grid, truncation=args.truncation, engine=args.engine,
        dtype=args.dtype,
    )
    resilience = _resilience_kwargs(args)
    if args.tile is not None:
        # Tiled windowed generation over the unbounded noise plane
        # (non-periodic, unlike the one-shot path below); backends are
        # bit-identical for a fixed tile size.
        from .parallel.executor import generate_tiled
        from .parallel.tiles import TilePlan

        if args.tile <= 0:
            raise SystemExit("--tile must be positive")
        plan = TilePlan(total_nx=args.n, total_ny=args.n,
                        tile_nx=args.tile, tile_ny=args.tile)
        store = _store_from_args(args, grid,
                                 chunk=(args.tile, args.tile),
                                 meta={"spectrum": spectrum.to_dict(),
                                       "seed": args.seed})
        if args.backend == "dist" and store is None:
            raise SystemExit(
                "--backend dist requires --store: the store's chunk "
                "bitmap is the distributed completion ledger"
            )
        telemetry = {}
        if args.heartbeat is not None:
            telemetry["heartbeat_s"] = args.heartbeat
        if args.status_port is not None:
            telemetry["status_port"] = args.status_port
        if telemetry and args.backend != "dist":
            raise SystemExit(
                "--heartbeat/--status-port require --backend dist "
                "(single-host backends have no coordinator to serve them)"
            )
        rebuild = _generate_rebuild(args, spectrum)
        surface = generate_tiled(
            gen, BlockNoise(seed=args.seed), plan,
            backend=args.backend, workers=args.workers,
            out=store, rebuild=rebuild,
            telemetry=telemetry or None,
            **resilience,
        )
        surface.provenance["spectrum"] = spectrum.to_dict()
        surface.provenance["seed"] = args.seed
        _emit_surface(surface, args)
        if store is not None:
            store.close()
            print(f"wrote store {store.path}")
        return 0
    if getattr(args, "store", None):
        raise SystemExit("--store requires --tile")
    if args.backend == "dist":
        raise SystemExit("--backend dist requires --tile and --store")
    if args.heartbeat is not None or args.status_port is not None:
        raise SystemExit(
            "--heartbeat/--status-port require --tile with --backend dist"
        )
    heights = gen.generate(seed=args.seed)
    surface = Surface(
        heights=np.asarray(heights),
        grid=grid,
        provenance={
            "method": "convolution",
            "spectrum": spectrum.to_dict(),
            "seed": args.seed,
            "engine": args.engine,
            "dtype": args.dtype,
        },
    )
    _emit_surface(surface, args)
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    if args.backend == "dist":
        raise SystemExit(
            "--backend dist is not supported by `figure` (no --store "
            "target); use `job run --figure ... --store ... --backend "
            "dist` instead"
        )
    resilience = _resilience_kwargs(args)
    if args.tile is not None:
        # Tiled multi-region generation: the figure layout drives the
        # inhomogeneous generator window-by-window over the unbounded
        # noise plane (non-periodic, unlike the one-shot path below).
        from .core.inhomogeneous import InhomogeneousGenerator
        from .figures import default_grid, figure_layout
        from .parallel.executor import generate_tiled
        from .parallel.tiles import TilePlan

        if args.tile <= 0:
            raise SystemExit("--tile must be positive")
        grid = default_grid(args.n, args.domain)
        layout = figure_layout(args.name, args.domain)
        gen = InhomogeneousGenerator(layout, grid, truncation=0.999,
                                     engine=args.engine, dtype=args.dtype)
        plan = TilePlan(total_nx=args.n, total_ny=args.n,
                        tile_nx=args.tile, tile_ny=args.tile)
        surface = generate_tiled(
            gen, BlockNoise(seed=args.seed), plan,
            backend=args.backend, workers=args.workers,
            **resilience,
        )
        surface.provenance["figure"] = args.name
        surface.provenance["seed"] = args.seed
        _emit_surface(surface, args)
        return 0
    surface = figure_surface(
        args.name, n=args.n, domain=args.domain, seed=args.seed,
        engine=args.engine, dtype=args.dtype,
    )
    _emit_surface(surface, args)
    return 0


def _job_generator_and_rebuild(args: argparse.Namespace):
    """Build ``job run``'s generator plus the manifest ``rebuild`` recipe
    from which ``job resume`` can reconstruct it without re-specifying
    spectrum/figure parameters."""
    if args.figure is not None:
        from .core.inhomogeneous import InhomogeneousGenerator
        from .figures import default_grid, figure_layout

        grid = default_grid(args.n, args.domain)
        layout = figure_layout(args.figure, args.domain)
        gen = InhomogeneousGenerator(layout, grid, truncation=0.999,
                                     engine=args.engine, dtype=args.dtype)
        rebuild = {"kind": "figure", "name": args.figure, "n": args.n,
                   "domain": args.domain, "truncation": 0.999,
                   "engine": args.engine, "dtype": args.dtype}
        return gen, rebuild
    grid = Grid2D(nx=args.n, ny=args.n, lx=args.domain, ly=args.domain)
    spectrum = _spectrum_from_args(args)
    gen = ConvolutionGenerator(
        spectrum, grid, truncation=args.truncation, engine=args.engine,
        dtype=args.dtype,
    )
    rebuild = {
        "kind": "convolution",
        "spectrum": spectrum.to_dict(),
        "grid": {"nx": args.n, "ny": args.n,
                 "lx": args.domain, "ly": args.domain},
        "truncation": args.truncation,
        "engine": args.engine,
        "dtype": args.dtype,
    }
    return gen, rebuild


def _retry_policy_from_args(args: argparse.Namespace):
    from .jobs import RetryPolicy

    try:
        return RetryPolicy(
            max_attempts=args.max_attempts,
            backoff_base=args.backoff_base,
            failure_budget=args.failure_budget,
            max_respawns=args.max_respawns,
            degrade=not args.no_degrade,
        )
    except ValueError as exc:
        raise SystemExit(str(exc))


def _job_failed(exc: Exception, checkpoint: str) -> "SystemExit":
    return SystemExit(
        f"job failed: {exc}\ncheckpoint preserved at {checkpoint}; "
        f"finish it with: repro-rrs job resume {checkpoint}"
    )


def _job_run_from_spec(args: argparse.Namespace) -> int:
    """``job run --spec FILE``: checkpointed execution of one document."""
    import dataclasses

    from .core.spec import SpecError
    from .jobs import (FailureBudgetExceeded, PoolRespawnLimit,
                       TileFailedError, run_spec)

    if args.mode != "tiled":
        raise SystemExit("--spec only supports tiled mode (the plan in "
                         "the document is a tile plan)")
    spec = _load_spec(args.spec)
    if getattr(args, "store", None):
        # the CLI flag wins over the document's store_path
        spec = dataclasses.replace(
            spec, store_path=str(Path(args.store).resolve())
        )
    try:
        surface = run_spec(
            spec,
            checkpoint=args.checkpoint,
            backend=args.backend,
            workers=args.workers,
            retry=_retry_policy_from_args(args),
            fault_plan=_fault_plan_from_args(args),
            checkpoint_every=args.checkpoint_every,
            verify=getattr(args, "verify", False),
        )
    except SpecError as exc:
        raise SystemExit(f"--spec: {exc}")
    except FileExistsError as exc:
        raise SystemExit(str(exc))
    except (TileFailedError, FailureBudgetExceeded, PoolRespawnLimit) as exc:
        raise _job_failed(exc, args.checkpoint)
    surface.provenance["seed"] = spec.seed
    _emit_surface(surface, args)
    if getattr(args, "verify", False):
        return _print_verify_outcome(surface.provenance.get("verify"))
    return 0


def _print_verify_outcome(doc) -> int:
    """Summarise a ``repro.verify/v1`` document; non-zero on a red gate."""
    from .verify import VerifyReport

    if not doc:
        raise SystemExit("verify: no report produced")
    report = VerifyReport.from_dict(doc)
    _print_verify_report(report)
    return 0 if report.passed else 1


def _print_verify_report(report) -> None:
    for m in report.metrics:
        state = {True: "pass", False: "FAIL", None: "info"}[m.passed]
        meas = "-" if m.measured is None else f"{m.measured:.6g}"
        targ = "-" if m.target is None else f"{m.target:.6g}"
        tol = "-" if m.tolerance is None else f"{m.tolerance:.3g}"
        print(f"  {m.name:<14} {state:<4} measured={meas:<12} "
              f"target={targ:<12} tol={tol}")
    print(f"verify: {'PASS' if report.passed else 'FAIL'}")


def _cmd_job_run(args: argparse.Namespace) -> int:
    from .jobs import (FailureBudgetExceeded, PoolRespawnLimit,
                       TileFailedError, run_strips, run_tiled)

    if args.spec and args.dump_spec:
        raise SystemExit("--spec and --dump-spec are mutually exclusive")
    if args.dump_spec:
        _gen, rebuild = _job_generator_and_rebuild(args)
        print(_spec_from_args(args, rebuild).to_json(indent=2))
        return 0
    if args.spec:
        return _job_run_from_spec(args)
    if args.tile is None or args.tile <= 0:
        raise SystemExit(
            "job run requires a positive --tile (tile edge for tiled "
            "mode, strip width for strips mode)"
        )
    gen, rebuild = _job_generator_and_rebuild(args)
    noise = BlockNoise(seed=args.seed)
    # strips mode schedules one full-width chunk per strip, so the
    # store bitmap indexes strips exactly like the tiled bitmap
    # indexes tiles
    store_meta = {"seed": args.seed}
    if isinstance(rebuild, dict) and isinstance(rebuild.get("spectrum"), dict):
        store_meta["spectrum"] = rebuild["spectrum"]
    store = _store_from_args(
        args, gen.grid,
        chunk=((args.tile, args.n) if args.mode == "strips"
               else (args.tile, args.tile)),
        meta=store_meta,
    )
    common = dict(
        checkpoint=args.checkpoint,
        backend=args.backend,
        workers=args.workers,
        retry=_retry_policy_from_args(args),
        fault_plan=_fault_plan_from_args(args),
        checkpoint_every=args.checkpoint_every,
        rebuild=rebuild,
        store=store,
    )
    try:
        if args.mode == "strips":
            surface = run_strips(gen, noise, args.n, args.n, args.tile,
                                 **common)
        else:
            from .parallel.tiles import TilePlan

            plan = TilePlan(total_nx=args.n, total_ny=args.n,
                            tile_nx=args.tile, tile_ny=args.tile)
            surface = run_tiled(gen, noise, plan, **common)
    except FileExistsError as exc:
        raise SystemExit(str(exc))
    except (TileFailedError, FailureBudgetExceeded, PoolRespawnLimit) as exc:
        if store is not None:
            store.close()  # persist what the writer durably completed
        raise _job_failed(exc, args.checkpoint)
    surface.provenance["seed"] = args.seed
    _emit_surface(surface, args)
    rc = 0
    if getattr(args, "verify", False):
        from .core.spectra import spectrum_from_dict
        from .verify import (REPORT_NAME, verify_heights, verify_store,
                             write_report)

        spectrum = None
        if isinstance(rebuild, dict) and isinstance(
                rebuild.get("spectrum"), dict):
            spectrum = spectrum_from_dict(rebuild["spectrum"])
        if store is not None:
            report = verify_store(store, spectrum)
        else:
            report = verify_heights(surface.heights, spectrum,
                                    dx=gen.grid.dx, dy=gen.grid.dy)
        write_report(report, Path(args.checkpoint) / REPORT_NAME)
        _print_verify_report(report)
        rc = 0 if report.passed else 1
    if store is not None:
        store.close()
        print(f"wrote store {store.path}")
    return rc


def _cmd_job_resume(args: argparse.Namespace) -> int:
    from .jobs import (FailureBudgetExceeded, PoolRespawnLimit,
                       TileFailedError, resume)

    try:
        surface = resume(
            args.checkpoint,
            backend=args.backend,
            workers=args.workers,
            fault_plan=_fault_plan_from_args(args),
            checkpoint_every=args.checkpoint_every,
        )
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc))
    except (TileFailedError, FailureBudgetExceeded, PoolRespawnLimit) as exc:
        raise _job_failed(exc, args.checkpoint)
    _emit_surface(surface, args)
    return 0


def _cmd_job_status(args: argparse.Namespace) -> int:
    from .jobs import status

    try:
        print(json.dumps(status(args.checkpoint), indent=2))
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc))
    return 0


def _cmd_dist_coordinator(args: argparse.Namespace) -> int:
    """Serve one distributed run: lease tiles to connecting workers.

    Prints the bound address on the first line (machine-parsable:
    ``dist coordinator listening on HOST:PORT``) so launcher scripts
    can point workers at an OS-assigned port, then blocks until the
    run completes and prints the run summary as JSON.  Re-running on an
    existing store resumes off its bitmap.
    """
    from .core.spec import GenerationSpec
    from .dist import Coordinator
    from .io.store import SurfaceStore
    from .jobs import (FailureBudgetExceeded, PoolRespawnLimit,
                       TileFailedError)
    from .parallel.tiles import TilePlan

    _gen, rebuild = _job_generator_and_rebuild(args)
    plan = TilePlan(total_nx=args.n, total_ny=args.n,
                    tile_nx=args.tile, tile_ny=args.tile)
    store_path = Path(args.store)
    if (store_path / "manifest.json").exists():
        store = SurfaceStore.open(store_path, "r+")  # resume off the bitmap
        try:
            store.validate_plan(plan)
        except ValueError as exc:
            raise SystemExit(f"--store: {exc}")
    else:
        grid = Grid2D(nx=args.n, ny=args.n, lx=args.domain, ly=args.domain)
        store = SurfaceStore.create(
            store_path, shape=(args.n, args.n), chunk=(args.tile, args.tile),
            dx=grid.dx, dy=grid.dy, meta={"seed": args.seed},
        )
    fault_plan = _fault_plan_from_args(args)
    spec = GenerationSpec(
        generator=rebuild,
        seed=args.seed,
        plan={"total_nx": args.n, "total_ny": args.n,
              "tile_nx": args.tile, "tile_ny": args.tile,
              "origin_x": 0, "origin_y": 0},
        store_path=str(store_path.resolve()),
        access="shared",
        obs=obs.enabled(),
        faults=fault_plan.to_dicts() if fault_plan is not None else [],
    )
    coordinator = Coordinator(
        spec, plan, store,
        policy=_retry_policy_from_args(args),
        lease_timeout_s=args.lease_timeout,
        n_shards=args.workers or 2,
        host=args.host, port=args.port,
        persist_every=args.persist_every,
        run_id=args.run_id,
        heartbeat_s=args.heartbeat,
        status_port=args.status_port,
    )
    host, port = coordinator.start()
    print(f"dist coordinator listening on {host}:{port}", flush=True)
    status_addr = coordinator.status_address
    if status_addr is not None:
        print(f"dist status on {status_addr[0]}:{status_addr[1]} "
              f"(/metrics /status /health)", flush=True)
    try:
        summary = coordinator.serve()
    except (TileFailedError, FailureBudgetExceeded, PoolRespawnLimit) as exc:
        store.close()
        raise SystemExit(
            f"distributed run failed: {exc}\nstore preserved at "
            f"{store.path}; re-run the coordinator to resume off its "
            f"bitmap"
        )
    store.close()
    print(json.dumps({"store": store.progress_summary(), **summary},
                     indent=2))
    return 0


def _format_eta(seconds) -> str:
    if seconds is None:
        return "--"
    seconds = float(seconds)
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.0f}s"


def _render_status(doc: dict) -> str:
    """Render one ``repro.obs.status/v1`` document as a text table."""
    tiles = doc.get("tiles", {})
    total = tiles.get("total", 0)
    done = tiles.get("done", 0)
    lines = [
        f"run {doc.get('run_id') or '-'}  state {doc.get('state', '?')}  "
        f"elapsed {_format_eta(doc.get('elapsed_s'))}",
    ]
    rate = doc.get("throughput_tiles_per_s")
    lines.append(
        f"tiles {done}/{total} ({100.0 * doc.get('progress', 0.0):.1f}%)  "
        f"leased {tiles.get('leased') if tiles.get('leased') is not None else '-'}  "
        f"throughput {rate if rate is not None else '--'} tiles/s  "
        f"eta {_format_eta(doc.get('eta_s'))}"
    )
    lease = doc.get("lease") or {}
    if lease:
        lines.append(
            "lease: granted {granted} completed {completed} "
            "dup {duplicates} expired {expired} releases "
            "{worker_releases} failures {failures}".format(
                **{k: lease.get(k, 0)
                   for k in ("granted", "completed", "duplicates",
                             "expired", "worker_releases", "failures")}
            )
        )
    workers = doc.get("workers") or []
    if workers:
        lines.append("")
        lines.append(f"{'WORKER':<8}{'STATE':<7}{'TILE':>6}{'DONE':>6}"
                     f"{'BUSY_S':>9}{'UTIL':>7}{'AGE_S':>8}")
        for w in workers:
            tile = w.get("tile")
            lines.append(
                f"{w.get('name', '?'):<8}{w.get('state', '?'):<7}"
                f"{tile if tile is not None else '-':>6}"
                f"{w.get('tiles_done', 0):>6}"
                f"{w.get('busy_s', 0.0):>9.2f}"
                f"{100.0 * w.get('utilization', 0.0):>6.0f}%"
                f"{w.get('last_seen_age_s', 0.0):>8.1f}"
            )
    serve = doc.get("serve") or {}
    if serve:
        jobs = serve.get("jobs") or {}
        lines.append(
            "jobs: " + "  ".join(
                f"{state} {jobs.get(state, 0)}"
                for state in ("queued", "running", "complete", "failed")
            )
        )
        tenants = serve.get("tenants") or {}
        if tenants:
            lines.append("")
            lines.append(f"{'TENANT':<16}{'JOBS':>6}{'INFLIGHT':>10}")
            for name in sorted(tenants):
                t = tenants[name]
                lines.append(f"{name:<16}{t.get('jobs', 0):>6}"
                             f"{t.get('inflight', 0):>10}")
    return "\n".join(lines)


def _status_from_store(store) -> dict:
    """A reduced status document read straight off a store bitmap.

    The fallback view for runs with no status server (or after the
    coordinator exited): the bitmap is the durable completion ledger,
    so done/total/progress are exact; everything live (workers,
    throughput, ETA) is simply absent.
    """
    from .dist.status import STATUS_SCHEMA

    store.refresh_done()
    progress = store.progress_summary()
    total = int(progress["chunks_total"])
    done = int(progress["chunks_done"])
    return {
        "schema": STATUS_SCHEMA,
        "run_id": None,
        "state": "complete" if done >= total else "running",
        "source": "store",
        "tiles": {"total": total, "done": done,
                  "pending": total - done, "leased": None},
        "progress": (done / total) if total else 1.0,
        "throughput_tiles_per_s": None,
        "eta_s": None,
        "elapsed_s": None,
        "lease": {},
        "workers": [],
    }


def _cmd_top(args: argparse.Namespace) -> int:
    """Poll ``/status`` (or a store bitmap) and render a live table."""
    import time as _time
    import urllib.error
    import urllib.request

    if bool(args.connect) == bool(args.store):
        raise SystemExit("top requires exactly one of --connect or --store")

    if args.connect:
        url = f"http://{args.connect}/status"

        def fetch() -> dict:
            with urllib.request.urlopen(url, timeout=5.0) as resp:
                return json.loads(resp.read())

        def cleanup() -> None:
            pass
    else:
        from .io.store import SurfaceStore

        try:
            store = SurfaceStore.open(args.store, "r", ledger=False)
        except (FileNotFoundError, ValueError) as exc:
            raise SystemExit(f"--store: {exc}")

        def fetch() -> dict:
            return _status_from_store(store)

        def cleanup() -> None:
            store.close()

    polled_ok = False
    try:
        while True:
            try:
                doc = fetch()
            except (urllib.error.URLError, ConnectionError, OSError) as exc:
                if polled_ok:
                    print("status endpoint gone (run finished?)")
                    return 0
                raise SystemExit(f"cannot reach {args.connect}: {exc}")
            polled_ok = True
            body = (json.dumps(doc, indent=2) if args.json
                    else _render_status(doc))
            if not args.once:
                print("\x1b[2J\x1b[H", end="")  # clear screen, home cursor
            print(body, flush=True)
            if args.once or doc.get("state") in ("complete", "failed"):
                return 0
            _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    finally:
        cleanup()


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run the surface-as-a-service front door until interrupted.

    Prints the bound address on the first line (machine-parsable:
    ``serve listening on HOST:PORT``) so launchers and tests can use an
    OS-assigned port.  ``repro-rrs top --connect HOST:PORT`` works
    against it directly — ``/status`` speaks the same schema as a dist
    coordinator.
    """
    import asyncio

    from .serve import ServeConfig, SurfaceService, start_server

    config = ServeConfig(
        data_dir=Path(args.data_dir),
        tenant_max_active=args.tenant_max_active,
        tenant_max_queued=args.tenant_max_queued,
        retry_after_s=args.retry_after,
        batch_linger_s=args.batch_linger,
        batch_max=args.batch_max,
        workers=args.job_workers,
        backend=args.backend,
        inner_workers=args.workers,
    )
    service = SurfaceService(config)

    async def run() -> None:
        server = await start_server(service, host=args.host, port=args.port)
        print(f"serve listening on {server.host}:{server.port}", flush=True)
        print("POST /v1/jobs; GET /v1/jobs/{id}[/status|/chunks/N|/heights"
              "|/result]; /status /metrics /health", flush=True)
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.close()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    return 0


def _cmd_dist_worker(args: argparse.Namespace) -> int:
    """Serve a coordinator until its run completes (or aborts)."""
    from .dist.worker import run_worker
    from .jobs.faults import mark_killable

    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        raise SystemExit(
            f"--connect expects HOST:PORT, got {args.connect!r}"
        )
    if not host:
        raise SystemExit(
            f"--connect expects HOST:PORT, got {args.connect!r}"
        )
    # a dist worker is expendable by design; let injected kill faults
    # crash it for real so fault drills exercise the re-lease path
    mark_killable()
    try:
        summary = run_worker(host, port, max_tiles=args.max_tiles)
    except (ConnectionError, OSError) as exc:
        raise SystemExit(f"dist worker: {exc}")
    print(json.dumps(summary, indent=2))
    return 0 if not summary["reason"].startswith("abort") else 3


def _cmd_inspect(args: argparse.Namespace) -> int:
    surface = load_surface(args.path)
    info = {
        "shape": list(surface.shape),
        "dx": surface.grid.dx,
        "dy": surface.grid.dy,
        "origin": list(surface.origin),
        "provenance": surface.provenance,
        "summary": surface.summary(),
    }
    print(json.dumps(info, indent=2))
    if args.timings:
        from .obs import provenance_timings

        print(provenance_timings(surface.provenance))
    if args.preview:
        print(ascii_preview(surface))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    if args.full:
        from .validation.report import render_markdown, run_validation_report

        grid = Grid2D(nx=args.n, ny=args.n, lx=args.domain, ly=args.domain)
        report = run_validation_report(grid=grid)
        print(render_markdown(report))
        return 0 if report["pass"] else 1
    grid = Grid2D(nx=args.n, ny=args.n, lx=args.domain, ly=args.domain)
    spectrum = _spectrum_from_args(args)
    report = weight_acf_error(spectrum, grid)
    closure = variance_closure(spectrum, grid)
    out = dict(report.as_dict(), variance_closure_rel_error=closure)
    print(json.dumps(out, indent=2))
    # generous sanity bound: discretisation error below 5% of variance
    ok = report.max_abs_error <= 0.05 * max(spectrum.variance, 1e-30)
    if not ok:
        print(
            "WARNING: DFT(w) deviates from rho by more than 5% of the "
            "variance; enlarge the domain or refine the grid",
            file=sys.stderr,
        )
    return 0 if ok else 1


def _cmd_verify(args: argparse.Namespace) -> int:
    """``repro verify <store|job>``: gate a surface against its spectrum."""
    from .io.store import StoreCorrupt
    from .verify import (REPORT_NAME, VerifyConfig, VerifyError, verify_job,
                         verify_store, write_report)

    target = Path(args.target)
    manifest_path = target / "manifest.json"
    if not manifest_path.is_file():
        raise SystemExit(f"verify: no manifest.json under {target}")
    try:
        fmt = json.loads(manifest_path.read_text()).get("format")
    except (OSError, ValueError) as exc:
        raise SystemExit(f"verify: unreadable manifest: {exc}")

    spectrum = None
    if args.spec:
        spec = _load_spec(args.spec)
        recipe = (spec.generator or {}).get("spectrum")
        if not isinstance(recipe, dict):
            raise SystemExit("verify: --spec document carries no spectrum")
        from .core.spectra import spectrum_from_dict

        spectrum = spectrum_from_dict(recipe)

    config = VerifyConfig(segment=args.segment, psd_bins=args.psd_bins,
                          n_sigma=args.n_sigma)
    try:
        if fmt == "repro.store/v1":
            report = verify_store(target, spectrum, config=config)
        elif fmt == "repro.jobs/v1":
            report = verify_job(target, spectrum=spectrum, config=config)
            write_report(report, target / REPORT_NAME)
        else:
            raise SystemExit(
                f"verify: {target} is neither a repro.store/v1 store nor a "
                f"repro.jobs/v1 checkpoint (format={fmt!r})"
            )
    except (VerifyError, StoreCorrupt, FileNotFoundError, ValueError) as exc:
        raise SystemExit(f"verify: {exc}")
    if args.output:
        write_report(report, args.output)
    if args.json:
        print(report.to_json())
    else:
        _print_verify_report(report)
    return 0 if report.passed else 1


def _cmd_classify(args: argparse.Namespace) -> int:
    from .stats.fitting import classify_family

    surface = load_surface(args.path)
    best, fits = classify_family(
        surface.heights, surface.grid.dx, cl_guess=args.cl_guess
    )
    out = {
        "best": {
            "family": best.kind,
            "h": best.h,
            "cl": best.cl,
            "order": best.order,
            "rss": best.rss,
        },
        "all": {k: {"h": f.h, "cl": f.cl, "rss": f.rss}
                for k, f in fits.items()},
    }
    print(json.dumps(out, indent=2))
    return 0


def _cmd_mesh(args: argparse.Namespace) -> int:
    from .io.objmesh import save_obj

    surface = load_surface(args.path)
    save_obj(args.out, surface, decimate=args.decimate,
             z_scale=args.z_scale)
    print(f"wrote {args.out}")
    return 0


def _cmd_profile1d(args: argparse.Namespace) -> int:
    from .core.oned import (
        Exponential1D,
        Gaussian1D,
        Matern1D,
        ProfileGenerator,
    )

    cl = args.cl if args.cl is not None else 25.0
    if args.spectrum == "gaussian":
        spec = Gaussian1D(h=args.h, cl=cl)
    elif args.spectrum == "exponential":
        spec = Exponential1D(h=args.h, cl=cl)
    else:
        spec = Matern1D(h=args.h, cl=cl, order=args.order)
    gen = ProfileGenerator(spec, args.n, args.domain)
    profile = gen.generate(seed=args.seed)
    summary = {
        "n": args.n,
        "dx": args.domain / args.n,
        "std": float(profile.std()),
        "min": float(profile.min()),
        "max": float(profile.max()),
    }
    print(json.dumps(summary, indent=2))
    if args.out:
        np.savetxt(args.out, np.column_stack(
            [np.arange(args.n) * (args.domain / args.n),
             np.asarray(profile)]
        ), header="x height")
        print(f"wrote {args.out}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The argparse tree (exposed for tests and docs generation)."""
    parser = argparse.ArgumentParser(
        prog="repro-rrs",
        description="Inhomogeneous random rough surface generation "
        "(Uchida, Honda & Yoon convolution method)",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write run counters/gauges/histograms as JSON "
             "(enables tracing for this run)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write spans in Chrome trace-event JSON, loadable in "
             "chrome://tracing or Perfetto (enables tracing)",
    )
    parser.add_argument(
        "--events-out", default=None, metavar="PATH",
        help="append structured JSONL events (run lifecycle, worker "
             "joins/leaves, tile completions/failures) to PATH",
    )
    parser.add_argument(
        "--events-level", choices=("debug", "info", "warn", "error"),
        default="info",
        help="minimum severity recorded by --events-out (default info; "
             "debug includes per-tile lease/complete events)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    execution = _execution_parent()

    g = sub.add_parser("generate", parents=[execution],
                       help="homogeneous surface")
    _add_spectrum_args(g)
    _add_grid_args(g)
    g.add_argument("--seed", type=int, default=0)
    g.add_argument("--truncation", type=float, default=0.9999)
    g.add_argument(
        "--store", default=None, metavar="DIR",
        help="write heights into an out-of-core SurfaceStore directory "
             "(chunked npy + bitmap; requires --tile; peak RSS stays "
             "O(tile), independent of --n)",
    )
    g.add_argument(
        "--heartbeat", type=float, default=None, metavar="S",
        help="dist backend: workers heartbeat the coordinator every S "
             "seconds (progress counters + live metric deltas)",
    )
    g.add_argument(
        "--status-port", type=int, default=None, metavar="PORT",
        help="dist backend: serve /metrics (Prometheus), /status "
             "(JSON) and /health on this port (0 = OS-assigned)",
    )
    g.add_argument(
        "--spec", default=None, metavar="FILE",
        help="run a repro.spec/v1 GenerationSpec JSON document; "
             "spectrum/grid/seed flags are ignored (only "
             "--backend/--workers and output flags apply)",
    )
    g.add_argument(
        "--dump-spec", action="store_true",
        help="print this command line as a GenerationSpec JSON document "
             "and exit without generating (feed it back via --spec, "
             "`job run --spec`, or POST it to a serve endpoint)",
    )
    _add_output_args(g)
    g.set_defaults(func=_cmd_generate)

    f = sub.add_parser("figure", parents=[execution],
                       help="regenerate a paper figure")
    f.add_argument("name", choices=FIGURES)
    _add_grid_args(f)
    f.add_argument("--seed", type=int, default=2009)
    _add_output_args(f)
    f.set_defaults(func=_cmd_figure)

    j = sub.add_parser(
        "job", help="fault-tolerant checkpointed generation jobs"
    )
    jsub = j.add_subparsers(dest="job_command", required=True)

    jr = jsub.add_parser(
        "run", parents=[execution],
        help="start a checkpointed tiled/strip job",
    )
    _add_spectrum_args(jr)
    _add_grid_args(jr)
    jr.add_argument("--seed", type=int, default=0)
    jr.add_argument("--truncation", type=float, default=0.9999)
    jr.add_argument(
        "--figure", choices=FIGURES, default=None,
        help="run a paper-figure layout instead of a homogeneous spectrum",
    )
    jr.add_argument(
        "--checkpoint", required=True, metavar="DIR",
        help="checkpoint directory (created; must not already hold a job)",
    )
    jr.add_argument(
        "--store", default=None, metavar="DIR",
        help="stream heights into an out-of-core SurfaceStore instead "
             "of RAM + state.npz; resume skips the chunks its bitmap "
             "has durably recorded",
    )
    jr.add_argument(
        "--mode", choices=("tiled", "strips"), default="tiled",
        help="tiled: square tiles; strips: full-height strips covering "
             "the same windows as stream_strips",
    )
    jr.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="K",
        help="flush durable state every K completed tiles",
    )
    jr.add_argument(
        "--verify", action="store_true",
        help="after generation, stream a repro.verify pass gating the "
             "surface against its requested spectrum; the report is "
             "checkpointed as verify.json and a red gate exits non-zero",
    )
    jr.add_argument("--max-attempts", type=int, default=3,
                    help="per-tile attempt limit")
    jr.add_argument("--backoff-base", type=float, default=0.05,
                    help="first retry delay in seconds (doubles per retry)")
    jr.add_argument("--failure-budget", type=int, default=None,
                    help="abort after this many tile failures overall")
    jr.add_argument("--max-respawns", type=int, default=2,
                    help="process-pool respawns before degrading")
    jr.add_argument(
        "--no-degrade", action="store_true",
        help="fail instead of degrading process->thread->serial when "
             "the worker pool keeps breaking",
    )
    jr.add_argument(
        "--spec", default=None, metavar="FILE",
        help="run a repro.spec/v1 GenerationSpec JSON document (must "
             "carry a plan); spectrum/grid/seed flags are ignored",
    )
    jr.add_argument(
        "--dump-spec", action="store_true",
        help="print this command line as a GenerationSpec JSON document "
             "and exit without running the job",
    )
    _add_output_args(jr)
    jr.set_defaults(func=_cmd_job_run)

    jz = jsub.add_parser(
        "resume",
        help="finish a checkpointed job (heights are bit-identical to "
             "an uninterrupted run)",
    )
    jz.add_argument("checkpoint", metavar="CKPT")
    jz.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="override the recorded backend (cannot change the values)",
    )
    jz.add_argument("--workers", type=_positive_int, default=None)
    jz.add_argument("--checkpoint-every", type=int, default=1, metavar="K")
    jz.add_argument("--inject-fault", action="append", default=None,
                    metavar="SPEC")
    _add_output_args(jz)
    jz.set_defaults(func=_cmd_job_resume)

    js = jsub.add_parser("status", help="summarise a checkpoint as JSON")
    js.add_argument("checkpoint", metavar="CKPT")
    js.set_defaults(func=_cmd_job_status)

    d = sub.add_parser(
        "dist",
        help="multi-host tile sharding: lease-scheduled coordinator "
             "and workers over a socket",
    )
    dsub = d.add_subparsers(dest="dist_command", required=True)

    dc = dsub.add_parser(
        "coordinator",
        help="serve one run: lease tiles to connecting workers, own "
             "the store bitmap ledger",
    )
    _add_spectrum_args(dc)
    _add_grid_args(dc)
    dc.add_argument("--seed", type=int, default=0)
    dc.add_argument("--truncation", type=float, default=0.9999)
    dc.add_argument(
        "--figure", choices=FIGURES, default=None,
        help="run a paper-figure layout instead of a homogeneous spectrum",
    )
    dc.add_argument("--engine", choices=ENGINES, default="auto")
    dc.add_argument("--dtype", choices=("float64", "float32"),
                    default="float64")
    dc.add_argument(
        "--tile", type=_positive_int, required=True,
        help="tile edge in samples (also the store chunk edge)",
    )
    dc.add_argument(
        "--store", required=True, metavar="DIR",
        help="SurfaceStore directory; created if absent, resumed off "
             "its bitmap if already present",
    )
    dc.add_argument("--host", default="127.0.0.1",
                    help="interface to listen on")
    dc.add_argument(
        "--port", type=int, default=0,
        help="port to listen on (0 = OS-assigned; the bound port is "
             "printed on the first output line)",
    )
    dc.add_argument(
        "--workers", type=_positive_int, default=None,
        help="expected worker count — sets the shard fan-out for "
             "locality, not a limit on connections (default: 2)",
    )
    dc.add_argument(
        "--lease-timeout", type=float, default=30.0, metavar="S",
        help="seconds before an unacknowledged lease is re-offered",
    )
    dc.add_argument(
        "--persist-every", type=_positive_int, default=8, metavar="K",
        help="flush bitmap/manifest every K completed tiles",
    )
    dc.add_argument("--max-attempts", type=int, default=3,
                    help="per-tile attempt limit")
    dc.add_argument("--backoff-base", type=float, default=0.05,
                    help="first retry delay in seconds (doubles per retry)")
    dc.add_argument("--failure-budget", type=int, default=None,
                    help="abort after this many tile failures overall")
    dc.add_argument("--max-respawns", type=int, default=2)
    dc.add_argument("--no-degrade", action="store_true")
    dc.add_argument(
        "--inject-fault", action="append", default=None, metavar="SPEC",
        help="fault plan shipped to every worker in the run spec "
             '("tile=K[,attempt=N][,kind=raise|kill|delay][,delay=S]"; '
             "kill faults really do kill dist workers)",
    )
    dc.add_argument(
        "--run-id", default=None, metavar="ID",
        help="run identifier stamped into events and /status "
             "(default: generated)",
    )
    dc.add_argument(
        "--heartbeat", type=float, default=None, metavar="S",
        help="advertise a worker heartbeat interval of S seconds "
             "(enables live per-worker status and staleness detection)",
    )
    dc.add_argument(
        "--status-port", type=int, default=None, metavar="PORT",
        help="serve /metrics (Prometheus text), /status (JSON, schema "
             "repro.obs.status/v1) and /health on this port "
             "(0 = OS-assigned; the bound address is printed at start)",
    )
    dc.set_defaults(func=_cmd_dist_coordinator)

    dw = dsub.add_parser(
        "worker",
        help="connect to a coordinator and compute leased tiles until "
             "the run completes",
    )
    dw.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="coordinator address as printed by `dist coordinator`",
    )
    dw.add_argument(
        "--max-tiles", type=_positive_int, default=None,
        help="exit after this many tiles (load-shedding / test hook)",
    )
    dw.set_defaults(func=_cmd_dist_worker)

    sv = sub.add_parser(
        "serve",
        help="surface-as-a-service: async HTTP front door accepting "
             "GenerationSpec documents",
    )
    sv.add_argument("--host", default="127.0.0.1",
                    help="interface to listen on")
    sv.add_argument(
        "--port", type=int, default=0,
        help="port to listen on (0 = OS-assigned; the bound address is "
             "printed on the first output line)",
    )
    sv.add_argument(
        "--data-dir", required=True, metavar="DIR",
        help="root for per-job checkpoints and auto-assigned stores",
    )
    sv.add_argument(
        "--tenant-max-active", type=_positive_int, default=2,
        help="concurrently executing jobs per tenant (X-Tenant header)",
    )
    sv.add_argument(
        "--tenant-max-queued", type=int, default=8,
        help="additionally queued jobs per tenant before submissions "
             "get 429 + Retry-After",
    )
    sv.add_argument(
        "--retry-after", type=float, default=1.0, metavar="S",
        help="backoff advertised in the Retry-After header on 429",
    )
    sv.add_argument(
        "--batch-linger", type=float, default=0.005, metavar="S",
        help="window for piling concurrent small same-spectrum requests "
             "onto one batched engine pass",
    )
    sv.add_argument(
        "--batch-max", type=_positive_int, default=64,
        help="largest single batched engine pass",
    )
    sv.add_argument(
        "--job-workers", type=_positive_int, default=2,
        help="thread-pool size for big (checkpointed) jobs",
    )
    sv.add_argument(
        "--backend", choices=("serial", "thread", "process"),
        default="serial",
        help="inner execution backend for big jobs",
    )
    sv.add_argument(
        "--workers", type=_positive_int, default=None,
        help="inner pool size for the thread/process big-job backends",
    )
    sv.set_defaults(func=_cmd_serve)

    t = sub.add_parser(
        "top",
        help="live status view of a running distributed generation",
    )
    t.add_argument(
        "--connect", default=None, metavar="HOST:PORT",
        help="a status address: a dist coordinator's (as printed by "
             "`dist coordinator --status-port`) or a serve endpoint's "
             "(as printed by `serve`) — both speak repro.obs.status/v1",
    )
    t.add_argument(
        "--store", default=None, metavar="DIR",
        help="read progress straight off a SurfaceStore bitmap instead "
             "(works without a status server, but shows no worker rows)",
    )
    t.add_argument(
        "--interval", type=float, default=1.0, metavar="S",
        help="refresh period in seconds (default 1.0)",
    )
    t.add_argument(
        "--once", action="store_true",
        help="print a single snapshot and exit (no screen clearing)",
    )
    t.add_argument(
        "--json", action="store_true",
        help="emit the raw status document instead of the table",
    )
    t.set_defaults(func=_cmd_top)

    i = sub.add_parser("inspect", help="inspect a saved surface")
    i.add_argument("path")
    i.add_argument("--preview", action="store_true")
    i.add_argument(
        "--timings", action="store_true",
        help="render the saved provenance/metrics as a timing summary",
    )
    i.set_defaults(func=_cmd_inspect)

    v = sub.add_parser("validate", help="DFT(w) ~ rho accuracy check")
    _add_spectrum_args(v)
    _add_grid_args(v)
    v.add_argument("--full", action="store_true",
                   help="run the complete validation report (all families, "
                        "all verification layers)")
    v.set_defaults(func=_cmd_validate)

    vf = sub.add_parser(
        "verify",
        help="gate a generated store or job against its requested "
             "spectrum (streaming, out-of-core)",
    )
    vf.add_argument("target", metavar="STORE_OR_CKPT",
                    help="a repro.store/v1 directory or a repro.jobs/v1 "
                         "checkpoint directory")
    vf.add_argument("--spec", default=None, metavar="FILE",
                    help="repro.spec/v1 document supplying the target "
                         "spectrum (overrides the recorded recipe)")
    vf.add_argument("--segment", type=int, default=None,
                    help="Welch segment edge (default: auto, 256 max)")
    vf.add_argument("--psd-bins", type=int, default=48,
                    help="radial PSD bins")
    vf.add_argument("--n-sigma", type=float, default=4.0,
                    help="gate width in ensemble standard deviations")
    vf.add_argument("--output", default=None, metavar="FILE",
                    help="also write the report JSON here")
    vf.add_argument("--json", action="store_true",
                    help="print the full repro.verify/v1 document")
    vf.set_defaults(func=_cmd_verify)

    c = sub.add_parser("classify", help="fit spectral families to a surface")
    c.add_argument("path")
    c.add_argument("--cl-guess", type=float, default=25.0)
    c.set_defaults(func=_cmd_classify)

    m = sub.add_parser("mesh", help="export a surface as an OBJ mesh")
    m.add_argument("path")
    m.add_argument("out")
    m.add_argument("--decimate", type=int, default=1)
    m.add_argument("--z-scale", type=float, default=1.0)
    m.set_defaults(func=_cmd_mesh)

    p1 = sub.add_parser("profile1d", help="generate a 1D rough profile")
    p1.add_argument(
        "--spectrum",
        choices=("gaussian", "exponential", "matern"),
        default="gaussian",
    )
    p1.add_argument("--h", type=float, default=1.0)
    p1.add_argument("--cl", type=float, default=None)
    p1.add_argument("--order", type=float, default=2.0)
    p1.add_argument("--n", type=int, default=4096)
    p1.add_argument("--domain", type=float, default=4096.0)
    p1.add_argument("--seed", type=int, default=0)
    p1.add_argument("--out", default=None, help="write x/height text table")
    p1.set_defaults(func=_cmd_profile1d)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code.

    ``--metrics-out`` / ``--trace-out`` turn on tracing for the whole
    command; ``--events-out`` streams the structured JSONL event log.
    Without any of them the observability layer stays a no-op and the
    outputs are bit-identical.
    """
    import contextlib

    parser = build_parser()
    args = parser.parse_args(argv)
    with contextlib.ExitStack() as stack:
        if args.events_out:
            stack.enter_context(obs.event_logging(
                args.events_out, level=args.events_level,
            ))
            obs.event("cli.start", command=args.command)
        if not (args.metrics_out or args.trace_out):
            code = args.func(args)
        else:
            with obs.recording() as rec:
                with obs.trace("cli." + args.command):
                    code = args.func(args)
                if args.metrics_out:
                    obs.write_metrics_json(args.metrics_out, rec)
                    print(f"wrote {args.metrics_out}", file=sys.stderr)
                if args.trace_out:
                    obs.write_chrome_trace(
                        args.trace_out, rec,
                        metadata={"command": args.command},
                    )
                    print(f"wrote {args.trace_out}", file=sys.stderr)
        if args.events_out:
            obs.event("cli.finish", command=args.command, code=code)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
