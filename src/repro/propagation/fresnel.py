"""Fresnel-zone geometry and single knife-edge diffraction.

Classical results used by the link models: the free-space loss, Fresnel
zone radii along a path, the knife-edge diffraction parameter ``nu`` and
the ITU-R P.526 approximation of the knife-edge loss

.. math:: J(\\nu) = 6.9 + 20\\log_{10}\\big(\\sqrt{(\\nu-0.1)^2+1}
          + \\nu - 0.1\\big)\\ \\mathrm{dB}, \\qquad \\nu > -0.78,

with ``J = 0`` below ``nu = -0.78`` (unobstructed).  These are the
building blocks for the multi-edge Deygout method in
:mod:`repro.propagation.deygout`.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "SPEED_OF_LIGHT",
    "wavelength",
    "free_space_loss_db",
    "fresnel_radius",
    "diffraction_parameter",
    "knife_edge_loss_db",
]

SPEED_OF_LIGHT = 299_792_458.0  # m/s


def wavelength(frequency_hz: float) -> float:
    """Free-space wavelength in metres."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return SPEED_OF_LIGHT / frequency_hz


def free_space_loss_db(distance_m: np.ndarray, frequency_hz: float) -> np.ndarray:
    """Free-space path loss ``20 log10(4 pi d / lambda)`` in dB."""
    d = np.asarray(distance_m, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distance must be positive")
    lam = wavelength(frequency_hz)
    return 20.0 * np.log10(4.0 * np.pi * d / lam)


def fresnel_radius(
    d1: np.ndarray, d2: np.ndarray, frequency_hz: float, zone: int = 1
) -> np.ndarray:
    """Radius of the n-th Fresnel zone at split distances ``d1``/``d2``."""
    d1 = np.asarray(d1, dtype=float)
    d2 = np.asarray(d2, dtype=float)
    if zone < 1:
        raise ValueError("zone index starts at 1")
    lam = wavelength(frequency_hz)
    with np.errstate(invalid="ignore"):
        return np.sqrt(zone * lam * d1 * d2 / (d1 + d2))


def diffraction_parameter(
    obstruction: np.ndarray, d1: np.ndarray, d2: np.ndarray, frequency_hz: float
) -> np.ndarray:
    """Knife-edge parameter ``nu = h * sqrt(2 (d1+d2) / (lambda d1 d2))``.

    ``obstruction`` is the height of the edge above the direct ray
    (positive = blocking).  Degenerate split distances yield ``-inf``
    (no obstruction attributable to the end points).
    """
    h = np.asarray(obstruction, dtype=float)
    d1 = np.asarray(d1, dtype=float)
    d2 = np.asarray(d2, dtype=float)
    lam = wavelength(frequency_hz)
    with np.errstate(divide="ignore", invalid="ignore"):
        nu = h * np.sqrt(2.0 * (d1 + d2) / (lam * d1 * d2))
    return np.where((d1 <= 0) | (d2 <= 0), -np.inf, nu)


def knife_edge_loss_db(nu: np.ndarray) -> np.ndarray:
    """ITU-R P.526 single knife-edge loss approximation (dB >= 0)."""
    nu = np.asarray(nu, dtype=float)
    loss = np.zeros_like(nu)
    m = nu > -0.78
    vm = nu[m]
    loss[m] = 6.9 + 20.0 * np.log10(np.sqrt((vm - 0.1) ** 2 + 1.0) + vm - 0.1)
    return np.maximum(loss, 0.0)
