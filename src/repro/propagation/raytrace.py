"""Discrete ray tracing over 1D rough terrain profiles.

The paper's companion work (refs [11] "Analysis of electromagnetic wave
propagation along rough surface by using discrete ray tracing method"
and [12] "Estimation of radio communication distance along random rough
surface") evaluates propagation over the generated surfaces by tracing
rays in the vertical plane containing the link.  This module implements
that analysis stage over the profiles this library generates:

* launch a fan of rays from the transmitter;
* propagate each ray with specular reflections off the piecewise-linear
  terrain (local facet normals), a reflection coefficient and an
  optional Rayleigh roughness attenuation per bounce;
* rays passing within the receiver's capture radius contribute a
  complex field ``Gamma_total / sqrt(L) * exp(-j k L)`` (2D cylindrical
  spreading);
* received power relative to free space gives the path gain, and
  :func:`communication_distance` walks the receiver outward until the
  power drops below a threshold — the quantity studied in ref [12].

This is deliberately a 2D (vertical-plane) model: it captures the
multipath/shadowing physics that distinguishes rough from smooth
terrain without the cost of full 3D ray launching, matching the
fidelity the paper's own propagation studies use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .fresnel import wavelength

__all__ = [
    "RayTraceResult",
    "trace_rays",
    "path_gain_db",
    "communication_distance",
]


@dataclass(frozen=True)
class RayTraceResult:
    """Outcome of one ray-trace evaluation."""

    field: complex           # coherent field sum relative to unit source
    n_captured: int          # rays that reached the receiver
    n_launched: int
    direct_blocked: bool     # was the direct Tx->Rx ray terrain-blocked?

    @property
    def power(self) -> float:
        return float(abs(self.field) ** 2)


def _segment_intersection(
    px: float, pz: float, dx_r: float, dz_r: float,
    x: np.ndarray, z: np.ndarray, start_index: int,
) -> Tuple[Optional[int], float]:
    """First terrain-facet intersection of a ray, marching forward.

    Returns ``(facet_index, t)`` with the ray parameter ``t > 0``, or
    ``(None, inf)``.  Facet ``i`` spans ``x[i]..x[i+1]``.
    """
    n = x.size
    if dx_r > 0:
        indices = range(max(start_index, 0), n - 1)
    elif dx_r < 0:
        indices = range(min(start_index, n - 2), -1, -1)
    else:  # vertical ray: only the facet under px matters
        i = int(np.clip(np.searchsorted(x, px) - 1, 0, n - 2))
        indices = range(i, i + 1)
    for i in indices:
        x0, x1 = x[i], x[i + 1]
        z0, z1 = z[i], z[i + 1]
        # ray: (px + t dx, pz + t dz); facet: (x0 + s (x1-x0), z0 + s (z1-z0))
        ex, ez = x1 - x0, z1 - z0
        denom = dx_r * ez - dz_r * ex
        if denom == 0.0:
            continue
        t = ((x0 - px) * ez - (z0 - pz) * ex) / denom
        s = ((x0 - px) * dz_r - (z0 - pz) * dx_r) / denom
        if t > 1e-9 and -1e-12 <= s <= 1.0 + 1e-12:
            return i, t
    return None, np.inf


def _ray_to_point_clear(
    px: float, pz: float, qx: float, qz: float,
    x: np.ndarray, z: np.ndarray,
) -> bool:
    """Is the straight segment p -> q above the terrain everywhere?"""
    lo, hi = (px, qx) if px <= qx else (qx, px)
    i0 = int(np.clip(np.searchsorted(x, lo) - 1, 0, x.size - 1))
    i1 = int(np.clip(np.searchsorted(x, hi) + 1, 0, x.size - 1))
    if i1 <= i0:
        return True
    xs = x[i0 : i1 + 1]
    if qx != px:
        t = (xs - px) / (qx - px)
        inside = (t > 1e-9) & (t < 1 - 1e-9)
        ray_z = pz + t * (qz - pz)
        return bool(np.all(ray_z[inside] >= z[i0 : i1 + 1][inside] - 1e-9))
    return True


def trace_rays(
    terrain_x: np.ndarray,
    terrain_z: np.ndarray,
    tx: Tuple[float, float],
    rx: Tuple[float, float],
    frequency_hz: float,
    n_rays: int = 721,
    max_bounces: int = 3,
    capture_radius: Optional[float] = None,
    reflection_coefficient: float = -1.0,
    roughness_std: float = 0.0,
) -> RayTraceResult:
    """Trace a ray fan from ``tx`` and sum contributions reaching ``rx``.

    Parameters
    ----------
    terrain_x, terrain_z:
        Piecewise-linear terrain profile (``terrain_x`` strictly
        increasing).
    tx, rx:
        ``(x, z)`` positions (absolute heights, above the terrain).
    frequency_hz:
        Carrier frequency (sets the phase constant).
    n_rays:
        Fan size; rays are launched uniformly over the full circle.
    max_bounces:
        Specular reflections allowed per ray.
    capture_radius:
        Receiver capture radius; default ``2 * lambda`` (trade-off
        between angular resolution and fan density).
    reflection_coefficient:
        Facet reflection coefficient (``-1`` = grazing/PEC limit).
    roughness_std:
        Sub-facet roughness for the per-bounce Rayleigh attenuation
        (models roughness below the profile's sampling).

    Returns
    -------
    :class:`RayTraceResult` with the coherent field normalised so that a
    free-space direct ray alone gives ``|field| = 1/sqrt(d)``.
    """
    x = np.asarray(terrain_x, dtype=float)
    z = np.asarray(terrain_z, dtype=float)
    if x.ndim != 1 or x.shape != z.shape or x.size < 2:
        raise ValueError("terrain must be matching 1D arrays, length >= 2")
    if np.any(np.diff(x) <= 0):
        raise ValueError("terrain_x must be strictly increasing")
    lam = wavelength(frequency_hz)
    k = 2.0 * np.pi / lam
    cap = capture_radius if capture_radius is not None else 2.0 * lam
    if cap <= 0:
        raise ValueError("capture radius must be positive")

    txx, txz = tx
    rxx, rxz = rx

    field = 0.0 + 0.0j
    captured = 0

    # direct ray handled exactly (not sampled by the fan)
    direct_clear = _ray_to_point_clear(txx, txz, rxx, rxz, x, z)
    if direct_clear:
        d = float(np.hypot(rxx - txx, rxz - txz))
        field += np.exp(-1j * k * d) / np.sqrt(max(d, 1e-9))
        captured += 1

    angles = np.linspace(0.0, 2.0 * np.pi, n_rays, endpoint=False)
    for ang in angles:
        px, pz = txx, txz
        dx_r, dz_r = float(np.cos(ang)), float(np.sin(ang))
        amp = 1.0 + 0.0j
        length = 0.0
        start = int(np.clip(np.searchsorted(x, px) - 1, 0, x.size - 2))
        for bounce in range(max_bounces):
            idx, t = _segment_intersection(px, pz, dx_r, dz_r, x, z, start)
            if idx is None:
                break
            hx, hz = px + t * dx_r, pz + t * dz_r
            seg_len = t
            # can this in-flight ray see the receiver after the bounce?
            # reflect direction off the facet normal first
            ex, ez = x[idx + 1] - x[idx], z[idx + 1] - z[idx]
            norm = np.hypot(ex, ez)
            nx_, nz_ = -ez / norm, ex / norm  # upward normal
            dot = dx_r * nx_ + dz_r * nz_
            rx_d, rz_d = dx_r - 2.0 * dot * nx_, dz_r - 2.0 * dot * nz_
            # per-bounce attenuation
            grazing = abs(np.arcsin(np.clip(abs(dot), 0.0, 1.0)))
            rho_s = np.exp(-2.0 * (k * roughness_std * np.sin(grazing)) ** 2)
            amp *= reflection_coefficient * rho_s
            length += seg_len
            px, pz, dx_r, dz_r = hx, hz + 1e-9, rx_d, rz_d
            start = idx
            # does the reflected leg pass the receiver within capture?
            wx, wz = rxx - px, rxz - pz
            proj = wx * dx_r + wz * dz_r
            if proj > 0:
                perp = abs(wx * dz_r - wz * dx_r)
                if perp <= cap and _ray_to_point_clear(px, pz, rxx, rxz, x, z):
                    d_total = length + float(np.hypot(wx, wz))
                    field += amp * np.exp(-1j * k * d_total) / np.sqrt(
                        max(d_total, 1e-9)
                    )
                    captured += 1
                    break
    return RayTraceResult(
        field=complex(field),
        n_captured=captured,
        n_launched=n_rays + 1,
        direct_blocked=not direct_clear,
    )


def path_gain_db(result: RayTraceResult, distance: float) -> float:
    """Path gain relative to free space at ``distance`` (dB, <= ~6).

    Free space in this 2D convention has ``|field| = 1/sqrt(d)``; the
    returned value is ``20 log10(|field| sqrt(d))``: 0 dB = free space,
    positive = constructive multipath, very negative = shadowed.
    """
    if distance <= 0:
        raise ValueError("distance must be positive")
    mag = abs(result.field) * np.sqrt(distance)
    return float(20.0 * np.log10(max(mag, 1e-12)))


def communication_distance(
    terrain_x: np.ndarray,
    terrain_z: np.ndarray,
    frequency_hz: float,
    tx_height: float,
    rx_height: float,
    gain_threshold_db: float = -20.0,
    step: float = 25.0,
    consecutive_failures: int = 2,
    **trace_kwargs,
) -> float:
    """Radio communication distance along a profile (paper ref [12]).

    Walks the receiver outward from the transmitter in ``step``
    increments and returns the largest distance at which the ray-traced
    path gain stays above ``gain_threshold_db`` (relative to free
    space); the walk stops after ``consecutive_failures`` failing
    positions (one deep multipath null should not end the link).
    """
    x = np.asarray(terrain_x, dtype=float)
    z = np.asarray(terrain_z, dtype=float)
    tx = (float(x[0]), float(z[0]) + tx_height)
    best = 0.0
    fails = 0
    d = step
    while x[0] + d <= x[-1]:
        xi = x[0] + d
        zi = float(np.interp(xi, x, z)) + rx_height
        res = trace_rays(x, z, tx, (xi, zi), frequency_hz, **trace_kwargs)
        if path_gain_db(res, d) >= gain_threshold_db:
            best = d
            fails = 0
        else:
            fails += 1
            if fails >= consecutive_failures:
                break
        d += step
    return best
