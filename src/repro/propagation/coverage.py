"""Range-height coverage maps from the PE solver.

Packages the coverage-map workflow (examples/coverage_map.py) as API: a
single call marches the parabolic equation over a terrain profile and
returns a :class:`CoverageMap` — the propagation factor on a
range x height lattice, with helpers for querying receivers at
heights above local ground and rendering.

This is the deliverable the paper's conclusion asks the generated
surfaces for: a wireless *channel map* over an inhomogeneous terrain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, Union

import numpy as np

from .parabolic import (
    PEGrid,
    PESolver,
    gaussian_aperture,
    gaussian_freespace_amplitude,
)

__all__ = ["CoverageMap", "compute_coverage"]

TerrainFn = Callable[[float], float]


@dataclass
class CoverageMap:
    """Propagation-factor map ``pf[range_index, height_index]``.

    ``pf`` is linear (1 = free space); use :meth:`pf_db` for decibels.
    """

    ranges: np.ndarray        # (nr,) range samples from the transmitter
    heights: np.ndarray       # (nz,) absolute heights
    pf: np.ndarray            # (nr, nz) propagation factor, linear
    ground: np.ndarray        # (nr,) terrain height at each range
    tx_height: float
    frequency_hz: float

    def __post_init__(self) -> None:
        if self.pf.shape != (self.ranges.size, self.heights.size):
            raise ValueError("pf shape must be (n_ranges, n_heights)")
        if self.ground.shape != self.ranges.shape:
            raise ValueError("ground must align with ranges")

    def pf_db(self, floor_db: float = -120.0) -> np.ndarray:
        """Propagation factor in dB, floored for log safety."""
        return np.maximum(20.0 * np.log10(np.maximum(self.pf, 1e-30)),
                          floor_db)

    def at(self, rng: float, height_agl: float) -> float:
        """Propagation factor at a range and height *above local ground*.

        Bilinear in range/height; raises outside the computed lattice.
        """
        if not self.ranges[0] <= rng <= self.ranges[-1]:
            raise ValueError("range outside the coverage map")
        g = float(np.interp(rng, self.ranges, self.ground))
        z = g + height_agl
        if not self.heights[0] <= z <= self.heights[-1]:
            raise ValueError("receiver height outside the coverage map")
        i = int(np.clip(np.searchsorted(self.ranges, rng) - 1, 0,
                        self.ranges.size - 2))
        t = (rng - self.ranges[i]) / (self.ranges[i + 1] - self.ranges[i])
        row = (1.0 - t) * self.pf[i] + t * self.pf[i + 1]
        return float(np.interp(z, self.heights, row))

    def masked_image(self, vmin_db: float = -40.0, vmax_db: float = 6.0
                     ) -> np.ndarray:
        """[0,1] grayscale image (range x height) with terrain blacked out."""
        img = np.clip(
            (self.pf_db() - vmin_db) / (vmax_db - vmin_db), 0.0, 1.0
        )
        mask = self.heights[None, :] <= self.ground[:, None]
        img = img.copy()
        img[mask] = 0.0
        return img


def compute_coverage(
    terrain: Union[TerrainFn, Tuple[np.ndarray, np.ndarray]],
    frequency_hz: float,
    x_max: float,
    tx_height: float,
    z_max: float,
    nz: int = 1024,
    dx: Optional[float] = None,
    beamwidth: Optional[float] = None,
    collect_every: int = 4,
) -> CoverageMap:
    """March the PE over ``terrain`` and collect a coverage map.

    Parameters
    ----------
    terrain:
        Either a callable ``x -> ground height`` or a sampled profile
        ``(xs, zs)`` (interpolated linearly).
    frequency_hz, x_max, tx_height:
        Link parameters; the transmitter sits at ``tx_height`` above the
        terrain at x = 0.
    z_max, nz, dx:
        PE lattice (``dx`` defaults to ~2 wavelengths).
    beamwidth:
        Source 1/e half-width; defaults to 4 wavelengths.
    collect_every:
        Store every k-th PE step as a map column.
    """
    if isinstance(terrain, tuple):
        xs, zs = (np.asarray(a, dtype=float) for a in terrain)
        if xs.ndim != 1 or xs.shape != zs.shape or xs.size < 2:
            raise ValueError("sampled terrain must be matching 1D arrays")
        terrain_fn: TerrainFn = lambda q: float(np.interp(q, xs, zs))  # noqa: E731
    else:
        terrain_fn = terrain
    lam = 299_792_458.0 / frequency_hz
    if dx is None:
        dx = 2.0 * lam
    if beamwidth is None:
        beamwidth = 4.0 * lam
    if collect_every < 1:
        raise ValueError("collect_every must be >= 1")

    grid = PEGrid(z_max=z_max, nz=nz, dx=dx)
    solver = PESolver(grid, frequency_hz, terrain=terrain_fn)
    z_tx = float(terrain_fn(0.0)) + tx_height
    aperture = gaussian_aperture(grid, z_tx, beamwidth)
    _, snaps = solver.march(aperture, 0.0, x_max,
                            collect_every=collect_every)
    if snaps is None:
        raise ValueError("x_max too small: no PE steps were collected")
    n = snaps.shape[0]
    ranges = (np.arange(n) + 1) * collect_every * grid.dx
    pf = np.empty((n, grid.nz))
    for i, (r, u) in enumerate(zip(ranges, snaps)):
        free = gaussian_freespace_amplitude(float(r), grid.z, z_tx,
                                            beamwidth, solver.k)
        pf[i] = np.abs(u) / np.maximum(free, free.max() * 1e-5)
    ground = np.array([terrain_fn(float(r)) for r in ranges])
    return CoverageMap(
        ranges=ranges, heights=grid.z.copy(), pf=pf, ground=ground,
        tx_height=tx_height, frequency_hz=frequency_hz,
    )
