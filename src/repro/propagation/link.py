"""Link-budget evaluation along generated surfaces.

Glues the pieces together: extract a terrain profile from a
:class:`~repro.core.surface.Surface`, evaluate free-space + Deygout
diffraction loss + rough-ground two-ray interference using the *local*
surface statistics at the reflection region, and compare against the
Hata baseline.  This is the sensor-network scenario the paper's
introduction motivates and the App. P bench exercises: how far can two
nodes on an inhomogeneous terrain communicate, and how does crossing a
smooth (pond) vs rough (field) region change the answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..core.surface import Surface
from ..stats.estimators import rms_height
from .deygout import DiffractionResult, deygout_loss_db
from .fresnel import free_space_loss_db
from .profile import PathProfile, extract_profile
from .tworay import rayleigh_roughness_factor, two_ray_field_factor

__all__ = ["LinkBudget", "evaluate_link", "max_range"]


@dataclass(frozen=True)
class LinkBudget:
    """Itemised loss terms of one link evaluation (all dB)."""

    distance: float
    free_space_db: float
    diffraction_db: float
    two_ray_gain_db: float
    total_db: float
    line_of_sight: bool
    roughness_h: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "distance": self.distance,
            "free_space_db": self.free_space_db,
            "diffraction_db": self.diffraction_db,
            "two_ray_gain_db": self.two_ray_gain_db,
            "total_db": self.total_db,
            "line_of_sight": float(self.line_of_sight),
            "roughness_h": self.roughness_h,
        }


def _profile_roughness(profile: PathProfile) -> float:
    """Height std of the mid-path terrain (the specular region)."""
    n = profile.ground.size
    lo, hi = n // 4, 3 * n // 4
    return rms_height(profile.ground[lo:hi])


def evaluate_link(
    surface: Surface,
    start: Tuple[float, float],
    end: Tuple[float, float],
    frequency_hz: float,
    tx_height: float = 5.0,
    rx_height: float = 1.5,
    n_samples: int = 512,
) -> LinkBudget:
    """Evaluate the path loss between two points on a surface.

    Total loss = free space + Deygout diffraction - two-ray interference
    gain, with the two-ray reflection attenuated by the Rayleigh factor
    computed from the *measured* mid-path roughness (so inhomogeneous
    surfaces automatically produce position-dependent links).
    """
    profile = extract_profile(
        surface, start, end, tx_height=tx_height, rx_height=rx_height,
        n_samples=n_samples,
    )
    d = profile.length
    fs = float(free_space_loss_db(np.array(d), frequency_hz))
    diff = deygout_loss_db(profile, frequency_hz)
    h_local = _profile_roughness(profile)
    factor = float(
        two_ray_field_factor(
            np.array(d), tx_height, rx_height, frequency_hz, height_std=h_local
        )
    )
    gain = 20.0 * np.log10(max(factor, 1e-12))
    return LinkBudget(
        distance=d,
        free_space_db=fs,
        diffraction_db=diff.loss_db,
        two_ray_gain_db=gain,
        total_db=fs + diff.loss_db - gain,
        line_of_sight=diff.line_of_sight,
        roughness_h=h_local,
    )


def max_range(
    surface: Surface,
    start: Tuple[float, float],
    direction: Tuple[float, float],
    frequency_hz: float,
    max_loss_db: float,
    tx_height: float = 5.0,
    rx_height: float = 1.5,
    step: float = 20.0,
    max_distance: Optional[float] = None,
) -> float:
    """Largest distance along ``direction`` with total loss <= budget.

    Walks outward in ``step`` increments; returns the last distance whose
    link closed (0.0 if even the first step fails).  A crude but robust
    stand-in for the "radio communication distance" estimation of the
    paper's ref. [12].
    """
    dx, dy = direction
    norm = float(np.hypot(dx, dy))
    if norm == 0:
        raise ValueError("direction must be nonzero")
    dx, dy = dx / norm, dy / norm
    sx, sy = start
    # stay inside the surface extent
    x_lo, y_lo = surface.origin
    x_hi = x_lo + (surface.shape[0] - 1) * surface.grid.dx
    y_hi = y_lo + (surface.shape[1] - 1) * surface.grid.dy
    best = 0.0
    d = step
    while True:
        if max_distance is not None and d > max_distance:
            break
        ex, ey = sx + d * dx, sy + d * dy
        if not (x_lo <= ex <= x_hi and y_lo <= ey <= y_hi):
            break
        budget = evaluate_link(
            surface, (sx, sy), (ex, ey), frequency_hz,
            tx_height=tx_height, rx_height=rx_height,
        )
        if budget.total_db > max_loss_db:
            break
        best = d
        d += step
    return best
