"""Multiple knife-edge diffraction by the Deygout method.

Given a :class:`~repro.propagation.profile.PathProfile`, find the sample
with the largest diffraction parameter (the *principal edge*), charge its
single-edge loss, and recurse on the two sub-paths with the edge acting
as a virtual antenna.  Recursion stops when no sub-path sample exceeds
the obstruction threshold or the depth limit is reached (three edges is
the classical Deygout limit; deeper recursion over-counts).

This mirrors how the discrete ray-tracing of the paper's refs [11]-[12]
accounts for terrain obstruction, at a fraction of the cost — adequate
for the demonstration scenario (App. P bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .fresnel import diffraction_parameter, knife_edge_loss_db
from .profile import PathProfile

__all__ = ["DiffractionResult", "deygout_loss_db", "principal_edge"]


@dataclass(frozen=True)
class DiffractionResult:
    """Outcome of a Deygout evaluation."""

    loss_db: float
    edges: Tuple[int, ...]  # profile sample indices charged as edges
    line_of_sight: bool


def _nu_along(
    distances: np.ndarray,
    heights: np.ndarray,
    i0: int,
    i1: int,
    frequency_hz: float,
) -> Tuple[Optional[int], float]:
    """Principal edge (index, nu) on the open interval (i0, i1)."""
    if i1 - i0 < 2:
        return None, -np.inf
    d = distances[i0 + 1 : i1]
    z0, z1 = heights[i0], heights[i1]
    t = (d - distances[i0]) / (distances[i1] - distances[i0])
    ray = z0 + t * (z1 - z0)
    obstruction = heights[i0 + 1 : i1] - ray
    d1 = d - distances[i0]
    d2 = distances[i1] - d
    nu = diffraction_parameter(obstruction, d1, d2, frequency_hz)
    j = int(np.argmax(nu))
    return i0 + 1 + j, float(nu[j])


def principal_edge(
    profile: PathProfile, frequency_hz: float
) -> Tuple[Optional[int], float]:
    """Index and ``nu`` of the dominant obstruction on the full path."""
    heights = profile.ground.copy()
    heights[0] += profile.tx_height
    heights[-1] += profile.rx_height
    return _nu_along(
        profile.distances, heights, 0, len(heights) - 1, frequency_hz
    )


def deygout_loss_db(
    profile: PathProfile,
    frequency_hz: float,
    max_edges: int = 3,
    nu_threshold: float = -0.78,
) -> DiffractionResult:
    """Total diffraction loss of a profile by the Deygout construction.

    Parameters
    ----------
    profile:
        Terrain profile with antenna heights.
    frequency_hz:
        Carrier frequency.
    max_edges:
        Recursion budget (principal edge + sub-edges); classical choice 3.
    nu_threshold:
        Edges with ``nu`` below this contribute no loss (ITU knife-edge
        validity bound).

    Returns
    -------
    :class:`DiffractionResult` with the summed edge losses in dB.
    """
    heights = profile.ground.copy()
    heights[0] += profile.tx_height
    heights[-1] += profile.rx_height
    d = profile.distances
    edges: List[int] = []

    def recurse(i0: int, i1: int, budget: int) -> float:
        if budget <= 0:
            return 0.0
        idx, nu = _nu_along(d, heights, i0, i1, frequency_hz)
        if idx is None or nu <= nu_threshold:
            return 0.0
        edges.append(idx)
        loss = float(knife_edge_loss_db(np.array(nu)))
        loss += recurse(i0, idx, budget - 1)
        loss += recurse(idx, i1, budget - 1)
        return loss

    total = recurse(0, len(heights) - 1, max_edges)
    return DiffractionResult(
        loss_db=total,
        edges=tuple(edges),
        line_of_sight=profile.is_line_of_sight(),
    )
