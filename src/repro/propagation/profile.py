"""Terrain path profiles for propagation studies.

The paper's introduction motivates rough-surface generation by wireless
sensor networks: "studies on propagation characteristics along RRSs are
strongly required".  This subpackage supplies the lightweight propagation
substrate (DESIGN.md S11) used by the examples and the App. P bench — a
path-profile extractor plus classical link models (free space, two-ray,
knife-edge/Deygout diffraction, and the Hata empirical baseline the paper
cites as ref. [7]).

A :class:`PathProfile` is the terrain height sampled along the straight
line between a transmitter and receiver, with antenna heights *above
local ground*.  Profiles are extracted from any
:class:`~repro.core.surface.Surface` — or any
:class:`~repro.core.api.HeightField` the unified generators return,
given a grid — by bilinear interpolation, and carry the source's
provenance forward so a link study can always be traced back to the
spectrum/seed that produced its terrain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..core.api import absorb_legacy_positionals
from ..core.grid import Grid2D
from ..core.surface import Surface

__all__ = ["PathProfile", "extract_profile", "bilinear_sample"]


def _as_surface(source: Any, grid: Optional[Grid2D],
                origin: Tuple[float, float]) -> Surface:
    """Normalise a terrain source to a :class:`Surface`.

    Accepts a ``Surface`` directly, or a :class:`HeightField`/bare 2D
    array plus an explicit ``grid`` (generator outputs know their
    provenance but not their physical spacing).
    """
    if isinstance(source, Surface):
        return source
    heights = np.asarray(source, dtype=float)
    if heights.ndim != 2:
        raise ValueError(
            f"terrain source must be a Surface or a 2D height field; "
            f"got ndim={heights.ndim}"
        )
    if grid is None:
        raise ValueError(
            "sampling a HeightField needs grid= (a Grid2D giving the "
            "physical spacing); Surface sources carry their own"
        )
    return Surface(
        heights=heights, grid=grid, origin=origin,
        provenance=dict(getattr(source, "provenance", None) or {}),
    )


def bilinear_sample(surface: Any, px: np.ndarray, py: np.ndarray, *,
                    grid: Optional[Grid2D] = None,
                    origin: Tuple[float, float] = (0.0, 0.0)) -> np.ndarray:
    """Bilinearly interpolated heights at physical coordinates.

    ``surface`` is a :class:`Surface`, or a ``HeightField``/array with
    ``grid=`` supplied.  Coordinates must lie within the surface extent
    (no extrapolation); out-of-range queries raise.
    """
    surface = _as_surface(surface, grid, origin)
    px = np.asarray(px, dtype=float)
    py = np.asarray(py, dtype=float)
    gx = (px - surface.origin[0]) / surface.grid.dx
    gy = (py - surface.origin[1]) / surface.grid.dy
    nx, ny = surface.shape
    if np.any(gx < 0) or np.any(gx > nx - 1) or np.any(gy < 0) or np.any(gy > ny - 1):
        raise ValueError("query points outside the surface extent")
    ix = np.clip(np.floor(gx).astype(int), 0, nx - 2)
    iy = np.clip(np.floor(gy).astype(int), 0, ny - 2)
    tx = gx - ix
    ty = gy - iy
    h = surface.heights
    return (
        h[ix, iy] * (1 - tx) * (1 - ty)
        + h[ix + 1, iy] * tx * (1 - ty)
        + h[ix, iy + 1] * (1 - tx) * ty
        + h[ix + 1, iy + 1] * tx * ty
    )


@dataclass
class PathProfile:
    """Terrain profile between a transmitter and a receiver.

    Attributes
    ----------
    distances:
        Along-path distances from the transmitter, shape ``(n,)``,
        starting at 0 and ending at the total path length.
    ground:
        Terrain height at each sample.
    tx_height, rx_height:
        Antenna heights *above the local ground* at the two ends.
    """

    distances: np.ndarray
    ground: np.ndarray
    tx_height: float
    rx_height: float
    #: Provenance carried over from the source surface (spectrum, seed,
    #: engine, ...) plus the extraction geometry — empty for hand-built
    #: profiles.
    provenance: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        d = np.asarray(self.distances, dtype=float)
        g = np.asarray(self.ground, dtype=float)
        if d.ndim != 1 or d.shape != g.shape or d.size < 2:
            raise ValueError("distances and ground must be equal-length 1D, n>=2")
        if np.any(np.diff(d) <= 0):
            raise ValueError("distances must be strictly increasing")
        if self.tx_height <= 0 or self.rx_height <= 0:
            raise ValueError("antenna heights must be positive")
        self.distances = d
        self.ground = g

    @property
    def length(self) -> float:
        """Total path length."""
        return float(self.distances[-1] - self.distances[0])

    @property
    def tx_z(self) -> float:
        """Absolute transmitter antenna height."""
        return float(self.ground[0] + self.tx_height)

    @property
    def rx_z(self) -> float:
        """Absolute receiver antenna height."""
        return float(self.ground[-1] + self.rx_height)

    def line_of_sight(self) -> np.ndarray:
        """Height of the direct Tx-Rx ray above datum at each sample."""
        d = self.distances
        t = (d - d[0]) / (d[-1] - d[0])
        return self.tx_z + t * (self.rx_z - self.tx_z)

    def clearance(self) -> np.ndarray:
        """LoS ray height minus terrain (negative where terrain blocks)."""
        return self.line_of_sight() - self.ground

    def is_line_of_sight(self) -> bool:
        """True when no interior sample obstructs the direct ray."""
        c = self.clearance()
        return bool(np.all(c[1:-1] >= 0.0))


def extract_profile(
    surface: Any,
    start: Tuple[float, float],
    end: Tuple[float, float],
    *legacy: Any,
    tx_height: Optional[float] = None,
    rx_height: Optional[float] = None,
    n_samples: int = 256,
    grid: Optional[Grid2D] = None,
    origin: Tuple[float, float] = (0.0, 0.0),
) -> PathProfile:
    """Extract the terrain profile along the segment ``start -> end``.

    ``surface`` is a :class:`Surface` or any
    :class:`~repro.core.api.HeightField`/2D array with ``grid=``
    supplied.  Samples by bilinear interpolation at ``n_samples`` evenly
    spaced points (inclusive of both ends); the result's ``provenance``
    carries the source's record plus the extraction geometry.

    ``tx_height``/``rx_height`` are keyword-only; the seed-era
    positional shape ``extract_profile(s, a, b, tx, rx[, n])`` still
    works with a :class:`DeprecationWarning`.
    """
    if legacy:
        absorbed = absorb_legacy_positionals(
            "extract_profile", legacy,
            ("tx_height", "rx_height", "n_samples"),
        )
        tx_height = absorbed.get("tx_height", tx_height)
        rx_height = absorbed.get("rx_height", rx_height)
        n_samples = absorbed.get("n_samples", n_samples)
    if tx_height is None or rx_height is None:
        raise TypeError(
            "extract_profile() requires tx_height= and rx_height="
        )
    if n_samples < 2:
        raise ValueError("need at least 2 samples")
    surface = _as_surface(surface, grid, origin)
    x0, y0 = start
    x1, y1 = end
    total = float(np.hypot(x1 - x0, y1 - y0))
    if total <= 0:
        raise ValueError("start and end coincide")
    t = np.linspace(0.0, 1.0, n_samples)
    px = x0 + t * (x1 - x0)
    py = y0 + t * (y1 - y0)
    ground = bilinear_sample(surface, px, py)
    provenance = dict(surface.provenance or {})
    provenance["path"] = {
        "start": [float(x0), float(y0)], "end": [float(x1), float(y1)],
        "n_samples": int(n_samples),
    }
    return PathProfile(
        distances=t * total,
        ground=ground,
        tx_height=tx_height,
        rx_height=rx_height,
        provenance=provenance,
    )
