"""Two-ray ground reflection over rough terrain.

The flat-earth two-ray model with a roughness-modified reflection
coefficient: specular reflection off a rough surface is attenuated by
the Rayleigh roughness factor

.. math:: \\rho_s = \\exp\\big(-2 (k\\, h\\, \\sin\\theta)^2\\big)

(``k`` wavenumber, ``h`` surface height std, ``theta`` grazing angle) —
the standard coherent-scattering reduction for Gaussian height
statistics, which ties the link budget directly to the ``h`` parameter
of the generated surfaces: smoother regions (ponds) reflect coherently
and produce deep two-ray interference nulls; rough regions suppress the
reflected ray and approach free-space behaviour.  This is precisely the
qualitative dependence of propagation on local surface statistics that
motivates inhomogeneous surface generation in the paper's introduction.
"""

from __future__ import annotations

import numpy as np

from .fresnel import wavelength

__all__ = [
    "rayleigh_roughness_factor",
    "rayleigh_criterion_height",
    "two_ray_field_factor",
    "two_ray_loss_db",
]


def rayleigh_roughness_factor(
    height_std: float, grazing_angle_rad: np.ndarray, frequency_hz: float
) -> np.ndarray:
    """Coherent reflection attenuation ``rho_s`` in [0, 1]."""
    if height_std < 0:
        raise ValueError("height std must be >= 0")
    theta = np.asarray(grazing_angle_rad, dtype=float)
    k = 2.0 * np.pi / wavelength(frequency_hz)
    g = k * height_std * np.sin(theta)
    return np.exp(-2.0 * g * g)


def rayleigh_criterion_height(
    grazing_angle_rad: float, frequency_hz: float
) -> float:
    """Height std at which a surface stops being 'smooth' (Rayleigh
    criterion ``h < lambda / (8 sin theta)``)."""
    lam = wavelength(frequency_hz)
    s = np.sin(grazing_angle_rad)
    if s <= 0:
        raise ValueError("grazing angle must be positive")
    return float(lam / (8.0 * s))


def two_ray_field_factor(
    distance_m: np.ndarray,
    tx_height: float,
    rx_height: float,
    frequency_hz: float,
    height_std: float = 0.0,
    reflection_coefficient: float = -1.0,
) -> np.ndarray:
    """|E/E_fs|: two-ray interference factor with rough-ground reflection.

    Combines the direct ray and the ground-reflected ray (image method)
    with reflection coefficient ``Gamma * rho_s`` where ``rho_s`` is the
    Rayleigh roughness factor for the given surface height std.
    ``Gamma = -1`` is the grazing/perfect-conductor limit.
    """
    d = np.asarray(distance_m, dtype=float)
    if np.any(d <= 0):
        raise ValueError("distance must be positive")
    if tx_height <= 0 or rx_height <= 0:
        raise ValueError("antenna heights must be positive")
    lam = wavelength(frequency_hz)
    r_direct = np.sqrt(d * d + (tx_height - rx_height) ** 2)
    r_reflect = np.sqrt(d * d + (tx_height + rx_height) ** 2)
    grazing = np.arctan2(tx_height + rx_height, d)
    rho_s = rayleigh_roughness_factor(height_std, grazing, frequency_hz)
    k = 2.0 * np.pi / lam
    phase = k * (r_reflect - r_direct)
    gamma = reflection_coefficient * rho_s
    # field relative to free space at the direct-ray distance
    e = 1.0 + gamma * (r_direct / r_reflect) * np.exp(-1j * phase)
    return np.abs(e)


def two_ray_loss_db(
    distance_m: np.ndarray,
    tx_height: float,
    rx_height: float,
    frequency_hz: float,
    height_std: float = 0.0,
    reflection_coefficient: float = -1.0,
) -> np.ndarray:
    """Two-ray path loss in dB (free-space loss minus interference gain)."""
    from .fresnel import free_space_loss_db

    d = np.asarray(distance_m, dtype=float)
    factor = two_ray_field_factor(
        d, tx_height, rx_height, frequency_hz, height_std, reflection_coefficient
    )
    fs = free_space_loss_db(
        np.sqrt(d * d + (tx_height - rx_height) ** 2), frequency_hz
    )
    with np.errstate(divide="ignore"):
        gain = 20.0 * np.log10(np.maximum(factor, 1e-12))
    return fs - gain
