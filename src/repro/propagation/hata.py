"""Hata empirical path-loss model (paper reference [7]).

M. Hata, "Empirical formula for propagation loss in land mobile radio
services", IEEE Trans. Veh. Technol. VT-29(3), 1980.  The paper's
introduction cites Hata as the empirical urban model that "seems
difficult to apply ... straightforwardly to wireless sensor networks" —
implemented here as the baseline the App. P bench contrasts against the
terrain-aware models.

Validity ranges (enforced, with a ``strict=False`` escape hatch for
plotting beyond them): f in [150, 1500] MHz, base height in [30, 200] m,
mobile height in [1, 10] m, distance in [1, 20] km.
"""

from __future__ import annotations

import numpy as np

__all__ = ["hata_loss_db", "HATA_ENVIRONMENTS"]

HATA_ENVIRONMENTS = ("urban", "suburban", "open")


def _mobile_correction_db(
    frequency_mhz: float, mobile_height_m: float, large_city: bool
) -> float:
    f = frequency_mhz
    h = mobile_height_m
    if large_city:
        if f <= 300.0:
            return 8.29 * np.log10(1.54 * h) ** 2 - 1.1
        return 3.2 * np.log10(11.75 * h) ** 2 - 4.97
    return (1.1 * np.log10(f) - 0.7) * h - (1.56 * np.log10(f) - 0.8)


def hata_loss_db(
    distance_km: np.ndarray,
    frequency_mhz: float,
    base_height_m: float = 30.0,
    mobile_height_m: float = 1.5,
    environment: str = "open",
    large_city: bool = False,
    strict: bool = True,
) -> np.ndarray:
    """Median path loss (dB) by the Hata empirical formula.

    Parameters
    ----------
    distance_km:
        Link distance(s) in kilometres.
    frequency_mhz:
        Carrier in MHz.
    base_height_m, mobile_height_m:
        Effective antenna heights.
    environment:
        ``"urban"`` (the base formula), ``"suburban"`` or ``"open"``
        (Hata's correction terms).
    large_city:
        Use the large-city mobile-antenna correction.
    strict:
        Enforce the published validity ranges.
    """
    d = np.asarray(distance_km, dtype=float)
    f = float(frequency_mhz)
    hb = float(base_height_m)
    hm = float(mobile_height_m)
    if environment not in HATA_ENVIRONMENTS:
        raise ValueError(
            f"environment must be one of {HATA_ENVIRONMENTS}, got {environment!r}"
        )
    if strict:
        if not (150.0 <= f <= 1500.0):
            raise ValueError(f"Hata frequency range is 150-1500 MHz, got {f}")
        if not (30.0 <= hb <= 200.0):
            raise ValueError(f"Hata base height range is 30-200 m, got {hb}")
        if not (1.0 <= hm <= 10.0):
            raise ValueError(f"Hata mobile height range is 1-10 m, got {hm}")
        if np.any(d < 1.0) or np.any(d > 20.0):
            raise ValueError("Hata distance range is 1-20 km")
    if np.any(d <= 0):
        raise ValueError("distance must be positive")

    a_hm = _mobile_correction_db(f, hm, large_city)
    urban = (
        69.55
        + 26.16 * np.log10(f)
        - 13.82 * np.log10(hb)
        - a_hm
        + (44.9 - 6.55 * np.log10(hb)) * np.log10(d)
    )
    if environment == "urban":
        return urban
    if environment == "suburban":
        return urban - 2.0 * np.log10(f / 28.0) ** 2 - 5.4
    # open / rural
    return urban - 4.78 * np.log10(f) ** 2 + 18.33 * np.log10(f) - 40.94
