"""Split-step parabolic-equation (PE) propagation over terrain profiles.

The paper's conclusion names the goal: "simulate electromagnetic wave
propagation along the inhomogeneous RRSs ... Such numerical simulation
and channel modeling deserve as a future investigation."  The standard
full-wave-ish tool for propagation over irregular terrain is the
parabolic equation solved by the split-step Fourier method — this module
implements it over the profiles this library generates (DESIGN.md S11
extension; the FVTD solver of the paper's refs [8]-[10] plays the same
role at much higher cost).

Model: 2D scalar field ``u(x, z)`` (reduced field, paraxial about +x)
satisfying the narrow-angle PE ``2jk du/dx = d^2u/dz^2`` in vacuum.
March in ``x`` by alternating

* a diffraction half-step applied in the vertical spectral domain
  (sine transform => perfectly reflecting ground at the domain bottom),
* terrain masking: the field is zeroed below the local ground height
  (staircase Dirichlet terrain — the standard first-order treatment),

with an absorbing (Hanning) layer at the top to emulate open sky.

Outputs: the field marched to any range, and the *propagation factor*
``PF = |u| * sqrt(x)`` normalised so free space is ~1 — directly
comparable to the ray/diffraction models in this package (bench E4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np
from scipy import fft as sfft

from .fresnel import wavelength

__all__ = [
    "PEGrid",
    "PESolver",
    "gaussian_aperture",
    "gaussian_freespace_amplitude",
    "propagation_factor",
]


@dataclass(frozen=True)
class PEGrid:
    """Vertical/range discretisation of a PE march.

    Parameters
    ----------
    z_max:
        Domain height; choose several times the tallest terrain +
        antenna heights (an absorbing layer occupies the top 25%).
    nz:
        Vertical samples (power of two keeps the DST fast).
    dx:
        Range step.  Accuracy needs ``dx <~ 4 k dz^2`` (narrow-angle
        criterion); the solver warns below on gross violations.
    """

    z_max: float
    nz: int
    dx: float

    def __post_init__(self) -> None:
        if self.z_max <= 0 or self.nz < 16 or self.dx <= 0:
            raise ValueError("invalid PE grid parameters")

    @property
    def dz(self) -> float:
        return self.z_max / self.nz

    @property
    def z(self) -> np.ndarray:
        """Vertical sample heights (excluding the z=0 boundary node)."""
        return (np.arange(self.nz) + 1) * self.dz


def gaussian_aperture(
    grid: PEGrid, height: float, beamwidth: float
) -> np.ndarray:
    """Gaussian source aperture centred at ``height``.

    ``beamwidth`` is the 1/e field half-width; a couple of wavelengths
    gives a forward cone comfortably inside the paraxial limit.
    """
    if beamwidth <= 0:
        raise ValueError("beamwidth must be positive")
    z = grid.z
    return np.exp(-(((z - height) / beamwidth) ** 2)).astype(complex)


class PESolver:
    """Narrow-angle split-step PE march over a terrain profile.

    Parameters
    ----------
    grid:
        Vertical/range discretisation.
    frequency_hz:
        Carrier frequency.
    terrain:
        Callable ``x -> ground height`` (vectorised not required); use
        ``lambda x: np.interp(x, xs, zs)`` for sampled profiles.
        ``None`` = flat PEC ground at z = 0.
    absorber_fraction:
        Fraction of the domain top used as absorbing layer.
    """

    def __init__(
        self,
        grid: PEGrid,
        frequency_hz: float,
        terrain: Optional[Callable[[float], float]] = None,
        absorber_fraction: float = 0.25,
    ) -> None:
        if not 0.0 < absorber_fraction < 0.9:
            raise ValueError("absorber_fraction must be in (0, 0.9)")
        self.grid = grid
        self.k = 2.0 * np.pi / wavelength(frequency_hz)
        self.terrain = terrain if terrain is not None else (lambda x: 0.0)

        nz = grid.nz
        # vertical wavenumbers of the sine basis (Dirichlet at z=0, z=zmax)
        kz = np.pi * (np.arange(nz) + 1) / grid.z_max
        self._step_phase = np.exp(-1j * kz**2 * grid.dx / (2.0 * self.k))
        # absorbing layer (amplitude taper per step)
        z = grid.z
        z0 = (1.0 - absorber_fraction) * grid.z_max
        t = np.clip((z - z0) / (grid.z_max - z0), 0.0, 1.0)
        self._absorber = 1.0 - 0.08 * (1.0 - np.cos(np.pi * t)) / 2.0

    # ------------------------------------------------------------------
    def _mask_terrain(self, u: np.ndarray, x: float) -> None:
        ground = float(self.terrain(x))
        if ground > 0.0:
            u[self.grid.z <= ground] = 0.0

    def march(
        self,
        aperture: np.ndarray,
        x_start: float,
        x_end: float,
        collect_every: Optional[int] = None,
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """March the reduced field from ``x_start`` to ``x_end``.

        Returns ``(u_final, snapshots)``; snapshots (optional) stack the
        field every ``collect_every`` steps, for coverage maps.
        """
        u = np.asarray(aperture, dtype=complex).copy()
        if u.shape != (self.grid.nz,):
            raise ValueError(
                f"aperture must have shape ({self.grid.nz},), got {u.shape}"
            )
        if x_end <= x_start:
            raise ValueError("x_end must exceed x_start")
        n_steps = int(np.ceil((x_end - x_start) / self.grid.dx))
        snaps = [] if collect_every else None
        x = x_start
        self._mask_terrain(u, x)
        for step in range(n_steps):
            spec = sfft.dst(u, type=2, norm="ortho")
            spec *= self._step_phase
            u = sfft.idst(spec, type=2, norm="ortho")
            x += self.grid.dx
            self._mask_terrain(u, x)
            u *= self._absorber
            if snaps is not None and (step + 1) % collect_every == 0:
                snaps.append(u.copy())
        return u, (np.stack(snaps) if snaps else None)

    def field_at(
        self, u: np.ndarray, height: float
    ) -> complex:
        """Field value at a receiver height (linear interpolation)."""
        z = self.grid.z
        if not z[0] <= height <= z[-1]:
            raise ValueError("receiver height outside the PE domain")
        re = float(np.interp(height, z, u.real))
        im = float(np.interp(height, z, u.imag))
        return complex(re, im)


def gaussian_freespace_amplitude(
    x: float, z: np.ndarray, height: float, beamwidth: float, k: float
) -> np.ndarray:
    """|u| of a paraxial Gaussian beam in free space (analytic).

    For the narrow-angle PE with initial field
    ``exp(-((z - h)/w0)^2)``, the exact evolution is

    .. math::

        |u(x, z)| = (1+\\alpha^2)^{-1/4}
            \\exp\\!\\Big(-\\frac{(z-h)^2}{w_0^2 (1+\\alpha^2)}\\Big),
        \\qquad \\alpha = \\frac{2x}{k w_0^2}.

    Used as the free-space reference for :func:`propagation_factor`
    (marching a "no terrain" case numerically would still see the sine
    basis' implicit PEC at z = 0).
    """
    if beamwidth <= 0 or k <= 0:
        raise ValueError("beamwidth and k must be positive")
    z = np.asarray(z, dtype=float)
    alpha = 2.0 * x / (k * beamwidth**2)
    denom = 1.0 + alpha * alpha
    return denom**-0.25 * np.exp(-((z - height) ** 2) / (beamwidth**2 * denom))


def propagation_factor(
    solver: PESolver,
    x_range: float,
    tx_height: float,
    rx_height: float,
    beamwidth: float,
) -> float:
    """Terrain propagation factor |u| / |u_freespace| at the receiver.

    Launches a Gaussian aperture of the given ``beamwidth`` at
    ``tx_height``, marches it over the solver's terrain to ``x_range``,
    and normalises by the analytic free-space beam — isolating the
    terrain's effect (ground interference, shadowing, diffraction).
    Values ~2 mean constructive two-ray addition, << 1 means shadowed.
    """
    aperture = gaussian_aperture(solver.grid, tx_height, beamwidth)
    u, _ = solver.march(aperture, 0.0, x_range)
    target = abs(solver.field_at(u, rx_height))
    base = float(gaussian_freespace_amplitude(
        x_range, np.asarray([rx_height]), tx_height, beamwidth, solver.k
    )[0])
    if base < 1e-15:
        raise ValueError(
            "free-space reference is ~0 at the receiver; widen the beam "
            "or move the receiver into the illuminated cone"
        )
    return target / base
