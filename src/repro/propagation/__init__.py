"""Radio-propagation demo substrate: the wireless-sensor-network
application the paper's introduction motivates (DESIGN.md S11)."""

from .deygout import DiffractionResult, deygout_loss_db, principal_edge
from .fresnel import (
    SPEED_OF_LIGHT,
    diffraction_parameter,
    free_space_loss_db,
    fresnel_radius,
    knife_edge_loss_db,
    wavelength,
)
from .hata import HATA_ENVIRONMENTS, hata_loss_db
from .link import LinkBudget, evaluate_link, max_range
from .coverage import CoverageMap, compute_coverage
from .parabolic import (
    PEGrid,
    PESolver,
    gaussian_aperture,
    gaussian_freespace_amplitude,
    propagation_factor,
)
from .profile import PathProfile, bilinear_sample, extract_profile
from .raytrace import (
    RayTraceResult,
    communication_distance,
    path_gain_db,
    trace_rays,
)
from .tworay import (
    rayleigh_criterion_height,
    rayleigh_roughness_factor,
    two_ray_field_factor,
    two_ray_loss_db,
)

__all__ = [
    "SPEED_OF_LIGHT", "wavelength", "free_space_loss_db", "fresnel_radius",
    "diffraction_parameter", "knife_edge_loss_db",
    "deygout_loss_db", "principal_edge", "DiffractionResult",
    "hata_loss_db", "HATA_ENVIRONMENTS",
    "PathProfile", "extract_profile", "bilinear_sample",
    "rayleigh_roughness_factor", "rayleigh_criterion_height",
    "two_ray_field_factor", "two_ray_loss_db",
    "LinkBudget", "evaluate_link", "max_range",
    "RayTraceResult", "trace_rays", "path_gain_db", "communication_distance",
    "PEGrid", "PESolver", "gaussian_aperture",
    "gaussian_freespace_amplitude", "propagation_factor",
    "CoverageMap", "compute_coverage",
]
