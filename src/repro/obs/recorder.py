"""Spans, the run recorder, and the module-level tracing switchboard.

The library's hot paths call four free functions — :func:`trace`,
:func:`add`, :func:`observe`, :func:`set_gauge` — which dispatch to the
*installed* recorder.  By default that is the :class:`NullRecorder`
singleton, whose methods do nothing and whose :meth:`~NullRecorder.span`
returns one shared no-op context manager, so **disabled tracing costs a
function call and allocates nothing**.  Installing a real
:class:`Recorder` (usually via the :func:`recording` context manager)
turns the same call sites into monotonic-clock span records and metric
updates.

Tracing never touches the numerics: spans only read clocks, so surfaces
generated with tracing on are bit-identical to tracing off (tested).

Cross-process collection
------------------------
Worker processes install their own recorder and ship
:meth:`Recorder.drain` payloads (spans + metrics deltas) back over the
result pipe; the parent folds them in with :meth:`Recorder.merge`.
Span timestamps use ``time.perf_counter_ns`` — on the platforms this
library targets that is ``CLOCK_MONOTONIC``, which is system-wide, so
worker spans land on the same timeline as the parent's in the Chrome
trace.  Every span carries its ``(pid, tid)`` so per-worker rows
separate cleanly in the viewer.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .metrics import Metrics

__all__ = [
    "Span",
    "SpanRecord",
    "NullRecorder",
    "Recorder",
    "trace",
    "add",
    "observe",
    "set_gauge",
    "enabled",
    "get_recorder",
    "install",
    "uninstall",
    "recording",
    "NULL_RECORDER",
]

#: One finished span: (name, start perf_counter_ns, duration_ns, pid,
#: tid, attrs-or-None).  Kept a plain tuple so payloads pickle slim.
SpanRecord = Tuple[str, int, int, int, int, Optional[Dict[str, Any]]]

#: Spans retained per recorder before new ones are dropped (counted in
#: the ``obs.spans_dropped`` counter) — bounds memory on huge runs.
DEFAULT_MAX_SPANS = 200_000


class Span:
    """A timed section: ``with trace("engine.plan.build"): ...``.

    Start/stop use the monotonic ``perf_counter_ns``; on exit the span
    is appended to its recorder and its duration is folded into the
    recorder's per-name aggregates.  ``duration_s`` is readable after
    exit (0.0 until then), which lets callers reuse the span's own
    measurement instead of timing twice.
    """

    __slots__ = ("name", "attrs", "_recorder", "_t0", "duration_s")

    def __init__(self, recorder: "Recorder", name: str,
                 attrs: Optional[Dict[str, Any]]) -> None:
        self.name = name
        self.attrs = attrs
        self._recorder = recorder
        self._t0 = 0
        self.duration_s = 0.0

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        dur = time.perf_counter_ns() - self._t0
        self.duration_s = dur / 1e9
        self._recorder._finish(self.name, self._t0, dur, self.attrs)
        return False

    def annotate(self, **attrs: Any) -> None:
        """Attach (or extend) the span's attribute dict."""
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)


class _NullSpan:
    """Shared do-nothing span (the disabled path allocates nothing)."""

    __slots__ = ()
    duration_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def annotate(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The default recorder: every operation is a no-op.

    ``metrics`` is a real (always-empty-by-construction... never
    written) registry so read-side code can treat the two recorders
    uniformly.
    """

    enabled = False

    def __init__(self) -> None:
        self.metrics = Metrics()

    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None):
        return _NULL_SPAN

    def add(self, name: str, n: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass


NULL_RECORDER = NullRecorder()


class Recorder:
    """Thread-safe in-process collector of spans and metrics.

    Parameters
    ----------
    max_spans:
        Retention bound; past it spans are dropped (never blocked on)
        and counted in the ``obs.spans_dropped`` counter so truncation
        is visible rather than silent.
    """

    enabled = True

    def __init__(self, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self.metrics = Metrics()
        self.max_spans = int(max_spans)
        self._lock = threading.Lock()
        self._spans: List[SpanRecord] = []
        # name -> [count, total_ns, min_ns, max_ns]; the human-summary
        # aggregate, kept live so sinks need not re-scan every span.
        self._span_stats: Dict[str, List[int]] = {}
        self.t0_ns = time.perf_counter_ns()

    # -- write side ----------------------------------------------------
    def span(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> Span:
        return Span(self, name, attrs)

    def _finish(self, name: str, t0: int, dur: int,
                attrs: Optional[Dict[str, Any]]) -> None:
        tid = threading.get_ident()
        pid = os.getpid()
        with self._lock:
            if len(self._spans) < self.max_spans:
                self._spans.append((name, t0, dur, pid, tid, attrs))
            else:
                self.metrics.inc("obs.spans_dropped")
            agg = self._span_stats.get(name)
            if agg is None:
                self._span_stats[name] = [1, dur, dur, dur]
            else:
                agg[0] += 1
                agg[1] += dur
                if dur < agg[2]:
                    agg[2] = dur
                if dur > agg[3]:
                    agg[3] = dur

    def add(self, name: str, n: int = 1) -> None:
        self.metrics.inc(name, n)

    def observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)

    def set_gauge(self, name: str, value: float) -> None:
        self.metrics.set_gauge(name, value)

    # -- read side -----------------------------------------------------
    def spans(self) -> List[SpanRecord]:
        with self._lock:
            return list(self._spans)

    def span_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-name aggregate: count, total/mean/min/max seconds."""
        with self._lock:
            return {
                name: {
                    "count": agg[0],
                    "total_s": agg[1] / 1e9,
                    "mean_s": agg[1] / agg[0] / 1e9,
                    "min_s": agg[2] / 1e9,
                    "max_s": agg[3] / 1e9,
                }
                for name, agg in sorted(self._span_stats.items())
            }

    # -- cross-process plumbing ----------------------------------------
    def drain(self) -> Dict[str, Any]:
        """Detach and return everything recorded so far (then reset).

        The worker-side half of per-worker collection: the returned
        payload is plain picklable data (the same slim shape as the
        plan-cache deltas riding the result pipe).

        The payload also carries this recorder's retention bound
        (``max_spans``) so the receiving side can tell "the worker sent
        everything" from "the worker was already truncating" — the
        worker's own ``obs.spans_dropped`` counter rides along inside
        ``metrics`` and sums into the run total on merge.
        """
        with self._lock:
            spans, self._spans = self._spans, []
            stats, self._span_stats = self._span_stats, {}
        metrics = self.metrics.as_dict()
        self.metrics.clear()
        return {"spans": spans, "span_stats": stats, "metrics": metrics,
                "max_spans": self.max_spans}

    def merge(self, payload: Dict[str, Any]) -> None:
        """Fold a :meth:`drain` payload (e.g. from a worker) into this one.

        Metric merging is commutative (see :meth:`Metrics.merge`), and
        span aggregates add, so the merged totals are deterministic for
        a fixed tile plan regardless of scheduling.
        """
        self.metrics.merge(payload.get("metrics", {}))
        spans = payload.get("spans", ())
        stats = payload.get("span_stats", {})
        with self._lock:
            room = self.max_spans - len(self._spans)
            take = [tuple(s) for s in spans[:max(room, 0)]]
            self._spans.extend(take)  # type: ignore[arg-type]
            dropped = len(spans) - len(take)
            for name, agg in stats.items():
                mine = self._span_stats.get(name)
                if mine is None:
                    self._span_stats[name] = list(agg)
                else:
                    mine[0] += agg[0]
                    mine[1] += agg[1]
                    mine[2] = min(mine[2], agg[2])
                    mine[3] = max(mine[3], agg[3])
        if dropped:
            self.metrics.inc("obs.spans_dropped", dropped)

    def merge_wire(self, payload: Any) -> None:
        """Fold a drain payload that crossed a JSON wire (dist workers).

        JSON round-tripping turns :data:`SpanRecord` tuples into lists
        and knows nothing of our shapes, so this validates before
        delegating to :meth:`merge`: non-dict payloads are rejected and
        malformed span records or aggregates are dropped (counted in
        ``obs.spans_dropped``) rather than poisoning the trace.  Metric
        dicts survive JSON unchanged, so they merge as-is — including
        the sender's own ``obs.spans_dropped`` counter, which sums into
        the run total so worker-side truncation stays visible in
        coordinator-side aggregates.  Two extra keys carry recorder
        state across the wire:

        * ``spans_dropped`` — drops the sender counted *outside* its
          metrics registry (e.g. a queue-bound shipper); folded into
          the counter;
        * ``max_spans`` — the sender's retention bound, kept as the
          ``obs.worker_max_spans`` gauge (max-merged, like every
          gauge) so a truncating worker's bound is inspectable.
        """
        if not isinstance(payload, dict):
            raise TypeError(
                f"obs wire payload must be a dict, got {type(payload).__name__}"
            )
        spans = payload.get("spans", ())
        good = [s for s in spans
                if isinstance(s, (list, tuple)) and len(s) == 6]
        if len(good) != len(spans):
            self.metrics.inc("obs.spans_dropped", len(spans) - len(good))
        stats = payload.get("span_stats", {}) or {}
        good_stats = {
            name: agg for name, agg in stats.items()
            if (isinstance(agg, (list, tuple)) and len(agg) == 4
                and all(isinstance(x, (int, float)) for x in agg))
        } if isinstance(stats, dict) else {}
        dropped = payload.get("spans_dropped", 0)
        if isinstance(dropped, (int, float)) and dropped > 0:
            self.metrics.inc("obs.spans_dropped", int(dropped))
        bound = payload.get("max_spans")
        if isinstance(bound, (int, float)) and bound > 0:
            self.metrics.merge(
                {"gauges": {"obs.worker_max_spans": float(bound)}}
            )
        self.merge({
            "spans": good,
            "span_stats": good_stats,
            "metrics": payload.get("metrics", {}) or {},
        })


# ---------------------------------------------------------------------------
# Module-level switchboard
# ---------------------------------------------------------------------------
_current: "NullRecorder | Recorder" = NULL_RECORDER
_install_lock = threading.Lock()


def get_recorder() -> "NullRecorder | Recorder":
    """The currently installed recorder (the null recorder by default)."""
    return _current


def enabled() -> bool:
    """Whether a real recorder is installed."""
    return _current.enabled


def install(recorder: "Recorder | NullRecorder") -> None:
    """Make ``recorder`` the process-wide collection target."""
    global _current
    with _install_lock:
        _current = recorder


def uninstall() -> None:
    """Restore the no-op null recorder."""
    install(NULL_RECORDER)


class recording:
    """Install a fresh :class:`Recorder` for a ``with`` block.

    >>> from repro import obs
    >>> with obs.recording() as rec:          # doctest: +SKIP
    ...     surface = generate(...)
    >>> rec.metrics.counter("engine.fft.forward_ffts")  # doctest: +SKIP
    """

    def __init__(self, recorder: Optional[Recorder] = None) -> None:
        self.recorder = recorder if recorder is not None else Recorder()
        self._previous: "Recorder | NullRecorder" = NULL_RECORDER

    def __enter__(self) -> Recorder:
        self._previous = get_recorder()
        install(self.recorder)
        return self.recorder

    def __exit__(self, *exc) -> bool:
        install(self._previous)
        return False


# -- hot-path free functions (dispatch to the installed recorder) ------
def trace(name: str, attrs: Optional[Dict[str, Any]] = None):
    """Span context manager on the installed recorder (no-op when off)."""
    return _current.span(name, attrs)


def add(name: str, n: int = 1) -> None:
    """Increment counter ``name`` (no-op when tracing is off)."""
    _current.add(name, n)


def observe(name: str, value: float) -> None:
    """Record into histogram ``name`` (no-op when tracing is off)."""
    _current.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` (no-op when tracing is off)."""
    _current.set_gauge(name, value)
