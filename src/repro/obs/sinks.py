"""Emission sinks: Chrome trace events, metrics JSON, human summaries.

Three consumers, three formats:

* :func:`write_chrome_trace` — the Trace Event Format understood by
  ``chrome://tracing`` and `Perfetto <https://ui.perfetto.dev>`_: one
  complete ("X") event per span, timestamped in microseconds, with the
  recording pid/tid preserved so parallel backends render as one row
  per worker;
* :func:`write_metrics_json` — a versioned JSON document with the full
  metrics registry plus per-span-name aggregates, the machine-readable
  form benches and CI gates consume;
* :func:`timings_summary` / :func:`provenance_timings` — fixed-width
  text for ``repro-rrs inspect --timings`` and interactive use.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .recorder import Recorder

__all__ = [
    "chrome_trace_events",
    "write_chrome_trace",
    "metrics_document",
    "write_metrics_json",
    "timings_summary",
    "provenance_timings",
]

#: Format marker written into every metrics document.
METRICS_SCHEMA = "repro.obs/v1"


def chrome_trace_events(recorder: Recorder) -> List[Dict[str, Any]]:
    """Spans as Trace Event Format dicts (complete events, microseconds).

    Timestamps are rebased to the recorder's start so traces begin near
    t=0 regardless of machine uptime.
    """
    t0 = recorder.t0_ns
    events: List[Dict[str, Any]] = []
    for name, start, dur, pid, tid, attrs in recorder.spans():
        ev: Dict[str, Any] = {
            "name": name,
            "cat": name.split(".", 1)[0],
            "ph": "X",
            "ts": (start - t0) / 1e3,   # microseconds
            "dur": dur / 1e3,
            "pid": pid,
            "tid": tid,
        }
        if attrs:
            ev["args"] = attrs
        events.append(ev)
    return events


def write_chrome_trace(
    path: Union[str, Path],
    recorder: Recorder,
    metadata: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the recorder's spans as a ``chrome://tracing`` JSON file."""
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(recorder),
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = metadata
    Path(path).write_text(json.dumps(doc))


def metrics_document(
    recorder: Recorder, extra: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The versioned metrics JSON document (sink + bench interchange)."""
    doc: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "metrics": recorder.metrics.as_dict(),
        "span_stats": recorder.span_stats(),
    }
    if extra:
        doc.update(extra)
    return doc


def write_metrics_json(
    path: Union[str, Path],
    recorder: Recorder,
    extra: Optional[Dict[str, Any]] = None,
) -> None:
    """Write the metrics registry (and span aggregates) as JSON."""
    Path(path).write_text(json.dumps(metrics_document(recorder, extra),
                                     indent=2, sort_keys=True))


# ---------------------------------------------------------------------------
# Human-readable summaries
# ---------------------------------------------------------------------------
def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:8.3f}s "
    if s >= 1e-3:
        return f"{s * 1e3:8.2f}ms"
    return f"{s * 1e6:8.1f}us"


def timings_summary(recorder: Recorder) -> str:
    """Fixed-width span/counter digest of a live recorder."""
    lines = ["span                                count      total       mean"]
    for name, agg in recorder.span_stats().items():
        lines.append(
            f"{name:<34} {agg['count']:>7} {_fmt_seconds(agg['total_s'])} "
            f"{_fmt_seconds(agg['mean_s'])}"
        )
    counters = recorder.metrics.as_dict()["counters"]
    if counters:
        lines.append("")
        lines.append("counter                                   value")
        for name in sorted(counters):
            lines.append(f"{name:<40} {counters[name]:>8}")
    return "\n".join(lines)


def provenance_timings(provenance: Dict[str, Any]) -> str:
    """Human digest of a saved surface's observability provenance.

    Renders whatever generation metadata the surface carries — engine,
    plan-cache deltas, region/level active sets, batched-FFT work, halo
    overhead, and a stamped ``obs_metrics`` snapshot — and says so when
    a block is absent rather than printing nothing.
    """
    lines: List[str] = []
    for key in ("method", "backend", "engine", "tiles", "noise_seed"):
        if key in provenance:
            lines.append(f"{key:<16} {provenance[key]}")
    if "halo_overhead" in provenance:
        lines.append(f"{'halo_overhead':<16} "
                     f"{float(provenance['halo_overhead']) * 100:.2f}%")
    pc = provenance.get("plan_cache")
    if pc:
        lookups = int(pc.get("hits", 0)) + int(pc.get("misses", 0))
        rate = int(pc.get("hits", 0)) / lookups if lookups else 0.0
        lines.append(
            f"{'plan_cache':<16} hits={pc.get('hits', 0)} "
            f"misses={pc.get('misses', 0)} hit_rate={rate:.1%}"
        )
    for key in ("regions", "levels"):
        row = provenance.get(key)
        if isinstance(row, dict):
            lines.append(
                f"{key:<16} active={row.get('active_total', 0)} "
                f"skipped={row.get('skipped_total', 0)} "
                f"single_kernel_tiles={row.get('single_kernel_tiles', 0)}"
            )
    for key in ("regions_active", "regions_skipped",
                "levels_active", "levels_skipped"):
        if key in provenance and not isinstance(provenance.get(key), dict):
            lines.append(f"{key:<16} {provenance[key]}")
    batch = provenance.get("batch_fft")
    if isinstance(batch, dict):
        lines.append(
            f"{'batch_fft':<16} forward={batch.get('forward_ffts', 0)} "
            f"inverse={batch.get('inverse_ffts', 0)} "
            f"blocks={batch.get('blocks', 0)}"
        )
    obs_metrics = provenance.get("obs_metrics")
    if isinstance(obs_metrics, dict):
        counters = obs_metrics.get("counters", {})
        if counters:
            lines.append("")
            lines.append("obs counter                               value")
            for name in sorted(counters):
                lines.append(f"{name:<40} {counters[name]:>8}")
    if not lines:
        return "no timing/provenance records in this surface"
    return "\n".join(lines)
