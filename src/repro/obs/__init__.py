"""repro.obs — unified tracing & metrics for engines, executors, CLI.

A dependency-free observability substrate answering "where did the
milliseconds go" for any generation run:

* **Spans** (:func:`trace`) — nestable monotonic timers collected by a
  thread-safe :class:`Recorder`;
* **Metrics** (:class:`Metrics`) — counters / gauges / fixed-bucket
  histograms under one dotted naming scheme that absorbs the plan-cache
  stats, batched-FFT work counters, and active-set provenance;
* **Sinks** — Chrome trace-event JSON (``chrome://tracing`` /
  Perfetto), structured metrics JSON, and human text summaries.

Tracing is **off by default**: the installed :data:`NULL_RECORDER`
makes every instrumentation site a no-op (shared null span, no
allocation), so instrumented code pays nothing and produces
bit-identical results when not observed.  Enable with::

    from repro import obs
    with obs.recording() as rec:
        surface = generate_tiled(gen, noise, plan, backend="process")
    obs.write_chrome_trace("t.json", rec)
    obs.write_metrics_json("m.json", rec)

or from the CLI with ``repro-rrs --trace-out t.json --metrics-out
m.json generate ...``.  See ``docs/OBSERVABILITY.md`` for the span and
metric naming scheme and the overhead budget.
"""

from .events import (
    EVENT_LEVELS,
    EventLog,
    event,
    event_log_enabled,
    event_logging,
    get_event_log,
    install_event_log,
    new_run_id,
    uninstall_event_log,
)
from .export import prometheus_name, prometheus_text
from .httpd import StatusServer
from .metrics import DEFAULT_TIME_BUCKETS, Histogram, Metrics
from .recorder import (
    NULL_RECORDER,
    NullRecorder,
    Recorder,
    Span,
    add,
    enabled,
    get_recorder,
    install,
    observe,
    recording,
    set_gauge,
    trace,
    uninstall,
)
from .sinks import (
    chrome_trace_events,
    metrics_document,
    provenance_timings,
    timings_summary,
    write_chrome_trace,
    write_metrics_json,
)

__all__ = [
    "DEFAULT_TIME_BUCKETS",
    "Histogram",
    "Metrics",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "Span",
    "add",
    "enabled",
    "get_recorder",
    "install",
    "observe",
    "recording",
    "set_gauge",
    "trace",
    "uninstall",
    "chrome_trace_events",
    "metrics_document",
    "provenance_timings",
    "timings_summary",
    "write_chrome_trace",
    "write_metrics_json",
    "EVENT_LEVELS",
    "EventLog",
    "StatusServer",
    "event",
    "event_log_enabled",
    "event_logging",
    "get_event_log",
    "install_event_log",
    "new_run_id",
    "prometheus_name",
    "prometheus_text",
    "uninstall_event_log",
]
