"""Structured JSONL event log: leveled, non-blocking, run-scoped.

Where spans and metrics answer "where did the time go", events answer
"what happened, in what order": worker joined, lease granted, tile
failed, run aborted.  Each event is one JSON object on its own line::

    {"ts": 1754640000.123, "mono_ns": 8243001234, "run": "r-7f3a",
     "lvl": "info", "event": "dist.worker.join", "worker": "w0"}

``ts`` is wall-clock epoch seconds (for humans and cross-host joins),
``mono_ns`` is ``time.monotonic_ns`` (for intra-process ordering that
survives clock steps).  The writer is a daemon thread draining a
*bounded* queue: emitters never block and never raise — when the queue
is full the event is dropped and counted, so a stalled disk can cost
visibility but never throughput.  That mirrors the recorder's
span-retention contract: truncation is visible, not silent.

Like the tracing switchboard in :mod:`repro.obs.recorder`, the module
keeps one installed log; the free function :func:`event` is a no-op
when none is installed, so instrumented code pays one attribute check
when logging is off.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
import uuid
from typing import Any, Dict, IO, Optional, Union

__all__ = [
    "EVENT_LEVELS",
    "EventLog",
    "event",
    "event_log_enabled",
    "get_event_log",
    "install_event_log",
    "uninstall_event_log",
    "event_logging",
    "new_run_id",
]

#: Severity order; a log configured at ``level`` drops anything below it.
EVENT_LEVELS = ("debug", "info", "warn", "error")
_RANK = {name: i for i, name in enumerate(EVENT_LEVELS)}

#: Queue bound: deep enough for any burst the coordinator produces
#: between disk writes, small enough that a wedged writer cannot hold
#: gigabytes of pending lines.
DEFAULT_MAX_QUEUE = 10_000


def new_run_id() -> str:
    """A short unique run identifier (``r-`` + 8 hex chars)."""
    return "r-" + uuid.uuid4().hex[:8]


class EventLog:
    """Append JSONL events to ``path`` from a background writer thread.

    Parameters
    ----------
    path:
        File to append to (parent directories are created).  Pass an
        open text file object instead to write into an existing stream
        (tests; the log then does not close it).
    run_id:
        Stamped into every line as ``run``; generated when omitted.
    level:
        Minimum severity recorded (one of :data:`EVENT_LEVELS`).
    max_queue:
        Bound on buffered events; past it :meth:`emit` drops (counted
        in :attr:`dropped`) rather than blocking the emitting thread.
    """

    def __init__(self, path: Union[str, os.PathLike, IO[str]], *,
                 run_id: Optional[str] = None, level: str = "info",
                 max_queue: int = DEFAULT_MAX_QUEUE) -> None:
        if level not in _RANK:
            raise ValueError(
                f"level must be one of {EVENT_LEVELS}, got {level!r}"
            )
        self.run_id = run_id if run_id is not None else new_run_id()
        self.level = level
        self._min_rank = _RANK[level]
        self._queue: "queue.Queue[Optional[str]]" = queue.Queue(
            maxsize=max(1, int(max_queue))
        )
        self._dropped = 0
        self._drop_lock = threading.Lock()
        self._closed = False
        if hasattr(path, "write"):
            self._file: IO[str] = path  # type: ignore[assignment]
            self._owns_file = False
            self.path: Optional[str] = getattr(path, "name", None)
        else:
            p = os.fspath(path)
            parent = os.path.dirname(p)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._file = open(p, "a", encoding="utf-8")
            self._owns_file = True
            self.path = p
        self._thread = threading.Thread(
            target=self._drain, name="obs-events", daemon=True
        )
        self._thread.start()

    # -- write side ----------------------------------------------------
    def emit(self, name: str, *, level: str = "info",
             **fields: Any) -> None:
        """Queue one event; never blocks, never raises on a full queue."""
        rank = _RANK.get(level)
        if rank is None:
            raise ValueError(
                f"level must be one of {EVENT_LEVELS}, got {level!r}"
            )
        if rank < self._min_rank or self._closed:
            return
        record: Dict[str, Any] = {
            "ts": time.time(),
            "mono_ns": time.monotonic_ns(),
            "run": self.run_id,
            "lvl": level,
            "event": name,
        }
        record.update(fields)
        try:
            line = json.dumps(record, separators=(",", ":"), default=str)
        except (TypeError, ValueError):
            # an unserialisable field must not take the event with it
            record = {k: repr(v) for k, v in record.items()}
            line = json.dumps(record, separators=(",", ":"))
        try:
            self._queue.put_nowait(line)
        except queue.Full:
            with self._drop_lock:
                self._dropped += 1

    @property
    def dropped(self) -> int:
        """Events discarded because the queue was full."""
        with self._drop_lock:
            return self._dropped

    # -- writer thread -------------------------------------------------
    def _drain(self) -> None:
        while True:
            line = self._queue.get()
            if line is None:
                break
            try:
                self._file.write(line + "\n")
                # flush per line: event logs exist for live tailing and
                # post-crash forensics; a buffered tail defeats both
                self._file.flush()
            except (OSError, ValueError):
                with self._drop_lock:
                    self._dropped += 1

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Drain the queue, stop the writer, close an owned file."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(None)  # sentinel after all queued lines
        self._thread.join(timeout=10.0)
        if self._owns_file:
            try:
                self._file.close()
            except OSError:
                pass

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> bool:
        self.close()
        return False


# ---------------------------------------------------------------------------
# Module-level switchboard (mirrors the recorder switchboard)
# ---------------------------------------------------------------------------
_current: Optional[EventLog] = None
_install_lock = threading.Lock()


def get_event_log() -> Optional[EventLog]:
    """The installed event log, or ``None`` when logging is off."""
    return _current


def event_log_enabled() -> bool:
    return _current is not None


def install_event_log(log: EventLog) -> None:
    """Make ``log`` the process-wide event target."""
    global _current
    with _install_lock:
        _current = log


def uninstall_event_log() -> None:
    global _current
    with _install_lock:
        _current = None


def event(name: str, *, level: str = "info", **fields: Any) -> None:
    """Emit on the installed log (no-op when event logging is off)."""
    log = _current
    if log is not None:
        log.emit(name, level=level, **fields)


class event_logging:
    """Install an :class:`EventLog` for a ``with`` block.

    >>> from repro.obs import events
    >>> with events.event_logging("run.jsonl") as log:   # doctest: +SKIP
    ...     events.event("job.start", n=4096)
    """

    def __init__(self, path: Union[str, os.PathLike, IO[str]], *,
                 run_id: Optional[str] = None, level: str = "info",
                 max_queue: int = DEFAULT_MAX_QUEUE) -> None:
        self.log = EventLog(path, run_id=run_id, level=level,
                            max_queue=max_queue)
        self._previous: Optional[EventLog] = None

    def __enter__(self) -> EventLog:
        self._previous = get_event_log()
        install_event_log(self.log)
        return self.log

    def __exit__(self, *exc) -> bool:
        global _current
        with _install_lock:
            _current = self._previous
        self.log.close()
        return False
