"""Opt-in HTTP exposition: ``/metrics``, ``/status``, ``/health``.

A tiny stdlib ``http.server`` wrapper the coordinator (or any
long-running job) starts as a daemon thread::

    server = StatusServer(status_fn=coord.status_snapshot,
                          metrics_fn=coord.metrics_snapshot)
    host, port = server.start()
    ...
    server.stop()

* ``GET /metrics`` — Prometheus text (``repro.obs.export``) rendered
  from ``metrics_fn()``'s ``Metrics.as_dict()`` payload;
* ``GET /status``  — the ``status_fn()`` dict as JSON (the
  ``repro.obs.status/v1`` schema when served by a coordinator);
* ``GET /health``  — ``{"ok": true}`` liveness probe;
* anything else    — 404.

Handlers call the snapshot functions on the *serving* thread, so those
functions must be cheap and internally locked (the coordinator's are).
Binding to port 0 picks an OS-assigned port, reported by
:meth:`StatusServer.start` — the same contract as the coordinator's
listener.  Serving never mutates run state: a scrape can slow a run
down (it holds the coordinator lock for a snapshot), never change its
bytes.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Dict, Mapping, Optional, Tuple

from .export import prometheus_text

__all__ = ["StatusServer"]


class _Handler(BaseHTTPRequestHandler):
    # set per-server via type() subclassing in StatusServer
    status_fn: Callable[[], Dict[str, Any]]
    metrics_fn: Callable[[], Mapping[str, Any]]
    extra_gauges_fn: Optional[Callable[[], Mapping[str, float]]]
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        try:
            if path == "/health":
                self._reply(200, "application/json",
                            json.dumps({"ok": True}).encode())
            elif path == "/status":
                doc = self.status_fn()
                self._reply(200, "application/json",
                            json.dumps(doc, indent=2).encode())
            elif path == "/metrics":
                extra = (self.extra_gauges_fn()
                         if self.extra_gauges_fn is not None else None)
                body = prometheus_text(self.metrics_fn(),
                                       extra_gauges=extra)
                self._reply(200, "text/plain; version=0.0.4",
                            body.encode())
            else:
                self._reply(404, "application/json",
                            json.dumps({"error": "not found",
                                        "path": path}).encode())
        except BrokenPipeError:
            pass  # client went away mid-reply; nothing to salvage
        except Exception as exc:  # snapshot bug: report, don't kill serve
            self._reply(500, "application/json",
                        json.dumps({"error": repr(exc)}).encode())

    def _reply(self, code: int, content_type: str, body: bytes) -> None:
        self.send_response(code)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args: Any) -> None:
        pass  # scrapes every few seconds would drown real output


class StatusServer:
    """Serve run status over HTTP from a daemon thread.

    Parameters
    ----------
    status_fn:
        Returns the ``/status`` JSON document (must be cheap; called
        per request on the serving thread).
    metrics_fn:
        Returns a ``Metrics.as_dict()``-shaped mapping for ``/metrics``.
    extra_gauges_fn:
        Optional extra gauge samples merged into ``/metrics`` (derived
        values like progress/ETA that live outside the registry).
    """

    def __init__(
        self,
        status_fn: Callable[[], Dict[str, Any]],
        metrics_fn: Callable[[], Mapping[str, Any]],
        *,
        extra_gauges_fn: Optional[Callable[[], Mapping[str, float]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        handler = type("BoundHandler", (_Handler,), {
            "status_fn": staticmethod(status_fn),
            "metrics_fn": staticmethod(metrics_fn),
            "extra_gauges_fn": (staticmethod(extra_gauges_fn)
                                if extra_gauges_fn is not None else None),
        })
        self._server = ThreadingHTTPServer((host, port), handler)
        self._server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return (str(host), int(port))

    def start(self) -> Tuple[str, int]:
        """Begin serving; returns the bound ``(host, port)``."""
        if self._thread is not None:
            raise RuntimeError("status server already started")
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.2},
            name="obs-status-http", daemon=True,
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        if self._thread is None:
            return
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)
        self._thread = None
