"""Prometheus text-format exposition of a :class:`Metrics` snapshot.

Renders the ``Metrics.as_dict()`` interchange form (the same payload
the recorder drains, merges and writes as JSON) as Prometheus text
format 0.0.4, the lingua franca every scrape agent understands:

* counters  -> ``# TYPE <name> counter`` + a single sample;
* gauges    -> ``# TYPE <name> gauge``;
* histograms -> cumulative ``_bucket{le="..."}`` samples (Prometheus
  buckets are cumulative; ours are per-bin, so this module does the
  running sum) plus the ``_sum`` and ``_count`` conventions.

Dotted repro metric names (``dist.tiles_completed``) become legal
Prometheus identifiers by swapping every illegal character for ``_``
and prefixing the namespace (``repro_dist_tiles_completed``).  The
mapping is deliberately lossy-but-stable: two distinct dotted names
never collide unless they already differed only in punctuation.

Stdlib only, like everything under ``repro.obs``.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

__all__ = ["prometheus_name", "prometheus_text"]

_ILLEGAL = re.compile(r"[^a-zA-Z0-9_:]")


def prometheus_name(name: str, prefix: str = "repro") -> str:
    """Map a dotted repro metric name to a Prometheus identifier."""
    flat = _ILLEGAL.sub("_", name)
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _fmt(value: float) -> str:
    """Format a sample value (Prometheus accepts +Inf/-Inf/NaN tokens)."""
    v = float(value)
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if math.isnan(v):
        return "NaN"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def _histogram_lines(name: str, hist: Mapping[str, Any]
                     ) -> Iterable[str]:
    yield f"# TYPE {name} histogram"
    bounds = list(hist.get("bounds", ()))
    counts = list(hist.get("counts", ()))
    cumulative = 0
    for bound, count in zip(bounds, counts):
        cumulative += int(count)
        yield f'{name}_bucket{{le="{_fmt(bound)}"}} {cumulative}'
    # the overflow bin (counts has one more entry than bounds)
    if len(counts) > len(bounds):
        cumulative += int(counts[len(bounds)])
    yield f'{name}_bucket{{le="+Inf"}} {cumulative}'
    yield f"{name}_sum {_fmt(hist.get('sum', 0.0))}"
    yield f"{name}_count {int(hist.get('count', 0))}"


def prometheus_text(
    metrics: Mapping[str, Any],
    *,
    prefix: str = "repro",
    extra_gauges: Optional[Mapping[str, float]] = None,
) -> str:
    """Render one ``Metrics.as_dict()`` payload as Prometheus text.

    ``extra_gauges`` lets callers expose derived values that live
    outside the registry (run progress, ETA) without first round-
    tripping them through a recorder; they render as gauges under the
    same prefix.  Output is sorted by metric name so scrapes diff
    cleanly and tests can pin exact bodies.
    """
    sections: Dict[str, Tuple[str, ...]] = {}
    for raw, value in (metrics.get("counters") or {}).items():
        name = prometheus_name(raw, prefix)
        sections[name] = (
            f"# TYPE {name} counter",
            f"{name} {_fmt(value)}",
        )
    gauges = dict(metrics.get("gauges") or {})
    if extra_gauges:
        gauges.update(extra_gauges)
    for raw, value in gauges.items():
        name = prometheus_name(raw, prefix)
        sections[name] = (
            f"# TYPE {name} gauge",
            f"{name} {_fmt(value)}",
        )
    for raw, hist in (metrics.get("histograms") or {}).items():
        name = prometheus_name(raw, prefix)
        sections[name] = tuple(_histogram_lines(name, hist))
    lines = []
    for name in sorted(sections):
        lines.extend(sections[name])
    return "\n".join(lines) + ("\n" if lines else "")
