"""Metrics registry: counters, gauges, and fixed-bucket histograms.

One schema for every number the library previously scattered across
ad-hoc provenance dicts: ``KernelPlanCache.stats()`` counters, the
batched engine's FFT-work counters (``BatchStats``), and the
``regions_active``/``regions_skipped`` active-set provenance all land
here under dotted metric names (see ``docs/OBSERVABILITY.md`` for the
naming scheme).

Design constraints, in order:

* **stdlib only** — importable from worker processes with nothing but
  the interpreter;
* **thread-safe** — one registry is shared by the thread executor's
  workers;
* **deterministic merge** — per-worker registries serialise to plain
  dicts and fold into a run-level registry such that the merged counter
  totals are independent of worker scheduling (counters and histograms
  are commutative sums; gauges merge by ``max``, the only associative
  and commutative choice that never invents a value).

Histograms use *fixed* bucket boundaries so that merging never re-bins:
two histograms with the same boundaries merge by adding their bucket
counts, and quantile estimates (upper bound of the covering bucket) are
identical whether observations were recorded in one process or many.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

__all__ = ["Histogram", "Metrics", "DEFAULT_TIME_BUCKETS"]

#: Default bucket upper bounds (seconds) for duration histograms:
#: 100 us .. 30 s in a 1-2.5-5 ladder, plus the implicit +inf overflow.
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    1e-1, 2.5e-1, 5e-1,
    1.0, 2.5, 5.0, 10.0, 30.0,
)


class Histogram:
    """Fixed-bucket histogram with exact sum/count/min/max side-cars.

    ``bounds`` are the inclusive upper edges of the finite buckets; one
    overflow bucket (``+inf``) is always appended.  Quantiles are
    bucket-resolution estimates: :meth:`quantile` returns the upper
    bound of the first bucket whose cumulative count covers the rank
    (``inf`` collapses to the observed max), which is merge-stable.
    """

    __slots__ = ("bounds", "counts", "total", "count", "vmin", "vmax")

    def __init__(self, bounds: Sequence[float] = DEFAULT_TIME_BUCKETS) -> None:
        b = tuple(float(x) for x in bounds)
        if not b or any(b[i] >= b[i + 1] for i in range(len(b) - 1)):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = b
        self.counts = [0] * (len(b) + 1)  # +1: overflow bucket
        self.total = 0.0
        self.count = 0
        self.vmin = float("inf")
        self.vmax = float("-inf")

    def observe(self, value: float) -> None:
        v = float(value)
        self.counts[bisect_left(self.bounds, v)] += 1
        self.total += v
        self.count += 1
        if v < self.vmin:
            self.vmin = v
        if v > self.vmax:
            self.vmax = v

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate, ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cum = 0
        for i, c in enumerate(self.counts):
            cum += c
            if cum >= rank and c:
                if i < len(self.bounds):
                    return self.bounds[i]
                return self.vmax  # overflow bucket: best bound we have
        return self.vmax

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.total += other.total
        self.count += other.count
        self.vmin = min(self.vmin, other.vmin)
        self.vmax = max(self.vmax, other.vmax)

    def as_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
        }
        if self.count:
            d.update(
                min=self.vmin,
                max=self.vmax,
                mean=self.mean,
                p50=self.quantile(0.50),
                p95=self.quantile(0.95),
            )
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Histogram":
        h = cls(d["bounds"])
        counts = [int(c) for c in d["counts"]]
        if len(counts) != len(h.counts):
            raise ValueError("bucket count mismatch")
        h.counts = counts
        h.count = int(d["count"])
        h.total = float(d["sum"])
        h.vmin = float(d.get("min", float("inf")))
        h.vmax = float(d.get("max", float("-inf")))
        return h


class Metrics:
    """Thread-safe registry of counters, gauges, and histograms.

    Names are dotted strings (``engine.plan_cache.hits``); each name
    lives in exactly one of the three kinds — re-using a counter name as
    a gauge is an error caught at merge/serialisation time by the
    per-kind namespaces.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- write side ----------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(n)

    def set_gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = float(value)

    def observe(self, name: str, value: float,
                bounds: Optional[Sequence[float]] = None) -> None:
        """Record ``value`` into histogram ``name`` (created on first use)."""
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = Histogram(bounds if bounds is not None
                              else DEFAULT_TIME_BUCKETS)
                self._histograms[name] = h
            h.observe(value)

    # -- read side -----------------------------------------------------
    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        with self._lock:
            return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        with self._lock:
            return self._histograms.get(name)

    def counters(self, prefix: str = "") -> Dict[str, int]:
        """Snapshot of counters whose name starts with ``prefix``."""
        with self._lock:
            return {k: v for k, v in self._counters.items()
                    if k.startswith(prefix)}

    def __len__(self) -> int:
        with self._lock:
            return (len(self._counters) + len(self._gauges)
                    + len(self._histograms))

    # -- lifecycle -----------------------------------------------------
    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def merge(self, other: "Metrics | Dict[str, Any]") -> None:
        """Fold another registry (or its ``as_dict`` payload) into this one.

        Counters and histogram bucket counts add; gauges keep the
        maximum.  Merging is commutative and associative, so run-level
        totals do not depend on worker completion order.
        """
        payload = other.as_dict() if isinstance(other, Metrics) else other
        with self._lock:
            for k, v in payload.get("counters", {}).items():
                self._counters[k] = self._counters.get(k, 0) + int(v)
            for k, v in payload.get("gauges", {}).items():
                cur = self._gauges.get(k)
                self._gauges[k] = float(v) if cur is None else max(cur, float(v))
            for k, hd in payload.get("histograms", {}).items():
                incoming = Histogram.from_dict(hd)
                mine = self._histograms.get(k)
                if mine is None:
                    self._histograms[k] = incoming
                else:
                    mine.merge(incoming)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot (the merge/sink interchange form)."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {k: h.as_dict()
                               for k, h in self._histograms.items()},
            }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Metrics":
        m = cls()
        m.merge(payload)
        return m

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"Metrics(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})"
            )


def iter_counter_items(payload: Dict[str, Any]) -> Iterable[Tuple[str, int]]:
    """Counters of an ``as_dict`` payload, sorted by name (stable output)."""
    return sorted(payload.get("counters", {}).items())
