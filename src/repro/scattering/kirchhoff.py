"""Analytic Kirchhoff-approximation (KA) results for rough surfaces.

The paper's reference frame is rough-surface *scattering*: refs [1]-[2]
are Thorsos' classic studies of the Kirchhoff approximation's validity
for Gaussian-spectrum surfaces, and the whole generation machinery
exists so such studies have controllable inputs.  This module provides
the closed-form KA quantities the Monte-Carlo experiments
(:mod:`repro.scattering.monte_carlo`) are checked against:

* :func:`rayleigh_parameter` — the roughness phase parameter
  ``g = k^2 h^2 (cos(theta_i) + cos(theta_s))^2``;
* :func:`coherent_reflection_coefficient` — the coherent (mean-field)
  reflection loss ``exp(-g/2)`` of a Gaussian-height surface;
* :func:`ka_incoherent_nrcs_gaussian` — the classical series form of
  the incoherent KA scattering cross-section per unit length for a 1D
  surface with **Gaussian** ACF (h, cl), all orders summed:

  .. math::

      \\sigma(\\theta_s) = \\frac{|N|^2 cl \\sqrt{\\pi}}{2}
        e^{-g}\\sum_{n=1}^{\\infty} \\frac{g^n}{n!\\sqrt{n}}
        \\exp\\!\\Big(-\\frac{(k_{dx} cl)^2}{4n}\\Big)

  with ``k_dx = k (sin(theta_s) - sin(theta_i))`` and the Dirichlet KA
  angular kernel ``N``.  The series converges for any ``g`` (terms decay
  factorially); 8-10 terms suffice below ``g ~ 5``.

Conventions: angles are measured from the vertical (surface normal);
the incident wave travels downward at ``theta_i``, scattered upward at
``theta_s``.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = [
    "rayleigh_parameter",
    "coherent_reflection_coefficient",
    "ka_angular_kernel",
    "ka_incoherent_nrcs_gaussian",
]


def rayleigh_parameter(
    k: float, h: float, theta_i: float, theta_s: np.ndarray
) -> np.ndarray:
    """Roughness phase parameter ``g`` (Rayleigh parameter squared)."""
    if k <= 0:
        raise ValueError("wavenumber must be positive")
    if h < 0:
        raise ValueError("height std must be >= 0")
    theta_s = np.asarray(theta_s, dtype=float)
    return (k * h * (np.cos(theta_i) + np.cos(theta_s))) ** 2


def coherent_reflection_coefficient(
    k: float, h: float, theta_i: float
) -> float:
    """|<R>|: coherent reflection attenuation ``exp(-g/2)`` at specular.

    For a Gaussian height distribution the ensemble-mean reflected field
    is the flat-surface field times ``exp(-2 (k h cos(theta_i))^2)``
    — the amplitude form of the Rayleigh roughness factor.
    """
    g = rayleigh_parameter(k, h, theta_i, theta_i)
    return float(np.exp(-g / 2.0))


def ka_angular_kernel(theta_i: float, theta_s: np.ndarray) -> np.ndarray:
    """Dirichlet KA angular factor ``(1 + cos(ti + ts))/(cos ti + cos ts)``.

    Reduces to ``1`` at specular backfolding (``theta_s = theta_i``, the
    factor is ``(1 + cos 2t)/(2 cos t) = cos t``... the exact convention
    matters only as a smooth angular envelope shared by the analytic and
    Monte-Carlo expressions, which use this same function).
    """
    theta_s = np.asarray(theta_s, dtype=float)
    denom = np.cos(theta_i) + np.cos(theta_s)
    if np.any(np.abs(denom) < 1e-9):
        raise ValueError("grazing geometry: kernel diverges")
    return (1.0 + np.cos(theta_i + theta_s)) / denom


def ka_incoherent_nrcs_gaussian(
    k: float,
    h: float,
    cl: float,
    theta_i: float,
    theta_s: np.ndarray,
    n_terms: int = 40,
) -> np.ndarray:
    """Incoherent KA cross-section series for a Gaussian-ACF 1D surface.

    Returns the dimensionless scattering strength per unit length (the
    normalisation matches the Monte-Carlo estimator in
    :mod:`repro.scattering.monte_carlo`; only *relative* angular shapes
    and the h/cl scaling laws are asserted in tests, so any fixed
    prefactor convention is acceptable as long as both sides share it).
    """
    if cl <= 0:
        raise ValueError("correlation length must be positive")
    if n_terms < 1:
        raise ValueError("need at least one series term")
    theta_s = np.asarray(theta_s, dtype=float)
    g = rayleigh_parameter(k, h, theta_i, theta_s)
    kdx = k * (np.sin(theta_s) - np.sin(theta_i))
    kernel2 = ka_angular_kernel(theta_i, theta_s) ** 2

    series = np.zeros_like(g)
    term = np.ones_like(g)  # g^n / n! iteratively
    for n in range(1, n_terms + 1):
        term = term * g / n
        series += term / math.sqrt(n) * np.exp(-((kdx * cl) ** 2) / (4.0 * n))
    return (
        kernel2 * (k**2) * cl * math.sqrt(math.pi) / 2.0 * np.exp(-g) * series
    )
