"""Kirchhoff-approximation scattering from generated rough surfaces —
the application domain of the paper's references [1]-[4]."""

from .kirchhoff import (
    coherent_reflection_coefficient,
    ka_angular_kernel,
    ka_incoherent_nrcs_gaussian,
    rayleigh_parameter,
)
from .monte_carlo import (
    ScatteringEnsemble,
    coherent_attenuation_curve,
    run_ensemble,
    scattering_amplitude,
    tukey_taper,
)

__all__ = [
    "rayleigh_parameter",
    "coherent_reflection_coefficient",
    "ka_angular_kernel",
    "ka_incoherent_nrcs_gaussian",
    "ScatteringEnsemble",
    "scattering_amplitude",
    "run_ensemble",
    "tukey_taper",
    "coherent_attenuation_curve",
]
