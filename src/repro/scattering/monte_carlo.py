"""Monte-Carlo Kirchhoff scattering from generated rough profiles.

The numerical half of the Thorsos-style experiment (paper refs [1]-[2]):
evaluate the Kirchhoff (physical-optics) scattering integral over
*generated* 1D profiles, average over an ensemble, and split the result
into coherent and incoherent parts for comparison with the closed forms
in :mod:`repro.scattering.kirchhoff`.

For a 1D Dirichlet surface ``z = f(x)`` under a plane wave incident at
``theta_i`` (from vertical), the KA far-field scattering amplitude in
direction ``theta_s`` is the stationary-phase surface integral

.. math::

    A(\\theta_s) = N(\\theta_i, \\theta_s)\\sqrt{\\frac{k}{L}}
        \\int w(x)\\, e^{\\,j k_{dx} x - j k_{dz} f(x)}\\,dx,

with ``k_dx = k(sin ts - sin ti)``, ``k_dz = k(cos ti + cos ts)``, the
shared angular kernel ``N`` and a Tukey amplitude taper ``w`` that
suppresses edge diffraction from the finite patch.  The discrete sum is
vectorised over all scattering angles at once (an outer product — one
``exp`` of an ``angles x samples`` matrix per realisation).

Ensemble decomposition: ``<A>`` is the coherent amplitude (peaked at
specular, attenuated by ``exp(-g/2)``); ``<|A|^2> - |<A>|^2`` is the
incoherent (diffuse) intensity compared against the KA series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from ..core.api import absorb_legacy_positionals
from .kirchhoff import coherent_reflection_coefficient, ka_angular_kernel

__all__ = [
    "ScatteringEnsemble",
    "scattering_amplitude",
    "tukey_taper",
    "run_ensemble",
    "coherent_attenuation_curve",
]


def tukey_taper(n: int, alpha: float = 0.5) -> np.ndarray:
    """Tukey (cosine-tapered rectangular) window of length ``n``."""
    if n < 2:
        raise ValueError("window needs n >= 2")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError("alpha must be in [0, 1]")
    w = np.ones(n)
    edge = int(alpha * (n - 1) / 2.0)
    if edge > 0:
        t = np.arange(edge + 1) / max(alpha * (n - 1) / 2.0, 1e-12)
        ramp = 0.5 * (1.0 + np.cos(np.pi * (t - 1.0)))
        w[: edge + 1] = ramp
        w[-(edge + 1):] = ramp[::-1]
    return w


def scattering_amplitude(
    x: np.ndarray,
    f: np.ndarray,
    k: float,
    theta_i: float,
    theta_s: np.ndarray,
    taper: Optional[np.ndarray] = None,
) -> np.ndarray:
    """KA scattering amplitudes ``A(theta_s)`` for one profile.

    Normalised so that a flat surface at ``theta_s = theta_i`` gives
    ``|A| ~ sqrt(k L_eff)`` concentrated in the specular lobe; tests and
    benches always *ratio* against the flat-surface response, making the
    convention cancel.
    """
    x = np.asarray(x, dtype=float)
    f = np.asarray(f, dtype=float)
    if x.shape != f.shape or x.ndim != 1 or x.size < 2:
        raise ValueError("x and f must be matching 1D arrays (n >= 2)")
    theta_s = np.asarray(theta_s, dtype=float)
    dx = float(x[1] - x[0])
    if taper is None:
        taper = tukey_taper(x.size, 0.5)
    elif taper.shape != x.shape:
        raise ValueError("taper must match the profile length")

    kdx = k * (np.sin(theta_s) - np.sin(theta_i))     # (A,)
    kdz = k * (np.cos(theta_i) + np.cos(theta_s))     # (A,)
    kernel = ka_angular_kernel(theta_i, theta_s)      # (A,)
    phase = np.exp(
        1j * (kdx[:, None] * x[None, :] - kdz[:, None] * f[None, :])
    )
    integral = phase @ (taper * dx)
    length = float(x[-1] - x[0])
    return kernel * np.sqrt(k / length) * integral


@dataclass
class ScatteringEnsemble:
    """Coherent/incoherent decomposition of an amplitude ensemble."""

    theta_s: np.ndarray
    mean_amplitude: np.ndarray     # <A>
    mean_intensity: np.ndarray     # <|A|^2>
    n_realisations: int
    #: Provenance of the profiles that built the ensemble (from the
    #: first :class:`~repro.core.api.HeightField`, when profiles carry
    #: one) plus the experiment geometry.
    provenance: Dict[str, Any] = field(default_factory=dict)

    @property
    def coherent_intensity(self) -> np.ndarray:
        return np.abs(self.mean_amplitude) ** 2

    @property
    def incoherent_intensity(self) -> np.ndarray:
        return np.maximum(self.mean_intensity - self.coherent_intensity, 0.0)


def run_ensemble(
    profiles: Sequence[np.ndarray],
    *legacy: Any,
    dx: Optional[float] = None,
    k: Optional[float] = None,
    theta_i: Optional[float] = None,
    theta_s: Optional[np.ndarray] = None,
) -> ScatteringEnsemble:
    """Amplitude ensemble over a set of generated profiles.

    Profiles may be bare arrays or the :class:`~repro.core.api.
    HeightField` results of :class:`~repro.core.oned.ProfileGenerator`:
    when ``dx`` is omitted it is read from the first field's provenance
    (the unified generators stamp it), and the first field's provenance
    is carried into the returned ensemble.

    Everything after ``profiles`` is keyword-only; the seed-era
    positional shape ``run_ensemble(profiles, dx, k, theta_i, theta_s)``
    still works with a :class:`DeprecationWarning`.
    """
    if legacy:
        absorbed = absorb_legacy_positionals(
            "run_ensemble", legacy, ("dx", "k", "theta_i", "theta_s"),
        )
        dx = absorbed.get("dx", dx)
        k = absorbed.get("k", k)
        theta_i = absorbed.get("theta_i", theta_i)
        theta_s = absorbed.get("theta_s", theta_s)
    profiles = list(profiles)
    if not profiles:
        raise ValueError("need at least one profile")
    source_prov = dict(getattr(profiles[0], "provenance", None) or {})
    if dx is None:
        dx = source_prov.get("dx")
        if dx is None:
            raise TypeError(
                "run_ensemble() requires dx= (the first profile carries "
                "no provenance to infer it from)"
            )
    if k is None or theta_i is None or theta_s is None:
        raise TypeError("run_ensemble() requires k=, theta_i= and theta_s=")
    n = profiles[0].size
    x = np.arange(n) * float(dx)
    taper = tukey_taper(n, 0.5)
    mean_a = np.zeros(np.asarray(theta_s).size, dtype=complex)
    mean_i = np.zeros(np.asarray(theta_s).size)
    for prof in profiles:
        prof = np.asarray(prof, dtype=float)
        if prof.shape != (n,):
            raise ValueError("all profiles must share one length")
        a = scattering_amplitude(x, prof, k, theta_i, theta_s, taper)
        mean_a += a
        mean_i += np.abs(a) ** 2
    m = len(profiles)
    provenance = source_prov
    provenance["experiment"] = {
        "kind": "ka-ensemble", "k": float(k),
        "theta_i": float(theta_i), "n_realisations": m,
    }
    return ScatteringEnsemble(
        theta_s=np.asarray(theta_s, dtype=float),
        mean_amplitude=mean_a / m,
        mean_intensity=mean_i / m,
        n_realisations=m,
        provenance=provenance,
    )


def coherent_attenuation_curve(
    generate: Callable[[float, int], np.ndarray],
    h_values: Sequence[float],
    *legacy: Any,
    dx: Optional[float] = None,
    k: Optional[float] = None,
    theta_i: Optional[float] = None,
    n_realisations: int = 24,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Measured vs analytic coherent attenuation over a roughness sweep.

    ``generate(h, seed)`` must return a profile of fixed length with
    height std ``h`` — a bare array or a unified-API
    :class:`~repro.core.api.HeightField` (whose provenance supplies
    ``dx`` when the keyword is omitted).  Returns ``(h_values,
    measured, analytic)`` where both curves are normalised to the
    flat-surface (h -> 0) response at the specular angle — the cleanest
    KA validity check (Thorsos ref [1] uses exactly this
    normalisation).

    Parameters after ``h_values`` are keyword-only; the seed-era
    positional shape ``(generate, hs, dx, k, theta_i[, m])`` still
    works with a :class:`DeprecationWarning`.
    """
    if legacy:
        absorbed = absorb_legacy_positionals(
            "coherent_attenuation_curve", legacy,
            ("dx", "k", "theta_i", "n_realisations"),
        )
        dx = absorbed.get("dx", dx)
        k = absorbed.get("k", k)
        theta_i = absorbed.get("theta_i", theta_i)
        n_realisations = absorbed.get("n_realisations", n_realisations)
    h_values = np.asarray(list(h_values), dtype=float)
    # flat reference (provenance, when present, can supply dx)
    probe = generate(0.0, 0)
    if dx is None:
        dx = (getattr(probe, "provenance", None) or {}).get("dx")
        if dx is None:
            raise TypeError(
                "coherent_attenuation_curve() requires dx= (the "
                "generated profiles carry no provenance to infer it)"
            )
    if k is None or theta_i is None:
        raise TypeError(
            "coherent_attenuation_curve() requires k= and theta_i="
        )
    theta_spec = np.array([theta_i])
    flat = np.asarray(probe, dtype=float) * 0.0
    x = np.arange(flat.size) * float(dx)
    a_flat = scattering_amplitude(x, flat, k, theta_i, theta_spec)
    ref = abs(a_flat[0])
    measured = np.empty(h_values.size)
    analytic = np.empty(h_values.size)
    for i, h in enumerate(h_values):
        profiles = [generate(float(h), 1000 * i + s)
                    for s in range(n_realisations)]
        ens = run_ensemble(profiles, dx=float(dx), k=k, theta_i=theta_i,
                           theta_s=theta_spec)
        measured[i] = abs(ens.mean_amplitude[0]) / ref
        analytic[i] = coherent_reflection_coefficient(k, float(h), theta_i)
    return h_values, measured, analytic
