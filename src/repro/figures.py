"""The paper's numerical examples (Section 4, Figures 1-4) as builders.

Each ``figure*_layout`` returns the exact parameter layout printed in the
paper; ``figure*_surface`` generates a realisation on a caller-chosen
grid (the paper does not print its grid size; its coordinates run to
~1000 length units and the reference scale below uses a 1024-unit domain
at unit spacing, downscalable for tests).

Shared by the examples, the figure benches, and the integration tests so
the configuration exists in exactly one place.

Paper parameter tables
----------------------
Figure 1 — plate-oriented, all Gaussian:
    Q1 h=1.0 cl=40 | Q2 h=1.5 cl=60 | Q3 h=2.0 cl=80 | Q4 h=1.5 cl=60
Figure 2 — plate-oriented, four spectra:
    Q1 Gaussian h=1.0 cl=40        | Q2 2nd-order Power-Law h=1.5 cl=60
    Q3 Exponential h=2.0 cl=80     | Q4 3rd-order Power-Law h=1.5 cl=60
Figure 3 — circular region:
    inside r=500: Exponential h=0.2 cl=50; outside: Gaussian h=1.0 cl=50;
    transition T=100
Figure 4 — point-oriented, nine points on a circle plus the centre:
    i=1..3: Gaussian h=1.0 cl=50 | i=4..6: Gaussian h=1.5 cl=75
    i=7..9: Gaussian h=2.0 cl=100 | centre: Exponential h=0.5 cl=100
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .core.grid import Grid2D
from .core.inhomogeneous import (
    InhomogeneousGenerator,
    PointOrientedLayout,
    PointSpec,
)
from .core.spectra import ExponentialSpectrum, GaussianSpectrum, PowerLawSpectrum
from .core.surface import Surface
from .fields.parameter_map import LayeredLayout, PlateLattice, RegionSpec
from .fields.regions import Circle

__all__ = [
    "REFERENCE_DOMAIN",
    "default_grid",
    "figure1_layout",
    "figure2_layout",
    "figure3_layout",
    "figure4_layout",
    "figure_layout",
    "figure_surface",
    "FIGURES",
]

#: Physical domain side used by the reference reproduction (length units).
REFERENCE_DOMAIN = 1024.0


def default_grid(n: int = 1024, domain: float = REFERENCE_DOMAIN) -> Grid2D:
    """Square generation grid (``n x n`` samples over ``domain^2``)."""
    return Grid2D(nx=n, ny=n, lx=domain, ly=domain)


def figure1_layout(
    domain: float = REFERENCE_DOMAIN, half_width: float = 50.0
) -> PlateLattice:
    """Figure 1: same Gaussian spectrum, different parameters per quadrant.

    ``half_width`` is the transition half-width; the paper does not print
    the value used for Figures 1-2, so the reference reproduction adopts
    ~cl (50 units), and the A1/figure benches report sensitivity to it.
    """
    scale = domain / REFERENCE_DOMAIN
    return PlateLattice.quadrants(
        lx=domain,
        ly=domain,
        q1=GaussianSpectrum(h=1.0, clx=40.0 * scale, cly=40.0 * scale),
        q2=GaussianSpectrum(h=1.5, clx=60.0 * scale, cly=60.0 * scale),
        q3=GaussianSpectrum(h=2.0, clx=80.0 * scale, cly=80.0 * scale),
        q4=GaussianSpectrum(h=1.5, clx=60.0 * scale, cly=60.0 * scale),
        half_width=half_width * scale,
    )


def figure2_layout(
    domain: float = REFERENCE_DOMAIN, half_width: float = 50.0
) -> PlateLattice:
    """Figure 2: four different spectra, one per quadrant."""
    scale = domain / REFERENCE_DOMAIN
    return PlateLattice.quadrants(
        lx=domain,
        ly=domain,
        q1=GaussianSpectrum(h=1.0, clx=40.0 * scale, cly=40.0 * scale),
        q2=PowerLawSpectrum(h=1.5, clx=60.0 * scale, cly=60.0 * scale, order=2.0),
        q3=ExponentialSpectrum(h=2.0, clx=80.0 * scale, cly=80.0 * scale),
        q4=PowerLawSpectrum(h=1.5, clx=60.0 * scale, cly=60.0 * scale, order=3.0),
        half_width=half_width * scale,
    )


def figure3_layout(domain: float = REFERENCE_DOMAIN) -> LayeredLayout:
    """Figure 3: exponential pond (r=500) in a Gaussian field, T=100."""
    scale = domain / REFERENCE_DOMAIN
    return LayeredLayout(
        background=GaussianSpectrum(h=1.0, clx=50.0 * scale, cly=50.0 * scale),
        patches=[
            RegionSpec(
                region=Circle(
                    cx=domain / 2.0, cy=domain / 2.0, radius=500.0 * scale
                ),
                spectrum=ExponentialSpectrum(
                    h=0.2, clx=50.0 * scale, cly=50.0 * scale
                ),
                half_width=100.0 * scale,
            )
        ],
    )


def figure4_layout(
    domain: float = REFERENCE_DOMAIN,
    ring_radius: Optional[float] = None,
    half_width: Optional[float] = None,
) -> PointOrientedLayout:
    """Figure 4: point-oriented, nine ring points + centre.

    The paper places points at ``(cos(2*pi*i/9), sin(2*pi*i/9))`` scaled
    to its (unprinted) plot radius; the reference reproduction uses a
    ring at 0.35 x domain about the domain centre, with the paper's
    spectra: Gaussian h=1.0 cl=50 (i=1..3), h=1.5 cl=75 (i=4..6),
    h=2.0 cl=100 (i=7..9), and Exponential h=0.5 cl=100 at the centre.
    """
    scale = domain / REFERENCE_DOMAIN
    c = domain / 2.0
    r = ring_radius if ring_radius is not None else 0.35 * domain
    t = half_width if half_width is not None else 60.0 * scale
    ring_specs = (
        [GaussianSpectrum(h=1.0, clx=50.0 * scale, cly=50.0 * scale)] * 3
        + [GaussianSpectrum(h=1.5, clx=75.0 * scale, cly=75.0 * scale)] * 3
        + [GaussianSpectrum(h=2.0, clx=100.0 * scale, cly=100.0 * scale)] * 3
    )
    points: List[PointSpec] = [
        PointSpec(
            x=c + r * np.cos(2.0 * np.pi * i / 9.0),
            y=c + r * np.sin(2.0 * np.pi * i / 9.0),
            spectrum=ring_specs[i - 1],
        )
        for i in range(1, 10)
    ]
    points.append(
        PointSpec(
            x=c,
            y=c,
            spectrum=ExponentialSpectrum(h=0.5, clx=100.0 * scale, cly=100.0 * scale),
        )
    )
    return PointOrientedLayout(points, half_width=t)


FIGURES = ("fig1", "fig2", "fig3", "fig4")


def figure_layout(name: str, domain: float = REFERENCE_DOMAIN):
    """Layout builder dispatch by figure name (``fig1`` .. ``fig4``)."""
    builders = {
        "fig1": figure1_layout,
        "fig2": figure2_layout,
        "fig3": figure3_layout,
        "fig4": figure4_layout,
    }
    try:
        return builders[name](domain)
    except KeyError:
        raise KeyError(f"unknown figure {name!r}; known: {FIGURES}") from None


def figure_surface(
    name: str,
    n: int = 1024,
    domain: float = REFERENCE_DOMAIN,
    seed: int = 2009,
    truncation=0.999,
    engine: str = "auto",
    dtype="float64",
) -> Surface:
    """Generate one realisation of a paper figure.

    Parameters
    ----------
    name:
        ``"fig1"`` .. ``"fig4"``.
    n:
        Samples per axis (figures render well from 512 up; tests use
        small ``n`` with ``domain`` scaled down via ``default_grid``).
    domain:
        Physical side length; correlation lengths scale with it so the
        *relative* texture matches the paper at any resolution.
    seed:
        Noise seed (2009 — the paper's year — for the reference images).
    truncation:
        Kernel truncation spec (energy fraction by default).
    engine:
        Convolution engine forwarded to the generator.
    dtype:
        Engine precision forwarded to the generator (``"float64"``
        default, ``"float32"`` opt-in).
    """
    grid = default_grid(n, domain)
    layout = figure_layout(name, domain)
    gen = InhomogeneousGenerator(layout, grid, truncation=truncation,
                                 engine=engine, dtype=dtype)
    surface = gen.generate(seed=seed)
    surface.provenance["figure"] = name
    surface.provenance["seed"] = seed
    return surface
