"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so
that offline environments without the ``wheel`` package can still perform
legacy editable installs (``pip install -e . --no-build-isolation``).
"""

from setuptools import setup

setup()
