#!/usr/bin/env python
"""Wireless sensor network over an inhomogeneous terrain.

The paper's introduction is explicit about the application: "Sensors are
usually distributed randomly on terrestrial surfaces such as deserts,
vegetable fields, sea surfaces ... studies on propagation characteristics
along RRSs are strongly required."  This example closes that loop:

1. build a Figure-4-style point-oriented terrain (three roughness zones
   on a ring, a smooth basin in the middle);
2. scatter sensor nodes over it;
3. evaluate the radio link from a central gateway to every node (free
   space + Deygout terrain diffraction + rough-ground two-ray, at
   915 MHz ISM);
4. compare against the Hata open-area empirical baseline (the model the
   paper cites as ref. [7] and calls inadequate for sensor networks).

Run:  python examples/sensor_network_terrain.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import Grid2D, InhomogeneousGenerator
from repro.figures import figure4_layout
from repro.io import render_terrain
from repro.propagation import evaluate_link, hata_loss_db

OUT = Path(__file__).resolve().parent / "out"


def main() -> None:
    OUT.mkdir(exist_ok=True)
    rng = np.random.default_rng(7)

    # -- terrain: Figure 4 configuration, physical units = metres ----------
    domain = 2048.0
    grid = Grid2D(nx=512, ny=512, lx=domain, ly=domain)
    layout = figure4_layout(domain=domain)
    surface = InhomogeneousGenerator(layout, grid, truncation=0.999).generate(
        seed=2009
    )
    render_terrain(surface, path=OUT / "sensor_terrain.ppm",
                   vertical_exaggeration=8.0)

    # -- deploy nodes --------------------------------------------------------
    gateway = (domain / 2, domain / 2)
    n_nodes = 24
    theta = rng.uniform(0, 2 * np.pi, n_nodes)
    radius = rng.uniform(0.15, 0.45, n_nodes) * domain
    nodes = [
        (gateway[0] + r * np.cos(t), gateway[1] + r * np.sin(t))
        for r, t in zip(radius, theta)
    ]

    # -- evaluate links ------------------------------------------------------
    freq = 915e6
    budget_db = 120.0  # e.g. +14 dBm Tx, -106 dBm sensitivity
    print(f"gateway at {gateway}, {n_nodes} nodes, 915 MHz, "
          f"budget {budget_db:.0f} dB\n")
    print("node   dist[m]  LoS  terrain[dB]  Hata-open[dB]  link")
    n_closed = 0
    for i, node in enumerate(nodes):
        link = evaluate_link(
            surface, gateway, node, frequency_hz=freq,
            tx_height=8.0, rx_height=1.5,
        )
        d_km = max(link.distance / 1000.0, 1.0)
        hata = float(hata_loss_db(np.array(d_km), freq / 1e6,
                                  base_height_m=30.0, mobile_height_m=1.5,
                                  environment="open", strict=False))
        ok = link.total_db <= budget_db
        n_closed += ok
        print(f"{i:4d}  {link.distance:8.0f}  {'yes' if link.line_of_sight else ' no'}"
              f"   {link.total_db:8.1f}      {hata:8.1f}     "
              f"{'OK' if ok else '--'}")
    print(f"\n{n_closed}/{n_nodes} links close within budget")
    print("note: Hata (open) ignores the actual terrain profile - exactly "
          "the limitation the paper raises; the terrain-aware model "
          "responds to the local roughness zones of the generated surface.")


if __name__ == "__main__":
    main()
