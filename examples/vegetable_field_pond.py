#!/usr/bin/env python
"""A vegetable field containing a pond — the paper's Figure 3 scenario.

The paper motivates inhomogeneous surfaces with "the parameters ... vary
from place to place" in environments like "vegetable fields including a
pond".  This example builds exactly that: a circular pond (smooth,
exponential-spectrum water surface, h = 0.2) inside a rougher Gaussian
field (h = 1.0), with a 100-unit transition band (paper parameters), and
then *verifies* the inhomogeneity with windowed statistics.

Run:  python examples/vegetable_field_pond.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import (
    Circle,
    ExponentialSpectrum,
    GaussianSpectrum,
    Grid2D,
    InhomogeneousGenerator,
    LayeredLayout,
    RegionSpec,
)
from repro.io import ascii_preview, render_terrain, save_ascii_grid
from repro.stats import (
    interior_region_mask,
    local_std_map,
    region_statistics,
)

OUT = Path(__file__).resolve().parent / "out"


def main() -> None:
    OUT.mkdir(exist_ok=True)

    # -- paper Figure 3 configuration ---------------------------------------
    domain = 1024.0
    grid = Grid2D(nx=512, ny=512, lx=domain, ly=domain)
    pond_region = Circle(cx=domain / 2, cy=domain / 2, radius=500.0 / 2)
    # (radius scaled to keep the pond inside this half-size demo domain;
    #  benchmarks/test_bench_fig3_circle.py runs the full-size version)
    field = GaussianSpectrum(h=1.0, clx=50.0, cly=50.0)
    pond = ExponentialSpectrum(h=0.2, clx=50.0, cly=50.0)
    layout = LayeredLayout(
        background=field,
        patches=[RegionSpec(pond_region, pond, half_width=100.0)],
    )

    gen = InhomogeneousGenerator(layout, grid, truncation=0.999)
    surface = gen.generate(seed=2009)

    # -- verify region statistics -------------------------------------------
    pond_mask = interior_region_mask(surface, pond_region, margin=100.0)
    field_mask = ~pond_region.contains(*np.meshgrid(grid.x, grid.y,
                                                    indexing="ij"))
    # keep field samples well outside the transition band
    gx, gy = grid.meshgrid()
    r = np.hypot(gx - domain / 2, gy - domain / 2)
    field_mask &= r > (250.0 + 100.0)

    pond_stats = region_statistics(surface, pond_mask)
    field_stats = region_statistics(surface, field_mask)
    print("          target h   measured h   skew")
    print(f"pond       {pond.h:5.2f}      {pond_stats['std']:6.3f}     "
          f"{pond_stats['skewness']:+.3f}")
    print(f"field      {field.h:5.2f}      {field_stats['std']:6.3f}     "
          f"{field_stats['skewness']:+.3f}")

    # -- local roughness map: the pond should show up as a smooth disc ------
    win = 32
    std_map = local_std_map(surface.heights, win)
    centre = std_map[std_map.shape[0] // 2, std_map.shape[1] // 2]
    corner = std_map[8, 8]
    print(f"\nlocal std at pond centre: {centre:.3f}; at far corner: "
          f"{corner:.3f} (ratio {corner / centre:.1f}x)")

    # -- export ---------------------------------------------------------------
    render_terrain(surface, path=OUT / "field_pond.ppm",
                   vertical_exaggeration=4.0)
    save_ascii_grid(OUT / "field_pond.asc", surface)
    print(f"\nwrote {OUT / 'field_pond.ppm'} and {OUT / 'field_pond.asc'}")
    print()
    print(ascii_preview(surface, width=64))


if __name__ == "__main__":
    main()
