#!/usr/bin/env python
"""Quickstart: generate, verify, and render a homogeneous rough surface.

Demonstrates the minimal workflow of the library:

1. choose a spectral family (paper Section 2.1) and a sampling grid;
2. generate a realisation with the convolution method (Section 2.4);
3. verify the realisation statistics against the requested parameters;
4. render and export the surface.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from pathlib import Path

from repro import (
    ConvolutionGenerator,
    GaussianSpectrum,
    Grid2D,
    Surface,
)
from repro.io import ascii_preview, render_terrain, save_surface
from repro.stats import estimate_clx, estimate_cly, height_moments
from repro.validation import weight_acf_error

OUT = Path(__file__).resolve().parent / "out"


def main() -> None:
    OUT.mkdir(exist_ok=True)

    # -- 1. parameters ------------------------------------------------------
    # A 512 x 512 m patch at 1 m resolution, Gaussian roughness spectrum
    # with 1.5 m height std and 25 m correlation length.
    grid = Grid2D(nx=512, ny=512, lx=512.0, ly=512.0)
    spectrum = GaussianSpectrum(h=1.5, clx=25.0, cly=25.0)

    # The paper's own accuracy check: how faithfully does this grid carry
    # the requested spectrum?  (DFT of the weighting array vs the exact
    # autocorrelation; see Section 2.2.)
    report = weight_acf_error(spectrum, grid)
    print(f"discretisation check: max |DFT(w) - rho| = "
          f"{report.max_abs_error:.2e} (variance {report.variance_target})")

    # -- 2. generate ---------------------------------------------------------
    gen = ConvolutionGenerator(spectrum, grid)
    print(f"kernel footprint: {gen.footprint[0]} x {gen.footprint[1]} samples")
    heights = gen.generate(seed=42)
    surface = Surface(heights=heights, grid=grid,
                      provenance={"spectrum": spectrum.to_dict(), "seed": 42})

    # -- 3. verify -----------------------------------------------------------
    m = height_moments(surface.heights)
    clx_hat = estimate_clx(surface.heights, grid.dx)
    cly_hat = estimate_cly(surface.heights, grid.dy)
    print(f"measured h  = {m.std:.3f}   (target {spectrum.h})")
    print(f"measured cl = {clx_hat:.1f}, {cly_hat:.1f} (target {spectrum.clx})")
    print(f"skewness    = {m.skewness:+.3f} (Gaussian target 0)")

    # -- 4. render / export --------------------------------------------------
    save_surface(OUT / "quickstart.npz", surface)
    render_terrain(surface, path=OUT / "quickstart.ppm")
    print(f"wrote {OUT / 'quickstart.npz'} and {OUT / 'quickstart.ppm'}")
    print()
    print(ascii_preview(surface, width=64))


if __name__ == "__main__":
    main()
