#!/usr/bin/env python
"""Full-wave coverage map over generated terrain (the paper's future work).

The paper closes with: the generated surfaces exist to "simulate
electromagnetic wave propagation along the inhomogeneous RRSs ... a
future investigation".  This example does that simulation with the
split-step parabolic-equation solver through the coverage-map API: a
VHF transmitter on the left edge of an inhomogeneous profile (smooth
plain -> rough hills), the PE field marched across, and the coverage
written as a PGM image with the terrain silhouette burned in.

Run:  python examples/coverage_map.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.core.oned import Gaussian1D, ProfileGenerator
from repro.io.pgm import write_pgm
from repro.propagation.coverage import compute_coverage

OUT = Path(__file__).resolve().parent / "out"

FREQ = 150e6                       # 2 m wavelength, VHF
RANGE = 4000.0                     # 4 km transect
TX_HEIGHT = 30.0


def make_terrain() -> tuple[np.ndarray, np.ndarray]:
    """Inhomogeneous profile: flat plain for 1.5 km, rough hills after."""
    n = 2048
    x = np.linspace(0.0, RANGE, n)
    gen = ProfileGenerator(Gaussian1D(h=12.0, cl=150.0), 4096, 2.0 * RANGE)
    rough = gen.generate(seed=31)[:n]
    rough = rough - rough.min() + 1.0
    blend = np.clip((x - 1200.0) / 600.0, 0.0, 1.0)  # plain -> hills ramp
    return x, blend * rough


def main() -> None:
    OUT.mkdir(exist_ok=True)
    x, z = make_terrain()
    print(f"marching PE: {RANGE:.0f} m range at {FREQ / 1e6:.0f} MHz ...")
    cov = compute_coverage(
        (x, z), FREQ, x_max=RANGE, tx_height=TX_HEIGHT,
        z_max=320.0, nz=1024, dx=4.0, beamwidth=8.0,
    )

    print("\nrange [m]   ground [m]   PF at 2 m AGL [dB]")
    for r_query in (500.0, 1500.0, 2500.0, 3500.0):
        ground = float(np.interp(r_query, x, z))
        pf = cov.at(r_query, 2.0)
        print(f"{r_query:8.0f}   {ground:8.1f}    "
              f"{20.0 * np.log10(max(pf, 1e-9)):8.1f}")

    img = cov.masked_image(vmin_db=-40.0, vmax_db=6.0)
    write_pgm(OUT / "coverage.pgm", img)
    print(f"\nwrote {OUT / 'coverage.pgm'} "
          f"({img.shape[0]} x {img.shape[1]} px, -40..+6 dB greyscale)")
    print("visible physics: two-ray lobing fingers over the plain, "
          "diffraction shadows behind each hill crest.")


if __name__ == "__main__":
    main()
