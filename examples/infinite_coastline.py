#!/usr/bin/env python
"""Streaming an arbitrarily long surface strip — paper advantage (a).

"One of the advantages of the convolution method is that we can simulate
arbitrarily long or wide RRSs by successive computations."  This example
streams a long coastal transect — an anisotropic sea-like exponential
surface next to a rougher land strip — one window at a time, with memory
independent of the total length, and shows that separately generated
strips join seamlessly.

Run:  python examples/infinite_coastline.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import (
    BlockNoise,
    ExponentialSpectrum,
    GaussianSpectrum,
    Grid2D,
    InhomogeneousGenerator,
    PlateLattice,
)
from repro.io import render_terrain
from repro.parallel import assemble_strips, stream_strips

OUT = Path(__file__).resolve().parent / "out"


def main() -> None:
    OUT.mkdir(exist_ok=True)

    # -- layout: sea (y < 128) | shore transition | land (y > 128) ----------
    width = 256.0
    grid = Grid2D(nx=256, ny=256, lx=256.0, ly=width)  # kernel grid
    sea = ExponentialSpectrum(h=0.25, clx=40.0, cly=8.0)  # long-crested waves
    land = GaussianSpectrum(h=2.0, clx=20.0, cly=20.0)
    layout = PlateLattice(
        x_edges=[-1e9, 1e9],           # uniform along the transect
        y_edges=[0.0, width / 2, width],
        spectra=[[sea, land]],
        half_width=(0.0, 24.0),
    )
    gen = InhomogeneousGenerator(layout, grid, truncation=0.999)
    noise = BlockNoise(seed=1234)

    # -- stream an 8x-domain-long transect, strip by strip -------------------
    total_nx = 2048          # 8 x the kernel-grid extent
    strip_nx = 256
    print(f"streaming {total_nx} samples in strips of {strip_nx} "
          f"(kernel footprint {gen.kernels[0].shape})")
    stds = []
    strips = []
    for strip in stream_strips(gen, noise, total_nx=total_nx,
                               width_ny=grid.ny, strip_nx=strip_nx):
        sea_std = strip.heights[:, :96].std()
        land_std = strip.heights[:, 160:].std()
        stds.append((sea_std, land_std))
        strips.append(strip)
        print(f"  strip at x = {strip.origin[0]:7.0f}: "
              f"sea std {sea_std:.3f}, land std {land_std:.3f}")

    # -- prove seamlessness: regenerate a window straddling a seam ----------
    seam_window = gen.generate_window(noise, strip_nx - 32, 0, 64, grid.ny)
    assembled = assemble_strips(iter(strips))
    seam_from_strips = assembled.heights[strip_nx - 32 : strip_nx + 32, :]
    err = np.max(np.abs(seam_from_strips - seam_window.heights))
    print(f"\nmax |strip-assembled - regenerated| across a seam: {err:.2e}")
    assert err < 1e-9, "streaming must be seamless"

    # per-strip statistics stay stationary along the transect
    sea_stds = np.array([s for s, _ in stds])
    print(f"sea-std stability along transect: {sea_stds.std() / sea_stds.mean():.1%}")

    render_terrain(assembled.window(slice(0, 1024), slice(0, 256)),
                   path=OUT / "coastline.ppm", vertical_exaggeration=6.0)
    print(f"wrote {OUT / 'coastline.ppm'}")


if __name__ == "__main__":
    main()
