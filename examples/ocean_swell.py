#!/usr/bin/env python
"""Ocean surface modelling: Pierson-Moskowitz sea + swell composition.

"Sea surfaces" are one of the environments the paper names in its first
paragraph, and its reference list builds on Thorsos' Pierson-Moskowitz
scattering studies (ref [2]).  This example models a developed sea with
the extended spectral families:

1. a pure Pierson-Moskowitz wind sea at two wind speeds (the h ~ U^2
   growth law falls out of the measured statistics);
2. wind sea + rotated long-crest swell as a CompositeSpectrum — a
   two-scale surface neither basic family can express;
3. the Rayleigh roughness criterion: at which radar frequency does each
   sea state stop reflecting coherently?

Run:  python examples/ocean_swell.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import ConvolutionGenerator, GaussianSpectrum, Grid2D, Surface
from repro.core.spectra_ext import (
    CompositeSpectrum,
    PiersonMoskowitzSpectrum,
    RotatedSpectrum,
)
from repro.io import render_terrain
from repro.propagation import rayleigh_criterion_height
from repro.stats import estimate_clx, estimate_cly, height_moments

OUT = Path(__file__).resolve().parent / "out"


def main() -> None:
    OUT.mkdir(exist_ok=True)

    # -- 1. wind-sea growth law ----------------------------------------------
    print("Pierson-Moskowitz wind sea (h ~ U^2):")
    print("  U [m/s]   target h [m]   measured h [m]   cl [m]")
    for wind in (5.0, 10.0):
        pm = PiersonMoskowitzSpectrum(wind_speed=wind, spreading=2.0)
        grid = Grid2D(nx=384, ny=384,
                      lx=50.0 * pm.clx, ly=50.0 * pm.clx)
        gen = ConvolutionGenerator(pm, grid, truncation=0.999)
        heights = gen.generate(seed=11)
        m = height_moments(heights)
        print(f"  {wind:5.1f}     {pm.h:8.3f}       {m.std:8.3f}      "
              f"{pm.clx:6.1f}")

    # -- 2. sea + swell composite --------------------------------------------
    pm = PiersonMoskowitzSpectrum(wind_speed=7.0, spreading=2.0)
    swell = RotatedSpectrum(
        GaussianSpectrum(h=0.8, clx=150.0, cly=25.0),  # long-crested
        angle=np.pi / 2.0,                              # crests along x
    )
    sea = CompositeSpectrum([pm, swell])
    grid = Grid2D(nx=512, ny=512, lx=1200.0, ly=1200.0)
    gen = ConvolutionGenerator(sea, grid, truncation=0.999)
    heights = gen.generate(seed=12)
    surf = Surface(heights=heights, grid=grid,
                   provenance={"spectrum": sea.to_dict(), "seed": 12})
    print(f"\ncomposite sea: target h = {sea.h:.3f}, "
          f"measured = {surf.height_std():.3f}")
    clx = estimate_clx(heights, grid.dx)
    cly = estimate_cly(heights, grid.dy)
    print(f"swell anisotropy on the composite: clx = {clx:.0f} m, "
          f"cly = {cly:.0f} m")
    render_terrain(surf, path=OUT / "ocean.ppm", vertical_exaggeration=20.0)
    print(f"wrote {OUT / 'ocean.ppm'}")

    # -- 3. coherent-reflection limits ---------------------------------------
    print("\nRayleigh criterion (grazing angle 2 deg): the sea stops acting "
          "as a mirror when h exceeds")
    for f_ghz in (0.3, 1.0, 3.0, 10.0):
        h_max = rayleigh_criterion_height(np.deg2rad(2.0), f_ghz * 1e9)
        verdict = "smooth" if sea.h < h_max else "ROUGH"
        print(f"  {f_ghz:5.1f} GHz: h_crit = {h_max:6.3f} m  -> this sea is "
              f"{verdict}")


if __name__ == "__main__":
    main()
