#!/usr/bin/env python
"""Continuously varying parameters — beyond the paper's plates and points.

The paper's Section 3 opens with surfaces "of which parameters are
continuously varied from place to place" and then discretises the idea.
:class:`repro.fields.ContinuousGenerator` takes it literally: here a
foothill scene where the height std grows linearly from plain to
mountains while the correlation length shrinks (rugged peaks, smooth
plains), with the 1D ray tracer measuring how the communication
distance collapses as a radio link walks into the rough zone.

Run:  python examples/gradient_terrain.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro import GaussianSpectrum, Grid2D
from repro.fields import ContinuousGenerator
from repro.io import render_terrain, save_obj
from repro.propagation import communication_distance
from repro.stats import local_std_map

OUT = Path(__file__).resolve().parent / "out"
DOMAIN = 2048.0


def main() -> None:
    OUT.mkdir(exist_ok=True)

    gen = ContinuousGenerator(
        family=lambda cl: GaussianSpectrum(h=1.0, clx=cl, cly=cl),
        # plain (west) -> mountains (east)
        h_field=lambda x, y: 0.3 + 4.7 * (np.asarray(x) / DOMAIN) ** 1.5,
        cl_field=lambda x, y: 80.0 - 55.0 * np.asarray(x) / DOMAIN,
        grid=Grid2D(nx=512, ny=512, lx=DOMAIN, ly=DOMAIN),
        levels=6,
    )
    surface = gen.generate(seed=77)
    print(f"cl quantisation levels: {np.round(gen.levels, 1)}")

    # verify the gradient with a local-roughness transect
    win = 48
    std_map = local_std_map(surface.heights, win)
    xs = (np.arange(std_map.shape[0]) + win / 2) * surface.grid.dx
    transect = std_map.mean(axis=1)
    print("\nlocal roughness along the west->east transect:")
    for frac in (0.1, 0.35, 0.6, 0.85):
        i = int(frac * (len(transect) - 1))
        x = xs[i]
        target = 0.3 + 4.7 * (x / DOMAIN) ** 1.5
        print(f"  x = {x:6.0f}:  local std = {transect[i]:5.2f}  "
              f"(h field = {target:5.2f})")

    # radio link marching into the mountains
    iy = surface.shape[1] // 2
    profile = surface.profile_x(iy)
    x = surface.x
    d_east = communication_distance(
        x, profile, 915e6, tx_height=5.0, rx_height=2.0,
        step=100.0, n_rays=361, max_bounces=1,
    )
    d_west = communication_distance(
        x[::-1] * -1.0 + x[-1], profile[::-1], 915e6,
        tx_height=5.0, rx_height=2.0, step=100.0, n_rays=361, max_bounces=1,
    )
    print(f"\ncommunication distance from the plain, walking east "
          f"(into the mountains): {d_east:.0f} m")
    print(f"communication distance from the mountains, walking west "
          f"(onto the plain):    {d_west:.0f} m")

    render_terrain(surface, path=OUT / "gradient.ppm",
                   vertical_exaggeration=4.0)
    save_obj(OUT / "gradient.obj", surface, decimate=8, z_scale=4.0)
    print(f"\nwrote {OUT / 'gradient.ppm'} and {OUT / 'gradient.obj'}")


if __name__ == "__main__":
    main()
