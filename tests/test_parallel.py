"""Tests for tile plans, execution backends, and streaming strips."""

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.inhomogeneous import InhomogeneousGenerator
from repro.core.rng import BlockNoise
from repro.core.spectra import ExponentialSpectrum, GaussianSpectrum
from repro.fields.parameter_map import PlateLattice
from repro.parallel.executor import default_workers, generate_tiled
from repro.parallel.streaming import StripStream, assemble_strips, stream_strips
from repro.parallel.tiles import Tile, TilePlan


@pytest.fixture
def gen():
    grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
    return ConvolutionGenerator(
        GaussianSpectrum(h=1.0, clx=16.0, cly=16.0), grid, truncation=(8, 8)
    )


@pytest.fixture
def inhom_gen():
    grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
    lat = PlateLattice.quadrants(
        256.0, 256.0,
        GaussianSpectrum(h=0.5, clx=16.0, cly=16.0),
        ExponentialSpectrum(h=1.5, clx=12.0, cly=12.0),
        GaussianSpectrum(h=1.0, clx=20.0, cly=20.0),
        GaussianSpectrum(h=0.5, clx=16.0, cly=16.0),
        half_width=16.0,
    )
    return InhomogeneousGenerator(lat, grid, truncation=(8, 8))


class TestTilePlan:
    def test_tiles_partition_output(self):
        plan = TilePlan(total_nx=100, total_ny=70, tile_nx=32, tile_ny=33)
        cover = np.zeros((100, 70), dtype=int)
        for t in plan:
            cover[t.x0 : t.x1, t.y0 : t.y1] += 1
        assert np.all(cover == 1)

    def test_len_and_counts(self):
        plan = TilePlan(total_nx=100, total_ny=70, tile_nx=32, tile_ny=33)
        assert plan.n_tiles == (4, 3)
        assert len(plan) == 12

    def test_origin_offsets(self):
        plan = TilePlan(total_nx=10, total_ny=10, tile_nx=10, tile_ny=10,
                        origin_x=-5, origin_y=7)
        (t,) = plan.tiles()
        assert (t.x0, t.y0) == (-5, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            TilePlan(total_nx=0, total_ny=10, tile_nx=4, tile_ny=4)
        with pytest.raises(ValueError):
            TilePlan(total_nx=10, total_ny=10, tile_nx=0, tile_ny=4)
        with pytest.raises(ValueError):
            Tile(x0=0, y0=0, nx=0, ny=5)

    def test_halo_overhead_decreases_with_tile_size(self):
        small = TilePlan(total_nx=128, total_ny=128, tile_nx=16, tile_ny=16)
        large = TilePlan(total_nx=128, total_ny=128, tile_nx=64, tile_ny=64)
        k = (17, 17)
        assert small.halo_overhead(k) > large.halo_overhead(k)

    def test_halo_samples_accounting(self):
        plan = TilePlan(total_nx=64, total_ny=64, tile_nx=32, tile_ny=32)
        read, output = plan.halo_samples((9, 9))
        assert output == 64 * 64
        assert read == 4 * (32 + 8) * (32 + 8)
        assert plan.halo_overhead((9, 9)) == pytest.approx(read / output - 1.0)
        # a 1x1 kernel has no halo at all
        assert plan.halo_overhead((1, 1)) == pytest.approx(0.0)
        with pytest.raises(ValueError):
            plan.halo_samples((0, 9))


class TestBackends:
    def test_serial_thread_process_identical(self, gen):
        bn = BlockNoise(seed=2, block=48)
        plan = TilePlan(total_nx=96, total_ny=80, tile_nx=40, tile_ny=30)
        s = generate_tiled(gen, bn, plan, backend="serial")
        t = generate_tiled(gen, bn, plan, backend="thread", workers=3)
        assert np.array_equal(s.heights, t.heights)
        p = generate_tiled(gen, bn, plan, backend="process", workers=2)
        assert np.array_equal(s.heights, p.heights)

    def test_different_plans_agree_to_rounding(self, gen):
        bn = BlockNoise(seed=3, block=32)
        a = generate_tiled(
            gen, bn, TilePlan(total_nx=64, total_ny=64, tile_nx=64, tile_ny=64)
        )
        b = generate_tiled(
            gen, bn, TilePlan(total_nx=64, total_ny=64, tile_nx=17, tile_ny=23)
        )
        assert np.allclose(a.heights, b.heights, atol=1e-10)

    def test_inhomogeneous_tiled_matches_window(self, inhom_gen):
        bn = BlockNoise(seed=5, block=40)
        plan = TilePlan(total_nx=64, total_ny=64, tile_nx=24, tile_ny=40)
        tiled = generate_tiled(inhom_gen, bn, plan, backend="serial")
        oneshot = inhom_gen.generate_window(bn, 0, 0, 64, 64)
        assert np.allclose(tiled.heights, oneshot.heights, atol=1e-10)

    def test_unknown_backend_rejected(self, gen):
        plan = TilePlan(total_nx=8, total_ny=8, tile_nx=8, tile_ny=8)
        with pytest.raises(ValueError):
            generate_tiled(gen, BlockNoise(seed=1), plan, backend="mpi")

    def test_negative_origin_plan(self, gen):
        bn = BlockNoise(seed=7)
        plan = TilePlan(total_nx=32, total_ny=32, tile_nx=16, tile_ny=16,
                        origin_x=-16, origin_y=-16)
        s = generate_tiled(gen, bn, plan)
        assert s.shape == (32, 32)
        assert s.origin == (-16 * gen.grid.dx, -16 * gen.grid.dy)

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestBackendsFftEngine:
    """Satellite: backend determinism must survive the FFT engine."""

    @pytest.fixture
    def fft_gen(self):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        return ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=16.0, cly=16.0), grid,
            truncation=(8, 8), engine="fft",
        )

    def test_serial_thread_process_identical_fft(self, fft_gen):
        bn = BlockNoise(seed=2, block=48)
        plan = TilePlan(total_nx=96, total_ny=80, tile_nx=40, tile_ny=30)
        s = generate_tiled(fft_gen, bn, plan, backend="serial")
        t = generate_tiled(fft_gen, bn, plan, backend="thread", workers=3)
        assert np.array_equal(s.heights, t.heights)
        p = generate_tiled(fft_gen, bn, plan, backend="process", workers=2)
        assert np.array_equal(s.heights, p.heights)

    def test_fft_tiles_match_spatial_tiles(self, fft_gen):
        spatial_gen = ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=16.0, cly=16.0), fft_gen.grid,
            truncation=(8, 8), engine="spatial",
        )
        bn = BlockNoise(seed=6, block=48)
        plan = TilePlan(total_nx=96, total_ny=80, tile_nx=40, tile_ny=30)
        fft = generate_tiled(fft_gen, bn, plan, backend="serial")
        spatial = generate_tiled(spatial_gen, bn, plan, backend="serial")
        assert np.max(np.abs(fft.heights - spatial.heights)) <= 1e-10

    def test_provenance_reports_engine_and_halo(self, fft_gen):
        bn = BlockNoise(seed=8)
        plan = TilePlan(total_nx=64, total_ny=64, tile_nx=32, tile_ny=32)
        s = generate_tiled(fft_gen, bn, plan, backend="serial")
        assert s.provenance["engine"] == "fft"
        assert s.provenance["halo_overhead"] == pytest.approx(
            plan.halo_overhead(fft_gen.footprint)
        )
        # every tile shares one kernel and one block shape: tiles - 1 hits
        # at most one miss (another test may have warmed the shared cache)
        pc = s.provenance["plan_cache"]
        assert pc["hits"] + pc["misses"] == len(plan)
        assert pc["misses"] <= 1

    def test_inhomogeneous_tiled_fft_matches_spatial(self):
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        lat = PlateLattice.quadrants(
            256.0, 256.0,
            GaussianSpectrum(h=0.5, clx=16.0, cly=16.0),
            ExponentialSpectrum(h=1.5, clx=12.0, cly=12.0),
            GaussianSpectrum(h=1.0, clx=20.0, cly=20.0),
            GaussianSpectrum(h=0.5, clx=16.0, cly=16.0),
            half_width=16.0,
        )
        bn = BlockNoise(seed=5, block=40)
        plan = TilePlan(total_nx=64, total_ny=64, tile_nx=24, tile_ny=40)
        outs = {}
        for engine in ("spatial", "fft"):
            g = InhomogeneousGenerator(lat, grid, truncation=(8, 8),
                                       engine=engine)
            outs[engine] = generate_tiled(g, bn, plan, backend="serial")
        assert np.max(
            np.abs(outs["fft"].heights - outs["spatial"].heights)
        ) <= 1e-10

    def test_streaming_fft_engine(self, fft_gen):
        from repro.parallel.streaming import assemble_strips, stream_strips

        bn = BlockNoise(seed=11)
        strips = list(
            stream_strips(fft_gen, bn, total_nx=60, width_ny=24, strip_nx=17)
        )
        assert all(s.provenance["engine"] == "fft" for s in strips)
        asm = assemble_strips(iter(strips))
        oneshot = fft_gen.generate_window(bn, 0, 0, 60, 24)
        assert np.allclose(asm.heights, oneshot, atol=1e-10)


class TestStreaming:
    def test_strip_stream_iterates(self, gen):
        bn = BlockNoise(seed=9)
        stream = StripStream(gen, bn, width_ny=32, strip_nx=16, n_strips=3)
        strips = list(stream)
        assert len(strips) == 3
        assert stream.emitted == 3
        assert strips[0].shape == (16, 32)
        # consecutive origins advance by strip_nx * dx
        assert strips[1].origin[0] == pytest.approx(16 * gen.grid.dx)

    def test_endless_stream_interface(self, gen):
        bn = BlockNoise(seed=9)
        stream = StripStream(gen, bn, width_ny=16, strip_nx=8)
        out = [next(stream) for _ in range(4)]
        assert len(out) == 4

    def test_stream_strips_clips_last(self, gen):
        bn = BlockNoise(seed=10)
        strips = list(stream_strips(gen, bn, total_nx=50, width_ny=16, strip_nx=20))
        assert [s.shape[0] for s in strips] == [20, 20, 10]

    def test_assembled_equals_oneshot(self, gen):
        bn = BlockNoise(seed=11)
        asm = assemble_strips(
            stream_strips(gen, bn, total_nx=60, width_ny=24, strip_nx=17)
        )
        oneshot = gen.generate_window(bn, 0, 0, 60, 24)
        assert np.allclose(asm.heights, oneshot, atol=1e-10)

    def test_assemble_rejects_gap(self, gen):
        bn = BlockNoise(seed=12)
        s1 = next(StripStream(gen, bn, width_ny=8, strip_nx=8, n_strips=1))
        s3 = next(StripStream(gen, bn, width_ny=8, strip_nx=8, x0=16, n_strips=1))
        with pytest.raises(ValueError, match="contiguous"):
            assemble_strips(iter([s1, s3]))

    def test_assemble_rejects_mismatched_width(self, gen):
        bn = BlockNoise(seed=12)
        s1 = next(StripStream(gen, bn, width_ny=8, strip_nx=8, n_strips=1))
        s2 = next(StripStream(gen, bn, width_ny=16, strip_nx=8, x0=8, n_strips=1))
        with pytest.raises(ValueError, match="y window"):
            assemble_strips(iter([s1, s2]))

    def test_assemble_empty_rejected(self):
        with pytest.raises(ValueError):
            assemble_strips(iter([]))

    def test_validation(self, gen):
        with pytest.raises(ValueError):
            StripStream(gen, BlockNoise(seed=1), width_ny=0, strip_nx=4)
        with pytest.raises(ValueError):
            list(stream_strips(gen, BlockNoise(seed=1), total_nx=0,
                               width_ny=4, strip_nx=4))

    def test_inhomogeneous_streaming(self, inhom_gen):
        bn = BlockNoise(seed=13)
        asm = assemble_strips(
            stream_strips(inhom_gen, bn, total_nx=64, width_ny=64, strip_nx=20)
        )
        oneshot = inhom_gen.generate_window(bn, 0, 0, 64, 64)
        assert np.allclose(asm.heights, oneshot.heights, atol=1e-10)
