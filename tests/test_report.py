"""Tests for the bundled validation report."""

import pytest

from repro.cli import main
from repro.core.grid import Grid2D
from repro.core.spectra import GaussianSpectrum
from repro.validation.report import (
    DEFAULT_SPECTRA,
    render_markdown,
    run_validation_report,
)


@pytest.fixture(scope="module")
def report():
    grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
    return run_validation_report(grid=grid, n_realisations=8)


class TestReport:
    def test_structure(self, report):
        assert set(report["families"]) == set(DEFAULT_SPECTRA)
        for entry in report["families"].values():
            assert {"discretisation", "method_equivalence_rel", "ensemble",
                    "slope_identity_rel_error"} <= set(entry)

    def test_passes_on_default_configuration(self, report):
        assert report["pass"] is True

    def test_equivalence_at_rounding(self, report):
        for entry in report["families"].values():
            assert entry["method_equivalence_rel"] < 1e-10

    def test_custom_spectra(self):
        grid = Grid2D(nx=48, ny=48, lx=192.0, ly=192.0)
        rep = run_validation_report(
            grid=grid,
            spectra={"g": GaussianSpectrum(h=1.0, clx=12.0, cly=12.0)},
            n_realisations=4,
        )
        assert list(rep["families"]) == ["g"]

    def test_markdown_rendering(self, report):
        md = render_markdown(report)
        assert md.startswith("# Validation report")
        assert "PASS" in md
        for name in DEFAULT_SPECTRA:
            assert name in md

    def test_cli_full_flag(self, capsys):
        rc = main(["validate", "--full", "--n", "64", "--domain", "256"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Validation report" in out
        assert "PASS" in out
