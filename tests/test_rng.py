"""Unit tests for Gaussian RNG machinery (eqn 18) and block noise."""

import numpy as np
import pytest

from repro.core.rng import (
    BlockNoise,
    Lcg,
    as_generator,
    box_muller,
    normal_pair_from_uniform,
    standard_normal_field,
)


class TestBoxMuller:
    def test_known_values(self):
        # u1 = 0 (cos branch = 1): X = sqrt(-2 log u2)
        assert box_muller(0.0, np.exp(-0.5)) == pytest.approx(1.0)
        assert box_muller(0.0, 1.0) == pytest.approx(0.0)

    def test_pair_orthogonality(self):
        # cos and sin branches at u1 = pi/2 swap roles
        x, y = normal_pair_from_uniform(np.pi / 2.0, np.exp(-0.5))
        assert x == pytest.approx(0.0, abs=1e-12)
        assert y == pytest.approx(1.0)

    def test_rejects_bad_u2(self):
        with pytest.raises(ValueError):
            box_muller(0.0, 0.0)
        with pytest.raises(ValueError):
            box_muller(0.0, 1.5)

    def test_moments_from_uniform_grid(self):
        # deterministic check: push a dense uniform lattice through the
        # transform and verify near-normal moments
        rng = np.random.default_rng(7)
        u1 = rng.uniform(0.0, 2 * np.pi, 200_000)
        u2 = rng.uniform(1e-12, 1.0, 200_000)
        x = box_muller(u1, u2)
        assert abs(x.mean()) < 0.02
        assert x.std() == pytest.approx(1.0, abs=0.02)
        assert abs(np.mean(x**3)) < 0.05


class TestLcg:
    def test_deterministic_sequence(self):
        a = Lcg(state=1)
        b = Lcg(state=1)
        assert a.rand() == b.rand()
        assert a.rand(5.0) == b.rand(5.0)

    def test_range(self):
        g = Lcg(state=99)
        vals = g.rand(2.0 * np.pi, size=1000)
        assert np.all(vals >= 0.0) and np.all(vals <= 2.0 * np.pi)

    def test_normal_moments(self):
        g = Lcg(state=12345)
        x = g.normal(size=20000)
        assert abs(np.mean(x)) < 0.05
        assert np.std(x) == pytest.approx(1.0, abs=0.05)

    def test_normal_scalar(self):
        g = Lcg(state=3)
        assert isinstance(g.normal(), float)

    def test_low_bit_weakness_documented(self):
        # the classic LCG failure: low-order bits alternate with period 2
        g = Lcg(state=1)
        bits = []
        for _ in range(64):
            g.state = (g._A * g.state + g._C) % g._M
            bits.append(g.state & 1)
        assert bits == [bits[0], bits[1]] * 32  # period-2 low bit


class TestStandardNormalField:
    def test_shape_and_seeding(self):
        a = standard_normal_field((8, 8), seed=1)
        b = standard_normal_field((8, 8), seed=1)
        c = standard_normal_field((8, 8), seed=2)
        assert a.shape == (8, 8)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_accepts_generator(self):
        gen = np.random.default_rng(5)
        a = standard_normal_field((4,), seed=gen)
        assert a.shape == (4,)

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen


class TestBlockNoise:
    def test_validation(self):
        with pytest.raises(ValueError):
            BlockNoise(seed=-1)
        with pytest.raises(ValueError):
            BlockNoise(seed=1, block=0)

    def test_determinism(self):
        a = BlockNoise(seed=5, block=16).window(0, 0, 32, 32)
        b = BlockNoise(seed=5, block=16).window(0, 0, 32, 32)
        assert np.array_equal(a, b)

    def test_seed_sensitivity(self):
        a = BlockNoise(seed=5).window(0, 0, 16, 16)
        b = BlockNoise(seed=6).window(0, 0, 16, 16)
        assert not np.array_equal(a, b)

    def test_overlapping_windows_agree(self):
        bn = BlockNoise(seed=11, block=16)
        big = bn.window(-8, -8, 48, 48)
        small = bn.window(4, 0, 10, 20)
        assert np.array_equal(big[12:22, 8:28], small)

    def test_window_crossing_block_boundaries(self):
        bn = BlockNoise(seed=3, block=8)
        w = bn.window(5, 5, 10, 10)  # spans 2x2 blocks
        # consistency with single-sample windows
        for i in (0, 4, 9):
            for j in (0, 4, 9):
                assert bn.window(5 + i, 5 + j, 1, 1)[0, 0] == w[i, j]

    def test_negative_coordinates(self):
        bn = BlockNoise(seed=1, block=8)
        w = bn.window(-20, -20, 8, 8)
        assert w.shape == (8, 8)
        assert np.all(np.isfinite(w))

    def test_negative_positive_blocks_distinct(self):
        bn = BlockNoise(seed=1, block=8)
        a = bn.window(-8, 0, 8, 8)  # block (-1, 0)
        b = bn.window(8, 0, 8, 8)   # block (1, 0)
        assert not np.array_equal(a, b)

    def test_empty_window(self):
        bn = BlockNoise(seed=1)
        assert bn.window(0, 0, 0, 5).shape == (0, 5)

    def test_rejects_negative_extent(self):
        bn = BlockNoise(seed=1)
        with pytest.raises(ValueError):
            bn.window(0, 0, -1, 5)

    def test_marginals_are_standard_normal(self):
        bn = BlockNoise(seed=77, block=64)
        w = bn.window(0, 0, 256, 256)
        assert abs(w.mean()) < 0.02
        assert w.std() == pytest.approx(1.0, abs=0.02)

    def test_block_size_changes_values_but_not_statistics(self):
        # values are keyed by (seed, block, coords): different block size
        # gives a different (but equally valid) noise plane
        a = BlockNoise(seed=5, block=8).window(0, 0, 16, 16)
        b = BlockNoise(seed=5, block=16).window(0, 0, 16, 16)
        assert not np.array_equal(a, b)
