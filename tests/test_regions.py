"""Unit tests for region geometry (signed distances, membership)."""

import numpy as np
import pytest

from repro.fields.regions import (
    Circle,
    Complement,
    Ellipse,
    Everywhere,
    HalfPlane,
    Intersection,
    Polygon,
    Rectangle,
    Union,
)


class TestHalfPlane:
    def test_membership(self):
        hp = HalfPlane(nx=1.0, ny=0.0, c=5.0)  # x <= 5
        assert hp.contains(4.0, 100.0)
        assert not hp.contains(6.0, 0.0)

    def test_signed_distance_metric(self):
        hp = HalfPlane(nx=3.0, ny=4.0, c=0.0)  # normalised internally
        assert hp.signed_distance(3.0, 4.0) == pytest.approx(5.0)
        assert hp.signed_distance(-3.0, -4.0) == pytest.approx(-5.0)

    def test_zero_normal_rejected(self):
        with pytest.raises(ValueError):
            HalfPlane(nx=0.0, ny=0.0, c=1.0)


class TestRectangle:
    def test_validation(self):
        with pytest.raises(ValueError):
            Rectangle(x0=1.0, x1=1.0, y0=0.0, y1=1.0)

    def test_inside_distance(self):
        r = Rectangle(x0=0.0, x1=10.0, y0=0.0, y1=10.0)
        assert r.signed_distance(5.0, 5.0) == pytest.approx(-5.0)
        assert r.signed_distance(1.0, 5.0) == pytest.approx(-1.0)

    def test_outside_face_distance(self):
        r = Rectangle(x0=0.0, x1=10.0, y0=0.0, y1=10.0)
        assert r.signed_distance(13.0, 5.0) == pytest.approx(3.0)

    def test_outside_corner_distance(self):
        r = Rectangle(x0=0.0, x1=10.0, y0=0.0, y1=10.0)
        assert r.signed_distance(13.0, 14.0) == pytest.approx(5.0)

    def test_center(self):
        r = Rectangle(x0=0.0, x1=10.0, y0=2.0, y1=6.0)
        assert r.center == (5.0, 4.0)

    def test_boundary_counts_inside(self):
        r = Rectangle(x0=0.0, x1=10.0, y0=0.0, y1=10.0)
        assert r.contains(10.0, 5.0)


class TestCircle:
    def test_signed_distance(self):
        c = Circle(cx=0.0, cy=0.0, radius=5.0)
        assert c.signed_distance(3.0, 4.0) == pytest.approx(0.0)
        assert c.signed_distance(0.0, 0.0) == pytest.approx(-5.0)
        assert c.signed_distance(10.0, 0.0) == pytest.approx(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Circle(cx=0.0, cy=0.0, radius=0.0)

    def test_vectorised(self):
        c = Circle(cx=1.0, cy=1.0, radius=2.0)
        x = np.array([1.0, 5.0])
        assert list(c.contains(x, 1.0)) == [True, False]


class TestEllipse:
    def test_degenerates_to_circle(self):
        e = Ellipse(cx=0.0, cy=0.0, a=3.0, b=3.0)
        c = Circle(cx=0.0, cy=0.0, radius=3.0)
        pts = np.linspace(-5, 5, 11)
        assert np.allclose(
            e.signed_distance(pts, 1.0), c.signed_distance(pts, 1.0), atol=1e-9
        )

    def test_axes(self):
        e = Ellipse(cx=0.0, cy=0.0, a=4.0, b=2.0)
        assert e.contains(3.9, 0.0)
        assert not e.contains(0.0, 2.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            Ellipse(cx=0.0, cy=0.0, a=0.0, b=1.0)


class TestPolygon:
    def test_validation(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 0)])

    def test_square_membership(self):
        p = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        assert p.contains(5.0, 5.0)
        assert not p.contains(11.0, 5.0)
        assert not p.contains(-1.0, -1.0)

    def test_square_signed_distance_matches_rectangle(self):
        p = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        r = Rectangle(x0=0.0, x1=10.0, y0=0.0, y1=10.0)
        xs = np.array([5.0, 1.0, 13.0, -2.0])
        ys = np.array([5.0, 5.0, 5.0, -2.0])
        assert np.allclose(p.signed_distance(xs, ys), r.signed_distance(xs, ys))

    def test_concave_polygon(self):
        # L-shape: the notch must be outside
        p = Polygon([(0, 0), (4, 0), (4, 2), (2, 2), (2, 4), (0, 4)])
        assert p.contains(1.0, 3.0)
        assert p.contains(3.0, 1.0)
        assert not p.contains(3.0, 3.0)

    def test_clockwise_orientation_equivalent(self):
        ccw = Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])
        cw = Polygon([(0, 0), (0, 10), (10, 10), (10, 0)])
        pts = np.array([[5.0, 5.0], [12.0, 5.0]])
        assert np.allclose(
            ccw.signed_distance(pts[:, 0], pts[:, 1]),
            cw.signed_distance(pts[:, 0], pts[:, 1]),
        )

    def test_grid_evaluation_shape(self):
        p = Polygon([(0, 0), (4, 0), (4, 4), (0, 4)])
        X, Y = np.meshgrid(np.linspace(-1, 5, 7), np.linspace(-1, 5, 9),
                           indexing="ij")
        sd = p.signed_distance(X, Y)
        assert sd.shape == (7, 9)


class TestCombinators:
    def test_union(self):
        u = Circle(0, 0, 1.0) | Circle(3, 0, 1.0)
        assert u.contains(0.0, 0.0)
        assert u.contains(3.0, 0.0)
        assert not u.contains(1.5, 0.0)

    def test_intersection(self):
        i = Circle(0, 0, 2.0) & Circle(2, 0, 2.0)
        assert i.contains(1.0, 0.0)
        assert not i.contains(-1.5, 0.0)

    def test_complement(self):
        c = ~Circle(0, 0, 1.0)
        assert not c.contains(0.0, 0.0)
        assert c.contains(2.0, 0.0)

    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            Union(())

    def test_everywhere(self):
        e = Everywhere()
        assert np.all(e.contains(np.array([-1e9, 0.0, 1e9]), 0.0))
