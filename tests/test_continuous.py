"""Tests for the continuous-parameter generator."""

import numpy as np
import pytest

from repro.core.convolution import ConvolutionGenerator
from repro.core.grid import Grid2D
from repro.core.rng import BlockNoise, standard_normal_field
from repro.core.spectra import GaussianSpectrum
from repro.fields.continuous import ContinuousGenerator, level_weights


class TestLevelWeights:
    def test_exact_on_levels(self):
        idx, wl, wh = level_weights(np.array([10.0, 20.0]), np.array([10.0, 20.0]))
        assert list(idx) == [0, 0]
        assert np.allclose(wl, [1.0, 0.0])
        assert np.allclose(wh, [0.0, 1.0])

    def test_midpoint(self):
        idx, wl, wh = level_weights(np.array([15.0]), np.array([10.0, 20.0]))
        assert wl[0] == pytest.approx(0.5)
        assert wh[0] == pytest.approx(0.5)

    def test_clamping(self):
        idx, wl, wh = level_weights(np.array([1.0, 99.0]),
                                    np.array([10.0, 20.0]))
        assert wl[0] == pytest.approx(1.0)  # below: all on lowest level
        assert wh[1] == pytest.approx(1.0)  # above: all on highest level

    def test_single_level(self):
        idx, wl, wh = level_weights(np.array([5.0, 50.0]), np.array([10.0]))
        assert np.all(wl == 1.0) and np.all(wh == 0.0)

    def test_reconstruction_identity(self):
        levels = np.array([5.0, 12.0, 30.0, 80.0])
        v = np.array([5.0, 8.0, 20.0, 79.0])
        idx, wl, wh = level_weights(v, levels)
        upper = np.minimum(idx + 1, levels.size - 1)
        recon = wl * levels[idx] + wh * levels[upper]
        assert np.allclose(recon, v)

    def test_validation(self):
        with pytest.raises(ValueError):
            level_weights(np.array([1.0]), np.array([]))
        with pytest.raises(ValueError):
            level_weights(np.array([1.0]), np.array([2.0, 2.0]))


@pytest.fixture
def grid():
    return Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)


def family(cl: float) -> GaussianSpectrum:
    return GaussianSpectrum(h=1.0, clx=cl, cly=cl)


class TestContinuousGenerator:
    def test_constant_fields_match_homogeneous(self, grid):
        # constant h and cl: must equal the plain homogeneous generator
        gen = ContinuousGenerator(
            family, h_field=lambda x, y: np.full(np.shape(x), 1.5),
            cl_field=lambda x, y: np.full(np.shape(x), 20.0),
            grid=grid, levels=[20.0], truncation=(10, 10),
        )
        x = standard_normal_field(grid.shape, seed=1)
        s = gen.generate(noise=x)
        hom = ConvolutionGenerator(
            GaussianSpectrum(h=1.0, clx=20.0, cly=20.0), grid,
            truncation=(10, 10),
        ).generate(noise=x)
        assert np.allclose(s.heights, 1.5 * hom, atol=1e-10)

    def test_h_gradient_exact(self, grid):
        # measured E[f^2] tracks h(x)^2 exactly in expectation
        gen = ContinuousGenerator(
            family,
            h_field=lambda x, y: 0.5 + np.asarray(x) / 512.0,
            cl_field=lambda x, y: np.full(np.shape(x), 15.0),
            grid=grid, levels=1, truncation=0.999,
        )
        acc = np.zeros(grid.shape)
        n = 12
        for i in range(n):
            acc += gen.generate(seed=100 + i).heights ** 2
        rms = np.sqrt(acc / n)
        gx, _ = grid.meshgrid()
        target = 0.5 + gx / 512.0
        rel = np.abs(rms.mean(axis=1) - target[:, 0]) / target[:, 0]
        assert np.median(rel) < 0.15

    def test_cl_gradient_direction(self, grid):
        gen = ContinuousGenerator(
            family,
            h_field=lambda x, y: np.ones(np.shape(x)),
            cl_field=lambda x, y: 8.0 + 24.0 * np.asarray(y) / 512.0,
            grid=grid, levels=4, truncation=0.999,
        )
        s = gen.generate(seed=5)
        # small-cl side has much higher slope content
        gx_lo = np.diff(s.heights[:, :32], axis=0).std()
        gx_hi = np.diff(s.heights[:, -32:], axis=0).std()
        assert gx_lo > 1.5 * gx_hi

    def test_levels_from_int_geomspace(self, grid):
        gen = ContinuousGenerator(
            family, h_field=lambda x, y: np.ones(np.shape(x)),
            cl_field=lambda x, y: 10.0 + 30.0 * np.asarray(x) / 512.0,
            grid=grid, levels=5,
        )
        assert gen.levels.size == 5
        assert gen.levels[0] == pytest.approx(10.0)
        assert gen.levels[-1] == pytest.approx(40.0 - 30.0 * grid.dx / 512.0,
                                               rel=0.02)

    def test_window_consistency(self, grid):
        gen = ContinuousGenerator(
            family, h_field=lambda x, y: 1.0 + np.asarray(x) / 512.0,
            cl_field=lambda x, y: 10.0 + np.asarray(y) / 32.0,
            grid=grid, levels=3, truncation=(8, 8),
        )
        bn = BlockNoise(seed=11)
        a = gen.generate_window(bn, 0, 0, 64, 64)
        b = gen.generate_window(bn, 20, 10, 24, 30)
        assert np.allclose(a.heights[20:44, 10:40], b.heights, atol=1e-10)

    def test_window_origin_parameters(self, grid):
        # the window must see the parameter fields at *global* coords
        gen = ContinuousGenerator(
            family, h_field=lambda x, y: np.where(np.asarray(x) < 256.0,
                                                  0.1, 3.0),
            cl_field=lambda x, y: np.full(np.shape(x), 12.0),
            grid=grid, levels=1, truncation=(8, 8),
        )
        bn = BlockNoise(seed=13)
        right = gen.generate_window(bn, 80, 0, 40, 128)  # x in [320, 480)
        left = gen.generate_window(bn, 0, 0, 40, 128)    # x in [0, 160)
        assert right.height_std() > 10.0 * left.height_std()

    def test_validation(self, grid):
        with pytest.raises(ValueError):
            ContinuousGenerator(
                family, lambda x, y: np.ones(np.shape(x)),
                lambda x, y: np.ones(np.shape(x)), grid, levels=0,
            )
        with pytest.raises(ValueError):
            ContinuousGenerator(
                family, lambda x, y: np.ones(np.shape(x)),
                lambda x, y: np.ones(np.shape(x)), grid, levels=[3.0, 2.0],
            )
        # family must be unit-h
        with pytest.raises(ValueError, match="unit-h"):
            ContinuousGenerator(
                lambda cl: GaussianSpectrum(h=2.0, clx=cl, cly=cl),
                lambda x, y: np.ones(np.shape(x)),
                lambda x, y: np.full(np.shape(x), 10.0),
                grid, levels=[10.0],
            )

    def test_negative_h_field_rejected(self, grid):
        gen = ContinuousGenerator(
            family, h_field=lambda x, y: -np.ones(np.shape(x)),
            cl_field=lambda x, y: np.full(np.shape(x), 10.0),
            grid=grid, levels=[10.0],
        )
        with pytest.raises(ValueError, match=">= 0"):
            gen.generate(seed=1)
