"""Unit tests for windowed/local statistics."""

import numpy as np
import pytest

from repro.core.grid import Grid2D
from repro.core.surface import Surface
from repro.fields.regions import Circle, Rectangle
from repro.stats.local import (
    interior_region_mask,
    local_mean_map,
    local_std_map,
    region_mask,
    region_statistics,
)


@pytest.fixture
def checker_surface():
    """Left half std ~0 (flat), right half noisy."""
    grid = Grid2D(nx=64, ny=64, lx=64.0, ly=64.0)
    rng = np.random.default_rng(0)
    h = np.zeros(grid.shape)
    h[32:, :] = rng.standard_normal((32, 64)) * 3.0
    return Surface(heights=h, grid=grid)


class TestBoxMaps:
    def test_mean_map_constant(self):
        out = local_mean_map(np.full((10, 10), 5.0), 3)
        assert out.shape == (8, 8)
        assert np.allclose(out, 5.0)

    def test_mean_map_matches_naive(self, rng):
        f = rng.standard_normal((12, 9))
        w = 4
        out = local_mean_map(f, w)
        naive = np.array(
            [
                [f[i : i + w, j : j + w].mean() for j in range(9 - w + 1)]
                for i in range(12 - w + 1)
            ]
        )
        assert np.allclose(out, naive)

    def test_std_map_matches_naive(self, rng):
        f = rng.standard_normal((11, 13))
        w = 5
        out = local_std_map(f, w)
        naive = np.array(
            [
                [f[i : i + w, j : j + w].std() for j in range(13 - w + 1)]
                for i in range(11 - w + 1)
            ]
        )
        assert np.allclose(out, naive, atol=1e-10)

    def test_std_map_detects_inhomogeneity(self, checker_surface):
        m = local_std_map(checker_surface.heights, 8)
        left = m[:16, :].mean()
        right = m[40:, :].mean()
        assert right > 10.0 * max(left, 1e-12)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            local_std_map(np.zeros((4, 4)), 1)
        with pytest.raises(ValueError):
            local_std_map(np.zeros((4, 4)), 5)
        with pytest.raises(ValueError):
            local_mean_map(np.zeros((4, 4)), 0)


class TestRegionMasks:
    def test_region_mask(self, checker_surface):
        mask = region_mask(checker_surface, Rectangle(0.0, 31.0, 0.0, 63.0))
        assert mask.shape == checker_surface.shape
        assert mask[0, 0] and not mask[-1, -1]

    def test_interior_mask_excludes_band(self, checker_surface):
        c = Circle(32.0, 32.0, 20.0)
        full = region_mask(checker_surface, c)
        interior = interior_region_mask(checker_surface, c, margin=8.0)
        assert interior.sum() < full.sum()
        assert np.all(full[interior])

    def test_region_statistics(self, checker_surface):
        left = region_statistics(
            checker_surface, region_mask(checker_surface, Rectangle(0, 30, 0, 63))
        )
        right = region_statistics(
            checker_surface, region_mask(checker_surface, Rectangle(33, 63, 0, 63))
        )
        assert left["std"] == pytest.approx(0.0, abs=1e-12)
        assert right["std"] == pytest.approx(3.0, rel=0.15)

    def test_region_statistics_validation(self, checker_surface):
        with pytest.raises(ValueError):
            region_statistics(checker_surface, np.zeros((4, 4), dtype=bool))
        with pytest.raises(ValueError):
            region_statistics(
                checker_surface, np.zeros(checker_surface.shape, dtype=bool)
            )

    def test_origin_respected(self):
        grid = Grid2D(nx=8, ny=8, lx=8.0, ly=8.0)
        s = Surface(heights=np.zeros((8, 8)), grid=grid, origin=(100.0, 0.0))
        mask = region_mask(s, Rectangle(100.0, 104.0, 0.0, 8.0))
        assert mask[0, 0]
        assert not mask[-1, 0]
