"""Tests for the extended spectral families (rotated/composite/PM)."""

import numpy as np
import pytest

from repro.core.convolution import convolve_full
from repro.core.grid import Grid2D
from repro.core.spectra import (
    ExponentialSpectrum,
    GaussianSpectrum,
    spectrum_from_dict,
)
from repro.core.spectra_ext import (
    CompositeSpectrum,
    PiersonMoskowitzSpectrum,
    RotatedSpectrum,
)
from repro.core.weights import build_kernel, weight_array


class TestRotated:
    def test_quarter_turn_swaps_axes(self):
        base = GaussianSpectrum(h=1.0, clx=10.0, cly=40.0)
        rot = RotatedSpectrum(base, np.pi / 2.0)
        k = np.linspace(0.0, 0.5, 7)
        assert np.allclose(rot.spectrum(k, 0.0), base.spectrum(0.0, k))
        assert np.allclose(rot.autocorrelation(k, 0.0),
                           base.autocorrelation(0.0, k))

    def test_zero_rotation_is_identity(self):
        base = GaussianSpectrum(h=1.5, clx=12.0, cly=30.0)
        rot = RotatedSpectrum(base, 0.0)
        kx = np.linspace(-0.4, 0.4, 9)
        assert np.allclose(rot.spectrum(kx, 0.1), base.spectrum(kx, 0.1))

    def test_variance_preserved_any_angle(self):
        base = GaussianSpectrum(h=1.0, clx=10.0, cly=30.0)
        grid = Grid2D(nx=128, ny=128, lx=512.0, ly=512.0)
        for angle in (0.3, 0.8, 1.2):
            rot = RotatedSpectrum(base, angle)
            assert rot.autocorrelation(0.0, 0.0) == pytest.approx(1.0)
            assert weight_array(rot, grid).sum() == pytest.approx(1.0, rel=1e-4)

    def test_generates_anisotropic_texture(self):
        # a 45-degree rotation of a strongly anisotropic spectrum makes
        # the two grid axes statistically equivalent
        base = GaussianSpectrum(h=1.0, clx=8.0, cly=40.0)
        rot = RotatedSpectrum(base, np.pi / 4.0)
        grid = Grid2D(nx=256, ny=256, lx=1024.0, ly=1024.0)
        f = convolve_full(rot, grid, seed=3)
        from repro.stats import estimate_clx, estimate_cly

        clx = estimate_clx(f, grid.dx)
        cly = estimate_cly(f, grid.dy)
        assert clx == pytest.approx(cly, rel=0.35)

    def test_kernel_buildable(self):
        rot = RotatedSpectrum(GaussianSpectrum(h=1.0, clx=10.0, cly=25.0), 0.6)
        grid = Grid2D(nx=64, ny=64, lx=256.0, ly=256.0)
        k = build_kernel(rot, grid)
        assert k.energy == pytest.approx(1.0, rel=1e-3)

    def test_serialisation_round_trip(self):
        rot = RotatedSpectrum(ExponentialSpectrum(h=2.0, clx=5.0, cly=9.0), 1.1)
        assert spectrum_from_dict(rot.to_dict()) == rot

    def test_equality_and_hash(self):
        a = RotatedSpectrum(GaussianSpectrum(h=1, clx=2, cly=3), 0.5)
        b = RotatedSpectrum(GaussianSpectrum(h=1, clx=2, cly=3), 0.5)
        c = RotatedSpectrum(GaussianSpectrum(h=1, clx=2, cly=3), 0.6)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestComposite:
    def test_variance_adds(self):
        comp = CompositeSpectrum([
            GaussianSpectrum(h=3.0, clx=40.0, cly=40.0),
            ExponentialSpectrum(h=4.0, clx=5.0, cly=5.0),
        ])
        assert comp.h == pytest.approx(5.0)
        assert comp.autocorrelation(0.0, 0.0) == pytest.approx(25.0)

    def test_spectrum_is_sum(self):
        g = GaussianSpectrum(h=1.0, clx=20.0, cly=20.0)
        e = ExponentialSpectrum(h=0.5, clx=4.0, cly=4.0)
        comp = CompositeSpectrum([g, e])
        k = np.linspace(0.0, 1.0, 5)
        assert np.allclose(comp.spectrum(k, 0.0),
                           g.spectrum(k, 0.0) + e.spectrum(k, 0.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CompositeSpectrum([])

    def test_two_scale_surface(self):
        # swell + ripple: ACF shows fast initial drop then long shoulder
        comp = CompositeSpectrum([
            GaussianSpectrum(h=1.0, clx=80.0, cly=80.0),   # swell
            GaussianSpectrum(h=0.5, clx=5.0, cly=5.0),      # ripple
        ])
        rho = comp.correlation_coefficient(np.array([0.0, 10.0, 40.0]), 0.0)
        # at lag 10: ripple fully decorrelated, swell nearly intact
        expected_mid = (1.0 * np.exp(-(10 / 80) ** 2) + 0.0) / 1.25
        assert rho[1] == pytest.approx(expected_mid, abs=0.02)

    def test_generation_variance(self):
        comp = CompositeSpectrum([
            GaussianSpectrum(h=1.0, clx=30.0, cly=30.0),
            GaussianSpectrum(h=1.0, clx=6.0, cly=6.0),
        ])
        grid = Grid2D(nx=256, ny=256, lx=1024.0, ly=1024.0)
        f = convolve_full(comp, grid, seed=4)
        assert f.std() == pytest.approx(comp.h, rel=0.2)

    def test_serialisation_round_trip(self):
        comp = CompositeSpectrum([
            GaussianSpectrum(h=1.0, clx=30.0, cly=30.0),
            ExponentialSpectrum(h=2.0, clx=6.0, cly=6.0),
        ])
        assert spectrum_from_dict(comp.to_dict()) == comp


class TestPiersonMoskowitz:
    def test_variance_closed_form(self):
        pm = PiersonMoskowitzSpectrum(wind_speed=10.0)
        # h^2 = alpha U^4 / (4 beta g^2)
        expected = 8.1e-3 * 10.0**4 / (4.0 * 0.74 * 9.81**2)
        assert pm.variance == pytest.approx(expected, rel=1e-9)

    def test_wind_speed_scaling(self):
        h5 = PiersonMoskowitzSpectrum(wind_speed=5.0).h
        h10 = PiersonMoskowitzSpectrum(wind_speed=10.0).h
        assert h10 == pytest.approx(4.0 * h5)  # h ~ U^2

    def test_discrete_variance_closure(self):
        pm = PiersonMoskowitzSpectrum(wind_speed=5.0)
        grid = Grid2D(nx=256, ny=256, lx=60.0 * pm.clx, ly=60.0 * pm.clx)
        assert weight_array(pm, grid).sum() == pytest.approx(
            pm.variance, rel=0.05
        )

    def test_numeric_acf_matches_variance(self):
        pm = PiersonMoskowitzSpectrum(wind_speed=5.0)
        assert pm.autocorrelation(0.0, 0.0) == pytest.approx(
            pm.variance, rel=0.01
        )

    def test_spreading_anisotropy(self):
        pm = PiersonMoskowitzSpectrum(wind_speed=6.0, wind_direction=0.0,
                                      spreading=4.0)
        kp = 1.0 / pm.clx
        # spectrum along the wind (Kx) exceeds cross-wind (Ky)
        assert pm.spectrum(kp, 0.0) > 2.0 * pm.spectrum(0.0, kp)

    def test_isotropic_spreading(self):
        pm = PiersonMoskowitzSpectrum(wind_speed=6.0, spreading=0.0)
        kp = 1.0 / pm.clx
        assert pm.spectrum(kp, 0.0) == pytest.approx(pm.spectrum(0.0, kp))

    def test_generation(self):
        pm = PiersonMoskowitzSpectrum(wind_speed=5.0)
        grid = Grid2D(nx=128, ny=128, lx=40.0 * pm.clx, ly=40.0 * pm.clx)
        f = convolve_full(pm, grid, seed=5)
        assert f.std() == pytest.approx(pm.h, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiersonMoskowitzSpectrum(wind_speed=0.1)
        with pytest.raises(ValueError):
            PiersonMoskowitzSpectrum(wind_speed=5.0, spreading=-1.0)

    def test_serialisation_round_trip(self):
        pm = PiersonMoskowitzSpectrum(wind_speed=7.5, wind_direction=0.4,
                                      spreading=2.0)
        assert spectrum_from_dict(pm.to_dict()) == pm
