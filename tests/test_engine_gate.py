"""Unit tests for the engine perf-regression gate script.

The gate itself runs in tier-2 CI against real bench output; these tests
pin its decision logic and exit codes against synthetic result rows so a
broken gate cannot silently wave regressions through.
"""

import importlib.util
import json
import math
from pathlib import Path

import pytest

_GATE_PATH = (
    Path(__file__).resolve().parent.parent / "benchmarks"
    / "check_engine_gate.py"
)
_spec = importlib.util.spec_from_file_location("check_engine_gate", _GATE_PATH)
gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(gate)


def _results(fft=1.0, legacy=1.0, spatial_est=100.0, speedup=None,
             dev_legacy=1e-15, dev_spatial=1e-15):
    return {
        "timings_s": {
            "fft_tiled": fft,
            "legacy_fftconvolve_tiled": legacy,
            "spatial_estimated_tiled": spatial_est,
        },
        "speedup_fft_vs_spatial": (
            spatial_est / fft if speedup is None else speedup
        ),
        "max_abs_dev_fft_vs_legacy": dev_legacy,
        "max_abs_dev_fft_vs_spatial_sample": dev_spatial,
    }


def _inhomo_results(batched=1.0, per_region=4.0, speedup=None,
                    dev_spatial=1e-15, homog_ratio=1.0):
    return {
        "timings_s": {
            "batched_tiled": batched,
            "per_region_tiled": per_region,
        },
        "speedup_batched_vs_per_region": (
            per_region / batched if speedup is None else speedup
        ),
        "max_abs_dev_batched_vs_spatial_sample": dev_spatial,
        "homogeneous_ratio": homog_ratio,
    }


def _write_pair(tmp_path, results=None, inhomo=None):
    """Write both gate inputs; return CLI argv selecting them.

    The live measurements (obs/jobs/store overheads, dtype speedup,
    dist scaling, circulant throughput) are skipped: these tests pin the gate's
    decision logic against synthetic rows, and the live timings are
    both slow and machine-noise sensitive (they run for real in the
    tier-2 standalone gate invocation, in a fresh process).
    """
    engine_path = tmp_path / "engine_fft.json"
    engine_path.write_text(json.dumps(_results() if results is None
                                      else results))
    inhomo_path = tmp_path / "inhomo_batch.json"
    inhomo_path.write_text(json.dumps(_inhomo_results() if inhomo is None
                                      else inhomo))
    return [str(engine_path), "--inhomo-results", str(inhomo_path),
            "--skip-obs-overhead", "--skip-jobs-overhead",
            "--skip-store-overhead", "--skip-dtype-speedup",
            "--skip-dist", "--skip-telemetry", "--skip-serve",
            "--skip-circulant", "--skip-verify"]


class TestCheck:
    def test_clean_results_pass(self):
        assert gate.check(_results(), 1.10, 3.0, 1e-10) == []

    def test_default_path_slowdown_fails(self):
        failures = gate.check(_results(fft=1.2, legacy=1.0), 1.10, 3.0, 1e-10)
        assert len(failures) == 1
        assert "default path regressed" in failures[0]

    def test_slowdown_within_margin_passes(self):
        assert gate.check(_results(fft=1.09, legacy=1.0), 1.10, 3.0,
                          1e-10) == []

    def test_insufficient_speedup_fails(self):
        failures = gate.check(_results(speedup=2.5), 1.10, 3.0, 1e-10)
        assert any("speedup" in f for f in failures)

    def test_deviation_fails(self):
        failures = gate.check(_results(dev_legacy=1e-8), 1.10, 3.0, 1e-10)
        assert any("max_abs_dev_fft_vs_legacy" in f for f in failures)

    def test_nan_deviation_fails(self):
        # NaN must not satisfy "<= bound"
        failures = gate.check(_results(dev_spatial=math.nan), 1.10, 3.0,
                              1e-10)
        assert any("max_abs_dev_fft_vs_spatial_sample" in f
                   for f in failures)

    def test_multiple_failures_reported_together(self):
        failures = gate.check(
            _results(fft=2.0, legacy=1.0, speedup=1.0, dev_legacy=1.0),
            1.10, 3.0, 1e-10,
        )
        assert len(failures) == 3


class TestCheckInhomo:
    def test_clean_results_pass(self):
        assert gate.check_inhomo(_inhomo_results(), 2.0, 1e-10, 1.10) == []

    def test_insufficient_batch_speedup_fails(self):
        failures = gate.check_inhomo(_inhomo_results(speedup=1.7), 2.0,
                                     1e-10, 1.10)
        assert len(failures) == 1
        assert "batched multi-region speedup" in failures[0]

    def test_nan_batch_speedup_fails(self):
        failures = gate.check_inhomo(_inhomo_results(speedup=math.nan),
                                     2.0, 1e-10, 1.10)
        assert any("speedup" in f for f in failures)

    def test_deviation_fails(self):
        failures = gate.check_inhomo(_inhomo_results(dev_spatial=1e-8),
                                     2.0, 1e-10, 1.10)
        assert any("max_abs_dev_batched_vs_spatial_sample" in f
                   for f in failures)

    def test_homogeneous_regression_fails(self):
        failures = gate.check_inhomo(_inhomo_results(homog_ratio=1.25),
                                     2.0, 1e-10, 1.10)
        assert any("homogeneous default path regressed" in f
                   for f in failures)

    def test_multiple_failures_reported_together(self):
        failures = gate.check_inhomo(
            _inhomo_results(speedup=1.0, dev_spatial=1.0, homog_ratio=2.0),
            2.0, 1e-10, 1.10,
        )
        assert len(failures) == 3


class TestMain:
    def test_pass_exit_zero(self, tmp_path, capsys):
        assert gate.main(_write_pair(tmp_path)) == 0
        assert "PASS" in capsys.readouterr().out

    def test_fail_exit_one(self, tmp_path, capsys):
        argv = _write_pair(tmp_path, results=_results(fft=5.0, legacy=1.0))
        assert gate.main(argv) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_inhomo_fail_exit_one(self, tmp_path, capsys):
        argv = _write_pair(tmp_path, inhomo=_inhomo_results(speedup=1.2))
        assert gate.main(argv) == 1
        assert "batched multi-region speedup" in capsys.readouterr().err

    def test_missing_file_exit_two(self, tmp_path, capsys):
        argv = _write_pair(tmp_path)
        argv[0] = str(tmp_path / "missing.json")
        assert gate.main(argv) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_missing_inhomo_file_exit_two(self, tmp_path, capsys):
        argv = _write_pair(tmp_path)
        argv[2] = str(tmp_path / "missing_inhomo.json")
        assert gate.main(argv) == 2
        err = capsys.readouterr().err
        assert "cannot read" in err
        assert "test_bench_inhomo_batch" in err

    def test_threshold_flags(self, tmp_path):
        argv = _write_pair(tmp_path, results=_results(fft=1.5, legacy=1.0))
        assert gate.main(argv) == 1
        assert gate.main(argv + ["--max-slowdown", "2.0"]) == 0

    def test_batch_threshold_flag(self, tmp_path):
        argv = _write_pair(tmp_path, inhomo=_inhomo_results(speedup=1.5))
        assert gate.main(argv) == 1
        assert gate.main(argv + ["--min-batch-speedup", "1.2"]) == 0

    def test_real_bench_output_passes_if_present(self):
        # keep the gate and the bench schema in lockstep: if the benches
        # have been run in this checkout, their real rows must gate
        # clean.  The live timing rows are skipped here: tight
        # percentage budgets (2-5%) measured inside a warm test-suite
        # process flip on page-cache and allocator state left by
        # whatever ran before, which is noise, not regression — the
        # live rows run for real in the standalone tier-2 gate, in a
        # fresh process.
        if not (gate.DEFAULT_RESULTS.exists()
                and gate.DEFAULT_INHOMO_RESULTS.exists()):
            pytest.skip("bench output not present")
        assert gate.main(["--skip-obs-overhead", "--skip-jobs-overhead",
                          "--skip-store-overhead", "--skip-dtype-speedup",
                          "--skip-dist", "--skip-telemetry", "--skip-serve",
                          "--skip-circulant", "--skip-verify"]) == 0
